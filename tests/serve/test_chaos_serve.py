"""Chaos x serve: injected faults mid-stream must stay contained.

A transient collective fault landing inside one dispatch must not
corrupt any other queued request, every completed output must stay
bit-exact, and the retry must be *priced* — the faulted dispatch is
strictly more expensive than an identical clean one, and the report
says so.
"""

import pytest

from repro.analysis import check_trace
from repro.errors import ServeError
from repro.field import GOLDILOCKS
from repro.hw import DGX_A100
from repro.ntt import ntt
from repro.serve import ProofRequest, ProofServer
from repro.sim import FaultInjector, FaultPlan


def _workload(count=4, log_size=8):
    # Staggered arrivals: one dispatch per request, so the fault lands
    # mid-stream with requests still queued behind it.
    return [ProofRequest(request_id=i, field_name="Goldilocks",
                         log_size=log_size, arrival_s=i * 1.0)
            for i in range(count)]


def _server(plan=None, **kwargs):
    injector = None if plan is None else FaultInjector(
        plan, GOLDILOCKS.modulus)
    # split strategy so dispatches actually run collectives the
    # injector can gate; batching off so each request is one dispatch.
    return ProofServer(DGX_A100, strategy="split", batching=False,
                       injector=injector, **kwargs)


def test_transient_fault_mid_stream_is_contained_and_priced():
    plan = FaultPlan.from_specs(["transient-comm@2:count=1"])
    faulted = _server(plan).serve(_workload())
    clean = _server().serve(_workload())

    # Every request completed and stayed bit-exact.
    assert faulted.completed == 4
    for result in faulted.results:
        for lane, out in zip(result.request.vectors(), result.outputs):
            assert list(out) == ntt(GOLDILOCKS, lane), (
                "a fault in one dispatch corrupted another request")

    # Exactly one dispatch retried, and the retry was priced.
    assert faulted.retries == 1
    attempts = [d.attempts for d in faulted.dispatches]
    assert sorted(attempts) == [1, 1, 1, 2]
    hit = next(d for d in faulted.dispatches if d.attempts == 2)
    twin = next(d for d in clean.dispatches
                if d.batch_id == hit.batch_id)
    assert hit.duration_s > twin.duration_s
    # (The makespan may hide the retry in an idle arrival gap, but the
    # total modeled service time cannot.)
    assert faulted.modeled_busy_s() > clean.modeled_busy_s()

    # The other dispatches cost exactly what they cost fault-free.
    for record in faulted.dispatches:
        if record.attempts == 1 and record.batch_id > 0:
            twin = next(d for d in clean.dispatches
                        if d.batch_id == record.batch_id)
            assert record.duration_s == twin.duration_s


def test_faulted_run_replays_bit_identically():
    plan = FaultPlan.from_specs(["transient-comm@1:count=1"])
    a = _server(plan).serve(_workload(3))
    b = _server(plan).serve(_workload(3))
    assert a.to_json() == b.to_json()
    assert [r.outputs for r in a.results] == [r.outputs for r in b.results]


def test_faulted_serve_trace_passes_tracecheck():
    # The retry event answers the fault, so the unresolved-fault rule
    # and the serve dispatch/complete pairing must both hold.
    plan = FaultPlan.from_specs(["transient-comm@2:count=1"])
    server = _server(plan)
    server.serve(_workload())
    assert check_trace(server.trace) == []
    details = [e.detail for e in server.trace.events
               if e.kind == "retry"]
    assert len(details) == 1 and "TransientCommError" in details[0]


def test_exhausted_retries_raise_serve_error():
    # Three consecutive transient faults against two attempts: the
    # dispatch cannot complete and the server reports the failure.
    plan = FaultPlan.from_specs(["transient-comm@0:count=3"])
    with pytest.raises(ServeError):
        _server(plan, max_attempts=2).serve(_workload(1))


def test_corruption_is_detected_retried_and_survives():
    plan = FaultPlan.from_specs(["corrupt-shard@1:gpu=1,delta=13"])
    server = _server(plan)
    report = server.serve(_workload(3))
    assert report.completed == 3
    assert report.retries >= 1
    for result in report.results:
        for lane, out in zip(result.request.vectors(), result.outputs):
            assert list(out) == ntt(GOLDILOCKS, lane)
    assert check_trace(server.trace) == []
