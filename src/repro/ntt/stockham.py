"""Stockham autosort NTT.

The Stockham formulation interleaves the butterfly permutation into the
stage writes by ping-ponging between two buffers: natural-order input,
natural-order output, **no bit-reversal pass at all**, at the cost of
not being in-place.  GPU libraries favour it because the reversal pass
is a full extra memory sweep and out-of-place is free when you have a
scratch buffer anyway — the single-buffer-pair analogue of the paper's
overhead-elimination theme.

Each stage ``t`` combines ``m = n_t/2`` butterflies across ``s = 2^t``
interleaved sub-sequences; the stage root is squared between stages.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["ntt_stockham", "intt_stockham"]


def _stockham(field: PrimeField, values: Sequence[int], root: int,
              cache: TwiddleCache) -> list[int]:
    size = len(values)
    p = field.modulus
    x = list(values)
    y = [0] * size
    n = size
    stride = 1
    stage_root = root
    while n > 1:
        half = n // 2
        table = cache.powers(field, stage_root, half)
        for butterfly in range(half):
            w = table[butterfly]
            base_in_a = stride * butterfly
            base_in_b = stride * (butterfly + half)
            base_out_a = stride * 2 * butterfly
            base_out_b = base_out_a + stride
            for q in range(stride):
                a = x[q + base_in_a]
                b = x[q + base_in_b]
                s = a + b
                y[q + base_out_a] = s - p if s >= p else s
                y[q + base_out_b] = (a - b) * w % p
        x, y = y, x
        n = half
        stride *= 2
        stage_root = stage_root * stage_root % p
    return x


def ntt_stockham(field: PrimeField, values: Sequence[int],
                 cache: TwiddleCache | None = None,
                 root: int | None = None) -> list[int]:
    """Forward NTT, natural order in and out, no bit-reversal pass."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    if n == 1:
        return list(values)
    w = field.root_of_unity(n) if root is None else root
    return _stockham(field, values, w, cache)


def intt_stockham(field: PrimeField, values: Sequence[int],
                  cache: TwiddleCache | None = None,
                  root: int | None = None) -> list[int]:
    """Inverse NTT via Stockham (includes the 1/n scaling)."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    if n == 1:
        return list(values)
    w = field.root_of_unity(n) if root is None else root
    out = _stockham(field, values, field.inv(w), cache)
    p = field.modulus
    n_inv = field.inv(n % p)
    return [v * n_inv % p for v in out]
