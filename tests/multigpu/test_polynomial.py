"""Tests for the distributed polynomial API."""

import pytest

from repro.errors import PartitionError
from repro.field import TEST_FIELD_7681
from repro.multigpu import DistributedPolynomial, UniNTTEngine
from repro.ntt import naive_cyclic_convolution, ntt
from repro.sim import SimCluster

F = TEST_FIELD_7681


@pytest.fixture
def engine():
    return UniNTTEngine(SimCluster(F, 4))


class TestForms:
    def test_coefficient_roundtrip(self, engine, rng):
        coeffs = F.random_vector(64, rng)
        poly = DistributedPolynomial.from_coefficients(engine, coeffs)
        assert poly.form == "coefficient"
        evaluated = poly.to_evaluations()
        assert evaluated.form == "evaluation"
        assert evaluated.values() == ntt(F, coeffs)
        assert evaluated.to_coefficients().values() == coeffs

    def test_noop_conversions(self, engine, rng):
        poly = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng))
        assert poly.to_coefficients() is poly
        evaluated = poly.to_evaluations()
        assert evaluated.to_evaluations() is evaluated

    def test_coset_roundtrip(self, engine, rng):
        from repro.ntt import coset_ntt

        coeffs = F.random_vector(64, rng)
        shift = F.multiplicative_generator
        poly = DistributedPolynomial.from_coefficients(engine, coeffs)
        on_coset = poly.to_evaluations(coset_shift=shift)
        assert on_coset.values() == coset_ntt(F, coeffs, shift)
        assert on_coset.to_coefficients().values() == coeffs

    def test_coset_mismatch_rejected(self, engine, rng):
        poly = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng))
        on_coset = poly.to_evaluations(coset_shift=5)
        with pytest.raises(PartitionError, match="different coset"):
            on_coset.to_evaluations(coset_shift=7)

    def test_from_evaluations(self, engine, rng):
        coeffs = F.random_vector(64, rng)
        spectrum = ntt(F, coeffs)
        poly = DistributedPolynomial.from_evaluations(engine, spectrum)
        assert poly.to_coefficients().values() == coeffs

    def test_power_of_two_required(self, engine):
        with pytest.raises(PartitionError, match="power of two"):
            DistributedPolynomial.from_coefficients(engine, [1, 2, 3])


class TestAlgebra:
    def test_spectral_product_is_convolution(self, engine, rng):
        a = F.random_vector(64, rng)
        b = F.random_vector(64, rng)
        pa = DistributedPolynomial.from_coefficients(engine, a)
        pb = DistributedPolynomial.from_coefficients(engine, b)
        product = (pa.to_evaluations() * pb.to_evaluations())
        assert product.to_coefficients().values() == \
            naive_cyclic_convolution(F, a, b)

    def test_pointwise_has_zero_communication(self, engine, rng):
        pa = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng)).to_evaluations()
        pb = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng)).to_evaluations()
        before = engine.cluster.trace.collective_count()
        pa * pb
        pa + pb
        pa - pb
        assert engine.cluster.trace.collective_count() == before

    def test_add_sub_in_coefficient_form(self, engine, rng):
        a = F.random_vector(64, rng)
        b = F.random_vector(64, rng)
        pa = DistributedPolynomial.from_coefficients(engine, a)
        pb = DistributedPolynomial.from_coefficients(engine, b)
        p = F.modulus
        assert (pa + pb).values() == [(x + y) % p for x, y in zip(a, b)]
        assert (pa - pb).values() == [(x - y) % p for x, y in zip(a, b)]

    def test_multiply_requires_evaluation_form(self, engine, rng):
        pa = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng))
        with pytest.raises(PartitionError, match="evaluation form"):
            pa * pa

    def test_form_mismatch_rejected(self, engine, rng):
        pa = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng))
        pb = pa.to_evaluations()
        with pytest.raises(PartitionError, match="cannot add"):
            pa + pb

    def test_size_mismatch_rejected(self, engine, rng):
        pa = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng))
        pb = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(128, rng))
        with pytest.raises(PartitionError, match="sizes differ"):
            pa + pb

    def test_engine_mismatch_rejected(self, engine, rng):
        other_engine = UniNTTEngine(SimCluster(F, 4))
        pa = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng))
        pb = DistributedPolynomial.from_coefficients(
            other_engine, F.random_vector(64, rng))
        with pytest.raises(PartitionError, match="share an engine"):
            pa + pb


class TestPipelines:
    def test_quotient_on_coset(self, engine, rng):
        """(A*B - C) / Z on a coset — the Groth16 quotient, distributed."""
        from repro.ntt import coset_intt

        n = 64
        p = F.modulus
        a = F.random_vector(n, rng)
        b = F.random_vector(n, rng)
        shift = F.multiplicative_generator
        pa = DistributedPolynomial.from_coefficients(engine, a)
        pb = DistributedPolynomial.from_coefficients(engine, b)
        prod = pa.to_evaluations(coset_shift=shift) * \
            pb.to_evaluations(coset_shift=shift)
        # Divide by the constant Z(coset) = shift^n - 1 pointwise.
        z_inv = F.inv((pow(shift, n, p) - 1) % p)
        scaled_shards = [[v * z_inv % p for v in shard]
                         for shard in prod.shards]
        quotient = DistributedPolynomial(
            engine, scaled_shards, form="evaluation", coset_shift=shift)
        got = quotient.to_coefficients().values()

        # Reference: pointwise on the coset via the single-node path.
        from repro.ntt import coset_ntt
        ref_prod = [x * y % p * z_inv % p
                    for x, y in zip(coset_ntt(F, a, shift),
                                    coset_ntt(F, b, shift))]
        assert got == coset_intt(F, ref_prod, shift)

    def test_repr(self, engine, rng):
        poly = DistributedPolynomial.from_coefficients(
            engine, F.random_vector(64, rng))
        assert "n=64" in repr(poly)
        assert "coefficient" in repr(poly)
