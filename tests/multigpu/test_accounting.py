"""Tests for the shared accounting formulas."""

import pytest

from repro.errors import HardwareModelError
from repro.multigpu import (
    alltoall_bytes_per_gpu, local_ntt_mem_bytes, local_ntt_muls, log2_int,
    pointwise_mem_bytes, small_batch_mem_bytes, small_batch_ntt_muls,
    tile_passes, twiddle_muls,
)


class TestLog2:
    def test_values(self):
        assert log2_int(1) == 0
        assert log2_int(1024) == 10

    def test_rejects_non_powers(self):
        with pytest.raises(HardwareModelError):
            log2_int(12)
        with pytest.raises(HardwareModelError):
            log2_int(0)


class TestTilePasses:
    def test_fits_in_one_pass(self):
        assert tile_passes(1024, 1024) == 1
        assert tile_passes(16, 1024) == 1

    def test_multiple_passes(self):
        # log2(2^20)/log2(2^10) = 2
        assert tile_passes(1 << 20, 1 << 10) == 2
        # 21/10 -> 3 passes
        assert tile_passes(1 << 21, 1 << 10) == 3

    def test_naive_tile_degenerates(self):
        assert tile_passes(1 << 10, 2) == 10

    def test_size_one(self):
        assert tile_passes(1, 16) == 0

    def test_tile_validation(self):
        with pytest.raises(HardwareModelError, match="tile"):
            tile_passes(16, 1)


class TestCounts:
    def test_local_ntt_muls(self):
        assert local_ntt_muls(1) == 0
        assert local_ntt_muls(1024) == 512 * 10

    def test_mem_bytes(self):
        assert local_ntt_mem_bytes(1 << 20, 32, 1 << 10) == \
            2 * (1 << 20) * 32 * 2

    def test_small_batch(self):
        assert small_batch_ntt_muls(16, 8) == 16 * 4 * 3
        assert small_batch_mem_bytes(16, 8, 32) == 2 * 128 * 32

    def test_pointwise(self):
        assert twiddle_muls(100) == 100
        assert pointwise_mem_bytes(100, 32) == 6400

    def test_alltoall(self):
        assert alltoall_bytes_per_gpu(64, 4, 32) == 16 * 3 * 32

    def test_alltoall_divisibility(self):
        with pytest.raises(HardwareModelError, match="split"):
            alltoall_bytes_per_gpu(10, 4, 32)
