"""Rank-1 Constraint Systems.

An R1CS instance is a list of constraints ``<a_i, w> * <b_i, w> =
<c_i, w>`` over a witness vector ``w`` whose slot 0 is the constant 1,
followed by the public inputs, followed by private wires.  This is the
circuit format Groth16 consumes and the unit the end-to-end benchmark
sizes its workloads in (one constraint = one domain point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import CircuitError
from repro.field.prime_field import PrimeField

__all__ = ["LinearCombination", "Constraint", "R1CS"]

#: Sparse linear combination: wire index -> coefficient.
LinearCombination = Mapping[int, int]


@dataclass(frozen=True)
class Constraint:
    """One rank-1 constraint ``<a, w> * <b, w> = <c, w>``."""

    a: tuple[tuple[int, int], ...]
    b: tuple[tuple[int, int], ...]
    c: tuple[tuple[int, int], ...]

    @classmethod
    def make(cls, a: LinearCombination, b: LinearCombination,
             c: LinearCombination) -> "Constraint":
        """Build a constraint from sparse dict combinations."""
        def freeze(lc: LinearCombination) -> tuple[tuple[int, int], ...]:
            return tuple(sorted((int(k), int(v)) for k, v in lc.items()))
        return cls(a=freeze(a), b=freeze(b), c=freeze(c))


class R1CS:
    """A constraint system with witness allocation helpers."""

    def __init__(self, field: PrimeField, num_public: int = 0):
        if num_public < 0:
            raise CircuitError("num_public cannot be negative")
        self.field = field
        self.num_public = num_public
        # wire 0 is the constant 1; public wires are 1..num_public.
        self.num_wires = 1 + num_public
        self.constraints: list[Constraint] = []

    def __repr__(self) -> str:
        return (f"R1CS({len(self.constraints)} constraints, "
                f"{self.num_wires} wires, {self.num_public} public, "
                f"over {self.field.name})")

    # -- construction ------------------------------------------------------------

    def new_wire(self) -> int:
        """Allocate a fresh private wire; returns its index."""
        index = self.num_wires
        self.num_wires += 1
        return index

    def add_constraint(self, a: LinearCombination, b: LinearCombination,
                       c: LinearCombination) -> None:
        """Append ``<a,w> * <b,w> = <c,w>``; validates wire indices."""
        for lc in (a, b, c):
            for wire in lc:
                if not 0 <= wire < self.num_wires:
                    raise CircuitError(
                        f"constraint references wire {wire}; only "
                        f"{self.num_wires} allocated")
        self.constraints.append(Constraint.make(a, b, c))

    def constrain_mul(self, x: int, y: int) -> int:
        """Add ``z = x * y`` with a fresh output wire; returns z."""
        z = self.new_wire()
        self.add_constraint({x: 1}, {y: 1}, {z: 1})
        return z

    def constrain_square(self, x: int) -> int:
        """Add ``z = x^2``; returns z."""
        return self.constrain_mul(x, x)

    def constrain_equal(self, x: int, y: int) -> None:
        """Add ``x * 1 = y``."""
        self.add_constraint({x: 1}, {0: 1}, {y: 1})

    # -- evaluation -----------------------------------------------------------------

    def eval_lc(self, lc: Sequence[tuple[int, int]],
                witness: Sequence[int]) -> int:
        """Evaluate a frozen linear combination against a witness."""
        p = self.field.modulus
        return sum(coeff * witness[wire] for wire, coeff in lc) % p

    def is_satisfied(self, witness: Sequence[int]) -> bool:
        """Check every constraint against a full witness vector."""
        self.check_witness_shape(witness)
        p = self.field.modulus
        for constraint in self.constraints:
            a = self.eval_lc(constraint.a, witness)
            b = self.eval_lc(constraint.b, witness)
            c = self.eval_lc(constraint.c, witness)
            if a * b % p != c:
                return False
        return True

    def check_witness_shape(self, witness: Sequence[int]) -> None:
        if len(witness) != self.num_wires:
            raise CircuitError(
                f"witness has {len(witness)} entries, system has "
                f"{self.num_wires} wires")
        if witness[0] % self.field.modulus != 1:
            raise CircuitError("witness slot 0 must be the constant 1")

    def public_inputs(self, witness: Sequence[int]) -> list[int]:
        """The public slice of a witness (excluding the constant 1)."""
        self.check_witness_shape(witness)
        return list(witness[1:1 + self.num_public])
