"""F9: measured communication breakdown (functional simulator)."""

from repro.bench import comm_breakdown


def test_f9_comm_breakdown(benchmark, emit):
    table = benchmark(comm_breakdown)
    emit("F9_comm_breakdown",
         "F9: measured bytes per hierarchy level (8 GPUs, functional sim)",
         table)
