"""ProofServer behavior: batching, caching, backpressure, determinism."""

import pytest

from repro.analysis import check_trace
from repro.errors import ServeError
from repro.field import GOLDILOCKS
from repro.hw import DGX_A100
from repro.ntt import intt, ntt
from repro.serve import (
    ProofRequest, ProofServer, WorkloadSpec, generate_workload,
)


def _burst(count, log_size=4, **overrides):
    base = dict(field_name="Goldilocks", log_size=log_size)
    base.update(overrides)
    return [ProofRequest(request_id=i, **base) for i in range(count)]


def _staggered(count, gap_s, log_size=4, **overrides):
    base = dict(field_name="Goldilocks", log_size=log_size)
    base.update(overrides)
    return [ProofRequest(request_id=i, arrival_s=i * gap_s, **base)
            for i in range(count)]


def test_outputs_are_bit_exact_both_directions():
    for direction, reference in (("forward", ntt), ("inverse", intt)):
        report = ProofServer(DGX_A100).serve(
            _burst(3, direction=direction, batch=2))
        assert report.completed == 3
        for result in report.results:
            for lane, out in zip(result.request.vectors(),
                                 result.outputs):
                assert list(out) == reference(GOLDILOCKS, lane)


def test_batching_beats_one_at_a_time():
    workload = _burst(8, log_size=10)
    batched = ProofServer(DGX_A100).serve(workload)
    solo = ProofServer(DGX_A100, batching=False,
                       caching=False).serve(workload)
    assert batched.batches == 1
    assert solo.batches == 8
    assert batched.throughput_rps() >= 1.5 * solo.throughput_rps()
    assert batched.mean_batch_requests() == 8.0


def test_replay_is_bit_identical():
    workload = generate_workload(WorkloadSpec(
        requests=7, log_sizes=(4, 6), directions=("forward", "inverse"),
        mean_interarrival_s=1e-4, deadline_s=1e-2, seed=11))
    a = ProofServer(DGX_A100).serve(workload)
    b = ProofServer(DGX_A100).serve(workload)
    assert a.to_json() == b.to_json()
    assert [r.outputs for r in a.results] == [r.outputs for r in b.results]
    assert [d.steps for d in a.dispatches] == [d.steps for d in b.dispatches]


def test_backpressure_rejects_and_prices():
    report = ProofServer(DGX_A100, queue_capacity=2).serve(_burst(5))
    assert report.rejected == 3
    assert report.accepted == 2
    assert report.completed == 2
    assert report.rejection_s > 0.0
    cost = report.plan_cost(DGX_A100)
    cost.validate()
    assert cost.total_s >= report.rejection_s


def test_edf_serves_the_tight_deadline_first():
    # Two incompatible shapes arrive together; the one with a deadline
    # must be dispatched first even though its id is higher.
    best_effort = ProofRequest(request_id=0, field_name="Goldilocks",
                               log_size=4)
    urgent = ProofRequest(request_id=1, field_name="Goldilocks",
                          log_size=5, deadline_s=1.0)
    report = ProofServer(DGX_A100).serve([best_effort, urgent])
    first, second = sorted(report.results, key=lambda r: r.finish_s)
    assert first.request.request_id == 1
    assert second.request.request_id == 0


def test_deadline_misses_are_counted():
    # A deadline far tighter than any modeled service time must miss.
    workload = [ProofRequest(request_id=0, field_name="Goldilocks",
                             log_size=10, deadline_s=1e-12)]
    report = ProofServer(DGX_A100).serve(workload)
    assert report.completed == 1
    assert report.deadline_misses == 1
    assert not report.results[0].deadline_met


def test_caching_disabled_recomputes_every_dispatch():
    workload = _staggered(4, gap_s=1.0)
    cold = ProofServer(DGX_A100, caching=False).serve(workload)
    warm = ProofServer(DGX_A100).serve(workload)
    assert cold.batches == warm.batches == 4
    # Cold: both strategies replanned and twiddles rebuilt per dispatch.
    assert cold.plan_misses == 2 * cold.batches
    assert cold.plan_hits == 0
    assert cold.twiddle_misses == cold.batches
    # Warm: misses only on the first dispatch, hits after.
    assert warm.plan_misses == 2
    assert warm.plan_hits == 2 * (warm.batches - 1)
    assert warm.twiddle_misses == 1
    assert warm.twiddle_hits == warm.batches - 1
    assert warm.makespan_s < cold.makespan_s


def test_twiddle_hits_charge_zero_recompute_in_dispatch_steps():
    workload = _staggered(3, gap_s=1.0)
    report = ProofServer(DGX_A100).serve(workload)
    assert report.batches == 3
    first, *rest = report.dispatches
    assert any(step.name == "serve-twiddle-gen" for step in first.steps)
    for record in rest:
        assert all(step.name != "serve-twiddle-gen"
                   for step in record.steps), (
            "a twiddle hit was charged recompute")
    # The later dispatches are cheaper by exactly the cached work.
    assert rest[0].duration_s < first.duration_s
    assert rest[0].duration_s == rest[1].duration_s


def test_serve_trace_is_complete_and_clean():
    server = ProofServer(DGX_A100, queue_capacity=2)
    report = server.serve(_burst(4))
    events = server.trace.events
    kinds = [e.kind for e in events if e.level == "serve"]
    assert kinds.count("serve-accept") == report.accepted
    assert kinds.count("serve-reject") == report.rejected
    assert kinds.count("serve-dispatch") == report.batches
    assert kinds.count("serve-complete") == report.batches
    assert kinds.count("serve-cache") == 2 * report.batches
    assert check_trace(server.trace) == []


def test_strategy_pinning_and_unknown_strategy():
    workload = _burst(2, log_size=7)
    pinned = ProofServer(DGX_A100, strategy="replicate").serve(workload)
    assert pinned.strategy_counts() == {"replicate": 1}
    with pytest.raises(ServeError):
        # 2^4 = 16 < 8*8: split cannot run on the 8-GPU DGX-A100.
        ProofServer(DGX_A100, strategy="split").serve(_burst(1))


def test_duplicate_request_ids_are_rejected():
    twice = [ProofRequest(request_id=0, field_name="Goldilocks",
                          log_size=4),
             ProofRequest(request_id=0, field_name="Goldilocks",
                          log_size=5)]
    with pytest.raises(ServeError):
        ProofServer(DGX_A100).serve(twice)


def test_constructor_validation():
    with pytest.raises(ServeError):
        ProofServer(DGX_A100, max_batch_requests=0)
    with pytest.raises(ServeError):
        ProofServer(DGX_A100, max_attempts=0)
    with pytest.raises(ServeError):
        ProofServer(DGX_A100, backoff_messages=-1)


def test_empty_workload_serves_to_an_empty_report():
    report = ProofServer(DGX_A100).serve([])
    assert report.summary()["completed"] == 0
    assert report.makespan_s == 0.0
    assert report.latency_percentiles_s()["p99"] == 0.0


def test_retry_exhaustion_attaches_a_priced_partial_report():
    # Without a degradation policy, sustained faults exhaust the retry
    # budget; the raised error must carry the partial report and that
    # report must still price as a validating PlanCost.
    from repro.sim.faults import FaultInjector, FaultPlan

    injector = FaultInjector(
        FaultPlan.from_specs(["transient-comm@0:count=100000"]),
        GOLDILOCKS.modulus)
    server = ProofServer(DGX_A100, strategy="split", batching=False,
                         injector=injector)
    with pytest.raises(ServeError) as exc:
        server.serve(_burst(4, log_size=8))
    report = getattr(exc.value, "report", None)
    assert report is not None
    # The doomed dispatch burned every attempt before giving up.
    assert report.retries == server.max_attempts
    assert report.completed < 4
    report.plan_cost(DGX_A100).validate()


def test_queue_overflow_under_burst_prices_every_rejection():
    report = ProofServer(DGX_A100, queue_capacity=1).serve(_burst(6))
    assert report.accepted == 1
    assert report.rejected == 5
    assert report.completed == 1
    assert report.rejection_s > 0.0
    cost = report.plan_cost(DGX_A100)
    cost.validate()
    assert cost.total_s >= report.rejection_s
    assert cost.exchange_s >= report.rejection_s
