"""Tests for NTT-based convolution and polynomial products."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.ntt import (
    cyclic_convolution, naive_cyclic_convolution,
    naive_negacyclic_convolution, negacyclic_convolution,
    next_power_of_two, poly_multiply,
)

F = TEST_FIELD_7681


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("n,expected", [
        (0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (100, 128),
        (1024, 1024), (1025, 2048),
    ])
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected


class TestCyclic:
    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_matches_naive(self, n, rng):
        a = F.random_vector(n, rng)
        b = F.random_vector(n, rng)
        assert cyclic_convolution(F, a, b) == naive_cyclic_convolution(
            F, a, b)

    def test_mismatch_rejected(self):
        with pytest.raises(NTTError, match="match"):
            cyclic_convolution(F, [1, 2], [1])


class TestNegacyclic:
    @pytest.mark.parametrize("n", [2, 16, 64])
    def test_matches_naive(self, n, rng):
        a = F.random_vector(n, rng)
        b = F.random_vector(n, rng)
        assert negacyclic_convolution(F, a, b) == \
            naive_negacyclic_convolution(F, a, b)

    def test_mismatch_rejected(self):
        with pytest.raises(NTTError, match="match"):
            negacyclic_convolution(F, [1], [1, 2])


class TestPolyMultiply:
    def test_by_hand(self):
        # (1 + 2x)(3 + x) = 3 + 7x + 2x^2
        assert poly_multiply(F, [1, 2], [3, 1]) == [3, 7, 2]

    def test_lengths_add(self, rng):
        a = F.random_vector(5, rng)
        b = F.random_vector(9, rng)
        assert len(poly_multiply(F, a, b)) == 13

    def test_matches_schoolbook(self, rng):
        a = F.random_vector(20, rng)
        b = F.random_vector(33, rng)
        p = F.modulus
        expected = [0] * 52
        for i, av in enumerate(a):
            for j, bv in enumerate(b):
                expected[i + j] = (expected[i + j] + av * bv) % p
        assert poly_multiply(F, a, b) == expected

    def test_single_coefficients(self):
        assert poly_multiply(F, [3], [4]) == [12]

    def test_empty_rejected(self):
        with pytest.raises(NTTError, match="empty"):
            poly_multiply(F, [], [1])

    def test_zero_polynomial(self):
        assert poly_multiply(F, [0, 0], [1, 2]) == [0, 0, 0]


coeffs = st.lists(st.integers(min_value=0, max_value=7680), min_size=1,
                  max_size=12)


@given(a=coeffs, b=coeffs)
def test_poly_multiply_commutative(a, b):
    assert poly_multiply(F, a, b) == poly_multiply(F, b, a)


@given(a=coeffs, b=coeffs, c=coeffs)
def test_poly_multiply_associative(a, b, c):
    lhs = poly_multiply(F, poly_multiply(F, a, b), c)
    rhs = poly_multiply(F, a, poly_multiply(F, b, c))
    assert lhs == rhs


@given(a=st.lists(st.integers(min_value=0, max_value=7680),
                  min_size=8, max_size=8),
       b=st.lists(st.integers(min_value=0, max_value=7680),
                  min_size=8, max_size=8))
def test_convolution_theorem_property(a, b):
    assert cyclic_convolution(F, a, b) == naive_cyclic_convolution(F, a, b)
