"""Tests for the full Groth16 protocol structure."""

import dataclasses

import pytest

from repro.errors import ProverError
from repro.field import BN254_FR
from repro.zkp import (
    Groth16Prover, Groth16Trapdoor, QAP, groth16_self_check,
    groth16_setup, inner_product, square_chain,
)

TRAPDOOR = Groth16Trapdoor(alpha=11, beta=13, gamma=17, delta=19,
                           tau=0xFEEDFACE)


@pytest.fixture(scope="module")
def system():
    r1cs, witness = square_chain(BN254_FR, steps=6)
    qap = QAP(r1cs)
    pk, vk = groth16_setup(qap, TRAPDOOR)
    return qap, pk, vk, witness


class TestSetup:
    def test_key_shapes(self, system):
        qap, pk, vk, _ = system
        n = qap.domain.size
        assert len(pk.tau_powers) == n
        assert len(pk.h_terms) == n - 1
        assert len(pk.private_terms) == len(pk.private_wires)
        # IC terms: the constant-1 wire plus each public input.
        assert len(vk.ic_terms) == qap.r1cs.num_public + 1
        # Public and private wires partition the wire set.
        assert len(pk.private_wires) + len(vk.ic_terms) == \
            qap.r1cs.num_wires

    def test_trapdoor_validation(self, system):
        qap = system[0]
        with pytest.raises(ProverError, match="non-zero"):
            groth16_setup(qap, Groth16Trapdoor(alpha=0, beta=1, gamma=1,
                                               delta=1, tau=1))

    def test_wrong_field_rejected(self):
        from repro.field import GOLDILOCKS
        r1cs, _ = square_chain(GOLDILOCKS, steps=3)
        with pytest.raises(ProverError, match="BN254"):
            groth16_setup(QAP(r1cs), TRAPDOOR)


class TestProofs:
    def test_honest_proof_verifies(self, system):
        qap, pk, vk, witness = system
        proof = Groth16Prover(qap, pk).prove(witness, r=123, s=456)
        assert groth16_self_check(qap, vk, proof, witness, TRAPDOOR,
                                  r=123, s=456)

    def test_randomness_changes_proof(self, system):
        """Zero-knowledge: same witness, different proofs."""
        qap, pk, _, witness = system
        prover = Groth16Prover(qap, pk)
        p1 = prover.prove(witness, r=1, s=2)
        p2 = prover.prove(witness, r=3, s=4)
        assert p1.a != p2.a and p1.b != p2.b and p1.c != p2.c

    @pytest.mark.parametrize("element", ["a", "b", "c"])
    def test_tampered_elements_rejected(self, system, element):
        qap, pk, vk, witness = system
        proof = Groth16Prover(qap, pk).prove(witness, r=9, s=8)
        tampered = dataclasses.replace(
            proof, **{element: getattr(proof, element)
                      + pk.curve.generator()})
        assert not groth16_self_check(qap, vk, tampered, witness,
                                      TRAPDOOR, r=9, s=8)

    def test_wrong_randomness_rejected(self, system):
        qap, pk, vk, witness = system
        proof = Groth16Prover(qap, pk).prove(witness, r=9, s=8)
        assert not groth16_self_check(qap, vk, proof, witness, TRAPDOOR,
                                      r=9, s=9)

    def test_pairing_identity_in_exponent(self, system):
        """dlog(A)*dlog(B) == alpha*beta + ic*gamma + c*delta — verified
        inside groth16_self_check; a wrong-public witness breaks it."""
        qap, pk, vk, witness = system
        proof = Groth16Prover(qap, pk).prove(witness, r=5, s=6)
        wrong_public = list(witness)
        wrong_public[1] = (wrong_public[1] + 1) % BN254_FR.modulus
        assert not groth16_self_check(qap, vk, proof, wrong_public,
                                      TRAPDOOR, r=5, s=6)

    def test_other_circuit_family(self):
        r1cs, witness = inner_product(BN254_FR, length=6)
        qap = QAP(r1cs)
        pk, vk = groth16_setup(qap, TRAPDOOR)
        proof = Groth16Prover(qap, pk).prove(witness, r=77, s=88)
        assert groth16_self_check(qap, vk, proof, witness, TRAPDOOR,
                                  r=77, s=88)
