"""Virtual clock invariants: monotonic, exact, no wall time."""

import pytest

from repro.errors import ServeError
from repro.serve import VirtualClock


def test_advances_exactly():
    clock = VirtualClock()
    assert clock.now_s == 0.0
    clock.advance_by(1.5)
    clock.advance_to(4.0)
    assert clock.now_s == 4.0


def test_never_rewinds():
    clock = VirtualClock(start_s=2.0)
    with pytest.raises(ServeError):
        clock.advance_to(1.0)
    with pytest.raises(ServeError):
        clock.advance_by(-0.1)
    assert clock.now_s == 2.0


def test_advance_to_now_is_a_noop():
    clock = VirtualClock(start_s=3.0)
    clock.advance_to(3.0)
    clock.advance_by(0.0)
    assert clock.now_s == 3.0


@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf")])
def test_non_finite_advances_are_rejected(bad):
    # nan compares false against everything, so one absorbed nan would
    # poison every later deadline comparison without tripping anything.
    clock = VirtualClock(start_s=1.0)
    with pytest.raises(ServeError):
        clock.advance_by(bad)
    with pytest.raises(ServeError):
        clock.advance_to(bad)
    assert clock.now_s == 1.0


@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf"), -1.0])
def test_bad_start_times_are_rejected(bad):
    with pytest.raises(ServeError):
        VirtualClock(start_s=bad)


def test_rejected_advance_leaves_time_untouched():
    clock = VirtualClock()
    clock.advance_by(2.0)
    for bad in (float("nan"), -0.5):
        with pytest.raises(ServeError):
            clock.advance_by(bad)
    assert clock.now_s == 2.0


def test_runtime_and_serve_export_the_same_clock():
    # serve.VirtualClock is a compatibility re-export of the runtime
    # clock; the fleet and the single server must share one time axis.
    from repro.runtime import VirtualClock as RuntimeClock
    assert VirtualClock is RuntimeClock
