"""Schedule interpreter: execute a verified ``CommSchedule`` on the simulator.

The final piece of the verification story.  Passes and synthesis prove
a schedule's *accounting* (gate in :mod:`repro.analysis.passes`); this
module proves its *semantics* by actually running the op list on a
:class:`~repro.sim.cluster.SimCluster` — real field values flow through
every declared transfer — and letting tests check the result bit-exact
against the engine the schedule was derived from, and the recorded
trace's ``bytes_by_level()`` bit-for-bit against the schedule's.

The interpreter understands the **unintt family** of schedules
(:func:`~repro.multigpu.schedule.build_unintt_schedule` and everything
the pass framework / :mod:`repro.analysis.synth` derive from it):

* local kernels by op name — ``local-ntt``, ``twiddle-pass``,
  ``cross-ntt`` — with merged names (``a+b`` from the merge pass) split
  and applied in order, then charged once per :class:`LocalOp`;
* flat exchanges by relayout (``unintt-exchange``,
  ``unintt-materialize``), executed with the same destination-slot walk
  as :func:`~repro.multigpu.base.redistribute`;
* hierarchical ``*-stage`` / ``*-rail`` pairs, executed as two chained
  ``all_to_all`` collectives with the data genuinely forwarded through
  the per-node scratch GPUs (:func:`~repro.analysis.synth.route_via`).

Anything else — or a schedule that fails :func:`verify_schedule` —
raises :class:`~repro.errors.SchedulePassError` before touching data.
"""

from __future__ import annotations

from repro.analysis.plancheck import verify_schedule
from repro.analysis.synth import route_via
from repro.errors import SchedulePassError
from repro.field.vector import vec_mul
from repro.multigpu.layout import (
    BlockLayout, CyclicLayout, Layout, SpectralLayout, UniNTTExchangeLayout,
    collect, distribute,
)
from repro.multigpu.schedule import (
    CommSchedule, ExchangeOp, LocalOp, ScheduleOp,
)
from repro.ntt import radix2
from repro.ntt.twiddle import default_cache
from repro.sim.cluster import SimCluster

__all__ = ["interpret_schedule"]

#: Flat exchange ops the unintt family uses, as (source, target) layouts.
_RELAYOUTS = {
    "unintt-exchange": (BlockLayout, UniNTTExchangeLayout),
    "unintt-materialize": (SpectralLayout, BlockLayout),
}

_LOCAL_KERNELS = ("local-ntt", "twiddle-pass", "cross-ntt")


def _base_exchange_name(op: ExchangeOp) -> str:
    for suffix in ("-stage", "-rail"):
        if op.name.endswith(suffix):
            return op.name[:-len(suffix)]
    return op.name


def _staged_redistribute(cluster: SimCluster, source: Layout,
                         target: Layout, base_detail: str) -> None:
    """Two-step relayout through per-node scratch GPUs.

    Mirrors :func:`~repro.analysis.synth.split_exchange` exactly: the
    stage collective keeps every message inside its node (direct
    deliveries plus rail forwarding), the rail collective carries only
    inter-node bundles.  Values genuinely transit the scratch GPU.
    """
    ns = cluster.node_size
    if ns is None:
        raise SchedulePassError(
            f"{base_detail}: hierarchical schedule needs a cluster with "
            f"node_size set")
    g = cluster.gpu_count

    # Per-(src, dst) messages in destination-slot order — the same walk
    # redistribute() uses, so reassembly below is deterministic.
    msgs: list[list[list[int]]] = [[[] for _ in range(g)]
                                   for _ in range(g)]
    for dst in range(g):
        for local in range(target.shard_size):
            j = target.global_index(dst, local)
            src, src_local = source.owner(j)
            msgs[src][dst].append(cluster.gpus[src].shard[src_local])

    # Stage: deliver same-node data directly, forward cross-node data
    # to the scratch GPU on the destination's rail.  Final-dst-major
    # packing, so receivers can split buffers back into sections.
    out1: list[list[list[int]]] = [[[] for _ in range(g)]
                                   for _ in range(g)]
    for src in range(g):
        for dst in range(g):
            out1[src][route_via(src, dst, ns)].extend(msgs[src][dst])
    in1 = cluster.all_to_all(out1, detail=f"{base_detail}-stage")

    held: dict[tuple[int, int, int], list[int]] = {}
    for holder in range(g):
        for src in range(g):
            buf = in1[holder][src]
            pos = 0
            for dst in range(g):
                if route_via(src, dst, ns) != holder:
                    continue
                count = len(msgs[src][dst])
                if count:
                    held[(holder, dst, src)] = buf[pos:pos + count]
                    pos += count

    # Rail: one aggregated inter-node message per (scratch, dst) pair,
    # origin-major sections.
    out2: list[list[list[int]]] = [[[] for _ in range(g)]
                                   for _ in range(g)]
    for holder in range(g):
        for dst in range(g):
            if dst == holder:
                continue
            for src in range(g):
                chunk = held.get((holder, dst, src))
                if chunk and route_via(src, dst, ns) == holder:
                    out2[holder][dst].extend(chunk)
    in2 = cluster.all_to_all(out2, detail=f"{base_detail}-rail")

    # Reassemble each destination shard from per-origin FIFO queues.
    for dst in range(g):
        fifo: list[list[int]] = [[] for _ in range(g)]
        cursors: dict[int, int] = {}
        for src in range(g):
            holder = route_via(src, dst, ns)
            if holder == dst:
                fifo[src] = list(held.get((dst, dst, src), ()))
            else:
                buf = in2[dst][holder]
                pos = cursors.get(holder, 0)
                count = len(msgs[src][dst])
                fifo[src] = buf[pos:pos + count]
                cursors[holder] = pos + count
        shard = [0] * target.shard_size
        taken = [0] * g
        for local in range(target.shard_size):
            j = target.global_index(dst, local)
            src, _ = source.owner(j)
            shard[local] = fifo[src][taken[src]]
            taken[src] += 1
        cluster.gpus[dst].load(shard)


def interpret_schedule(schedule: CommSchedule, cluster: SimCluster,
                       values: list[int]) -> list[int]:
    """Run a verified unintt-family schedule on real data.

    Loads ``values`` in the engine's cyclic input layout, executes
    every op (kernels compute, collectives move the declared bytes,
    charges hit the trace), and returns the transform output in natural
    order — bit-exact with
    :meth:`repro.multigpu.unintt.UniNTTEngine.forward` on the same
    input.
    """
    findings = verify_schedule(schedule)
    if findings:
        raise SchedulePassError(
            f"refusing to interpret {schedule.name!r}: "
            f"{findings[0].format()}")
    g = schedule.num_gpus
    if cluster.gpu_count != g:
        raise SchedulePassError(
            f"schedule is for {g} GPUs, cluster has {cluster.gpu_count}")
    if cluster.element_bytes != schedule.element_bytes:
        raise SchedulePassError(
            f"element size mismatch: schedule {schedule.element_bytes}B, "
            f"cluster field {cluster.element_bytes}B")
    n = len(values)
    if n < g * g or n % g:
        raise SchedulePassError(
            f"unintt schedules need n >= G^2 with G | n ({n}, G={g})")
    m = n // g
    field = cluster.field
    p = field.modulus
    root = field.root_of_unity(n)
    root_m = pow(root, g, p)
    root_g = pow(root, m, p)

    kernel_names = [part for op in schedule.ops if isinstance(op, LocalOp)
                    for part in op.name.split("+")]
    unknown = [k for k in kernel_names if k not in _LOCAL_KERNELS]
    if unknown:
        raise SchedulePassError(
            f"{schedule.name!r}: no kernel for local op(s) {unknown!r} "
            f"(interpreter understands {list(_LOCAL_KERNELS)})")
    separate_twiddle = "twiddle-pass" in kernel_names

    def run_kernel(kernel: str) -> None:
        if kernel == "local-ntt":
            for gpu in cluster.gpus:
                s = gpu.gpu_id
                out = radix2.ntt(field, gpu.shard, default_cache,
                                 root=root_m)
                if not separate_twiddle and s:
                    tw = default_cache.powers(field, pow(root, s, p), m)
                    out = vec_mul(field, out, tw)
                gpu.shard = out
        elif kernel == "twiddle-pass":
            for gpu in cluster.gpus:
                s = gpu.gpu_id
                if s:
                    tw = default_cache.powers(field, pow(root, s, p), m)
                    gpu.shard = vec_mul(field, gpu.shard, tw)
        else:  # cross-ntt
            for gpu in cluster.gpus:
                shard = gpu.shard
                for group in range(m // g):
                    base = group * g
                    shard[base:base + g] = radix2.ntt(
                        field, shard[base:base + g], default_cache,
                        root=root_g)

    cluster.load_shards(distribute(values, CyclicLayout(n=n, gpu_count=g)))

    ops: list[ScheduleOp] = list(schedule.ops)
    i = 0
    while i < len(ops):
        op = ops[i]
        if isinstance(op, LocalOp):
            for part in op.name.split("+"):
                run_kernel(part)
            cluster.charge_local(op.field_muls_per_gpu,
                                 op.mem_bytes_per_gpu, detail=op.name)
        elif isinstance(op, ExchangeOp):
            base = _base_exchange_name(op)
            layouts = _RELAYOUTS.get(base)
            if layouts is None:
                raise SchedulePassError(
                    f"{schedule.name!r}: no relayout for exchange op "
                    f"{op.name!r}")
            source, target = (cls(n=n, gpu_count=g) for cls in layouts)
            if op.name.endswith("-stage"):
                rail = ops[i + 1] if i + 1 < len(ops) else None
                if (not isinstance(rail, ExchangeOp)
                        or rail.name != f"{base}-rail"):
                    raise SchedulePassError(
                        f"{op.name!r} is not followed by its "
                        f"{base}-rail op")
                _staged_redistribute(cluster, source, target, base)
                i += 1
            else:
                from repro.multigpu.base import redistribute

                redistribute(cluster, source, target, detail=base)
        else:
            raise SchedulePassError(
                f"{schedule.name!r}: interpreter does not execute "
                f"{type(op).__name__} ops ({op.name!r})")
        i += 1

    bases = {_base_exchange_name(op) for op in schedule.ops
             if isinstance(op, ExchangeOp)}
    out_layout: Layout = (BlockLayout(n=n, gpu_count=g)
                          if "unintt-materialize" in bases
                          else SpectralLayout(n=n, gpu_count=g))
    return collect(cluster.peek_shards(), out_layout)
