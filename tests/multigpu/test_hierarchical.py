"""Tests for the two-level (multi-node) hierarchical engine."""

import pytest

from repro.errors import PartitionError, SimulationError
from repro.field import BLS12_381_FR, GOLDILOCKS, TEST_FIELD_7681
from repro.hw import (
    DGX_A100, MultiNodeMachine, PipelinedGroup, infiniband,
)
from repro.multigpu import (
    BaselineFourStepEngine, DistributedVector, HierarchicalUniNTTEngine,
    InterNodeExchangeLayout, IntraNodeExchangeLayout, NestedCyclicLayout,
    NestedSpectralLayout, NodeSpectralLayout, UniNTTEngine,
)
from repro.ntt import ntt
from repro.sim import SimCluster

F = TEST_FIELD_7681


def make_engine(field=F, nodes=2, per_node=2):
    cluster = SimCluster(field, nodes * per_node, node_size=per_node)
    return HierarchicalUniNTTEngine(cluster)


def run_forward(field, nodes, per_node, n, rng):
    engine = make_engine(field, nodes, per_node)
    values = field.random_vector(n, rng)
    vec = DistributedVector.from_values(engine.cluster, values,
                                        engine.input_layout(n))
    return engine, values, engine.forward(vec)


class TestNestedLayouts:
    @pytest.mark.parametrize("layout_cls", [
        NestedCyclicLayout, IntraNodeExchangeLayout, NodeSpectralLayout,
        InterNodeExchangeLayout, NestedSpectralLayout,
    ], ids=lambda c: c.__name__)
    @pytest.mark.parametrize("n,nodes,per_node", [(64, 2, 2), (256, 2, 4),
                                                  (256, 4, 2)])
    def test_bijection(self, layout_cls, n, nodes, per_node):
        layout = layout_cls(n=n, gpu_count=nodes * per_node, nodes=nodes)
        seen = set()
        for gpu in range(layout.gpu_count):
            for local in range(layout.shard_size):
                j = layout.global_index(gpu, local)
                assert layout.owner(j) == (gpu, local)
                seen.add(j)
        assert seen == set(range(n))

    def test_nested_cyclic_index_math(self):
        # n=64, N=2, P=2: j = (q*2 + s_gpu)*2 + s_node.
        layout = NestedCyclicLayout(n=64, gpu_count=4, nodes=2)
        assert layout.owner(0) == (0, 0)    # s_node=0, s_gpu=0, q=0
        assert layout.owner(1) == (2, 0)    # s_node=1 -> gpu 1*2+0=2
        assert layout.owner(2) == (1, 0)    # s_gpu=1 -> gpu 1
        assert layout.owner(4) == (0, 1)    # q=1

    def test_size_requirements(self):
        with pytest.raises(PartitionError, match="P\\^2"):
            NodeSpectralLayout(n=8, gpu_count=8, nodes=2)  # M=4 < 4^2
        with pytest.raises(PartitionError, match="sub-chunks"):
            NestedSpectralLayout(n=16, gpu_count=8, nodes=8)


class TestCorrectness:
    @pytest.mark.parametrize("nodes,per_node,n", [
        (2, 2, 64), (2, 4, 256), (4, 2, 256), (2, 2, 512),
    ])
    def test_forward_matches_reference(self, nodes, per_node, n, rng):
        engine, values, out = run_forward(F, nodes, per_node, n, rng)
        assert out.to_values() == ntt(F, values)
        assert isinstance(out.layout, NestedSpectralLayout)

    @pytest.mark.parametrize("field", [GOLDILOCKS, BLS12_381_FR],
                             ids=lambda f: f.name)
    def test_production_fields(self, field, rng):
        engine, values, out = run_forward(field, 2, 2, 64, rng)
        assert out.to_values() == ntt(field, values)

    @pytest.mark.parametrize("nodes,per_node,n", [(2, 2, 64), (2, 4, 256)])
    def test_roundtrip(self, nodes, per_node, n, rng):
        engine, values, out = run_forward(F, nodes, per_node, n, rng)
        back = engine.inverse(out)
        assert back.to_values() == values
        assert isinstance(back.layout, NestedCyclicLayout)
        engine.cluster.check_conservation()

    def test_requires_node_structure(self):
        cluster = SimCluster(F, 4)  # no node_size
        with pytest.raises(SimulationError, match="node structure"):
            HierarchicalUniNTTEngine(cluster)

    def test_size_validation(self):
        engine = make_engine(nodes=4, per_node=2)
        with pytest.raises(PartitionError, match="needs n >="):
            engine.forward_profile(16)


class TestTrafficSplit:
    def test_bytes_split_by_fabric(self, rng):
        nodes, per_node, n = 2, 4, 256
        engine, _, _ = run_forward(F, nodes, per_node, n, rng)
        cluster = engine.cluster
        by_level = cluster.trace.bytes_by_level()
        g = nodes * per_node
        m = n // g
        eb = cluster.element_bytes
        assert by_level["multi-gpu"] == g * m * (per_node - 1) // per_node * eb
        assert by_level["multi-node"] == g * m * (nodes - 1) // nodes * eb

    def test_inter_node_traffic_below_flat(self, rng):
        """The flat engine pushes (G-P)/G of its volume across nodes;
        hierarchical pushes only (N-1)/N of a single exchange."""
        nodes, per_node, n = 2, 4, 512
        g = nodes * per_node
        values = F.random_vector(n, rng)

        hier = make_engine(F, nodes, per_node)
        vec = DistributedVector.from_values(hier.cluster, values,
                                            hier.input_layout(n))
        hier.forward(vec)
        hier_inter = hier.cluster.trace.bytes_by_level()["multi-node"]

        flat_cluster = SimCluster(F, g, node_size=per_node)
        flat = UniNTTEngine(flat_cluster)
        vec = DistributedVector.from_values(flat_cluster, values,
                                            flat.input_layout(n))
        flat.forward(vec)
        flat_inter = flat_cluster.trace.bytes_by_level()["multi-node"]

        # Same inter-node volume for one exchange (the hierarchy's win
        # is moving the rest onto NVSwitch + fewer network messages).
        assert hier_inter == flat_inter
        hier_intra = hier.cluster.trace.bytes_by_level()["multi-gpu"]
        flat_intra = flat_cluster.trace.bytes_by_level().get("multi-gpu", 0)
        assert hier_intra > flat_intra

    def test_profile_matches_counters(self, rng):
        nodes, per_node, n = 2, 4, 256
        engine, _, out = run_forward(F, nodes, per_node, n, rng)
        engine.inverse(out)
        profile = engine.forward_profile(n) + engine.inverse_profile(n)
        phases = [p for step in profile
                  for p in (step.phases if isinstance(step, PipelinedGroup)
                            else [step])]
        counters = engine.cluster.gpus[0].counters
        assert sum(p.exchange_bytes for p in phases) == counters.bytes_sent
        assert sum(p.field_muls for p in phases) == counters.field_muls
        assert sum(p.mem_bytes for p in phases) == \
            counters.mem_traffic_bytes


class TestMultiNodeMachine:
    def test_levels(self):
        machine = MultiNodeMachine(name="t", node=DGX_A100, node_count=4,
                                   network=infiniband())
        names = [lvl.name for lvl in machine.levels(32)]
        assert names == ["multi-node", "multi-gpu", "gpu", "block", "warp"]
        assert machine.total_gpus == 32
        assert machine.level("multi-node", 32).fanout == 4

    def test_node_count_validation(self):
        from repro.errors import HardwareModelError
        with pytest.raises(HardwareModelError, match="node_count"):
            MultiNodeMachine(name="t", node=DGX_A100, node_count=1,
                             network=infiniband())

    def test_flattened(self):
        machine = MultiNodeMachine(name="t", node=DGX_A100, node_count=4,
                                   network=infiniband())
        flat = machine.flattened()
        assert flat.gpu_count == 32
        assert flat.interconnect.kind == "infiniband"

    def test_estimates_favor_hierarchy(self):
        machine = MultiNodeMachine(name="t", node=DGX_A100, node_count=4,
                                   network=infiniband())
        n = 1 << 24
        hier_cluster = SimCluster(BLS12_381_FR, 32, node_size=8)
        t_hier = HierarchicalUniNTTEngine(hier_cluster).estimate(
            machine, n).total_s
        flat_cluster = SimCluster(BLS12_381_FR, 32)
        flat = machine.flattened()
        t_flat_uni = UniNTTEngine(flat_cluster).estimate(flat, n).total_s
        t_flat_base = BaselineFourStepEngine(flat_cluster).estimate(
            flat, n).total_s
        assert t_hier < t_flat_uni < t_flat_base
