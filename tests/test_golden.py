"""Golden-counter regression tests.

The engines' resource counts ARE the reproduction's results: if a
refactor changes how many bytes or multiplications an algorithm charges,
every figure silently shifts.  These tests pin the exact counters for
canonical configurations; an intentional algorithm change must update
the golden values here, consciously.
"""

import random

import pytest

from repro.field import TEST_FIELD_7681
from repro.multigpu import (
    BaselineFourStepEngine, DistributedVector, PairwiseExchangeEngine,
    SingleGpuEngine, UniNTTEngine,
)
from repro.sim import SimCluster

F = TEST_FIELD_7681  # 1 limb -> 8 bytes/element

#: (engine, n=256, G=4) -> per-GPU counters after one forward transform.
GOLDEN_FORWARD = {
    "unintt": {
        "bytes_sent": 384,          # (m/G)(G-1) * 8 = 16*3*8
        "field_muls": 272,          # radix-4 local + fused twiddle + cross
        "mem_traffic_bytes": 2048,  # one tiled pass + cross pass
        "collectives": 1,
    },
    "baseline": {
        "bytes_sent": 1152,         # 3 all-to-alls
        "field_muls": 320,          # column + row transforms + twiddles
        "mem_traffic_bytes": 3072,  # 2 transform passes + twiddle sweep
        "collectives": 3,
    },
    "pairwise": {
        "bytes_sent": 1024,         # log2(4)=2 stages x 64*8
        "field_muls": 384,          # local + twiddle + 2 combine stages
        "mem_traffic_bytes": 3072,  # local pass + 2 stage passes
        "collectives": 2,
    },
}


def run_forward(name):
    engine_cls = {"unintt": UniNTTEngine,
                  "baseline": BaselineFourStepEngine,
                  "pairwise": PairwiseExchangeEngine}[name]
    n, g = 256, 4
    cluster = SimCluster(F, g)
    engine = engine_cls(cluster)
    rng = random.Random(0)
    vec = DistributedVector.from_values(
        cluster, F.random_vector(n, rng), engine.input_layout(n))
    engine.forward(vec)
    counters = cluster.gpus[0].counters
    return {
        "bytes_sent": counters.bytes_sent,
        "field_muls": counters.field_muls,
        "mem_traffic_bytes": counters.mem_traffic_bytes,
        "collectives": cluster.trace.count("all-to-all")
        + cluster.trace.count("pairwise"),
    }


@pytest.mark.parametrize("name", sorted(GOLDEN_FORWARD))
def test_forward_counters_pinned(name):
    measured = run_forward(name)
    golden = GOLDEN_FORWARD[name]
    mismatches = {key: (golden[key], measured[key])
                  for key in golden if golden[key] != measured[key]}
    assert not mismatches, (
        f"{name}: counters drifted (golden, measured): {mismatches} — "
        f"if this change is intentional, update GOLDEN_FORWARD")


def test_golden_ratios_hold():
    """The headline structural ratios, pinned as integers."""
    uni = run_forward("unintt")
    base = run_forward("baseline")
    assert base["bytes_sent"] == 3 * uni["bytes_sent"]
    assert base["collectives"] == 3 * uni["collectives"]
