"""The BN254 (alt_bn128) G1 group.

This is the curve Groth16-on-Ethereum commits with: a short Weierstrass
curve ``y^2 = x^3 + 3`` over the 254-bit base field, whose G1 group
order is exactly the BN254 scalar field this library's NTTs run in.
Points use Jacobian projective coordinates internally so additions cost
no field inversions, matching the arithmetic GPU MSM kernels perform.

Only G1 is implemented (the prover's MSMs live there); pairings are not
needed by this reproduction — see :mod:`repro.zkp.prover` for how proofs
are checked without them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CurveError
from repro.field.presets import BN254_FR
from repro.field.prime_field import PrimeField

__all__ = ["CurveParams", "CurvePoint", "BN254_G1", "BN254_FP"]

#: BN254 base field (the coordinate field of G1).
BN254_FP = PrimeField(
    21888242871839275222246405745257275088696311157297823662689037894645226208583,
    generator=3, name="BN254-Fp")


@dataclass(frozen=True)
class CurveParams:
    """Short Weierstrass curve ``y^2 = x^3 + a*x + b`` over ``base``."""

    name: str
    base: PrimeField
    a: int
    b: int
    generator_x: int
    generator_y: int
    order: int

    def __post_init__(self) -> None:
        p = self.base.modulus
        lhs = self.generator_y * self.generator_y % p
        rhs = (self.generator_x ** 3 + self.a * self.generator_x
               + self.b) % p
        if lhs != rhs:
            raise CurveError(f"{self.name}: generator is not on the curve")

    def generator(self) -> "CurvePoint":
        return CurvePoint(self, self.generator_x, self.generator_y, 1)

    def infinity(self) -> "CurvePoint":
        return CurvePoint(self, 1, 1, 0)


class CurvePoint:
    """A point in Jacobian coordinates ``(X, Y, Z)``: affine ``(X/Z^2, Y/Z^3)``."""

    __slots__ = ("curve", "x", "y", "z")

    def __init__(self, curve: CurveParams, x: int, y: int, z: int):
        self.curve = curve
        self.x = x
        self.y = y
        self.z = z

    # -- predicates ------------------------------------------------------------

    def is_infinity(self) -> bool:
        return self.z == 0

    def is_on_curve(self) -> bool:
        """Check the Jacobian curve equation Y^2 = X^3 + aXZ^4 + bZ^6."""
        if self.is_infinity():
            return True
        p = self.curve.base.modulus
        z2 = self.z * self.z % p
        z4 = z2 * z2 % p
        z6 = z4 * z2 % p
        lhs = self.y * self.y % p
        rhs = (self.x ** 3 + self.curve.a * self.x * z4
               + self.curve.b * z6) % p
        return lhs == rhs

    # -- affine view ---------------------------------------------------------------

    def affine(self) -> tuple[int, int] | None:
        """Affine coordinates, or ``None`` for the point at infinity."""
        if self.is_infinity():
            return None
        p = self.curve.base.modulus
        z_inv = pow(self.z, -1, p)
        z_inv2 = z_inv * z_inv % p
        return (self.x * z_inv2 % p, self.y * z_inv2 % p * z_inv % p)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurvePoint):
            return NotImplemented
        if self.curve is not other.curve and self.curve != other.curve:
            return False
        if self.is_infinity() or other.is_infinity():
            return self.is_infinity() and other.is_infinity()
        # Cross-multiply to compare without inversions.
        p = self.curve.base.modulus
        z1sq = self.z * self.z % p
        z2sq = other.z * other.z % p
        if self.x * z2sq % p != other.x * z1sq % p:
            return False
        return (self.y * z2sq % p * other.z % p
                == other.y * z1sq % p * self.z % p)

    def __hash__(self) -> int:
        return hash((self.curve.name, self.affine()))

    def __repr__(self) -> str:
        aff = self.affine()
        if aff is None:
            return f"CurvePoint({self.curve.name}, infinity)"
        return f"CurvePoint({self.curve.name}, x={aff[0]}, y={aff[1]})"

    # -- group law -----------------------------------------------------------------

    def double(self) -> "CurvePoint":
        """Jacobian doubling (a = 0 fast path for BN254)."""
        if self.is_infinity() or self.y == 0:
            return self.curve.infinity()
        p = self.curve.base.modulus
        xx = self.x * self.x % p
        yy = self.y * self.y % p
        yyyy = yy * yy % p
        s = 4 * self.x * yy % p
        if self.curve.a == 0:
            m = 3 * xx % p
        else:
            z2 = self.z * self.z % p
            m = (3 * xx + self.curve.a * z2 * z2) % p
        x3 = (m * m - 2 * s) % p
        y3 = (m * (s - x3) - 8 * yyyy) % p
        z3 = 2 * self.y * self.z % p
        return CurvePoint(self.curve, x3, y3, z3)

    def __add__(self, other: "CurvePoint") -> "CurvePoint":
        if not isinstance(other, CurvePoint):
            return NotImplemented
        if self.curve != other.curve:
            raise CurveError("cannot add points on different curves")
        if self.is_infinity():
            return other
        if other.is_infinity():
            return self
        p = self.curve.base.modulus
        z1z1 = self.z * self.z % p
        z2z2 = other.z * other.z % p
        u1 = self.x * z2z2 % p
        u2 = other.x * z1z1 % p
        s1 = self.y * z2z2 % p * other.z % p
        s2 = other.y * z1z1 % p * self.z % p
        if u1 == u2:
            if s1 != s2:
                return self.curve.infinity()
            return self.double()
        h = (u2 - u1) % p
        i = 4 * h * h % p
        j = h * i % p
        r = 2 * (s2 - s1) % p
        v = u1 * i % p
        x3 = (r * r - j - 2 * v) % p
        y3 = (r * (v - x3) - 2 * s1 * j) % p
        z3 = 2 * h % p * self.z % p * other.z % p
        return CurvePoint(self.curve, x3, y3, z3)

    def __neg__(self) -> "CurvePoint":
        if self.is_infinity():
            return self
        return CurvePoint(self.curve, self.x,
                          (-self.y) % self.curve.base.modulus, self.z)

    def __sub__(self, other: "CurvePoint") -> "CurvePoint":
        return self + (-other)

    def __mul__(self, scalar: int) -> "CurvePoint":
        """Double-and-add scalar multiplication."""
        if not isinstance(scalar, int):
            return NotImplemented
        k = scalar % self.curve.order
        result = self.curve.infinity()
        addend = self
        while k:
            if k & 1:
                result = result + addend
            addend = addend.double()
            k >>= 1
        return result

    __rmul__ = __mul__


#: The production BN254 G1 group (order = BN254 scalar field modulus).
BN254_G1 = CurveParams(
    name="BN254-G1",
    base=BN254_FP,
    a=0,
    b=3,
    generator_x=1,
    generator_y=2,
    order=BN254_FR.modulus,
)
