"""Workload specifications: synthetic generators and JSON parsing.

A workload is just a list of :class:`~repro.serve.request.ProofRequest`
records.  Two ways to build one:

* :func:`generate_workload` — a seeded synthetic open-loop arrival
  process: ``requests`` requests with exponential inter-arrival gaps of
  mean ``mean_interarrival_s`` (zero collapses to a burst: everything
  arrives at t=0, the offered-load knob the f21 benchmark sweeps),
  rotating through ``log_sizes`` / ``field_names`` / ``directions``;
* :func:`workload_from_json` — an explicit request list (every field of
  the dataclass accepted, sensible defaults applied), or a ``spec``
  object with the generator's parameters.

Everything is seeded; the same spec always yields byte-identical
requests, arrival times included.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.errors import ServeError
from repro.serve.request import ProofRequest

__all__ = ["WorkloadSpec", "generate_workload", "workload_from_json",
           "workload_to_json"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    requests: int = 8
    log_sizes: tuple[int, ...] = (10,)
    field_names: tuple[str, ...] = ("Goldilocks",)
    directions: tuple[str, ...] = ("forward",)
    batch: int = 1
    mean_interarrival_s: float = 0.0
    deadline_s: float | None = None
    priority_levels: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 0:
            raise ServeError(f"requests must be >= 0, got {self.requests}")
        if not self.log_sizes or not self.field_names \
                or not self.directions:
            raise ServeError(
                "log_sizes, field_names, and directions must be non-empty")
        if self.mean_interarrival_s < 0:
            raise ServeError("mean_interarrival_s must be >= 0")
        if self.priority_levels < 1:
            raise ServeError("priority_levels must be >= 1")


def generate_workload(spec: WorkloadSpec) -> list[ProofRequest]:
    """Materialize a seeded synthetic workload from ``spec``."""
    rng = random.Random(repr(("workload", spec.seed)))
    requests: list[ProofRequest] = []
    arrival = 0.0
    for index in range(spec.requests):
        if index > 0 and spec.mean_interarrival_s > 0:
            arrival += rng.expovariate(1.0 / spec.mean_interarrival_s)
        deadline = None if spec.deadline_s is None \
            else arrival + spec.deadline_s
        requests.append(ProofRequest(
            request_id=index,
            field_name=spec.field_names[index % len(spec.field_names)],
            log_size=spec.log_sizes[index % len(spec.log_sizes)],
            direction=spec.directions[index % len(spec.directions)],
            batch=spec.batch,
            priority=index % spec.priority_levels,
            deadline_s=deadline,
            arrival_s=arrival,
            data_seed=spec.seed,
        ))
    return requests


def workload_from_json(text: str) -> list[ProofRequest]:
    """Parse a workload from JSON.

    Accepted shapes::

        {"spec": {"requests": 8, "log_sizes": [10], ...}}
        {"requests": [{"field_name": "Goldilocks", "log_size": 10, ...}]}
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ServeError(f"workload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ServeError("workload JSON must be an object")
    if "spec" in payload:
        if not isinstance(payload["spec"], dict):
            raise ServeError(
                "workload 'spec' must be an object of generator "
                f"parameters, got {type(payload['spec']).__name__}")
        raw = dict(payload["spec"])
        try:
            for key in ("log_sizes", "field_names", "directions"):
                if key in raw:
                    raw[key] = tuple(raw[key])
            spec = WorkloadSpec(**raw)
        except (TypeError, ValueError) as error:
            raise ServeError(f"bad workload spec: {error}") from error
        return generate_workload(spec)
    if "requests" not in payload:
        raise ServeError(
            "workload JSON needs a 'spec' or a 'requests' key")
    if not isinstance(payload["requests"], list):
        raise ServeError(
            "'requests' must be a list of request records; to generate "
            "a synthetic workload, nest the parameters under 'spec'")
    requests = []
    for index, raw in enumerate(payload["requests"]):
        if not isinstance(raw, dict):
            raise ServeError(
                f"bad request record {index}: expected an object, "
                f"got {type(raw).__name__}")
        raw = dict(raw)
        raw.setdefault("request_id", index)
        try:
            requests.append(ProofRequest(**raw))
        except (TypeError, ValueError) as error:
            raise ServeError(
                f"bad request record {index}: {error}") from error
    return requests


def workload_to_json(requests: list[ProofRequest]) -> str:
    """Serialize an explicit request list (round-trips from_json)."""
    records = []
    for request in requests:
        records.append({
            "request_id": request.request_id,
            "field_name": request.field_name,
            "log_size": request.log_size,
            "direction": request.direction,
            "batch": request.batch,
            "priority": request.priority,
            "deadline_s": request.deadline_s,
            "arrival_s": request.arrival_s,
            "data_seed": request.data_seed,
        })
    return json.dumps({"requests": records}, indent=2, sort_keys=True)
