"""Out-of-core transforms: when the polynomial exceeds cluster memory.

Production ZKP circuits (2^30+ BN254 elements = 32+ GiB per polynomial,
several live at once) can exceed even an 8-GPU node's HBM.  The classic
answer is the host-staged four-step: the array lives in host memory as
an R x C matrix; the GPUs stream column batches in, transform, twiddle,
stream back, then stream row batches.  Every element crosses PCIe four
times — the "host tax" this engine makes explicit, and the regime where
adding GPUs helps *bandwidth*, not just compute.

The functional simulator holds the "host array" as a plain list and
counts H2D/D2H traffic on a dedicated trace level ("host"); the time
estimate prices that traffic at the GPU's PCIe rate alongside the usual
compute/HBM charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel
from repro.hw.model import MachineModel
from repro.multigpu import accounting as acct
from repro.ntt import radix2
from repro.ntt.fourstep import split_size
from repro.ntt.twiddle import default_cache
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = ["StreamingEstimate", "StreamingHostEngine"]

#: PCIe 4.0 x16 per GPU, the standard host link.
DEFAULT_H2D_BANDWIDTH = 32e9


@dataclass(frozen=True)
class StreamingEstimate:
    """Modeled seconds for one out-of-core transform."""

    total_s: float
    pcie_s: float
    compute_s: float
    hbm_s: float
    host_bytes: int

    def dominant(self) -> str:
        parts = {"pcie": self.pcie_s, "compute": self.compute_s,
                 "hbm": self.hbm_s}
        return max(parts, key=parts.get)  # type: ignore[arg-type]


class StreamingHostEngine:
    """Host-resident four-step NTT streamed through the GPUs."""

    name = "streaming-host"

    def __init__(self, cluster: SimCluster, tile: int = 4096,
                 h2d_bandwidth: float = DEFAULT_H2D_BANDWIDTH):
        if h2d_bandwidth <= 0:
            raise SimulationError("h2d_bandwidth must be positive")
        self.cluster = cluster
        self.tile = tile
        self.h2d_bandwidth = h2d_bandwidth

    @property
    def field(self) -> PrimeField:
        return self.cluster.field

    # -- functional ------------------------------------------------------------

    def forward(self, host_values: list[int]) -> list[int]:
        """Transform a host-resident vector; returns the host result.

        The host array never fits the cluster by assumption, so only one
        batch of rows/columns is device-resident at a time.
        """
        return self._run(host_values, inverse=False)

    def inverse(self, host_values: list[int]) -> list[int]:
        """Inverse transform (includes the 1/n scaling)."""
        return self._run(host_values, inverse=True)

    def _run(self, host_values: list[int], inverse: bool) -> list[int]:
        n = len(host_values)
        if n == 0 or n & (n - 1):
            raise SimulationError(
                f"transform size must be a power of two, got {n}")
        field = self.field
        p = field.modulus
        rows, cols = split_size(n)
        if rows < 2 or cols < 2:
            raise SimulationError(
                f"streaming four-step needs n >= 4, got {n}")
        root = field.root_of_unity(n)
        if inverse:
            root = field.inv(root)
        n_inv = field.inv(n % p) if inverse else 1
        g = self.cluster.gpu_count
        eb = self.cluster.element_bytes
        data = list(host_values)

        # Pass 1: column transforms, streamed in per-GPU column batches.
        root_r = pow(root, cols, p)
        h2d = 0
        for c in range(cols):
            column = data[c::cols]                       # H2D
            column = radix2.ntt(field, column, default_cache, root=root_r)
            w_c = pow(root, c, p)
            factor = n_inv
            for k1 in range(rows):                       # fused twiddle
                column[k1] = column[k1] * factor % p
                factor = factor * w_c % p
            data[c::cols] = column                       # D2H
            h2d += 2 * rows * eb
        self._charge_pass(n, rows, h2d, detail="stream-columns")

        # Pass 2: row transforms, contiguous streams.
        root_c = pow(root, rows, p)
        h2d = 0
        for r in range(rows):
            base = r * cols
            row = data[base:base + cols]                 # H2D
            row = radix2.ntt(field, row, default_cache, root=root_c)
            data[base:base + cols] = row                 # D2H
            h2d += 2 * cols * eb
        self._charge_pass(n, cols, h2d, detail="stream-rows")

        # Final transpose read: performed host-side while writing out.
        out = [0] * n
        for k1 in range(rows):
            for k2 in range(cols):
                out[k1 + rows * k2] = data[k1 * cols + k2]
        return out

    def _charge_pass(self, n: int, transform_size: int, host_bytes: int,
                     detail: str) -> None:
        g = self.cluster.gpu_count
        eb = self.cluster.element_bytes
        per_gpu = n // g
        muls = (per_gpu // 2) * acct.log2_int(transform_size) \
            + per_gpu  # butterflies + fused twiddle/scale
        mem = 2 * per_gpu * eb * acct.tile_passes(transform_size,
                                                  self.tile)
        for gpu in self.cluster.gpus:
            gpu.charge_compute(muls, mem)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu", max_bytes_per_gpu=mem,
            total_bytes=mem * g, field_muls=muls * g, detail=detail))
        self.cluster.trace.record(TraceEvent(
            kind="host-staging", level="host",
            max_bytes_per_gpu=host_bytes // g, total_bytes=host_bytes,
            detail=detail))

    # -- analytic ----------------------------------------------------------------

    def estimate(self, machine: MachineModel, n: int) -> StreamingEstimate:
        """Price one out-of-core transform on ``machine``.

        Every element crosses PCIe four times (in+out per pass), spread
        over the machine's GPUs; compute and HBM charges follow the
        in-memory formulas.
        """
        model = CostModel(machine, self.field)
        eb = model.element_bytes
        rows, cols = split_size(n)
        g = machine.gpu_count
        host_bytes = 4 * n * eb
        pcie_s = host_bytes / (self.h2d_bandwidth * g)
        muls = (n // 2) * (acct.log2_int(max(rows, 2))
                           + acct.log2_int(max(cols, 2))) + 2 * n
        compute_s = model.compute_seconds(muls // g)
        hbm_bytes = 2 * n * eb * (acct.tile_passes(max(rows, 2), self.tile)
                                  + acct.tile_passes(max(cols, 2),
                                                     self.tile))
        hbm_s = model.memory_seconds(hbm_bytes // g)
        # PCIe transfers overlap with compute via double buffering:
        total = max(pcie_s, compute_s + hbm_s)
        return StreamingEstimate(total_s=total, pcie_s=pcie_s,
                                 compute_s=compute_s, hbm_s=hbm_s,
                                 host_bytes=host_bytes)
