"""Tests for benchmark workload descriptors."""

import pytest

from repro.bench import (
    FUNCTIONAL_LOG_SIZES, NTTWorkload, functional_workloads,
    standard_workloads,
)
from repro.errors import BenchmarkError
from repro.field import ZKP_FIELDS


class TestWorkload:
    def test_properties(self):
        w = NTTWorkload(field_name="Goldilocks", log_size=20, batch=4)
        assert w.size == 1 << 20
        assert w.elements == 4 << 20
        assert w.field.name == "Goldilocks"
        assert w.label() == "Goldilocks 2^20 x4"

    def test_unit_batch_label(self):
        assert NTTWorkload(field_name="BN254-Fr",
                           log_size=12).label() == "BN254-Fr 2^12"

    def test_validation(self):
        with pytest.raises(BenchmarkError, match="log_size"):
            NTTWorkload(field_name="Goldilocks", log_size=0)
        with pytest.raises(BenchmarkError, match="batch"):
            NTTWorkload(field_name="Goldilocks", log_size=4, batch=0)

    def test_unknown_field_surfaces_on_access(self):
        w = NTTWorkload(field_name="NopeField", log_size=4)
        with pytest.raises(KeyError):
            w.field


class TestGrids:
    def test_standard_covers_all_fields(self):
        workloads = standard_workloads()
        names = {w.field_name for w in workloads}
        assert names == {f.name for f in ZKP_FIELDS}

    def test_functional_sizes_are_small(self):
        for w in functional_workloads():
            assert w.log_size in FUNCTIONAL_LOG_SIZES
            assert w.size <= 1 << 14

    def test_no_duplicates(self):
        workloads = standard_workloads()
        assert len(workloads) == len(set(workloads))
