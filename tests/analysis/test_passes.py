"""Schedule rewrite passes: every rewrite survives the verification gate."""

from dataclasses import replace

import pytest

from repro.analysis.passes import (
    DEFAULT_PASSES, SchedulePass, ScheduleDelta, eliminate_dead_ops,
    fuse_pipeline, merge_local_ops, run_passes, verify_rewrite,
)
from repro.errors import SchedulePassError
from repro.field import GOLDILOCKS
from repro.hw import machine_by_name
from repro.multigpu.schedule import (
    ALL_ON, ExchangeOp, LocalOp, PairwiseOp, UniNTTOptions, ablation_grid,
    build_pairwise_schedule, build_unintt_schedule,
)

EB = 8  # Goldilocks element bytes
TOPOLOGIES = ("DGX-1-V100", "DGX-A100", "A100-PCIe-node")
GPU_COUNTS = (2, 4, 8)


def checks_of(findings):
    return {finding.check for finding in findings}


class TestMergeLocalOps:
    def test_fuses_local_ntt_with_twiddle_pass(self):
        # Disabling fused_twiddle gives local-ntt -> twiddle-pass, the
        # exact chain the merge pass re-fuses at the schedule level.
        options = UniNTTOptions(fused_twiddle=False)
        schedule = build_unintt_schedule(256, 4, EB, options)
        names = [op.name for op in schedule.ops]
        assert names[:2] == ["local-ntt", "twiddle-pass"]
        merged = merge_local_ops(schedule)
        assert merged.ops[0].name == "local-ntt+twiddle-pass"
        assert len(merged.ops) == len(schedule.ops) - 1

    def test_merged_op_sums_charges(self):
        options = UniNTTOptions(fused_twiddle=False)
        schedule = build_unintt_schedule(256, 4, EB, options)
        a, b = schedule.ops[0], schedule.ops[1]
        merged = merge_local_ops(schedule).ops[0]
        assert merged.field_muls_per_gpu == (a.field_muls_per_gpu
                                             + b.field_muls_per_gpu)
        assert merged.mem_bytes_per_gpu == (a.mem_bytes_per_gpu
                                            + b.mem_bytes_per_gpu)
        assert merged.consumes == a.consumes
        assert merged.produces == b.produces

    def test_does_not_merge_across_a_collective(self):
        schedule = build_unintt_schedule(256, 4, EB, ALL_ON)
        assert [op.name for op in merge_local_ops(schedule).ops] \
            == [op.name for op in schedule.ops]

    def test_does_not_merge_when_tag_has_other_readers(self):
        options = UniNTTOptions(fused_twiddle=False)
        schedule = build_unintt_schedule(256, 4, EB, options)
        spy = LocalOp(name="twiddle-pass", consumes=schedule.ops[0].produces,
                      produces="spy-out", level="gpu",
                      field_muls_per_gpu=1, mem_bytes_per_gpu=8)
        ops = (schedule.ops[0], schedule.ops[1], spy) + schedule.ops[2:]
        tapped = schedule.with_ops(ops)
        assert merge_local_ops(tapped).ops[0].name == "local-ntt"


class TestDeadOpElimination:
    def test_drops_zero_charge_local_op(self):
        schedule = build_unintt_schedule(256, 4, EB)
        noop = LocalOp(name="local-ntt", consumes="local",
                       produces="warmed", level="gpu",
                       field_muls_per_gpu=0, mem_bytes_per_gpu=0)
        first = replace(schedule.ops[0], consumes="warmed")
        padded = schedule.with_ops((noop, first) + schedule.ops[1:])
        cleaned = eliminate_dead_ops(padded)
        assert [op.name for op in cleaned.ops] \
            == [op.name for op in schedule.ops]
        # The consumer was rewired back to the dropped op's input tag.
        assert cleaned.ops[0].consumes == "local"

    def test_drops_empty_exchange(self):
        schedule = build_unintt_schedule(256, 4, EB)
        hollow = ExchangeOp(name="unintt-exchange", consumes="spectral",
                            produces="spectral-echo", transfers=(),
                            expected_in_bytes=(0, 0, 0, 0),
                            level="multi-gpu")
        padded = schedule.with_ops(schedule.ops + (hollow,))
        assert len(eliminate_dead_ops(padded).ops) == len(schedule.ops)

    def test_drops_identity_pairwise_stage(self):
        schedule = build_pairwise_schedule(256, 4, EB)
        stage = next(op for op in schedule.ops
                     if isinstance(op, PairwiseOp))
        idle = replace(stage, name="pairwise-stage0",
                       consumes=schedule.ops[-1].produces,
                       produces="idle-out", partner_of=(0, 1, 2, 3))
        padded = schedule.with_ops(schedule.ops + (idle,))
        assert len(eliminate_dead_ops(padded).ops) == len(schedule.ops)

    def test_live_ops_survive(self):
        schedule = build_unintt_schedule(256, 4, EB)
        assert eliminate_dead_ops(schedule).ops == schedule.ops


class TestPipelineFusion:
    def test_marks_consumed_collective(self):
        schedule = build_unintt_schedule(256, 4, EB)
        fused = fuse_pipeline(schedule)
        exchange = next(op for op in fused.ops
                        if isinstance(op, ExchangeOp))
        assert exchange.pipelined

    def test_moves_no_bytes_and_no_muls(self):
        schedule = build_unintt_schedule(256, 4, EB)
        fused = fuse_pipeline(schedule)
        assert fused.bytes_by_level() == schedule.bytes_by_level()
        assert fused.total_field_muls() == schedule.total_field_muls()

    def test_overlap_never_slower_sequential(self):
        from repro.hw import price_schedule, schedule_seconds

        machine = machine_by_name("DGX-A100").with_gpu_count(4)
        schedule = build_unintt_schedule(1 << 12, 4, EB)
        fused = fuse_pipeline(schedule)
        sequential = price_schedule(machine, GOLDILOCKS, fused).total_s
        overlapped = schedule_seconds(machine, GOLDILOCKS, fused)
        assert overlapped <= sequential


@pytest.mark.parametrize("machine_name", TOPOLOGIES)
@pytest.mark.parametrize("gpus", GPU_COUNTS)
class TestPassesPreserveEverything:
    """The property grid: every pass pipeline output stays admissible."""

    N = 256

    @pytest.mark.parametrize("label,options", ablation_grid(),
                             ids=lambda v: str(v))
    def test_grid(self, machine_name, gpus, label, options):
        from repro.analysis import verify_schedule

        machine = machine_by_name(machine_name).with_gpu_count(gpus)
        schedule = build_unintt_schedule(self.N, gpus, EB, options)
        rewritten, report = run_passes(schedule, machine=machine,
                                       field=GOLDILOCKS)
        assert verify_schedule(rewritten, machine=machine) == []
        assert rewritten.bytes_by_level() == schedule.bytes_by_level()
        assert rewritten.total_field_muls() == schedule.total_field_muls()
        assert len(report.applied) == len(DEFAULT_PASSES)

    def test_pairwise_survives_passes(self, machine_name, gpus):
        from repro.analysis import verify_schedule

        machine = machine_by_name(machine_name).with_gpu_count(gpus)
        schedule = build_pairwise_schedule(self.N, gpus, EB)
        rewritten, _ = run_passes(schedule, machine=machine,
                                  field=GOLDILOCKS)
        assert verify_schedule(rewritten, machine=machine) == []
        assert rewritten.bytes_by_level() == schedule.bytes_by_level()


class TestVerifyRewrite:
    def base(self):
        return build_unintt_schedule(256, 4, EB)

    def test_identity_rewrite_is_clean(self):
        schedule = self.base()
        assert verify_rewrite(schedule, schedule) == []

    def test_undeclared_mul_change_is_flagged(self):
        schedule = self.base()
        ops = tuple(replace(op, field_muls_per_gpu=op.field_muls_per_gpu
                            + 1)
                    if isinstance(op, LocalOp) else op
                    for op in schedule.ops)
        findings = verify_rewrite(schedule, schedule.with_ops(ops))
        assert "plan.rewrite-differs" in checks_of(findings)
        assert any("total_field_muls" in f.message for f in findings)

    def test_undeclared_byte_change_is_flagged(self):
        schedule = self.base()
        exchange = next(op for op in schedule.ops
                        if isinstance(op, ExchangeOp))
        dropped = replace(
            exchange, transfers=exchange.transfers[1:],
            expected_in_bytes=tuple(
                b - (exchange.transfers[0].nbytes if d ==
                     exchange.transfers[0].dst else 0)
                for d, b in enumerate(exchange.expected_in_bytes)))
        ops = tuple(dropped if op is exchange else op
                    for op in schedule.ops)
        findings = verify_rewrite(schedule, schedule.with_ops(ops))
        assert any("bytes_by_level" in f.message for f in findings
                   if f.check == "plan.rewrite-differs")

    def test_declared_delta_accepted(self):
        schedule = self.base()
        ops = tuple(replace(op, field_muls_per_gpu=op.field_muls_per_gpu
                            + 1)
                    if isinstance(op, LocalOp) else op
                    for op in schedule.ops)
        locals_ = sum(1 for op in schedule.ops
                      if isinstance(op, LocalOp))
        delta = ScheduleDelta(field_muls=locals_ * 4, note="test")
        assert verify_rewrite(schedule, schedule.with_ops(ops),
                              delta=delta) == []

    def test_dataflow_break_is_a_verifier_finding(self):
        schedule = self.base()
        ops = (replace(schedule.ops[0], produces="phantom"),) \
            + schedule.ops[1:]
        findings = verify_rewrite(schedule, schedule.with_ops(ops))
        assert "plan.read-before-write" in checks_of(findings)


class TestRunPassesGate:
    def test_broken_pass_raises(self):
        def drop_exchange(schedule):
            ops = tuple(op for op in schedule.ops
                        if not isinstance(op, ExchangeOp))
            return schedule.with_ops(ops)

        rogue = SchedulePass("drop-exchange", drop_exchange,
                             "deliberately broken test pass")
        schedule = build_unintt_schedule(256, 4, EB)
        with pytest.raises(SchedulePassError, match="drop-exchange"):
            run_passes(schedule, passes=(rogue,))

    def test_report_names_applied_passes(self):
        options = UniNTTOptions(fused_twiddle=False)
        schedule = build_unintt_schedule(256, 4, EB, options)
        _, report = run_passes(schedule)
        assert [name for name, _, _ in report.applied] \
            == [p.name for p in DEFAULT_PASSES]
        assert "merge-local-ops" in report.changed()
