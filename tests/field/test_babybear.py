"""Tests for the vectorized BabyBear kernels and the shared SIMD driver."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError, NTTError
from repro.field import (
    BABYBEAR, BABYBEAR_P, bb_add, bb_array, bb_intt, bb_mul, bb_neg,
    bb_ntt, bb_scale, bb_sub,
)
from repro.ntt import intt, ntt

P = BABYBEAR_P

EDGE_VALUES = [0, 1, 2, (1 << 27) - 1, 1 << 27, 15 << 26, P - 2, P - 1]


class TestPacking:
    def test_roundtrip(self):
        arr = bb_array(EDGE_VALUES)
        assert arr.dtype == np.uint64
        assert [int(v) for v in arr] == EDGE_VALUES

    def test_rejects_out_of_range(self):
        with pytest.raises(FieldError, match="canonical"):
            bb_array([P])
        with pytest.raises(FieldError, match="canonical"):
            bb_array([-1])


class TestArithmetic:
    def _pairs(self):
        return [(a, b) for a in EDGE_VALUES for b in EDGE_VALUES]

    def test_edge_matrix(self):
        pairs = self._pairs()
        a = bb_array([x for x, _ in pairs])
        b = bb_array([y for _, y in pairs])
        assert [int(v) for v in bb_add(a, b)] == \
            [(x + y) % P for x, y in pairs]
        assert [int(v) for v in bb_sub(a, b)] == \
            [(x - y) % P for x, y in pairs]
        assert [int(v) for v in bb_mul(a, b)] == \
            [x * y % P for x, y in pairs]

    def test_random_against_reference(self, rng):
        xs = BABYBEAR.random_vector(300, rng)
        ys = BABYBEAR.random_vector(300, rng)
        a, b = bb_array(xs), bb_array(ys)
        assert [int(v) for v in bb_mul(a, b)] == \
            [x * y % P for x, y in zip(xs, ys)]

    def test_neg_scale(self):
        arr = bb_array(EDGE_VALUES)
        assert [int(v) for v in bb_neg(arr)] == \
            [(-v) % P for v in EDGE_VALUES]
        assert [int(v) for v in bb_scale(arr, P - 1)] == \
            [v * (P - 1) % P for v in EDGE_VALUES]

    def test_scale_validation(self):
        with pytest.raises(FieldError):
            bb_scale(bb_array([1]), P)


class TestVectorizedNTT:
    @pytest.mark.parametrize("n", [1, 2, 16, 256, 1024])
    def test_matches_scalar_path(self, n, rng):
        x = BABYBEAR.random_vector(n, rng)
        assert [int(v) for v in bb_ntt(x)] == ntt(BABYBEAR, x)

    @pytest.mark.parametrize("n", [2, 64, 512])
    def test_roundtrip(self, n, rng):
        x = BABYBEAR.random_vector(n, rng)
        assert [int(v) for v in bb_intt(bb_ntt(x))] == x

    def test_interchangeable_with_scalar_inverse(self, rng):
        x = BABYBEAR.random_vector(64, rng)
        assert intt(BABYBEAR, [int(v) for v in bb_ntt(x)]) == x

    def test_size_validation(self):
        with pytest.raises(NTTError, match="power of two"):
            bb_ntt([1, 2, 3])

    def test_two_adicity_respected(self):
        """BabyBear caps at 2^27; the root lookup enforces it."""
        from repro.errors import FieldError as FE
        with pytest.raises(FE, match="two-adicity"):
            BABYBEAR.root_of_unity(1 << 28)


class TestSharedDriver:
    def test_goldilocks_and_babybear_share_schedule(self, rng):
        """Both backends run through repro.field.simd; spot-check that
        the shared driver produces consistent results for each."""
        from repro.field import GOLDILOCKS, gl_ntt
        from repro.field.simd import vectorized_ntt
        from repro.field.babybear import BABYBEAR_OPS
        from repro.field.goldilocks import GOLDILOCKS_OPS

        x_bb = BABYBEAR.random_vector(64, rng)
        x_gl = GOLDILOCKS.random_vector(64, rng)
        assert [int(v) for v in vectorized_ntt(
            BABYBEAR_OPS, bb_array(x_bb))] == ntt(BABYBEAR, x_bb)
        assert list(vectorized_ntt(
            GOLDILOCKS_OPS,
            GOLDILOCKS_OPS.pack(x_gl))) == list(gl_ntt(x_gl))


@given(st.lists(st.integers(min_value=0, max_value=P - 1),
                min_size=4, max_size=4),
       st.lists(st.integers(min_value=0, max_value=P - 1),
                min_size=4, max_size=4))
def test_mul_property(xs, ys):
    got = [int(v) for v in bb_mul(bb_array(xs), bb_array(ys))]
    assert got == [x * y % P for x, y in zip(xs, ys)]
