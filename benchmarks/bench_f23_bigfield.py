"""F23: measured big-field multi-limb backend comparison.

Times the radix-2 NTT over BN254-Fr and BLS12-381-Fr under the
pure-Python reference and the multi-limb CIOS backend
(``repro.field.multilimb``).  Two multi-limb columns are recorded:
the end-to-end call (including limb pack/unpack at the boundary) and
the packed-resident transform alone, mirroring how the paper reports
device-resident GPU kernel time separately from host<->device
transfers.  The acceptance bar is on the resident column: at
n = 2^14 the multi-limb BN254-Fr transform must be at least 3x
faster than the pure-Python reference.
"""

import pytest

from repro.bench import bigfield_comparison
from repro.field import numpy_available


def test_f23_bigfield_comparison(benchmark, emit):
    table = benchmark.pedantic(bigfield_comparison, rounds=1, iterations=1)
    emit("F23_bigfield",
         "F23: big-field multi-limb backend comparison (measured)", table)
    if not numpy_available():
        pytest.skip("numpy unavailable: python-only column recorded")
    headers, rows = table
    resident = {(row[0], row[1]): float(str(row[-1]).rstrip("x"))
                for row in rows}
    speedup = resident[(14, "BN254-Fr")]
    assert speedup >= 3.0, (
        f"2^14 BN254-Fr resident speedup {speedup}x below the 3x target")
