"""Tests for the O(n^2) reference transforms (ground truth of the suite)."""

import pytest

from repro.errors import NTTError
from repro.field import TEST_FIELD_97, TEST_FIELD_7681
from repro.ntt import (
    dft, idft, naive_cyclic_convolution, naive_negacyclic_convolution,
)

F = TEST_FIELD_7681


class TestDFT:
    def test_empty_rejected(self):
        with pytest.raises(NTTError, match="empty"):
            dft(F, [])
        with pytest.raises(NTTError, match="empty"):
            idft(F, [])

    def test_size_one_is_identity(self):
        assert dft(F, [42]) == [42]
        assert idft(F, [42]) == [42]

    def test_size_two_by_hand(self):
        # w_2 = -1: X = [a+b, a-b].
        a, b = 5, 3
        assert dft(F, [a, b]) == [8, 2]

    def test_delta_transforms_to_constant(self):
        assert dft(F, [1, 0, 0, 0]) == [1, 1, 1, 1]

    def test_constant_transforms_to_scaled_delta(self):
        assert dft(F, [1, 1, 1, 1]) == [4, 0, 0, 0]

    def test_dc_component_is_sum(self, ntt_field, rng):
        x = ntt_field.random_vector(16, rng)
        assert dft(ntt_field, x)[0] == sum(x) % ntt_field.modulus

    def test_roundtrip(self, ntt_field, rng):
        x = ntt_field.random_vector(8, rng)
        assert idft(ntt_field, dft(ntt_field, x)) == x

    def test_linearity(self, rng):
        x = F.random_vector(8, rng)
        y = F.random_vector(8, rng)
        p = F.modulus
        lhs = dft(F, [(a + b) % p for a, b in zip(x, y)])
        rhs = [(a + b) % p for a, b in zip(dft(F, x), dft(F, y))]
        assert lhs == rhs

    def test_explicit_root(self):
        # Using the inverse root gives the unscaled inverse transform.
        x = [1, 2, 3, 4]
        w = F.root_of_unity(4)
        spectrum = dft(F, x, root=w)
        back = dft(F, spectrum, root=F.inv(w))
        n_inv = F.inv(4)
        assert [v * n_inv % F.modulus for v in back] == x

    def test_evaluates_polynomial(self):
        """X[k] is the polynomial evaluated at w^k."""
        coeffs = [3, 1, 4, 1]
        w = F.root_of_unity(4)
        spectrum = dft(F, coeffs)
        for k in range(4):
            point = pow(w, k, F.modulus)
            expected = sum(c * pow(point, i, F.modulus)
                           for i, c in enumerate(coeffs)) % F.modulus
            assert spectrum[k] == expected


class TestNaiveConvolutions:
    def test_cyclic_by_hand(self):
        # (1 + x) * (1 + x) mod (x^2 - 1) = 2 + 2x.
        assert naive_cyclic_convolution(F, [1, 1], [1, 1]) == [2, 2]

    def test_negacyclic_by_hand(self):
        # (1 + x) * (1 + x) mod (x^2 + 1) = 2x + (1 - 1) = 0 + 2x... :
        # 1 + 2x + x^2 -> x^2 = -1 -> 0 + 2x.
        assert naive_negacyclic_convolution(F, [1, 1], [1, 1]) == [0, 2]

    def test_mismatched_lengths(self):
        with pytest.raises(NTTError, match="match"):
            naive_cyclic_convolution(F, [1], [1, 2])
        with pytest.raises(NTTError, match="match"):
            naive_negacyclic_convolution(F, [1], [1, 2])

    def test_cyclic_identity_element(self, rng):
        x = F.random_vector(8, rng)
        delta = [1] + [0] * 7
        assert naive_cyclic_convolution(F, x, delta) == x

    def test_cyclic_commutes(self, rng):
        a = F.random_vector(6, rng)
        b = F.random_vector(6, rng)
        assert (naive_cyclic_convolution(F, a, b)
                == naive_cyclic_convolution(F, b, a))

    def test_negacyclic_wraps_negative(self):
        # x * x = x^2 = -1 in GF(p)[x]/(x^2+1).
        assert naive_negacyclic_convolution(
            TEST_FIELD_97, [0, 1], [0, 1]) == [96, 0]
