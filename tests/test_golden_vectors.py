"""Known-answer tests: committed golden NTT vectors per field preset.

``tests/data/golden_ntt.json`` holds one input/spectrum pair per
preset field, computed once by the O(n^2) reference DFT and committed.
Unlike the differential fuzz harness (which checks implementations
against each other at test time), these pin the answers themselves:
if a field preset's modulus, generator, or root schedule silently
changed, every transform would still agree internally — and every one
of these tests would fail.
"""

import json
from pathlib import Path

import pytest

from repro.field import field_by_name
from repro.multigpu import (
    BaselineFourStepEngine, DistributedVector, PairwiseExchangeEngine,
    SingleGpuEngine, UniNTTEngine,
)
from repro.ntt import (
    balanced_plan, four_step_ntt, idft, intt, ntt, ntt_radix4,
    ntt_stockham, plan_ntt,
)
from repro.sim import SimCluster

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_ntt.json"

with GOLDEN_PATH.open(encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)["vectors"]

KERNELS = {
    "radix2": ntt,
    "radix4": ntt_radix4,
    "stockham": ntt_stockham,
    "fourstep": four_step_ntt,
    "recursive": lambda f, x: plan_ntt(
        f, balanced_plan(len(x), leaf_size=4), x),
}

ENGINES = {
    "single": SingleGpuEngine,
    "baseline": BaselineFourStepEngine,
    "pairwise": PairwiseExchangeEngine,
    "unintt": UniNTTEngine,
}


def _cases():
    return [pytest.param(entry, id=entry["field"]) for entry in GOLDEN]


def test_golden_file_covers_every_preset_field():
    from repro.field import ALL_FIELDS

    assert sorted(e["field"] for e in GOLDEN) == sorted(
        f.name for f in ALL_FIELDS)


@pytest.mark.parametrize("entry", _cases())
def test_golden_vectors_are_self_consistent(entry):
    """The committed spectrum inverts back to the committed input."""
    field = field_by_name(entry["field"])
    assert len(entry["input"]) == entry["n"]
    assert idft(field, entry["forward"]) == entry["input"]


@pytest.mark.parametrize("entry", _cases())
@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=str)
def test_every_kernel_reproduces_golden(entry, kernel):
    field = field_by_name(entry["field"])
    got = KERNELS[kernel](field, list(entry["input"]))
    assert got == entry["forward"], (
        f"{kernel} no longer reproduces the committed {field.name} "
        f"spectrum")


@pytest.mark.parametrize("entry", _cases())
@pytest.mark.parametrize("engine_name", sorted(ENGINES), ids=str)
def test_every_engine_reproduces_golden(entry, engine_name):
    field = field_by_name(entry["field"])
    # G=2 keeps every engine runnable at n=16 (baseline needs 4*G*G).
    cluster = SimCluster(field, 2)
    engine = ENGINES[engine_name](cluster)
    vec = DistributedVector.from_values(
        cluster, list(entry["input"]), engine.input_layout(entry["n"]))
    got = engine.forward(vec).to_values()
    assert got == entry["forward"], (
        f"{engine.name} no longer reproduces the committed "
        f"{field.name} spectrum")


@pytest.mark.parametrize("entry", _cases())
def test_intt_inverts_golden(entry):
    field = field_by_name(entry["field"])
    assert intt(field, list(entry["forward"])) == entry["input"]


# -- big-field vectors through the multi-limb backend -------------------------

with GOLDEN_PATH.open(encoding="utf-8") as _handle:
    BIGFIELD_GOLDEN = json.load(_handle)["bigfield_vectors"]


def _bigfield_cases():
    return [pytest.param(entry, id=f"{entry['field']}-n{entry['n']}")
            for entry in BIGFIELD_GOLDEN]


def test_bigfield_golden_covers_both_zkp_fields():
    assert sorted(e["field"] for e in BIGFIELD_GOLDEN) == [
        "BLS12-381-Fr", "BN254-Fr"]


@pytest.mark.parametrize("entry", _bigfield_cases())
def test_bigfield_golden_is_self_consistent(entry):
    field = field_by_name(entry["field"])
    assert len(entry["input"]) == entry["n"]
    assert idft(field, entry["forward"]) == entry["input"]


@pytest.mark.parametrize("entry", _bigfield_cases())
@pytest.mark.parametrize("backend_name", ["python", "multilimb"], ids=str)
@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=str)
def test_bigfield_kernels_reproduce_golden(entry, kernel, backend_name):
    from repro.field import numpy_available, use_backend

    if backend_name == "multilimb" and not numpy_available():
        pytest.skip("multi-limb backend needs numpy")
    field = field_by_name(entry["field"])
    with use_backend(backend_name):
        got = KERNELS[kernel](field, list(entry["input"]))
    assert got == entry["forward"], (
        f"{kernel} under {backend_name} no longer reproduces the "
        f"committed {field.name} spectrum")


@pytest.mark.parametrize("entry", _bigfield_cases())
@pytest.mark.parametrize("backend_name", ["python", "multilimb"], ids=str)
def test_bigfield_intt_inverts_golden(entry, backend_name):
    from repro.field import numpy_available, use_backend

    if backend_name == "multilimb" and not numpy_available():
        pytest.skip("multi-limb backend needs numpy")
    field = field_by_name(entry["field"])
    with use_backend(backend_name):
        back = intt(field, list(entry["forward"]))
    assert back == entry["input"]
