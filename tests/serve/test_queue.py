"""Admission queue: bounded capacity, EDF ordering, shape coalescing."""

import pytest

from repro.errors import ServeError
from repro.serve import AdmissionQueue, ProofRequest


def _request(request_id, **overrides):
    base = dict(request_id=request_id, field_name="Goldilocks", log_size=4)
    base.update(overrides)
    return ProofRequest(**base)


def test_capacity_is_enforced():
    queue = AdmissionQueue(2)
    assert queue.offer(_request(0))
    assert queue.offer(_request(1))
    assert queue.full
    assert not queue.offer(_request(2))
    assert len(queue) == 2
    with pytest.raises(ServeError):
        AdmissionQueue(0)


def test_edf_head_wins_over_arrival_order():
    queue = AdmissionQueue(8)
    queue.offer(_request(0))  # best effort, first in
    queue.offer(_request(1, arrival_s=1.0, deadline_s=5.0))
    assert queue.peek_urgent().request_id == 1
    group = queue.take_batch(1)
    assert [r.request_id for r in group] == [1]


def test_take_batch_coalesces_only_compatible_shapes():
    queue = AdmissionQueue(8)
    queue.offer(_request(0, deadline_s=1.0))
    queue.offer(_request(1))                       # same shape
    queue.offer(_request(2, log_size=5))           # different size
    queue.offer(_request(3, direction="inverse"))  # different direction
    group = queue.take_batch(8)
    assert [r.request_id for r in group] == [0, 1]
    assert len(queue) == 2  # the incompatible ones stay queued


def test_take_batch_respects_the_bound_and_batching_flag():
    queue = AdmissionQueue(8)
    for i in range(5):
        queue.offer(_request(i))
    assert len(queue.take_batch(3)) == 3
    assert len(queue.take_batch(8, batching=False)) == 1
    assert len(queue) == 1
