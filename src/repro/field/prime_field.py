"""Prime fields GF(p) and their elements.

The NTT engines in this library operate on plain Python integers in
``[0, p)`` for speed, passing a :class:`PrimeField` around for the modulus
and root-of-unity bookkeeping.  :class:`FieldElement` is the user-facing
wrapper with operator overloading; it is a thin view over the same
integer representation.

Fields are value objects: two ``PrimeField`` instances with the same
modulus compare equal and interoperate freely.
"""

from __future__ import annotations

import functools
from typing import Iterable

from repro.errors import FieldError

__all__ = ["PrimeField", "FieldElement"]


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24, probabilistic beyond."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


class PrimeField:
    """The finite field GF(p) for an odd prime ``p``.

    Parameters
    ----------
    modulus:
        The prime modulus ``p``.
    generator:
        A generator of the full multiplicative group GF(p)*.  Optional;
        required only for operations that need primitive roots of unity
        (it is validated lazily when first used).
    name:
        Human-readable name used in reprs and benchmark reports.
    """

    __slots__ = ("modulus", "name", "_generator", "_two_adicity", "_root_cache")

    def __init__(self, modulus: int, generator: int | None = None,
                 name: str | None = None):
        if modulus < 3:
            raise FieldError(f"modulus must be an odd prime >= 3, got {modulus}")
        if not _is_probable_prime(modulus):
            raise FieldError(f"modulus {modulus} is not prime")
        self.modulus = modulus
        self.name = name or f"GF({modulus})"
        self._generator = generator % modulus if generator is not None else None
        two_adicity = 0
        odd = modulus - 1
        while odd % 2 == 0:
            odd //= 2
            two_adicity += 1
        self._two_adicity = two_adicity
        self._root_cache: dict[int, int] = {}

    # -- identity -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"PrimeField({self.name}, bits={self.modulus.bit_length()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    # -- basic scalar arithmetic (plain ints in [0, p)) ----------------------

    def add(self, a: int, b: int) -> int:
        """Return ``(a + b) mod p``."""
        s = a + b
        p = self.modulus
        return s - p if s >= p else s

    def sub(self, a: int, b: int) -> int:
        """Return ``(a - b) mod p``."""
        d = a - b
        return d + self.modulus if d < 0 else d

    def mul(self, a: int, b: int) -> int:
        """Return ``(a * b) mod p``."""
        return a * b % self.modulus

    def neg(self, a: int) -> int:
        """Return ``-a mod p``."""
        return self.modulus - a if a else 0

    def inv(self, a: int) -> int:
        """Return the multiplicative inverse of ``a`` mod p.

        Raises :class:`FieldError` for ``a == 0``.
        """
        a %= self.modulus
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        return pow(a, -1, self.modulus)

    def pow(self, a: int, e: int) -> int:
        """Return ``a**e mod p`` (negative exponents invert)."""
        return pow(a, e, self.modulus)

    def reduce(self, a: int) -> int:
        """Reduce an arbitrary integer into canonical ``[0, p)`` form."""
        return a % self.modulus

    # -- multiplicative structure --------------------------------------------

    @property
    def two_adicity(self) -> int:
        """Largest ``s`` such that ``2**s`` divides ``p - 1``.

        Radix-2 NTTs exist exactly for sizes up to ``2**two_adicity``.
        """
        return self._two_adicity

    @property
    def multiplicative_generator(self) -> int:
        """A generator of GF(p)*; found by search if not supplied."""
        if self._generator is None:
            self._generator = self._find_generator()
        return self._generator

    def _find_generator(self) -> int:
        # Only the 2-part of the group order matters for NTT roots, but we
        # search for a full generator so coset constructions are sound.
        factors = _factorize(self.modulus - 1)
        for candidate in range(2, min(self.modulus, 10_000)):
            if all(pow(candidate, (self.modulus - 1) // q, self.modulus) != 1
                   for q in factors):
                return candidate
        raise FieldError(f"no small generator found for {self.name}")

    def root_of_unity(self, order: int) -> int:
        """Return a primitive ``order``-th root of unity.

        ``order`` must be a power of two dividing ``p - 1``.
        """
        if order < 1 or order & (order - 1):
            raise FieldError(f"root order must be a power of two, got {order}")
        if order == 1:
            return 1
        log_order = order.bit_length() - 1
        if log_order > self._two_adicity:
            raise FieldError(
                f"{self.name} has two-adicity {self._two_adicity}; "
                f"no root of order 2^{log_order} exists")
        cached = self._root_cache.get(order)
        if cached is not None:
            return cached
        base = pow(self.multiplicative_generator,
                   (self.modulus - 1) >> self._two_adicity, self.modulus)
        # base has exact order 2**two_adicity; square down to the request.
        root = pow(base, 1 << (self._two_adicity - log_order), self.modulus)
        self._root_cache[order] = root
        return root

    def inv_root_of_unity(self, order: int) -> int:
        """Inverse of :meth:`root_of_unity` (for inverse transforms)."""
        return self.inv(self.root_of_unity(order))

    def root_of_unity_general(self, order: int) -> int:
        """A primitive root of *any* order dividing ``p - 1``.

        Unlike :meth:`root_of_unity` the order need not be a power of
        two; this is what Bluestein's algorithm uses to build
        arbitrary-length transforms on top of power-of-two convolutions.
        """
        if order < 1:
            raise FieldError(f"root order must be positive, got {order}")
        if (self.modulus - 1) % order:
            raise FieldError(
                f"{self.name}: no root of order {order} "
                f"(it does not divide p - 1)")
        if order == 1:
            return 1
        cached = self._root_cache.get(-order)  # negative key: general
        if cached is not None:
            return cached
        root = pow(self.multiplicative_generator,
                   (self.modulus - 1) // order, self.modulus)
        # Primitivity: the generator has full order, so root has exactly
        # `order`; assert the defining property anyway.
        for prime in _factorize(order):
            if pow(root, order // prime, self.modulus) == 1:
                raise FieldError(
                    f"internal error: non-primitive root of order {order}")
        self._root_cache[-order] = root
        return root

    # -- elements -------------------------------------------------------------

    def element(self, value: int) -> "FieldElement":
        """Wrap an integer as a :class:`FieldElement` of this field."""
        return FieldElement(self, value % self.modulus)

    def zero(self) -> "FieldElement":
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        return FieldElement(self, 1)

    def elements(self, values: Iterable[int]) -> list["FieldElement"]:
        """Wrap an iterable of integers as field elements."""
        return [self.element(v) for v in values]

    def random_element(self, rng) -> "FieldElement":
        """Draw a uniform element using ``rng`` (a ``random.Random``)."""
        return FieldElement(self, rng.randrange(self.modulus))

    def random_vector(self, n: int, rng) -> list[int]:
        """Draw ``n`` uniform raw values (plain ints, the engine format)."""
        p = self.modulus
        return [rng.randrange(p) for _ in range(n)]


@functools.lru_cache(maxsize=None)
def _factorize(n: int) -> tuple[int, ...]:
    """Prime factors of n (trial division + Pollard rho for big cofactors)."""
    factors: set[int] = set()
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47):
        while n % p == 0:
            factors.add(p)
            n //= p
    stack = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if _is_probable_prime(m):
            factors.add(m)
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return tuple(sorted(factors))


def _pollard_rho(n: int) -> int:
    """Find a nontrivial factor of composite odd n."""
    import math
    import random
    rng = random.Random(0xC0FFEE ^ n)
    while True:
        x = rng.randrange(2, n - 1)
        y, c, d = x, rng.randrange(1, n - 1), 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = math.gcd(abs(x - y), n)
        if d != n:
            return d


class FieldElement:
    """An element of a :class:`PrimeField` with operator overloading.

    Instances are immutable and hashable.  Mixed arithmetic with plain
    integers is supported (the integer is reduced into the field).
    """

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        self.field = field
        self.value = value

    # -- helpers ---------------------------------------------------------------

    def _coerce(self, other: object) -> int | None:
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise FieldError(
                    f"cannot mix elements of {self.field.name} and "
                    f"{other.field.name}")
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return None

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return FieldElement(self.field, self.field.add(self.value, v))

    __radd__ = __add__

    def __sub__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return FieldElement(self.field, self.field.sub(self.value, v))

    def __rsub__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return FieldElement(self.field, self.field.sub(v, self.value))

    def __mul__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return FieldElement(self.field, self.field.mul(self.value, v))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return FieldElement(self.field,
                            self.field.mul(self.value, self.field.inv(v)))

    def __rtruediv__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return FieldElement(self.field,
                            self.field.mul(v, self.field.inv(self.value)))

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(self.field, self.field.pow(self.value, exponent))

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, self.field.neg(self.value))

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises on zero."""
        return FieldElement(self.field, self.field.inv(self.value))

    # -- comparisons / protocol ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"{self.value}∈{self.field.name}"
