"""Distributed *batched* transforms: the two parallelization axes.

A batch of B same-size transforms can be parallelized two ways:

* **split** — every vector is distributed over all GPUs and transformed
  by an inner engine (UniNTT by default); communication per vector is
  the engine's, latency amortizes across the batch.
* **replicate** — whole vectors are assigned round-robin to GPUs; each
  transform is GPU-local, so the batch needs **zero inter-GPU
  communication** — unbeatable when B >= G and a single vector fits one
  GPU's memory.

Production provers use both: replicate for the many small witness
columns, split for the handful of huge quotient-domain transforms.
:class:`BatchedDistributedNTT` implements both against the simulator
and exposes the closed-form profiles so the batched-throughput table
(T3) rests on the same honesty contract as everything else.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PartitionError, SimulationError
from repro.hw.cost import CostBreakdown, CostModel, Phase, Step
from repro.hw.model import MachineModel
from repro.multigpu import accounting as acct
from repro.multigpu.base import DistributedNTTEngine, DistributedVector
from repro.multigpu.unintt import UniNTTEngine
from repro.ntt import radix2
from repro.ntt.twiddle import default_cache
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = ["BatchedDistributedNTT"]


class BatchedDistributedNTT:
    """Batched forward/inverse transforms over a simulated cluster."""

    def __init__(self, cluster: SimCluster, strategy: str = "replicate",
                 inner: DistributedNTTEngine | None = None,
                 tile: int = 4096):
        if strategy not in ("replicate", "split"):
            raise SimulationError(
                f"strategy must be 'replicate' or 'split', got "
                f"{strategy!r}")
        self.cluster = cluster
        self.strategy = strategy
        self.inner = inner if inner is not None else UniNTTEngine(
            cluster, tile=tile)
        self.tile = tile
        self.name = f"batched-{strategy}"

    @property
    def field(self):
        return self.cluster.field

    # -- functional ------------------------------------------------------------

    def forward(self, batch: Sequence[Sequence[int]]) -> list[list[int]]:
        """Transform every vector; returns natural-order spectra."""
        return self._run(batch, inverse=False)

    def inverse(self, batch: Sequence[Sequence[int]]) -> list[list[int]]:
        """Inverse-transform every vector (natural order in and out)."""
        return self._run(batch, inverse=True)

    def _run(self, batch: Sequence[Sequence[int]],
             inverse: bool) -> list[list[int]]:
        if not batch:
            raise PartitionError("empty batch")
        n = len(batch[0])
        for i, vec in enumerate(batch):
            if len(vec) != n:
                raise PartitionError(
                    f"batch vectors must share a size: vector {i} has "
                    f"{len(vec)}, vector 0 has {n}")
        if self.strategy == "replicate":
            return self._run_replicated(batch, n, inverse)
        return self._run_split(batch, n, inverse)

    def _run_replicated(self, batch: Sequence[Sequence[int]], n: int,
                        inverse: bool) -> list[list[int]]:
        """Round-robin whole vectors to GPUs; all transforms local."""
        g = self.cluster.gpu_count
        eb = self.cluster.element_bytes
        transform = radix2.intt if inverse else radix2.ntt
        out: list[list[int]] = []
        per_gpu_count = [0] * g
        for index, vec in enumerate(batch):
            gpu = self.cluster.gpus[index % g]
            gpu.load(list(vec))
            gpu.shard = transform(self.field, gpu.shard, default_cache)
            out.append(list(gpu.shard))
            muls = acct.local_ntt_muls(n) + (n if inverse else 0)
            gpu.charge_compute(muls,
                               acct.local_ntt_mem_bytes(n, eb, self.tile))
            per_gpu_count[index % g] += 1
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu",
            max_bytes_per_gpu=max(per_gpu_count)
            * acct.local_ntt_mem_bytes(n, eb, self.tile),
            total_bytes=len(batch)
            * acct.local_ntt_mem_bytes(n, eb, self.tile),
            field_muls=len(batch) * acct.local_ntt_muls(n),
            detail=f"{self.name}-{'intt' if inverse else 'ntt'}"))
        return out

    def _run_split(self, batch: Sequence[Sequence[int]], n: int,
                   inverse: bool) -> list[list[int]]:
        """Each vector distributed over all GPUs via the inner engine."""
        out: list[list[int]] = []
        for vec in batch:
            if inverse:
                staged = DistributedVector.from_values(
                    self.cluster, list(vec),
                    self.inner.output_layout(n))
                result = self.inner.inverse(staged)
            else:
                staged = DistributedVector.from_values(
                    self.cluster, list(vec), self.inner.input_layout(n))
                result = self.inner.forward(staged)
            out.append(result.to_values())
        return out

    # -- analytic ----------------------------------------------------------------

    def forward_profile(self, n: int, batch: int) -> list[Step]:
        """Per-GPU phases for a whole batch."""
        if batch < 1:
            raise PartitionError(f"batch must be >= 1, got {batch}")
        g = self.cluster.gpu_count
        eb = self.cluster.element_bytes
        if self.strategy == "replicate":
            per_gpu = -(-batch // g)  # ceil: the busiest GPU's share
            return [Phase(
                name="replicated-ntt",
                field_muls=per_gpu * acct.local_ntt_muls(n),
                mem_bytes=per_gpu * acct.local_ntt_mem_bytes(n, eb,
                                                             self.tile),
            )]
        steps: list[Step] = []
        for _ in range(batch):
            steps.extend(self.inner.forward_profile(n))
        return steps

    def estimate(self, machine: MachineModel, n: int,
                 batch: int) -> CostBreakdown:
        """Price a batch of forward transforms on ``machine``."""
        model = CostModel(machine, self.field)
        return model.estimate(self.forward_profile(n, batch))

    def crossover_batch(self, machine: MachineModel, n: int,
                        max_batch: int = 1 << 12) -> int | None:
        """Smallest batch size at which replicate beats split, if any.

        Below the crossover, a single huge transform is faster split
        over the machine; above it, whole-vector assignment wins.
        """
        split = BatchedDistributedNTT(self.cluster, strategy="split",
                                      inner=self.inner, tile=self.tile)
        replicate = BatchedDistributedNTT(self.cluster,
                                          strategy="replicate",
                                          tile=self.tile)
        b = 1
        while b <= max_batch:
            t_rep = replicate.estimate(machine, n, b).total_s
            t_split = split.estimate(machine, n, b).total_s
            if t_rep < t_split:
                return b
            b *= 2
        return None
