"""Tests for the declarative fault-injection plans and injector."""

import pytest

from repro.errors import (
    DeviceLostError, FaultPlanError, TransientCommError,
)
from repro.field import TEST_FIELD_97
from repro.sim import (
    FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec, SimCluster,
    parse_fault_spec,
)
from repro.sim.faults import RESOLUTION_REQUIRED

F = TEST_FIELD_97


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="gamma-ray", step=0)

    def test_negative_step_rejected(self):
        with pytest.raises(FaultPlanError, match="step"):
            FaultSpec(kind="transient-comm", step=-1)

    def test_link_degrade_factor_bounds(self):
        with pytest.raises(FaultPlanError, match="factor"):
            FaultSpec(kind="link-degrade", step=0, factor=1.5)
        with pytest.raises(FaultPlanError, match="factor"):
            FaultSpec(kind="link-degrade", step=0, factor=0.0)

    def test_straggler_factor_must_slow_down(self):
        with pytest.raises(FaultPlanError, match="factor"):
            FaultSpec(kind="straggler", step=0, factor=0.9)

    def test_transient_count_positive(self):
        with pytest.raises(FaultPlanError, match="count"):
            FaultSpec(kind="transient-comm", step=0, count=0)

    def test_corrupt_delta_nonzero(self):
        with pytest.raises(FaultPlanError, match="delta"):
            FaultSpec(kind="corrupt-shard", step=0, delta=0)

    def test_label_round_trips_through_parser(self):
        specs = [
            FaultSpec(kind="transient-comm", step=2, count=3),
            FaultSpec(kind="device-death", step=1, gpu=2),
            FaultSpec(kind="link-degrade", step=0, factor=0.25),
            FaultSpec(kind="straggler", step=4, gpu=1, factor=3.0),
        ]
        for spec in specs:
            assert parse_fault_spec(spec.label()) == spec

    def test_resolution_required_is_subset_of_kinds(self):
        assert RESOLUTION_REQUIRED <= set(FAULT_KINDS)


class TestParseFaultSpec:
    def test_basic(self):
        spec = parse_fault_spec("transient-comm@2")
        assert spec.kind == "transient-comm"
        assert spec.step == 2

    def test_keyword_arguments(self):
        spec = parse_fault_spec("corrupt-shard@1:gpu=3,delta=7")
        assert (spec.gpu, spec.delta) == (3, 7)

    def test_missing_step_rejected(self):
        with pytest.raises(FaultPlanError, match="@step"):
            parse_fault_spec("transient-comm")

    def test_non_integer_step_rejected(self):
        with pytest.raises(FaultPlanError, match="not an integer"):
            parse_fault_spec("transient-comm@soon")

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown key"):
            parse_fault_spec("straggler@0:speed=2")

    def test_malformed_pair_rejected(self):
        with pytest.raises(FaultPlanError, match="key=value"):
            parse_fault_spec("straggler@0:factor")


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan.from_specs(
            ["device-death@3:gpu=1", "link-degrade@0:factor=0.5"],
            seed=42)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="'faults'"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(FaultPlanError, match="unknown keys"):
            FaultPlan.from_json(
                '{"faults": [{"kind": "straggler", "step": 0, '
                '"factor": 2, "color": "red"}]}')

    def test_recoverable(self):
        one_death = FaultPlan.from_specs(["device-death@0:gpu=1"])
        assert one_death.recoverable(4)
        two_deaths = FaultPlan.from_specs(
            ["device-death@0:gpu=1", "device-death@1:gpu=2"])
        assert not two_deaths.recoverable(4)


def run_collective(cluster):
    """One minimal collective: a 2-way transpose all-to-all."""
    g = cluster.gpu_count
    return cluster.all_to_all([[[s * g + d] for d in range(g)]
                               for s in range(g)])


class TestFaultInjector:
    def test_modulus_validated(self):
        with pytest.raises(FaultPlanError, match="modulus"):
            FaultInjector(FaultPlan(), modulus=1)

    def test_transient_window_aborts_then_clears(self):
        plan = FaultPlan.from_specs(["transient-comm@0:count=2"])
        injector = FaultInjector(plan, F.modulus)
        cluster = SimCluster(F, 2, injector=injector)
        for _ in range(2):
            with pytest.raises(TransientCommError, match="step"):
                run_collective(cluster)
        run_collective(cluster)  # step 2: window passed
        assert injector.collective_index == 3

    def test_aborted_collective_charges_nothing(self):
        plan = FaultPlan.from_specs(["transient-comm@0"])
        cluster = SimCluster(F, 2,
                             injector=FaultInjector(plan, F.modulus))
        with pytest.raises(TransientCommError):
            run_collective(cluster)
        assert all(g.counters.bytes_sent == 0 for g in cluster.gpus)
        assert all(e.kind == "fault" for e in cluster.trace.events)

    def test_device_death_persists_until_acknowledged(self):
        plan = FaultPlan.from_specs(["device-death@0:gpu=1"])
        injector = FaultInjector(plan, F.modulus)
        cluster = SimCluster(F, 4, injector=injector)
        for _ in range(2):
            with pytest.raises(DeviceLostError, match=r"\[1\]"):
                run_collective(cluster)
        assert injector.surviving_gpus(4) == [0, 2, 3]
        injector.acknowledge_deaths()
        run_collective(cluster)
        # the fault event is recorded exactly once, not per abort
        faults = [e for e in cluster.trace.events if e.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].detail == "device-death@0:gpu=1"

    def test_corrupt_shard_hits_target_gpu_deterministically(self):
        plan = FaultPlan.from_specs(["corrupt-shard@0:gpu=1,delta=5"],
                                    seed=7)
        outputs = []
        for _ in range(2):
            injector = FaultInjector(plan, F.modulus)
            cluster = SimCluster(F, 2, injector=injector)
            outputs.append(run_collective(cluster))
        clean = run_collective(SimCluster(F, 2))
        assert outputs[0] == outputs[1]  # seeded: replays identically
        assert outputs[0] != clean
        assert outputs[0][0] == clean[0]  # GPU 0 untouched
        assert outputs[0][1] != clean[1]  # GPU 1 corrupted

    def test_degradations_accrue_penalty_without_aborting(self):
        plan = FaultPlan.from_specs(
            ["link-degrade@0:factor=0.25", "straggler@0:gpu=1,factor=3"])
        injector = FaultInjector(plan, F.modulus)
        cluster = SimCluster(F, 2, injector=injector)
        result = run_collective(cluster)
        assert result == run_collective(SimCluster(F, 2))
        eb = cluster.element_bytes
        moved = 2 * eb  # two off-device single-element messages
        # link at 1/4 rate: 3x extra; straggler at 3x: 2x extra
        assert injector.penalty_exchange_bytes == 3 * moved + 2 * moved
        assert injector.drain_penalty_bytes() == 5 * moved
        assert injector.penalty_exchange_bytes == 0


class TestServerCrash:
    def test_server_crash_is_a_registered_kind(self):
        assert "server-crash" in FAULT_KINDS
        # Its resolution is a serve-recover event, audited by the
        # dedicated tracecheck rule, not the retry/reshard rule.
        assert "server-crash" not in RESOLUTION_REQUIRED

    def test_parse_and_label(self):
        spec = parse_fault_spec("server-crash@12")
        assert spec.kind == "server-crash"
        assert spec.step == 12
        assert spec.label() == "server-crash@12"
        assert parse_fault_spec(spec.label()) == spec

    def test_crash_steps_are_sorted_and_deduped(self):
        plan = FaultPlan.from_specs([
            "server-crash@9", "server-crash@2", "server-crash@9"])
        assert plan.crash_steps() == (2, 9)

    def test_without_crashes_strips_only_crashes(self):
        plan = FaultPlan.from_specs([
            "server-crash@2", "transient-comm@0", "straggler@1:factor=2"])
        residual = plan.without_crashes()
        assert [f.kind for f in residual.faults] \
            == ["transient-comm", "straggler"]
        assert residual.seed == plan.seed
        assert plan.crash_steps() == (2,)
        assert residual.crash_steps() == ()

    def test_crash_only_plan_injects_nothing(self):
        plan = FaultPlan.from_specs(["server-crash@2"])
        assert plan.without_crashes().faults == ()


class TestFromJsonHardening:
    def test_faults_must_be_a_list(self):
        with pytest.raises(FaultPlanError, match="list"):
            FaultPlan.from_json('{"faults": "transient-comm@0"}')

    def test_entry_must_be_an_object(self):
        with pytest.raises(FaultPlanError, match="object"):
            FaultPlan.from_json('{"faults": ["transient-comm@0"]}')

    def test_non_numeric_field_rejected(self):
        with pytest.raises(FaultPlanError, match="malformed"):
            FaultPlan.from_json(
                '{"faults": [{"kind": "device-death", "step": 1,'
                ' "gpu": "x"}]}')

    def test_bad_seed_rejected(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan.from_json('{"faults": [], "seed": "entropy"}')


class TestFleetFaultKinds:
    """The fleet-targeted kinds: parsing, labels, and plan filters."""

    def test_fleet_kinds_are_a_subset_of_fault_kinds(self):
        from repro.sim.faults import FLEET_KINDS
        assert FLEET_KINDS <= set(FAULT_KINDS)
        assert FLEET_KINDS == {"replica-crash", "network-partition",
                               "heartbeat-loss"}

    @pytest.mark.parametrize("text, kind, step, replica, count", [
        ("replica-crash@3:replica=1", "replica-crash", 3, 1, 1),
        ("network-partition@1:replica=2,count=10",
         "network-partition", 1, 2, 10),
        ("heartbeat-loss@0:replica=0,count=2", "heartbeat-loss", 0, 0, 2),
    ])
    def test_parse_and_label_round_trip(self, text, kind, step, replica,
                                        count):
        spec = parse_fault_spec(text)
        assert (spec.kind, spec.step, spec.replica, spec.count) \
            == (kind, step, replica, count)
        # label() must parse back to the identical spec.
        assert parse_fault_spec(spec.label()) == spec

    def test_negative_replica_rejected(self):
        with pytest.raises(FaultPlanError, match="replica"):
            FaultSpec(kind="replica-crash", step=0, replica=-1)

    @pytest.mark.parametrize("kind", ["network-partition",
                                      "heartbeat-loss"])
    def test_duration_count_must_be_positive(self, kind):
        with pytest.raises(FaultPlanError, match="count"):
            FaultSpec(kind=kind, step=0, count=0)

    def test_plan_filters_split_fleet_from_fabric(self):
        plan = FaultPlan.from_specs([
            "transient-comm@0",
            "replica-crash@1:replica=0",
            "server-crash@2",
            "network-partition@3:replica=1,count=4",
        ], seed=9)
        assert [f.kind for f in plan.fleet_faults()] \
            == ["replica-crash", "network-partition"]
        fabric = plan.without_fleet_faults()
        assert [f.kind for f in fabric.faults] \
            == ["transient-comm", "server-crash"]
        assert fabric.seed == plan.seed
        # without_crashes drops server-crash AND the fleet kinds: what
        # remains is exactly what the fabric injector replays.
        assert [f.kind for f in plan.without_crashes().faults] \
            == ["transient-comm"]

    def test_fleet_plan_json_round_trips(self):
        plan = FaultPlan.from_specs(
            ["replica-crash@3:replica=1",
             "heartbeat-loss@1:replica=0,count=30"], seed=7)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert [f.label() for f in restored.fleet_faults()] \
            == ["replica-crash@3:replica=1",
                "heartbeat-loss@1:replica=0,count=30"]
