"""Functional multi-GPU simulator: devices, collectives, traces, faults."""

from repro.sim.cluster import SimCluster
from repro.sim.device import GpuCounters, SimGPU
from repro.sim.faults import (
    FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec, parse_fault_spec,
)
from repro.sim.report import render_events, render_summary, render_trace
from repro.sim.trace import Trace, TraceEvent
from repro.sim.uniform import (
    HIERARCHY_SCALES, LevelRun, simulate_at_level, uniformity_sweep,
)

__all__ = ["SimCluster", "SimGPU", "GpuCounters", "Trace", "TraceEvent",
           "LevelRun", "HIERARCHY_SCALES", "simulate_at_level",
           "uniformity_sweep",
           "FAULT_KINDS", "FaultSpec", "FaultPlan", "FaultInjector",
           "parse_fault_spec",
           "render_events", "render_summary", "render_trace"]
