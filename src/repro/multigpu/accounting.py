"""Shared resource-accounting formulas.

Both the functional simulator (which *charges* counters while executing)
and the closed-form phase profiles (which the cost model prices at any
size) call these functions, so the two can never drift apart — the test
suite asserts simulator counters == profile charges.

All quantities are per GPU for one shard of ``m`` elements of
``element_bytes`` each.
"""

from __future__ import annotations

from repro.errors import HardwareModelError

__all__ = [
    "log2_int", "local_ntt_muls", "local_ntt_mem_bytes",
    "small_batch_ntt_muls", "small_batch_mem_bytes", "twiddle_muls",
    "pointwise_mem_bytes", "alltoall_bytes_per_gpu", "tile_passes",
]


def log2_int(n: int) -> int:
    """Exact log2 of a power of two."""
    if n < 1 or n & (n - 1):
        raise HardwareModelError(f"{n} is not a power of two")
    return n.bit_length() - 1


def tile_passes(n: int, tile: int) -> int:
    """Global-memory round trips for a tiled NTT of size n.

    A kernel that stages ``tile`` elements in fast memory retires
    ``log2(tile)`` butterfly stages per pass, so a size-n transform needs
    ``ceil(log2 n / log2 tile)`` passes.  ``tile=2`` degenerates to the
    naive one-pass-per-stage kernel.
    """
    if tile < 2:
        raise HardwareModelError(f"tile must be >= 2, got {tile}")
    ln = log2_int(n)
    if ln == 0:
        return 0
    lt = max(1, log2_int(1 << (tile.bit_length() - 1)))
    return -(-ln // lt)  # ceil division


def local_ntt_muls(m: int) -> int:
    """Twiddle multiplications of a radix-2 transform of size m."""
    if m <= 1:
        return 0
    return (m // 2) * log2_int(m)


def local_ntt_mem_bytes(m: int, element_bytes: int, tile: int) -> int:
    """HBM bytes of a tiled local transform: read+write per pass."""
    return 2 * m * element_bytes * tile_passes(m, tile)


def small_batch_ntt_muls(count: int, size: int) -> int:
    """Multiplications for ``count`` independent transforms of ``size``."""
    return count * local_ntt_muls(size)


def small_batch_mem_bytes(count: int, size: int, element_bytes: int) -> int:
    """One fused kernel sweeping all small transforms: one pass."""
    return 2 * count * size * element_bytes


def twiddle_muls(m: int) -> int:
    """A twiddle scaling touches every element once."""
    return m


def pointwise_mem_bytes(m: int, element_bytes: int) -> int:
    """A standalone element-wise pass: read + write the shard."""
    return 2 * m * element_bytes


def alltoall_bytes_per_gpu(m: int, gpu_count: int, element_bytes: int) -> int:
    """Bytes one GPU sends in a balanced all-to-all of its m-element shard."""
    if m % gpu_count:
        raise HardwareModelError(
            f"shard of {m} does not split over {gpu_count} GPUs")
    return (m // gpu_count) * (gpu_count - 1) * element_bytes
