"""Admission queue: bounded capacity, EDF ordering, shape coalescing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.serve import AdmissionQueue, ProofRequest


def _request(request_id, **overrides):
    base = dict(request_id=request_id, field_name="Goldilocks", log_size=4)
    base.update(overrides)
    return ProofRequest(**base)


def test_capacity_is_enforced():
    queue = AdmissionQueue(2)
    assert queue.offer(_request(0))
    assert queue.offer(_request(1))
    assert queue.full
    assert not queue.offer(_request(2))
    assert len(queue) == 2
    with pytest.raises(ServeError):
        AdmissionQueue(0)


def test_edf_head_wins_over_arrival_order():
    queue = AdmissionQueue(8)
    queue.offer(_request(0))  # best effort, first in
    queue.offer(_request(1, arrival_s=1.0, deadline_s=5.0))
    assert queue.peek_urgent().request_id == 1
    group = queue.take_batch(1)
    assert [r.request_id for r in group] == [1]


def test_take_batch_coalesces_only_compatible_shapes():
    queue = AdmissionQueue(8)
    queue.offer(_request(0, deadline_s=1.0))
    queue.offer(_request(1))                       # same shape
    queue.offer(_request(2, log_size=5))           # different size
    queue.offer(_request(3, direction="inverse"))  # different direction
    group = queue.take_batch(8)
    assert [r.request_id for r in group] == [0, 1]
    assert len(queue) == 2  # the incompatible ones stay queued


def test_take_batch_respects_the_bound_and_batching_flag():
    queue = AdmissionQueue(8)
    for i in range(5):
        queue.offer(_request(i))
    assert len(queue.take_batch(3)) == 3
    assert len(queue.take_batch(8, batching=False)) == 1
    assert len(queue) == 1


# --- EDF urgency as a total order (property-based) -------------------
#
# The whole serving stack leans on ``ProofRequest.urgency_key`` being a
# strict total order: the queue, WFQ tenant extraction, load shedding,
# and failover re-admission all sort by it and assume ties cannot
# exist.  The unique ``request_id`` as the final key component is what
# guarantees that; hypothesis hunts for request populations where two
# distinct requests compare equal or where draining disagrees with a
# one-shot sort.

_urgencies = st.builds(
    dict,
    priority=st.integers(min_value=-3, max_value=3),
    arrival_s=st.floats(min_value=0.0, max_value=10.0,
                        allow_nan=False, width=32),
    # None = best effort; otherwise a non-negative slack past arrival
    # (a deadline before arrival is rejected at construction).
    slack_s=st.one_of(st.none(),
                      st.floats(min_value=0.0, max_value=10.0,
                                allow_nan=False, width=32)),
)


@st.composite
def _request_lists(draw):
    urgencies = draw(st.lists(_urgencies, min_size=1, max_size=12))
    requests = []
    for request_id, u in enumerate(urgencies):
        deadline = None if u["slack_s"] is None \
            else u["arrival_s"] + u["slack_s"]
        requests.append(_request(
            request_id, priority=u["priority"], arrival_s=u["arrival_s"],
            deadline_s=deadline))
    return requests


@given(_request_lists())
def test_urgency_key_is_a_strict_total_order(requests):
    keys = [r.urgency_key() for r in requests]
    assert len(set(keys)) == len(keys), (
        "distinct requests compared equal under urgency_key")
    # Best-effort requests (no deadline) sort after every dated one.
    dated = [k for r, k in zip(requests, keys) if r.deadline_s is not None]
    if dated:
        for r, k in zip(requests, keys):
            if r.deadline_s is None:
                assert k > max(dated)


@given(_request_lists())
def test_draining_one_by_one_agrees_with_a_total_sort(requests):
    queue = AdmissionQueue(len(requests))
    for request in requests:
        assert queue.offer(request)
    drained = []
    while len(queue):
        drained.extend(queue.take_batch(1, batching=False))
    expected = sorted(requests, key=ProofRequest.urgency_key)
    assert [r.request_id for r in drained] \
        == [r.request_id for r in expected]


@given(_request_lists())
def test_shedding_never_touches_the_edf_head(requests):
    queue = AdmissionQueue(len(requests))
    for request in requests:
        queue.offer(request)
    head = queue.peek_urgent()
    victims = queue.drop_worst(len(requests) - 1)
    assert head not in victims
    assert queue.peek_urgent() == head
