"""F25: fleet goodput vs replicas under replica kills.

Serves the head of the million-request diurnal/bursty/multi-tenant
stream through fleets of 1..8 journaled replicas, clean and with one
replica crashed mid-run.  The persisted report is the acceptance
artifact for fleet-scale serving: every served row must be bit-exact
with a clean trace (failover may not trade correctness for goodput),
goodput must scale with replica count, and — the headline contrast —
a 4-replica fleet *under a kill* must sustain strictly higher goodput
than the degraded single server of F22.
"""


from repro.bench import fleet_scaling

#: F22's "faults sustained, degraded" goodput (benchmarks/results/
#: F22_durability.txt): the best a single server managed while the
#: fabric misbehaved.  The fleet must beat it while losing a whole
#: replica.
F22_DEGRADED_GOODPUT_RPS = 5405.0


def test_f25_fleet_scaling(benchmark, emit):
    table = benchmark.pedantic(fleet_scaling, rounds=1, iterations=1)
    emit("F25_fleet",
         "F25: fleet goodput vs replicas under replica kills", table)
    headers, rows = table
    replicas_col = headers.index("replicas")
    scenario_col = headers.index("scenario")
    goodput_col = headers.index("goodput req/s")
    failover_col = headers.index("failovers")
    outcome_col = headers.index("outcome")

    served = [row for row in rows
              if row[outcome_col] not in ("streamed, not served",
                                          "single point of failure")]
    assert served, "no served rows in the F25 table"
    for row in served:
        assert row[outcome_col] == "bit-exact, clean trace", (
            f"replicas={row[replicas_col]} {row[scenario_col]}: "
            f"{row[outcome_col]}")

    goodput = {(row[replicas_col], row[scenario_col]):
               float(row[goodput_col]) for row in served}

    # The scaling curve: more replicas, more clean goodput.
    assert goodput[(8, "clean")] > goodput[(4, "clean")] \
        > goodput[(2, "clean")] > goodput[(1, "clean")], (
        f"clean goodput does not scale with replicas: {goodput}")

    # Every kill run actually exercised the detector and failover.
    for row in served:
        if row[scenario_col] == "one kill":
            assert int(row[failover_col]) >= 1, (
                f"replicas={row[replicas_col]}: the kill never "
                "triggered a failover")

    # The acceptance contrast against F22's degraded single server.
    assert goodput[(4, "one kill")] > F22_DEGRADED_GOODPUT_RPS, (
        f"4-replica fleet under one kill "
        f"({goodput[(4, 'one kill')]:.0f} req/s) must beat F22's "
        f"degraded single server ({F22_DEGRADED_GOODPUT_RPS} req/s)")
