"""Proof-system workload profiles.

Different SNARKs exercise the NTT/MSM substrate with different operation
mixes.  A :class:`ProofSystemProfile` captures the per-proof recipe as
counts relative to the constraint domain size ``n``, letting the
end-to-end model price any system on any machine:

* **Groth16** — the QAP quotient pipeline of :mod:`repro.zkp.qap`:
  3 INTTs + 3 coset NTTs + 1 coset INTT (all size n) and 4 G1 MSMs.
* **PLONK** (vanilla, 3 wires) — wire and grand-product interpolations
  on n, quotient work on the 4n extended coset, and 9 commitments
  (wires, z, three quotient chunks, two opening proofs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProverError

__all__ = ["TransformOp", "ProofSystemProfile", "GROTH16_PROFILE",
           "PLONK_PROFILE", "ALL_PROFILES", "profile_by_name"]


@dataclass(frozen=True)
class TransformOp:
    """One NTT-type operation in a proof recipe.

    ``size_factor`` scales the transform relative to the constraint
    domain (PLONK's quotient domain is 4n); ``coset`` marks the extra
    shift scaling an engine without twiddle fusion pays separately.
    """

    inverse: bool
    coset: bool
    size_factor: int = 1

    def __post_init__(self) -> None:
        if self.size_factor < 1 or self.size_factor & (self.size_factor - 1):
            raise ProverError(
                f"size_factor must be a power of two, got "
                f"{self.size_factor}")


@dataclass(frozen=True)
class ProofSystemProfile:
    """A proof system's per-proof NTT and MSM recipe."""

    name: str
    transforms: tuple[TransformOp, ...]
    msm_size_factors: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.transforms or not self.msm_size_factors:
            raise ProverError(f"profile {self.name!r} must have at least "
                              f"one transform and one MSM")

    @property
    def transform_count(self) -> int:
        return len(self.transforms)

    @property
    def msm_count(self) -> int:
        return len(self.msm_size_factors)

    def transform_sizes(self, domain_size: int) -> list[int]:
        """Concrete transform sizes for a constraint domain of n."""
        return [op.size_factor * domain_size for op in self.transforms]

    def msm_sizes(self, domain_size: int) -> list[int]:
        """Concrete MSM sizes for a constraint domain of n."""
        return [factor * domain_size for factor in self.msm_size_factors]


#: Groth16: the pipeline of :meth:`repro.zkp.qap.QAP.witness_polynomials`.
GROTH16_PROFILE = ProofSystemProfile(
    name="groth16",
    transforms=(
        TransformOp(inverse=True, coset=False),    # A rows -> coeffs
        TransformOp(inverse=True, coset=False),    # B rows -> coeffs
        TransformOp(inverse=True, coset=False),    # C rows -> coeffs
        TransformOp(inverse=False, coset=True),    # A onto coset
        TransformOp(inverse=False, coset=True),    # B onto coset
        TransformOp(inverse=False, coset=True),    # C onto coset
        TransformOp(inverse=True, coset=True),     # H back to coeffs
    ),
    msm_size_factors=(1, 1, 1, 1),                  # [A], [B], [C], [H]
)

#: Vanilla 3-wire PLONK with a 4n quotient domain.
PLONK_PROFILE = ProofSystemProfile(
    name="plonk",
    transforms=(
        TransformOp(inverse=True, coset=False),              # wire a
        TransformOp(inverse=True, coset=False),              # wire b
        TransformOp(inverse=True, coset=False),              # wire c
        TransformOp(inverse=True, coset=False),              # grand prod z
        TransformOp(inverse=False, coset=True, size_factor=4),  # a on 4n
        TransformOp(inverse=False, coset=True, size_factor=4),  # b on 4n
        TransformOp(inverse=False, coset=True, size_factor=4),  # c on 4n
        TransformOp(inverse=False, coset=True, size_factor=4),  # z on 4n
        TransformOp(inverse=True, coset=True, size_factor=4),   # t back
    ),
    # wires a, b, c; z; t_lo, t_mid, t_hi; opening proofs W_z, W_zw.
    msm_size_factors=(1, 1, 1, 1, 1, 1, 1, 1, 1),
)

ALL_PROFILES = (GROTH16_PROFILE, PLONK_PROFILE)


def profile_by_name(name: str) -> ProofSystemProfile:
    """Look up a proof-system profile by name."""
    for profile in ALL_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"no profile named {name!r}; "
                   f"known: {[p.name for p in ALL_PROFILES]}")
