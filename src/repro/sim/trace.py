"""Execution traces for the functional simulator.

Every collective and every charged local operation appends a
:class:`TraceEvent`; the benchmark harness aggregates traces into the
communication-breakdown figures, and the test suite asserts that traced
byte counts equal the closed-form phase profiles the cost model prices.

The event vocabulary is closed: every ``TraceEvent.kind`` must come from
the :data:`EVENT_KINDS` registry, which also records whether a kind is a
*collective* (an inter-device synchronization point).  The repo lint
(``repro analyze lint``) enforces the registry statically at every
record site, and the trace race detector
(:mod:`repro.analysis.tracecheck`) consumes the registry's semantics to
decide which events may touch remote shards.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.runtime.loop import SharedCounter

__all__ = ["TraceEvent", "Trace", "KindSpec", "EVENT_KINDS",
           "collective_kinds"]


@dataclass(frozen=True)
class KindSpec:
    """Declared semantics of one event kind.

    Attributes
    ----------
    collective:
        True when the event is an inter-device exchange that acts as a
        synchronization point (its participants may read each other's
        shards *inside* the primitive).  Non-collective events must not
        read remote shards at all — the trace race detector flags any
        that do.
    description:
        One-line human description for ``repro info`` and the docs.
    """

    collective: bool
    description: str


#: The closed registry of event kinds.  Add new kinds here (with their
#: synchronization semantics) before recording them; the repo lint
#: rejects ``TraceEvent(kind=...)`` literals that are not registered.
EVENT_KINDS: dict[str, KindSpec] = {
    "all-to-all": KindSpec(
        collective=True,
        description="personalized all-to-all (transpose collective)"),
    "pairwise": KindSpec(
        collective=True,
        description="disjoint-pair exchange (one butterfly stage)"),
    "gather": KindSpec(
        collective=True,
        description="collect every shard on one root GPU"),
    "scatter": KindSpec(
        collective=True,
        description="distribute shards from one root GPU"),
    "local-compute": KindSpec(
        collective=False,
        description="charged local kernel (muls + HBM traffic)"),
    "memory-pass": KindSpec(
        collective=False,
        description="standalone global-memory sweep"),
    "pointwise": KindSpec(
        collective=False,
        description="element-wise spectral operation"),
    "host-staging": KindSpec(
        collective=False,
        description="host<->device staging traffic (out-of-core)"),
    "fault": KindSpec(
        collective=False,
        description="an injected fault fired (see repro.sim.faults)"),
    "retry": KindSpec(
        collective=False,
        description="resilient layer restored a checkpoint and re-ran"),
    "checkpoint": KindSpec(
        collective=False,
        description="resilient layer snapshotted the distributed vector"),
    "reshard": KindSpec(
        collective=True,
        description="redistribution onto surviving GPUs after a death"),
    "verify": KindSpec(
        collective=True,
        description="algebraic shard check (random-linear probe)"),
    "serve-accept": KindSpec(
        collective=False,
        description="request admitted to the serving queue"),
    "serve-reject": KindSpec(
        collective=False,
        description="request turned away by admission control"),
    "serve-dispatch": KindSpec(
        collective=False,
        description="cross-request batch handed to an engine"),
    "serve-complete": KindSpec(
        collective=False,
        description="dispatched batch finished; requests retired"),
    "serve-cache": KindSpec(
        collective=False,
        description="plan/twiddle cache consult (hit or miss)"),
    "serve-journal": KindSpec(
        collective=False,
        description="write-ahead journal record appended (seq=N)"),
    "serve-snapshot": KindSpec(
        collective=False,
        description="server checkpointed queue/cache/ledger state"),
    "serve-recover": KindSpec(
        collective=False,
        description="recovery manager replayed the journal tail"),
    "serve-breaker": KindSpec(
        collective=False,
        description="circuit breaker state transition for one engine"),
    "serve-shed": KindSpec(
        collective=False,
        description="load shedding dropped a queued request (priced)"),
    "serve-route": KindSpec(
        collective=False,
        description="fleet router placed a request on a replica"),
    "serve-heartbeat": KindSpec(
        collective=False,
        description="failure-detector transition (suspect/recovered)"),
    "serve-failover": KindSpec(
        collective=False,
        description="fleet fenced a replica and replayed its journal"),
    "serve-steal": KindSpec(
        collective=False,
        description="idle replica stole queued work from a loaded one"),
}


def collective_kinds() -> frozenset[str]:
    """The registered kinds that synchronize across devices."""
    return frozenset(k for k, spec in EVENT_KINDS.items() if spec.collective)


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    Attributes
    ----------
    kind:
        Event family, drawn from :data:`EVENT_KINDS`.
    level:
        Hierarchy level whose fabric carried it ("multi-gpu" for
        collectives, "gpu" for HBM passes).
    max_bytes_per_gpu:
        Largest number of bytes any single GPU sent (the critical path
        of a balanced collective).
    total_bytes:
        Sum of bytes moved by all GPUs.
    field_muls:
        Modular multiplications charged (local-compute events).
    detail:
        Free-form annotation for reports.
    step:
        Logical timestamp.  :meth:`Trace.record` stamps each event with
        the next sequence number when left at the default ``-1``; two
        events deliberately recorded with the *same* step are declared
        concurrent, which is what the race detector checks write sets
        against.
    gpu:
        Device the event is scoped to, or ``-1`` for "all devices"
        (the common case: every GPU runs the same kernel / joins the
        same collective).
    reads:
        Remote devices whose shards this event read.  Collectives read
        inside the primitive and leave this empty; a *non-collective*
        event with a non-empty ``reads`` is an unsynchronized
        cross-device access and is flagged by the race detector.
    """

    kind: str
    level: str
    max_bytes_per_gpu: int = 0
    total_bytes: int = 0
    field_muls: int = 0
    detail: str = ""
    step: int = -1
    gpu: int = -1
    reads: tuple[int, ...] = ()


class Trace:
    """An append-only event log with aggregation helpers.

    The logical step axis is drawn from a
    :class:`~repro.runtime.loop.SharedCounter` — by default a private
    one, so steps are simply the event sequence numbers.  Passing a
    shared counter lets several writers (e.g. the fleet's replicas,
    which all append to one trace) draw from a single step axis.
    """

    def __init__(self, counter: SharedCounter | None = None) -> None:
        self.events: list[TraceEvent] = []
        self._steps = counter if counter is not None else SharedCounter()

    def record(self, event: TraceEvent) -> None:
        """Append an event, stamping its logical step when unset.

        The default stamp is the next step-counter value, so every
        recorded event gets a distinct step (the simulator executes
        sequentially).  Callers modeling genuinely concurrent work can
        pre-set ``step`` to declare two events simultaneous.
        """
        step = self._steps.next()
        if event.step < 0:
            event = replace(event, step=step)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        """Drop every event (step numbering restarts from zero)."""
        self.events.clear()
        self._steps = SharedCounter()

    # -- aggregation -----------------------------------------------------------

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def bytes_by_level(self) -> dict[str, int]:
        """Total bytes moved, grouped by hierarchy level (sorted keys)."""
        totals: dict[str, int] = {}
        for e in self.events:
            if e.total_bytes:
                totals[e.level] = totals.get(e.level, 0) + e.total_bytes
        return dict(sorted(totals.items()))

    def critical_bytes_by_level(self) -> dict[str, int]:
        """Per-GPU critical-path bytes, grouped by level (sorted keys)."""
        totals: dict[str, int] = {}
        for e in self.events:
            if e.max_bytes_per_gpu:
                totals[e.level] = (totals.get(e.level, 0)
                                   + e.max_bytes_per_gpu)
        return dict(sorted(totals.items()))

    def collective_count(self) -> int:
        """Number of inter-GPU collectives (the latency-bound metric)."""
        return sum(1 for e in self.events
                   if e.level == "multi-gpu" and e.total_bytes > 0)

    def total_field_muls(self) -> int:
        return sum(e.field_muls for e in self.events)

    def summary(self) -> dict[str, object]:
        """Compact dictionary used by example scripts and benches.

        Keys (and the keys of the nested by-level dictionaries) are
        sorted so that serialized output — ``--json`` reports, golden
        test fixtures — is byte-stable across runs.
        """
        return {
            "bytes_by_level": self.bytes_by_level(),
            "collectives": self.collective_count(),
            "critical_bytes_by_level": self.critical_bytes_by_level(),
            "events": len(self.events),
            "field_muls": self.total_field_muls(),
        }
