"""Virtual clock invariants: monotonic, exact, no wall time."""

import pytest

from repro.errors import ServeError
from repro.serve import VirtualClock


def test_advances_exactly():
    clock = VirtualClock()
    assert clock.now_s == 0.0
    clock.advance_by(1.5)
    clock.advance_to(4.0)
    assert clock.now_s == 4.0


def test_never_rewinds():
    clock = VirtualClock(start_s=2.0)
    with pytest.raises(ServeError):
        clock.advance_to(1.0)
    with pytest.raises(ServeError):
        clock.advance_by(-0.1)
    assert clock.now_s == 2.0


def test_advance_to_now_is_a_noop():
    clock = VirtualClock(start_s=3.0)
    clock.advance_to(3.0)
    clock.advance_by(0.0)
    assert clock.now_s == 3.0
