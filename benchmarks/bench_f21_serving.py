"""F21: serving throughput versus offered load.

Offers bursts of concurrent transform requests to the proof-serving
scheduler twice — once strictly one-at-a-time with no cross-request
reuse, once with cross-request batching and the plan/twiddle caches on
— and records the throughput of each arm.  The persisted report is the
acceptance artifact for the serving subsystem: every run must stay
bit-exact against the reference transform, and batching must win at
least 1.5x at an offered load of four concurrent requests and above.
"""


from repro.bench import serving_throughput


def test_f21_serving_throughput(benchmark, emit):
    table = benchmark.pedantic(serving_throughput, rounds=1, iterations=1)
    emit("F21_serving",
         "F21: serving throughput vs offered load", table)
    headers, rows = table
    outcome_col = headers.index("outcome")
    speedup_col = headers.index("speedup")
    load_col = headers.index("offered load")
    assert all(row[outcome_col] == "bit-exact" for row in rows), (
        "a serving run diverged from the reference transform")
    for row in rows:
        speedup = float(str(row[speedup_col]).rstrip("x"))
        if int(row[load_col]) >= 4:
            assert speedup >= 1.5, (
                f"batching won only {speedup}x at offered load "
                f"{row[load_col]}")
