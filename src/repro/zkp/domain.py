"""Evaluation domains: multiplicative subgroups and their cosets.

A domain is the size-n subgroup H = <w> of GF(p)* that a proof system
interpolates over.  The vanishing polynomial of H is ``Z(x) = x^n - 1``;
on a coset ``g*H`` it takes the constant value ``g^n - 1``, which is the
identity the quotient computation in :mod:`repro.zkp.qap` exploits.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt import coset as coset_ntt_mod
from repro.ntt import radix2
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["EvaluationDomain"]


class EvaluationDomain:
    """The size-n multiplicative subgroup of a prime field."""

    def __init__(self, field: PrimeField, size: int,
                 cache: TwiddleCache | None = None):
        if size < 1 or size & (size - 1):
            raise NTTError(f"domain size must be a power of two, got {size}")
        self.field = field
        self.size = size
        self.cache = cache or default_cache
        self.generator = field.root_of_unity(size)
        self.size_inv = field.inv(size % field.modulus)

    def __repr__(self) -> str:
        return f"EvaluationDomain({self.field.name}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, EvaluationDomain)
                and other.field == self.field and other.size == self.size)

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.size))

    # -- points ----------------------------------------------------------------

    def element(self, index: int) -> int:
        """The domain point ``w^index``."""
        return self.field.pow(self.generator, index % self.size)

    def elements(self) -> list[int]:
        """All n domain points in index order."""
        return self.cache.powers(self.field, self.generator, self.size)

    def coset_elements(self, shift: int) -> list[int]:
        """All points of the coset ``shift * H``."""
        p = self.field.modulus
        return [shift * e % p for e in self.elements()]

    # -- vanishing polynomial ------------------------------------------------------

    def vanishing_eval(self, point: int) -> int:
        """``Z(point) = point^n - 1``."""
        return (self.field.pow(point, self.size) - 1) % self.field.modulus

    def vanishing_on_coset(self, shift: int) -> int:
        """The constant value of Z on the coset ``shift * H``."""
        value = self.vanishing_eval(shift)
        if value == 0:
            raise NTTError(
                f"coset shift {shift} lies in the domain; Z vanishes")
        return value

    # -- transforms ----------------------------------------------------------------

    def ntt(self, coefficients: Sequence[int]) -> list[int]:
        """Coefficients -> evaluations on H."""
        self._check_len(coefficients)
        return radix2.ntt(self.field, coefficients, self.cache)

    def intt(self, evaluations: Sequence[int]) -> list[int]:
        """Evaluations on H -> coefficients."""
        self._check_len(evaluations)
        return radix2.intt(self.field, evaluations, self.cache)

    def coset_ntt(self, coefficients: Sequence[int], shift: int) -> list[int]:
        """Coefficients -> evaluations on ``shift * H``."""
        self._check_len(coefficients)
        return coset_ntt_mod.coset_ntt(self.field, coefficients, shift,
                                       self.cache)

    def coset_intt(self, evaluations: Sequence[int], shift: int) -> list[int]:
        """Evaluations on ``shift * H`` -> coefficients."""
        self._check_len(evaluations)
        return coset_ntt_mod.coset_intt(self.field, evaluations, shift,
                                        self.cache)

    def default_coset_shift(self) -> int:
        """A canonical shift outside H: the field's generator."""
        return self.field.multiplicative_generator

    def _check_len(self, values: Sequence[int]) -> None:
        if len(values) != self.size:
            raise NTTError(
                f"domain has size {self.size}, got {len(values)} values")

    # -- Lagrange ---------------------------------------------------------------------

    def lagrange_coefficients(self, point: int) -> list[int]:
        """Evaluations L_i(point) of all Lagrange basis polynomials.

        Uses the barycentric identity
        ``L_i(x) = (x^n - 1) * w^i / (n * (x - w^i))``; O(n) after one
        batch inversion.  ``point`` must lie outside the domain.
        """
        from repro.field.vector import vec_inv

        p = self.field.modulus
        z = self.vanishing_eval(point)
        if z == 0:
            raise NTTError("point lies in the domain; use a unit vector")
        points = self.elements()
        denominators = [(point - e) % p for e in points]
        inv_dens = vec_inv(self.field, denominators)
        scale = z * self.size_inv % p
        return [scale * e % p * inv_d % p
                for e, inv_d in zip(points, inv_dens)]
