"""Hierarchical schedule synthesis: staging is conservative and gated."""

import pytest

from repro.analysis.passes import verify_rewrite
from repro.analysis.plancheck import check_cost, verify_schedule
from repro.analysis.synth import (
    enumerate_candidates, route_via, split_exchange,
    synthesize_hierarchical,
)
from repro.errors import SchedulePassError
from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.hw import DGX_A100, FOUR_NODE_DGX_A100, machine_by_name
from repro.multigpu.schedule import (
    ExchangeOp, build_unintt_schedule,
)

EB = 8


def flat_exchange(n=1024, gpus=8):
    schedule = build_unintt_schedule(n, gpus, EB)
    return next(op for op in schedule.ops
                if isinstance(op, ExchangeOp))


class TestRouteVia:
    def test_same_node_is_direct(self):
        assert route_via(0, 3, 4) == 3
        assert route_via(5, 7, 4) == 7

    def test_cross_node_is_rail_aligned(self):
        # src 1 (node 0) -> dst 6 (node 1, rail 2): scratch is GPU 2,
        # node 0's GPU on rail 2.
        assert route_via(1, 6, 4) == 2
        assert route_via(6, 1, 4) == 5

    def test_scratch_stays_in_source_node(self):
        for src in range(8):
            for dst in range(8):
                via = route_via(src, dst, 4)
                assert via // 4 == src // 4
                if src // 4 != dst // 4:
                    assert via % 4 == dst % 4


class TestSplitExchange:
    def test_bytes_conserved_per_destination(self):
        op = flat_exchange()
        stage, rail = split_exchange(op, 8, 4)
        # Every flat message crosses the stage collective exactly once
        # (delivered directly or forwarded to its scratch GPU), except
        # those whose source already sits on the destination's rail —
        # staying put is free.
        self_staged = sum(t.nbytes for t in op.transfers
                          if route_via(t.src, t.dst, 4) == t.src)
        assert stage.total_bytes() == op.total_bytes() - self_staged
        # ... and exactly the flat op's inter-node bytes ride the rail,
        # landing on the right final destination.
        for dst in range(8):
            inter = sum(t.nbytes for t in op.transfers
                        if t.dst == dst and t.src // 4 != dst // 4)
            railed = sum(t.nbytes for t in rail.transfers
                         if t.dst == dst)
            assert railed == inter
        assert rail.total_bytes() == sum(
            t.nbytes for t in op.transfers if t.src // 4 != t.dst // 4)

    def test_stage_is_intra_node_only(self):
        stage, _ = split_exchange(flat_exchange(), 8, 4)
        assert stage.level == "multi-gpu"
        assert all(t.src // 4 == t.dst // 4 for t in stage.transfers)

    def test_rail_is_inter_node_and_rail_aligned(self):
        _, rail = split_exchange(flat_exchange(), 8, 4)
        assert rail.level == "multi-node"
        assert rail.transfers
        for t in rail.transfers:
            assert t.src // 4 != t.dst // 4
            assert t.src % 4 == t.dst % 4

    def test_tags_chain_through_staged_intermediate(self):
        op = flat_exchange()
        stage, rail = split_exchange(op, 8, 4)
        assert stage.consumes == op.consumes
        assert stage.produces == rail.consumes
        assert rail.produces == op.produces


class TestSynthesizeHierarchical:
    def test_product_is_verifier_clean_on_the_cluster(self):
        n = 1 << 12
        schedule = build_unintt_schedule(n, 32, EB)
        hier, _ = synthesize_hierarchical(schedule, 8)
        assert verify_schedule(hier, machine=FOUR_NODE_DGX_A100) == []

    def test_delta_is_the_actual_difference(self):
        schedule = build_unintt_schedule(1 << 12, 8, EB)
        hier, delta = synthesize_hierarchical(schedule, 4)
        base_bytes = schedule.bytes_by_level()
        for level, nbytes in delta.bytes_by_level:
            assert hier.bytes_by_level().get(level, 0) \
                == base_bytes.get(level, 0) + nbytes
        assert delta.field_muls == 0
        assert hier.total_field_muls() == schedule.total_field_muls()

    def test_gate_accepts_product_with_delta(self):
        schedule = build_unintt_schedule(1 << 12, 32, EB)
        hier, delta = synthesize_hierarchical(schedule, 8)
        assert verify_rewrite(schedule, hier,
                              machine=FOUR_NODE_DGX_A100,
                              field=GOLDILOCKS, delta=delta) == []

    def test_gate_rejects_product_without_delta(self):
        schedule = build_unintt_schedule(1 << 12, 8, EB)
        hier, _ = synthesize_hierarchical(schedule, 4)
        findings = verify_rewrite(schedule, hier)
        assert any(f.check == "plan.rewrite-differs" for f in findings)

    def test_check_cost_validates_declared_delta(self):
        from repro.hw.cost import field_limbs

        n = 1 << 20
        eb = field_limbs(BLS12_381_FR) * 8
        schedule = build_unintt_schedule(n, 32, eb)
        hier, delta = synthesize_hierarchical(schedule, 8)
        flat = FOUR_NODE_DGX_A100.flattened()
        assert check_cost(flat, BLS12_381_FR, n, schedule=hier,
                          delta=delta) == []
        # Undeclared, the same schedule is a cost mismatch.
        assert any(f.check == "plan.cost-mismatch"
                   for f in check_cost(flat, BLS12_381_FR, n,
                                       schedule=hier))

    @pytest.mark.parametrize("node_size", (0, 1, 8, 16, 3))
    def test_bad_node_size_rejected(self, node_size):
        schedule = build_unintt_schedule(1 << 10, 8, EB)
        with pytest.raises(SchedulePassError):
            synthesize_hierarchical(schedule, node_size)


class TestEnumerateCandidates:
    def test_plain_machine_offers_flat_and_rewritten(self):
        machine = machine_by_name("DGX-A100")
        candidates = enumerate_candidates(machine, GOLDILOCKS, 1 << 12)
        assert len(candidates) == 2
        assert not candidates[0].synthesized
        assert candidates[1].synthesized
        assert all(c.machine is machine for c in candidates)

    def test_cluster_adds_the_hierarchical_candidate(self):
        candidates = enumerate_candidates(FOUR_NODE_DGX_A100,
                                          BLS12_381_FR, 1 << 20)
        assert len(candidates) == 3
        hier = candidates[-1]
        assert "@hier[ns=8]" in hier.name
        assert hier.delta is not None
        assert hier.machine is FOUR_NODE_DGX_A100
        # Flat candidates price on the flattened (all-GPUs-behind-the-
        # network) view, never the cluster itself.
        for cand in candidates[:2]:
            assert cand.machine.gpu_count == FOUR_NODE_DGX_A100.total_gpus

    def test_every_candidate_passes_the_gate_independently(self):
        for cand in enumerate_candidates(FOUR_NODE_DGX_A100,
                                         BLS12_381_FR, 1 << 20):
            assert verify_rewrite(cand.base, cand.schedule,
                                  machine=cand.machine,
                                  field=BLS12_381_FR,
                                  delta=cand.delta) == []

    def test_single_node_machine_never_synthesizes_hierarchy(self):
        candidates = enumerate_candidates(DGX_A100, GOLDILOCKS, 1 << 12)
        assert all("@hier[" not in c.name for c in candidates)
