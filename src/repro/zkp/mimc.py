"""MiMC: an algebraic hash, both native and as an R1CS circuit.

Realistic ZKP circuits are full of *algebraic* hashes — functions built
from field multiplications so they cost few constraints.  MiMC is the
classic one: iterate ``x <- (x + k + c_i)^3`` over fixed round
constants.  This module provides

* the native permutation / compression function / Merkle-ready hash;
* the same computation as R1CS constraints (2 per round: one for the
  square, one for the cube), so circuits that verify hash preimages or
  Merkle paths can be built and proven with :mod:`repro.zkp.prover`.

Cubing requires ``gcd(3, p-1) = 1`` for invertibility; BN254's scalar
field satisfies this (p-1 = 2^28 * 3^2 * ... does **not** — cubing is
3-to-1 there).  For hashing, bijectivity is not required, so we follow
the common practice of using the cube map regardless; circuits care
only that the forward computation is constrained correctly.
"""

from __future__ import annotations

import hashlib

from repro.errors import CircuitError
from repro.field.prime_field import PrimeField
from repro.zkp.r1cs import R1CS

__all__ = ["MiMC", "mimc_preimage_circuit", "mimc_chain_circuit"]


class MiMC:
    """The MiMC-x^3 permutation with Fiat-Shamir-derived constants."""

    def __init__(self, field: PrimeField, rounds: int = 64,
                 seed: bytes = b"repro-mimc"):
        if rounds < 1:
            raise CircuitError(f"rounds must be >= 1, got {rounds}")
        self.field = field
        self.rounds = rounds
        self.constants = self._derive_constants(seed)

    def _derive_constants(self, seed: bytes) -> list[int]:
        constants = []
        state = seed
        for _ in range(self.rounds):
            state = hashlib.sha256(state).digest()
            constants.append(int.from_bytes(state, "big")
                             % self.field.modulus)
        return constants

    # -- native evaluation ---------------------------------------------------

    def permute(self, x: int, key: int = 0) -> int:
        """The raw permutation: rounds of ``x <- (x + k + c_i)^3``."""
        p = self.field.modulus
        x %= p
        key %= p
        for constant in self.constants:
            t = (x + key + constant) % p
            x = t * t % p * t % p
        return (x + key) % p

    def compress(self, left: int, right: int) -> int:
        """Miyaguchi-Preneel-style 2-to-1 compression for Merkle use."""
        p = self.field.modulus
        return (self.permute(left, key=right) + left + right) % p

    def hash_many(self, values: list[int]) -> int:
        """Sponge-free chain hash of a list (absorb one per call)."""
        acc = 0
        for value in values:
            acc = self.compress(acc, value % self.field.modulus)
        return acc

    # -- the same computation as constraints ------------------------------------

    def constrain(self, r1cs: R1CS, x_wire: int,
                  witness: list[int]) -> int:
        """Add the permutation (key=0) to ``r1cs``; returns the output
        wire.  ``witness`` must already hold a value for ``x_wire`` and
        is extended with the intermediate wires.

        Two constraints per round:  ``t^2 = s``  and  ``s * t = out``.
        """
        p = self.field.modulus
        current = x_wire
        for constant in self.constants:
            # t = current + c is a linear combination, not a new wire.
            t_value = (witness[current] + constant) % p
            square = r1cs.new_wire()
            witness.append(t_value * t_value % p)
            r1cs.add_constraint({current: 1, 0: constant},
                                {current: 1, 0: constant},
                                {square: 1})
            cube = r1cs.new_wire()
            witness.append(witness[square] * t_value % p)
            r1cs.add_constraint({square: 1},
                                {current: 1, 0: constant},
                                {cube: 1})
            current = cube
        return current

    @property
    def constraints_per_permutation(self) -> int:
        return 2 * self.rounds


def mimc_preimage_circuit(field: PrimeField, preimage: int,
                          rounds: int = 64) -> tuple[R1CS, list[int]]:
    """Prove knowledge of x with ``MiMC(x) = y`` for public y."""
    mimc = MiMC(field, rounds=rounds)
    r1cs = R1CS(field, num_public=1)
    x_wire = r1cs.new_wire()
    witness = [1, 0, preimage % field.modulus]
    out_wire = mimc.constrain(r1cs, x_wire, witness)
    r1cs.constrain_equal(out_wire, 1)
    witness[1] = witness[out_wire]
    if not r1cs.is_satisfied(witness):
        raise CircuitError("mimc_preimage_circuit witness unsatisfied")
    return r1cs, witness


def mimc_chain_circuit(field: PrimeField, values: list[int],
                       rounds: int = 16) -> tuple[R1CS, list[int]]:
    """Prove knowledge of values hashing (by chained compression) to a
    public digest — the flat version of a Merkle-path circuit."""
    if not values:
        raise CircuitError("need at least one value to hash")
    mimc = MiMC(field, rounds=rounds)
    p = field.modulus
    r1cs = R1CS(field, num_public=1)
    value_wires = [r1cs.new_wire() for _ in values]
    witness = [1, 0] + [v % p for v in values]

    acc_wire = None  # accumulator starts at the constant 0
    for value_wire in value_wires:
        # compress(acc, v) = permute(acc, key=v) + acc + v.  With the
        # circuit's single-input permutation we use key folding:
        # t0 = acc + v, run permutation on t0, add acc + v back.
        t0 = r1cs.new_wire()
        if acc_wire is None:
            witness.append(witness[value_wire])
            r1cs.add_constraint({value_wire: 1}, {0: 1}, {t0: 1})
        else:
            witness.append((witness[acc_wire] + witness[value_wire]) % p)
            r1cs.add_constraint({acc_wire: 1, value_wire: 1}, {0: 1},
                                {t0: 1})
        perm_out = mimc.constrain(r1cs, t0, witness)
        new_acc = r1cs.new_wire()
        witness.append((witness[perm_out] + witness[t0]) % p)
        r1cs.add_constraint({perm_out: 1, t0: 1}, {0: 1}, {new_acc: 1})
        acc_wire = new_acc

    assert acc_wire is not None
    r1cs.constrain_equal(acc_wire, 1)
    witness[1] = witness[acc_wire]
    if not r1cs.is_satisfied(witness):
        raise CircuitError("mimc_chain_circuit witness unsatisfied")
    return r1cs, witness
