"""Tests for ASCII chart rendering."""

import pytest

from repro.bench import bar_chart, grouped_bar_chart
from repro.errors import BenchmarkError


class TestBarChart:
    def test_longest_bar_is_max(self):
        text = bar_chart(["a", "b"], [1.0, 2.0])
        line_a, line_b = text.splitlines()
        assert line_b.count("█") == 40
        assert line_a.count("█") == 20

    def test_labels_aligned(self):
        text = bar_chart(["x", "longer"], [1, 1])
        lines = text.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_title_and_unit(self):
        text = bar_chart(["a"], [3.5], title="speeds", unit="x")
        assert text.startswith("speeds\n")
        assert "3.5x" in text

    def test_zero_values_render(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0" in text

    def test_validation(self):
        with pytest.raises(BenchmarkError, match="labels"):
            bar_chart(["a"], [1, 2])
        with pytest.raises(BenchmarkError, match="empty"):
            bar_chart([], [])
        with pytest.raises(BenchmarkError, match="non-negative"):
            bar_chart(["a"], [-1])

    def test_fractional_bars_use_partials(self):
        text = bar_chart(["a", "b"], [1.0, 16.0], width=8)
        line_a = text.splitlines()[0]
        # 1/16 of 8 cells = 0.5 cells -> a half-block partial.
        assert "▌" in line_a


class TestGroupedBarChart:
    def test_common_scale(self):
        text = grouped_bar_chart(
            ["g1"], {"fast": [1.0], "slow": [4.0]}, width=40)
        lines = text.splitlines()
        fast_line = next(line for line in lines if "fast" in line)
        slow_line = next(line for line in lines if "slow" in line)
        assert slow_line.count("█") == 40
        assert fast_line.count("█") == 10

    def test_groups_listed(self):
        text = grouped_bar_chart(["g1", "g2"],
                                 {"s": [1, 2]}, title="t")
        assert "g1" in text and "g2" in text and text.startswith("t\n")

    def test_validation(self):
        with pytest.raises(BenchmarkError, match="no series"):
            grouped_bar_chart(["g"], {})
        with pytest.raises(BenchmarkError, match="groups"):
            grouped_bar_chart(["g"], {"s": [1, 2]})
        with pytest.raises(BenchmarkError, match="non-negative"):
            grouped_bar_chart(["g"], {"s": [-1]})

    def test_renders_real_figure_data(self):
        from repro.bench import interconnect_sensitivity

        headers, rows = interconnect_sensitivity()
        text = grouped_bar_chart(
            [row[0] for row in rows],
            {"baseline": [row[1] for row in rows],
             "unintt": [row[3] for row in rows]},
            unit=" ms")
        assert "DGX-A100" in text
        assert "unintt" in text
