"""Distributed data layouts.

A layout is a bijection between global vector indices and (gpu, local)
slots.  Layout choice is *the* lever of multi-GPU NTT design:

* :class:`BlockLayout` — natural contiguous blocks; what producers hand
  you and what the conventional baseline works in.
* :class:`CyclicLayout` — index ``j`` lives on GPU ``j mod G``; the
  UniNTT input layout, under which the local sub-transforms need no
  communication at all.
* :class:`SpectralLayout` — the permuted order UniNTT's forward
  transform leaves its output in.  Keeping the output here (instead of
  materializing natural order) deletes one whole all-to-all; pointwise
  spectral operations are layout-agnostic, so ZKP pipelines never pay
  for the permutation.  This is the distributed face of the paper's
  "overhead-free decomposition".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PartitionError

__all__ = ["Layout", "BlockLayout", "CyclicLayout", "SpectralLayout",
           "ColumnBlockLayout", "TransposedBlockLayout",
           "UniNTTExchangeLayout", "distribute", "collect"]


@dataclass(frozen=True)
class Layout:
    """Base class: a size-n vector split over ``gpu_count`` equal shards."""

    n: int
    gpu_count: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.n & (self.n - 1):
            raise PartitionError(f"layout size must be a power of two, "
                                 f"got {self.n}")
        if self.gpu_count < 1 or self.gpu_count & (self.gpu_count - 1):
            raise PartitionError(f"gpu_count must be a power of two, "
                                 f"got {self.gpu_count}")
        if self.n < self.gpu_count:
            raise PartitionError(
                f"cannot split {self.n} elements over {self.gpu_count} GPUs")

    @property
    def shard_size(self) -> int:
        return self.n // self.gpu_count

    def owner(self, global_index: int) -> tuple[int, int]:
        """Map a global index to its (gpu, local index) slot."""
        raise NotImplementedError

    def global_index(self, gpu: int, local: int) -> int:
        """Inverse of :meth:`owner`."""
        raise NotImplementedError

    def _check_global(self, global_index: int) -> None:
        if not 0 <= global_index < self.n:
            raise PartitionError(
                f"global index {global_index} out of range [0, {self.n})")

    def _check_slot(self, gpu: int, local: int) -> None:
        if not 0 <= gpu < self.gpu_count:
            raise PartitionError(f"gpu {gpu} out of range")
        if not 0 <= local < self.shard_size:
            raise PartitionError(f"local index {local} out of range")


class BlockLayout(Layout):
    """GPU g holds the contiguous block [g*m, (g+1)*m)."""

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        m = self.shard_size
        return global_index // m, global_index % m

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        return gpu * self.shard_size + local


class CyclicLayout(Layout):
    """GPU g holds every G-th element: global j = local * G + g."""

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        g = self.gpu_count
        return global_index % g, global_index // g

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        return local * self.gpu_count + gpu


class SpectralLayout(Layout):
    """UniNTT forward-output order.

    With ``M = n / G``, spectrum index ``k`` splits as ``k = k1 + M*k2``
    (``k1 < M``, ``k2 < G``).  GPU ``t`` owns the k1-chunk
    ``[t*M/G, (t+1)*M/G)`` and stores, for each of its k1 values, the
    full G-vector over k2 contiguously::

        gpu   = k1 // (M/G)
        local = (k1 % (M/G)) * G + k2

    Requires ``n >= G^2`` so the chunks are non-empty.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n < self.gpu_count * self.gpu_count:
            raise PartitionError(
                f"spectral layout needs n >= G^2 "
                f"({self.n} < {self.gpu_count}^2)")

    @property
    def chunk(self) -> int:
        """k1 values per GPU: M / G."""
        return self.n // (self.gpu_count * self.gpu_count)

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        m = self.shard_size  # = M
        k1 = global_index % m
        k2 = global_index // m
        return k1 // self.chunk, (k1 % self.chunk) * self.gpu_count + k2

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        k2 = local % self.gpu_count
        k1 = gpu * self.chunk + local // self.gpu_count
        return k1 + self.shard_size * k2


@dataclass(frozen=True)
class ColumnBlockLayout(Layout):
    """Column blocks of an R x C row-major matrix.

    The global index space is the flat row-major matrix position
    ``j = r * cols + c``.  GPU ``t`` owns the column block
    ``[t * cols/G, (t+1) * cols/G)`` and stores each column contiguously
    (column-major locally): ``local = (c % (cols/G)) * rows + r``.  This
    is the intermediate layout of the baseline's transpose: column
    transforms become local and contiguous.
    """

    rows: int = 0
    cols: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rows * self.cols != self.n:
            raise PartitionError(
                f"{self.rows}x{self.cols} does not factor n={self.n}")
        if self.cols % self.gpu_count:
            raise PartitionError(
                f"{self.cols} columns do not split over "
                f"{self.gpu_count} GPUs")

    @property
    def cols_per_gpu(self) -> int:
        return self.cols // self.gpu_count

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        r, c = divmod(global_index, self.cols)
        gpu, c_local = divmod(c, self.cols_per_gpu)
        return gpu, c_local * self.rows + r

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        c_local, r = divmod(local, self.rows)
        c = gpu * self.cols_per_gpu + c_local
        return r * self.cols + c


@dataclass(frozen=True)
class TransposedBlockLayout(Layout):
    """Natural-order blocks of the *transposed* matrix.

    The global index space is again the flat row-major R x C matrix
    position ``j = k1 * cols + k2``; the transform output index is
    ``k = k1 + rows * k2``.  GPU ``t`` owns the k-block
    ``[t * n/G, (t+1) * n/G)`` at local offset ``k % (n/G)`` — i.e. the
    result of the baseline's final transpose into natural block order.
    """

    rows: int = 0
    cols: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rows * self.cols != self.n:
            raise PartitionError(
                f"{self.rows}x{self.cols} does not factor n={self.n}")

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        k1, k2 = divmod(global_index, self.cols)
        k = k1 + self.rows * k2
        return divmod(k, self.shard_size)

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        k = gpu * self.shard_size + local
        k2, k1 = divmod(k, self.rows)
        return k1 * self.cols + k2


@dataclass(frozen=True)
class UniNTTExchangeLayout(Layout):
    """Post-exchange layout of UniNTT's single all-to-all.

    The global index space is the "unit-major" position ``j = s * M + k1``
    of the locally-transformed data (unit ``s`` produced spectrum slot
    ``k1``).  After the exchange, GPU ``t`` owns the k1-chunk
    ``[t * M/G, (t+1) * M/G)`` with the G values over ``s`` for each k1
    stored contiguously: ``local = (k1 % chunk) * G + s``.  The in-place
    cross NTT over each G-group then turns this storage into
    :class:`SpectralLayout` (with ``s`` replaced by ``k2``).
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n < self.gpu_count * self.gpu_count:
            raise PartitionError(
                f"exchange layout needs n >= G^2 "
                f"({self.n} < {self.gpu_count}^2)")

    @property
    def chunk(self) -> int:
        return self.n // (self.gpu_count * self.gpu_count)

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        m = self.shard_size
        s, k1 = divmod(global_index, m)
        return k1 // self.chunk, (k1 % self.chunk) * self.gpu_count + s

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        group, s = divmod(local, self.gpu_count)
        k1 = gpu * self.chunk + group
        return s * self.shard_size + k1


def distribute(values: Sequence[int], layout: Layout) -> list[list[int]]:
    """Split a global vector into per-GPU shards under ``layout``."""
    if len(values) != layout.n:
        raise PartitionError(
            f"layout is for {layout.n} elements, got {len(values)}")
    shards = [[0] * layout.shard_size for _ in range(layout.gpu_count)]
    for gpu in range(layout.gpu_count):
        for local in range(layout.shard_size):
            shards[gpu][local] = values[layout.global_index(gpu, local)]
    return shards


def collect(shards: Sequence[Sequence[int]], layout: Layout) -> list[int]:
    """Reassemble the global vector from shards under ``layout``."""
    if len(shards) != layout.gpu_count:
        raise PartitionError(
            f"layout is for {layout.gpu_count} GPUs, got {len(shards)}")
    out = [0] * layout.n
    for gpu, shard in enumerate(shards):
        if len(shard) != layout.shard_size:
            raise PartitionError(
                f"GPU {gpu} shard has {len(shard)} elements, layout "
                f"expects {layout.shard_size}")
        for local, value in enumerate(shard):
            out[layout.global_index(gpu, local)] = value
    return out
