"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BenchmarkError, CircuitError, CurveError, FieldError,
    HardwareModelError, NTTError, PartitionError, PlanError, ProverError,
    ReproError, SimulationError,
)

ALL_ERRORS = [FieldError, NTTError, PlanError, HardwareModelError,
              SimulationError, PartitionError, CurveError, CircuitError,
              ProverError, BenchmarkError]


@pytest.mark.parametrize("error_cls", ALL_ERRORS,
                         ids=lambda c: c.__name__)
def test_all_derive_from_repro_error(error_cls):
    assert issubclass(error_cls, ReproError)
    with pytest.raises(ReproError):
        raise error_cls("boom")


def test_plan_error_is_ntt_error():
    """Plan failures are a kind of NTT failure (callers catching
    NTTError see them)."""
    assert issubclass(PlanError, NTTError)


def test_partition_error_is_simulation_error():
    assert issubclass(PartitionError, SimulationError)


def test_library_raises_only_its_own_errors():
    """Spot-check that public entry points raise ReproError subclasses
    (not bare ValueError/TypeError) for domain failures."""
    from repro.field import TEST_FIELD_97
    from repro.ntt import ntt

    with pytest.raises(ReproError):
        TEST_FIELD_97.inv(0)
    with pytest.raises(ReproError):
        ntt(TEST_FIELD_97, [1, 2, 3])
