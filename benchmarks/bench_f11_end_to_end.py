"""F11: end-to-end ZKP proof generation under four system configs."""

from repro.bench import end_to_end


def test_f11_end_to_end(benchmark, emit):
    table = benchmark(end_to_end)
    emit("F11_end_to_end",
         "F11: proof generation time on DGX-A100 (BN254, Groth16-style)",
         table)


def test_f11_end_to_end_plonk(benchmark, emit):
    from repro.zkp import PLONK_PROFILE

    table = benchmark(end_to_end, profile=PLONK_PROFILE)
    emit("F11b_end_to_end_plonk",
         "F11b: proof generation on DGX-A100 (BN254, PLONK-style)", table)
