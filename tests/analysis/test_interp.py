"""Schedule interpreter: verified schedules execute bit-exactly."""

import random

import pytest

from repro.analysis.interp import interpret_schedule
from repro.analysis.passes import run_passes
from repro.analysis.plancheck import seed_bug
from repro.analysis.synth import synthesize_hierarchical
from repro.errors import SchedulePassError
from repro.field import GOLDILOCKS
from repro.multigpu import DistributedVector, UniNTTEngine
from repro.multigpu.schedule import (
    ablation_grid, build_pairwise_schedule, build_unintt_schedule,
)
from repro.ntt import ntt
from repro.sim import SimCluster

EB = 8
N = 1 << 10
GPUS = 8


def reference_forward(options, values):
    cluster = SimCluster(GOLDILOCKS, GPUS)
    engine = UniNTTEngine(cluster, options=options)
    vec = DistributedVector.from_values(cluster, values,
                                       engine.input_layout(N))
    return engine.forward(vec).to_values(), cluster


@pytest.mark.parametrize("label,options", ablation_grid(),
                         ids=lambda v: str(v))
class TestFlatBitExactness:
    def test_matches_engine_and_trace(self, label, options):
        values = GOLDILOCKS.random_vector(N, random.Random(0))
        schedule = build_unintt_schedule(N, GPUS, EB, options)
        cluster = SimCluster(GOLDILOCKS, GPUS)
        out = interpret_schedule(schedule, cluster, list(values))
        ref, _ = reference_forward(options, values)
        assert out == ref
        # The acceptance criterion: declared bytes match the simulator
        # trace bit-for-bit, level by level.
        assert cluster.trace.bytes_by_level() \
            == schedule.bytes_by_level()

    def test_rewritten_schedule_is_still_bit_exact(self, label, options):
        values = GOLDILOCKS.random_vector(N, random.Random(1))
        schedule = build_unintt_schedule(N, GPUS, EB, options)
        rewritten, _ = run_passes(schedule)
        cluster = SimCluster(GOLDILOCKS, GPUS)
        out = interpret_schedule(rewritten, cluster, list(values))
        ref, _ = reference_forward(options, values)
        assert out == ref
        assert cluster.trace.bytes_by_level() \
            == rewritten.bytes_by_level()


class TestHierarchicalExecution:
    def test_staged_schedule_matches_reference_ntt(self):
        values = GOLDILOCKS.random_vector(N, random.Random(2))
        schedule = build_unintt_schedule(N, GPUS, EB)
        hier, _ = synthesize_hierarchical(schedule, 4)
        cluster = SimCluster(GOLDILOCKS, GPUS, node_size=4)
        out = interpret_schedule(hier, cluster, list(values))
        assert out == ntt(GOLDILOCKS, list(values))
        assert cluster.trace.bytes_by_level() == hier.bytes_by_level()

    def test_hier_equals_flat_interpretation(self):
        values = GOLDILOCKS.random_vector(N, random.Random(3))
        schedule = build_unintt_schedule(N, GPUS, EB)
        hier, _ = synthesize_hierarchical(schedule, 4)
        flat_out = interpret_schedule(schedule,
                                      SimCluster(GOLDILOCKS, GPUS),
                                      list(values))
        hier_out = interpret_schedule(
            hier, SimCluster(GOLDILOCKS, GPUS, node_size=4),
            list(values))
        assert hier_out == flat_out

    def test_hier_needs_a_node_structured_cluster(self):
        schedule = build_unintt_schedule(N, GPUS, EB)
        hier, _ = synthesize_hierarchical(schedule, 4)
        with pytest.raises(SchedulePassError, match="node_size"):
            interpret_schedule(hier, SimCluster(GOLDILOCKS, GPUS),
                               GOLDILOCKS.random_vector(
                                   N, random.Random(4)))

    def test_field_muls_match_the_trace(self):
        values = GOLDILOCKS.random_vector(N, random.Random(5))
        schedule = build_unintt_schedule(N, GPUS, EB)
        cluster = SimCluster(GOLDILOCKS, GPUS)
        interpret_schedule(schedule, cluster, list(values))
        assert cluster.trace.total_field_muls() \
            == schedule.total_field_muls()


class TestRefusals:
    def test_unverified_schedule_is_refused(self):
        schedule = seed_bug(build_unintt_schedule(N, GPUS, EB),
                            "drop-transfer")
        with pytest.raises(SchedulePassError,
                           match="refusing to interpret"):
            interpret_schedule(schedule, SimCluster(GOLDILOCKS, GPUS),
                               GOLDILOCKS.random_vector(
                                   N, random.Random(0)))

    def test_gpu_count_mismatch_is_refused(self):
        schedule = build_unintt_schedule(N, GPUS, EB)
        with pytest.raises(SchedulePassError, match="GPUs"):
            interpret_schedule(schedule, SimCluster(GOLDILOCKS, 4),
                               GOLDILOCKS.random_vector(
                                   N, random.Random(0)))

    def test_element_size_mismatch_is_refused(self):
        schedule = build_unintt_schedule(N, GPUS, 32)
        with pytest.raises(SchedulePassError, match="element size"):
            interpret_schedule(schedule, SimCluster(GOLDILOCKS, GPUS),
                               GOLDILOCKS.random_vector(
                                   N, random.Random(0)))

    def test_pairwise_schedules_are_not_interpretable(self):
        schedule = build_pairwise_schedule(N, GPUS, EB)
        with pytest.raises(SchedulePassError):
            interpret_schedule(schedule, SimCluster(GOLDILOCKS, GPUS),
                               GOLDILOCKS.random_vector(
                                   N, random.Random(0)))

    def test_undersized_input_is_refused(self):
        # A valid schedule fed too few values: n = 32 < G^2 = 64.
        schedule = build_unintt_schedule(N, GPUS, EB)
        with pytest.raises(SchedulePassError, match="G\\^2"):
            interpret_schedule(schedule, SimCluster(GOLDILOCKS, GPUS),
                               GOLDILOCKS.random_vector(
                                   32, random.Random(0)))
