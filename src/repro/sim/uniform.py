"""The uniformity demonstration: one engine, every hierarchy level.

The paper's central abstraction says a warp (32 lanes over the shuffle
network), a thread block (warps over shared memory), and a node (GPUs
over NVLink) are *the same machine at different scales*.  This module
makes that claim executable: it instantiates the very same simulated
cluster + engine code with each level's fanout and fabric parameters and
runs the identical UniNTT recursion on all of them.

``simulate_at_level`` returns the per-unit communication counters, so
tests can assert the structural invariants (one exchange, identical
byte-per-element ratios) hold at every scale — which is what "uniform
design of NTT optimizations" means operationally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.field.prime_field import PrimeField
from repro.ntt import ntt
from repro.sim.cluster import SimCluster

__all__ = ["LevelRun", "HIERARCHY_SCALES", "simulate_at_level",
           "uniformity_sweep"]

#: (level name, unit count) for the standard GPU hierarchy.  A "unit" is
#: a lane, a warp, an SM's thread block, or a GPU respectively; the
#: engine neither knows nor cares.
HIERARCHY_SCALES: tuple[tuple[str, int], ...] = (
    ("warp", 32),        # 32 lanes over the shuffle network
    ("block", 8),        # 8 warps over shared memory
    ("gpu", 64),         # 64 blocks over HBM
    ("multi-gpu", 8),    # 8 GPUs over NVLink
)


@dataclass(frozen=True)
class LevelRun:
    """Result of running the recursion at one hierarchy scale."""

    level: str
    units: int
    n: int
    correct: bool
    exchanges: int
    bytes_per_unit: int
    elements_exchanged_per_element: float

    def summary(self) -> str:
        return (f"{self.level:10s} {self.units:3d} units, n={self.n}: "
                f"{'OK' if self.correct else 'MISMATCH'}, "
                f"{self.exchanges} exchange(s), "
                f"{self.elements_exchanged_per_element:.3f} "
                f"exchanged elems/elem")


def simulate_at_level(field: PrimeField, level: str, units: int, n: int,
                      values: Sequence[int]) -> LevelRun:
    """Run the UniNTT recursion with ``units`` units at one scale."""
    # Imported here: repro.multigpu imports repro.sim at module load.
    from repro.multigpu.base import DistributedVector
    from repro.multigpu.unintt import UniNTTEngine

    if len(values) != n:
        raise SimulationError(f"need {n} values, got {len(values)}")
    cluster = SimCluster(field, units)
    engine = UniNTTEngine(cluster)
    vec = DistributedVector.from_values(cluster, list(values),
                                        engine.input_layout(n))
    out = engine.forward(vec)
    correct = out.to_values() == ntt(field, list(values))
    sent = cluster.gpus[0].counters.bytes_sent
    eb = cluster.element_bytes
    per_unit_elems = n // units
    return LevelRun(
        level=level,
        units=units,
        n=n,
        correct=correct,
        exchanges=cluster.trace.collective_count(),
        bytes_per_unit=sent,
        elements_exchanged_per_element=(sent / eb) / per_unit_elems,
    )


def uniformity_sweep(field: PrimeField, n_per_unit: int = 64,
                     scales: Sequence[tuple[str, int]] = HIERARCHY_SCALES,
                     seed: int = 0) -> list[LevelRun]:
    """Run the same engine at every hierarchy scale.

    ``n_per_unit`` fixes the per-unit data volume so the scales are
    comparable; each level's transform size is ``units * n_per_unit``.
    """
    import random

    rng = random.Random(seed)
    runs = []
    for level, units in scales:
        n = units * n_per_unit
        if n < units * units:
            raise SimulationError(
                f"level {level}: n_per_unit {n_per_unit} too small for "
                f"{units} units (need >= units)")
        values = field.random_vector(n, rng)
        runs.append(simulate_at_level(field, level, units, n, values))
    return runs
