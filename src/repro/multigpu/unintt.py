"""UniNTT: the paper's multi-GPU NTT engine.

The recursive decomposition instantiated at the multi-GPU level, with
the uniform optimizations of :mod:`repro.multigpu.schedule`:

* **cyclic input layout** — GPU ``s`` holds ``x[s::G]``, so the size-M
  local sub-transforms (step 1) touch no remote data at all;
* **fused twiddle** (step 2) — the inter-factor scaling rides the last
  butterfly stage instead of a standalone sweep;
* **one all-to-all** (step 3) — each GPU receives the G-vectors for its
  chunk of spectrum residues; with ``overlap`` on, the exchange is
  chunked and pipelined with the cross transforms that consume it;
* **cross transforms stay local** (step 4) — after the exchange each
  GPU runs M/G independent G-point NTTs; the output is left in
  :class:`~repro.multigpu.layout.SpectralLayout` (``keep_permuted_output``),
  which deletes the final transpose entirely.  The inverse transform
  consumes that layout directly and returns the cyclic layout, so an
  NTT -> pointwise -> INTT round trip pays exactly **two** all-to-alls
  where the baseline pays six.

The local transforms follow a hierarchical plan
(:func:`repro.ntt.plan.hierarchical_plan` restricted to the intra-GPU
levels), which is what "the same NTT computation at different scales"
means operationally: this module's step list *is* the plan's split node,
and the local kernel recursion repeats it per level.
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.field.vector import vec_mul, vec_scale
from repro.hw.cost import Phase, PipelinedGroup, Step
from repro.multigpu import accounting as acct
from repro.multigpu.base import (
    DistributedNTTEngine, DistributedVector, redistribute,
)
from repro.multigpu.layout import (
    BlockLayout, CyclicLayout, Layout, SpectralLayout, UniNTTExchangeLayout,
)
from repro.multigpu.schedule import ALL_ON, UniNTTOptions
from repro.ntt import radix2, radix4
from repro.ntt.twiddle import default_cache
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = ["UniNTTEngine"]


class UniNTTEngine(DistributedNTTEngine):
    """Hierarchical one-exchange multi-GPU NTT."""

    name = "unintt"

    def __init__(self, cluster: SimCluster, tile: int = 4096,
                 options: UniNTTOptions = ALL_ON,
                 vectorized: bool = False):
        super().__init__(cluster, tile)
        self.options = options
        self.name = f"unintt[{options.label()}]"
        if vectorized:
            from repro.field.presets import GOLDILOCKS

            if cluster.field != GOLDILOCKS:
                raise PartitionError(
                    "vectorized local transforms are implemented for "
                    f"Goldilocks only, not {cluster.field.name}")
        self.vectorized = vectorized

    def _local_transform(self, shard: list[int], root: int,
                         twiddle_base: int | None, m: int) -> list[int]:
        """One GPU's local M-point transform (+ optional fused twiddle).

        The vectorized path runs the numpy Goldilocks kernels — the
        same data-parallel schedule a CUDA kernel uses — and is
        bit-identical to the scalar path.
        """
        field = self.field
        p = field.modulus
        if self.vectorized:
            import numpy as np

            from repro.field.goldilocks import gl_mul, gl_ntt

            out = gl_ntt(np.asarray(shard, dtype=np.uint64), root=root)
            if twiddle_base is not None:
                tw = np.asarray(
                    default_cache.powers(field, twiddle_base, m),
                    dtype=np.uint64)
                out = gl_mul(out, tw)
            return [int(v) for v in out]
        out = radix2.ntt(field, shard, default_cache, root=root)
        if twiddle_base is not None:
            tw = default_cache.powers(field, twiddle_base, m)
            out = vec_mul(field, out, tw)
        return out

    # -- layouts -----------------------------------------------------------

    def input_layout(self, n: int) -> Layout:
        return CyclicLayout(n=n, gpu_count=self.gpu_count)

    def output_layout(self, n: int) -> Layout:
        if self.options.keep_permuted_output:
            return SpectralLayout(n=n, gpu_count=self.gpu_count)
        return BlockLayout(n=n, gpu_count=self.gpu_count)

    def _check_size(self, n: int) -> None:
        g = self.gpu_count
        if n < g * g:
            raise PartitionError(
                f"UniNTT needs n >= G^2 ({n} < {g}^2)")

    # -- functional ------------------------------------------------------------

    def forward(self, vec: DistributedVector,
                coset_shift: int | None = None) -> DistributedVector:
        """Forward transform; ``coset_shift`` evaluates on ``shift * H``.

        The coset scaling ``x[j] *= shift^j`` decomposes along the
        cyclic layout as ``shift^(q*G) * shift^s`` — a per-GPU constant
        times a local geometric series — so it fuses into the local
        twiddle pass at zero extra memory traffic (the distributed
        instance of the coset-NTT fusion ZKP pipelines rely on).
        """
        n = vec.n
        self._check_size(n)
        self._check_input(vec, self.input_layout(n))
        g = self.gpu_count
        m = n // g
        field = self.field
        p = field.modulus
        root = field.root_of_unity(n)
        cluster = self.cluster

        # 0. fused coset scaling (local; charged with the twiddles).
        if coset_shift is not None:
            if coset_shift % p == 0:
                raise PartitionError("coset shift must be non-zero")
            shift_g = pow(coset_shift, g, p)
            for gpu in cluster.gpus:
                s = gpu.gpu_id
                factors = default_cache.powers(
                    field, shift_g, m)
                lead = pow(coset_shift, s, p)
                gpu.shard = vec_scale(
                    field, vec_mul(field, gpu.shard, factors), lead)
            self._charge_coset(m)

        # 1+2. local M-point transforms with the twiddle scaling fused
        # (functionally the twiddle is applied right after; the *charge*
        # differs: fused costs no extra memory sweep).
        root_m = pow(root, g, p)
        for gpu in cluster.gpus:
            s = gpu.gpu_id
            gpu.shard = self._local_transform(
                gpu.shard, root_m,
                pow(root, s, p) if s else None, m)
        self._charge_local_ntt(m, twiddle=True, detail="unintt-local")

        # 3. the single all-to-all.
        unit_major = BlockLayout(n=n, gpu_count=g)
        exchange = UniNTTExchangeLayout(n=n, gpu_count=g)
        redistribute(cluster, unit_major, exchange, detail="unintt-exchange")

        # 4. cross transforms: M/G independent G-point NTTs per GPU,
        # in place over each contiguous G-group.
        root_g = pow(root, m, p)
        chunk = m // g
        for gpu in cluster.gpus:
            shard = gpu.shard
            for group in range(chunk):
                base = group * g
                shard[base:base + g] = radix2.ntt(
                    field, shard[base:base + g], default_cache, root=root_g)
        self._charge_cross(m, detail="unintt-cross")

        out = DistributedVector(
            cluster=cluster, layout=SpectralLayout(n=n, gpu_count=g))
        if not self.options.keep_permuted_output:
            out = out.relayout(BlockLayout(n=n, gpu_count=g),
                               detail="unintt-materialize")
        return out

    def inverse(self, vec: DistributedVector,
                coset_shift: int | None = None) -> DistributedVector:
        """Inverse transform; ``coset_shift`` interprets the spectrum as
        evaluations on ``shift * H`` (undoing :meth:`forward`'s fused
        scaling after the transform)."""
        n = vec.n
        self._check_size(n)
        g = self.gpu_count
        m = n // g
        field = self.field
        p = field.modulus
        root = field.root_of_unity(n)
        inv_root = field.inv(root)
        cluster = self.cluster

        spectral = SpectralLayout(n=n, gpu_count=g)
        if not self.options.keep_permuted_output:
            # The engine hands out natural order, so it must also accept
            # it back: restore the spectral layout first.
            self._check_input(vec, BlockLayout(n=n, gpu_count=g))
            vec = vec.relayout(spectral, detail="unintt-dematerialize")
        else:
            self._check_input(vec, spectral)

        # 1. inverse cross transforms (scale 1/G each).
        inv_root_g = pow(inv_root, m, p)
        chunk = m // g
        g_inv = field.inv(g % p)
        for gpu in cluster.gpus:
            shard = gpu.shard
            for group in range(chunk):
                base = group * g
                piece = radix2.ntt(field, shard[base:base + g],
                                   default_cache, root=inv_root_g)
                shard[base:base + g] = vec_scale(field, piece, g_inv)
        self._charge_cross(m, detail="unintt-inv-cross", scaled=True)

        # 2. the single all-to-all, back to unit-major order.
        unit_major = BlockLayout(n=n, gpu_count=g)
        exchange = UniNTTExchangeLayout(n=n, gpu_count=g)
        redistribute(cluster, exchange, unit_major,
                     detail="unintt-inv-exchange")

        # 3. fused inverse twiddle + local M-point inverse transforms
        # (scale 1/M; total scaling 1/G * 1/M = 1/n).
        inv_root_m = pow(inv_root, g, p)
        m_inv = field.inv(m % p)
        for gpu in cluster.gpus:
            s = gpu.gpu_id
            shard = gpu.shard
            if s:
                tw = default_cache.powers(field, pow(inv_root, s, p), m)
                shard = vec_mul(field, shard, tw)
            piece = radix2.ntt(field, shard, default_cache, root=inv_root_m)
            gpu.shard = vec_scale(field, piece, m_inv)
        self._charge_local_ntt(m, twiddle=True, scaled=True,
                               detail="unintt-inv-local")

        # Fused inverse coset scaling: x[j] *= shift^-j, decomposed
        # along the cyclic layout exactly like the forward pass.
        if coset_shift is not None:
            if coset_shift % p == 0:
                raise PartitionError("coset shift must be non-zero")
            inv_shift = field.inv(coset_shift)
            inv_shift_g = pow(inv_shift, g, p)
            for gpu in cluster.gpus:
                s = gpu.gpu_id
                factors = default_cache.powers(field, inv_shift_g, m)
                lead = pow(inv_shift, s, p)
                gpu.shard = vec_scale(
                    field, vec_mul(field, gpu.shard, factors), lead)
            self._charge_coset(m)
        return DistributedVector(cluster=cluster,
                                 layout=CyclicLayout(n=n, gpu_count=g))

    # -- accounting --------------------------------------------------------------

    def _local_ntt_muls(self, m: int) -> int:
        if self.options.radix_fusion:
            return radix4.radix4_multiply_count(m)
        return acct.local_ntt_muls(m)

    def _charge_local_ntt(self, m: int, twiddle: bool, detail: str,
                          scaled: bool = False) -> None:
        eb = self.cluster.element_bytes
        muls = self._local_ntt_muls(m)
        mem = acct.local_ntt_mem_bytes(m, eb, self.tile)
        if twiddle and self.options.fused_twiddle:
            muls += acct.twiddle_muls(m)
        if scaled:
            muls += m  # the 1/M scaling multiply
        for gpu in self.cluster.gpus:
            gpu.charge_compute(muls, mem)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu", max_bytes_per_gpu=mem,
            total_bytes=mem * self.gpu_count,
            field_muls=muls * self.gpu_count, detail=detail))
        if twiddle and not self.options.fused_twiddle:
            # A standalone twiddle kernel: its own launch and memory sweep.
            tw_muls = acct.twiddle_muls(m)
            tw_mem = acct.pointwise_mem_bytes(m, eb)
            for gpu in self.cluster.gpus:
                gpu.charge_compute(tw_muls, tw_mem)
            self.cluster.trace.record(TraceEvent(
                kind="local-compute", level="gpu",
                max_bytes_per_gpu=tw_mem,
                total_bytes=tw_mem * self.gpu_count,
                field_muls=tw_muls * self.gpu_count,
                detail=f"{detail}-twiddle"))

    def _charge_coset(self, m: int) -> None:
        """Fused coset scaling: multiplications only, no memory sweep
        when twiddle fusion is on; a standalone pass otherwise."""
        eb = self.cluster.element_bytes
        mem = 0 if self.options.fused_twiddle \
            else acct.pointwise_mem_bytes(m, eb)
        for gpu in self.cluster.gpus:
            gpu.charge_compute(2 * m, mem)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu", max_bytes_per_gpu=mem,
            total_bytes=mem * self.gpu_count,
            field_muls=2 * m * self.gpu_count, detail="unintt-coset"))

    def _charge_cross(self, m: int, detail: str,
                      scaled: bool = False) -> None:
        g = self.gpu_count
        eb = self.cluster.element_bytes
        muls = acct.small_batch_ntt_muls(m // g, g)
        if scaled:
            muls += m
        mem = acct.small_batch_mem_bytes(m // g, g, eb)
        for gpu in self.cluster.gpus:
            gpu.charge_compute(muls, mem)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu", max_bytes_per_gpu=mem,
            total_bytes=mem * g, field_muls=muls * g, detail=detail))

    # -- analytic ----------------------------------------------------------------

    def _profile(self, n: int, inverse: bool) -> list[Step]:
        self._check_size(n)
        g = self.gpu_count
        eb = self.cluster.element_bytes
        m = n // g
        opts = self.options

        local_muls = self._local_ntt_muls(m)
        if opts.fused_twiddle:
            local_muls += acct.twiddle_muls(m)
        local_mem = acct.local_ntt_mem_bytes(m, eb, self.tile)
        if inverse:
            local_muls += m  # 1/M scaling

        cross_muls = acct.small_batch_ntt_muls(m // g, g)
        if inverse:
            cross_muls += m  # 1/G scaling
        cross_mem = acct.small_batch_mem_bytes(m // g, g, eb)

        local = Phase(name="local-ntt", field_muls=local_muls,
                      mem_bytes=local_mem)
        a2a = Phase(name="exchange",
                    exchange_bytes=acct.alltoall_bytes_per_gpu(m, g, eb),
                    messages=g - 1)
        cross = Phase(name="cross-ntt", field_muls=cross_muls,
                      mem_bytes=cross_mem)

        local_steps: list[Step] = [local]
        if not opts.fused_twiddle:
            local_steps.append(Phase(
                name="twiddle-pass", field_muls=acct.twiddle_muls(m),
                mem_bytes=acct.pointwise_mem_bytes(m, eb)))
        if opts.overlap:
            core: list[Step] = local_steps + [
                PipelinedGroup(name="exchange+cross", phases=(a2a, cross))]
        else:
            core = local_steps + [a2a, cross]
        if inverse:
            core.reverse()
        if not opts.keep_permuted_output:
            materialize = Phase(
                name="materialize",
                exchange_bytes=acct.alltoall_bytes_per_gpu(m, g, eb),
                messages=g - 1)
            if inverse:
                core.insert(0, materialize)
            else:
                core.append(materialize)
        return core

    def forward_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=False)

    def inverse_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=True)
