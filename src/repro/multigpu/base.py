"""Distributed vectors, redistribution, and the engine interface.

:func:`redistribute` is the universal communication step: given the
layout the data is in and the layout the next compute phase needs, it
builds the personalized all-to-all that moves every element to its new
slot.  All of the baseline's transposes and UniNTT's single exchange are
instances of it, which keeps the engines short and makes the byte
accounting uniform.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.errors import PartitionError, SimulationError
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostBreakdown, CostModel, Step
from repro.hw.model import MachineModel
from repro.multigpu.layout import Layout, collect, distribute
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = ["DistributedVector", "VectorCheckpoint", "redistribute",
           "DistributedNTTEngine"]


@dataclass(frozen=True)
class VectorCheckpoint:
    """Host-resident snapshot of a distributed vector's logical values.

    Layout-independent on purpose: the values are stored in logical
    index order, so a checkpoint taken on one cluster restores onto a
    *different* cluster shape (the graceful-degradation path after a
    device death re-shards from exactly such a snapshot).
    """

    values: tuple[int, ...]

    @property
    def n(self) -> int:
        return len(self.values)


@dataclass
class DistributedVector:
    """A logical vector living in a cluster's shards under a layout."""

    cluster: SimCluster
    layout: Layout

    def __post_init__(self) -> None:
        if self.layout.gpu_count != self.cluster.gpu_count:
            raise PartitionError(
                f"layout is for {self.layout.gpu_count} GPUs, cluster has "
                f"{self.cluster.gpu_count}")

    @property
    def n(self) -> int:
        return self.layout.n

    @classmethod
    def from_values(cls, cluster: SimCluster, values: Sequence[int],
                    layout: Layout) -> "DistributedVector":
        """Stage a host vector into the cluster under ``layout``.

        ``values`` may be a plain int sequence or a packed backend
        array (uint64 lanes, or the multi-limb planes the big ZKP
        fields use); packed forms are unpacked at this boundary so
        shards — and the checkpoints taken from them — always hold
        plain ints regardless of the active compute backend.
        """
        from repro.field.vector import host_values

        cluster.load_shards(distribute(host_values(cluster.field, values),
                                       layout))
        return cls(cluster=cluster, layout=layout)

    def to_values(self) -> list[int]:
        """Reassemble the global vector (diagnostic; charges nothing)."""
        return collect(self.cluster.peek_shards(), self.layout)

    def relayout(self, target: Layout, detail: str = "") -> "DistributedVector":
        """Move to another layout with one counted all-to-all."""
        redistribute(self.cluster, self.layout, target, detail=detail)
        return DistributedVector(cluster=self.cluster, layout=target)

    def checkpoint(self) -> VectorCheckpoint:
        """Snapshot the logical vector to the host (traced, not charged).

        The snapshot is recorded as a ``checkpoint`` trace event on the
        ``resilience`` level; the resilient execution layer prices the
        host write as an overhead phase.
        """
        eb = self.cluster.element_bytes
        self.cluster.trace.record(TraceEvent(
            kind="checkpoint", level="resilience",
            max_bytes_per_gpu=self.layout.shard_size * eb,
            total_bytes=self.n * eb, detail=f"n={self.n}"))
        return VectorCheckpoint(values=tuple(self.to_values()))

    @classmethod
    def restore(cls, cluster: SimCluster, checkpoint: VectorCheckpoint,
                layout: Layout) -> "DistributedVector":
        """Re-stage a checkpoint under ``layout`` (host staging).

        The target cluster may have a different GPU count than the one
        the checkpoint was taken on — the snapshot is logical values,
        not shards.
        """
        if layout.n != checkpoint.n:
            raise PartitionError(
                f"checkpoint holds {checkpoint.n} values, layout "
                f"expects {layout.n}")
        return cls.from_values(cluster, list(checkpoint.values), layout)


def redistribute(cluster: SimCluster, source: Layout, target: Layout,
                 detail: str = "") -> None:
    """One all-to-all moving every element from ``source`` to ``target``.

    Both layouts must cover the same global index space.  Messages are
    ordered by destination local index so receivers reassemble by
    walking their slots in order — the deterministic schedule a real
    implementation would use.
    """
    if source.n != target.n or source.gpu_count != target.gpu_count:
        raise PartitionError(
            f"layout mismatch: {source.n}/{source.gpu_count} vs "
            f"{target.n}/{target.gpu_count}")
    g = cluster.gpu_count
    if source.gpu_count != g:
        raise PartitionError(
            f"layouts are for {source.gpu_count} GPUs, cluster has {g}")

    outboxes: list[list[list[int]]] = [[[] for _ in range(g)]
                                       for _ in range(g)]
    # Walk destination slots in order, so each (src, dst) message is
    # naturally sorted by destination local index.
    for dst in range(g):
        for local in range(target.shard_size):
            j = target.global_index(dst, local)
            src, src_local = source.owner(j)
            outboxes[src][dst].append(cluster.gpus[src].shard[src_local])
    inboxes = cluster.all_to_all(outboxes, detail=detail or
                                 f"{type(source).__name__}->"
                                 f"{type(target).__name__}")
    for dst in range(g):
        cursors = [0] * g
        shard = [0] * target.shard_size
        for local in range(target.shard_size):
            j = target.global_index(dst, local)
            src, _ = source.owner(j)
            shard[local] = inboxes[dst][src][cursors[src]]
            cursors[src] += 1
        cluster.gpus[dst].load(shard)


class DistributedNTTEngine(ABC):
    """Interface shared by all multi-GPU NTT engines.

    An engine is bound to a cluster (the functional side) and exposes a
    closed-form phase profile (the analytic side).  ``tile`` is the
    fast-memory tile size for local transform passes — the number of
    elements a thread block can stage, which sets how many global-memory
    round trips a local transform needs.
    """

    #: Engine display name (overridden by subclasses).
    name: str = "abstract"

    def __init__(self, cluster: SimCluster, tile: int = 4096):
        if tile < 2 or tile & (tile - 1):
            raise SimulationError(
                f"tile must be a power of two >= 2, got {tile}")
        self.cluster = cluster
        self.tile = tile

    @property
    def field(self) -> PrimeField:
        return self.cluster.field

    @property
    def gpu_count(self) -> int:
        return self.cluster.gpu_count

    # -- functional interface ------------------------------------------------

    @abstractmethod
    def input_layout(self, n: int) -> Layout:
        """The layout this engine expects its input in."""

    @abstractmethod
    def output_layout(self, n: int) -> Layout:
        """The layout this engine leaves its forward output in."""

    @abstractmethod
    def forward(self, vec: DistributedVector) -> DistributedVector:
        """Forward NTT of a distributed vector (counted)."""

    @abstractmethod
    def inverse(self, vec: DistributedVector) -> DistributedVector:
        """Inverse NTT (counted); accepts the forward output layout."""

    # -- analytic interface ------------------------------------------------------

    @abstractmethod
    def forward_profile(self, n: int) -> list[Step]:
        """Closed-form per-GPU phase profile of :meth:`forward`."""

    def inverse_profile(self, n: int) -> list[Step]:
        """Profile of :meth:`inverse`; symmetric by default."""
        return self.forward_profile(n)

    def estimate(self, machine: MachineModel, n: int,
                 inverse: bool = False) -> CostBreakdown:
        """Price one transform of size n on ``machine``."""
        model = CostModel(machine, self.field)
        profile = self.inverse_profile(n) if inverse \
            else self.forward_profile(n)
        return model.estimate(profile)

    # -- shared helpers ------------------------------------------------------------

    def _check_input(self, vec: DistributedVector, expected: Layout) -> None:
        if type(vec.layout) is not type(expected) or vec.layout != expected:
            raise PartitionError(
                f"{self.name} expects {expected!r}, got {vec.layout!r}")
