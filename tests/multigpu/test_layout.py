"""Tests for distributed data layouts."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PartitionError
from repro.multigpu import (
    BlockLayout, ColumnBlockLayout, CyclicLayout, SpectralLayout,
    TransposedBlockLayout, UniNTTExchangeLayout, collect, distribute,
)

ALL_SIMPLE = [
    lambda n, g: BlockLayout(n=n, gpu_count=g),
    lambda n, g: CyclicLayout(n=n, gpu_count=g),
]
NEEDS_SQUARE = [
    lambda n, g: SpectralLayout(n=n, gpu_count=g),
    lambda n, g: UniNTTExchangeLayout(n=n, gpu_count=g),
]


def matrix_layouts(n, g):
    rows = cols = 1 << ((n.bit_length() - 1) // 2)
    if rows * cols != n:
        cols *= 2
    if cols % g:
        return []
    return [ColumnBlockLayout(n=n, gpu_count=g, rows=rows, cols=cols),
            TransposedBlockLayout(n=n, gpu_count=g, rows=rows, cols=cols)]


def all_layouts(n, g):
    layouts = [make(n, g) for make in ALL_SIMPLE]
    if n >= g * g:
        layouts += [make(n, g) for make in NEEDS_SQUARE]
    layouts += matrix_layouts(n, g)
    return layouts


class TestValidation:
    def test_non_power_sizes(self):
        with pytest.raises(PartitionError, match="power of two"):
            BlockLayout(n=12, gpu_count=2)
        with pytest.raises(PartitionError, match="power of two"):
            BlockLayout(n=16, gpu_count=3)

    def test_too_many_gpus(self):
        with pytest.raises(PartitionError, match="cannot split"):
            BlockLayout(n=2, gpu_count=4)

    def test_spectral_needs_square(self):
        with pytest.raises(PartitionError, match="G\\^2"):
            SpectralLayout(n=8, gpu_count=4)
        with pytest.raises(PartitionError, match="G\\^2"):
            UniNTTExchangeLayout(n=8, gpu_count=4)

    def test_matrix_factor_check(self):
        with pytest.raises(PartitionError, match="factor"):
            ColumnBlockLayout(n=16, gpu_count=2, rows=2, cols=4)
        with pytest.raises(PartitionError, match="factor"):
            TransposedBlockLayout(n=16, gpu_count=2, rows=4, cols=8)

    def test_column_split_check(self):
        with pytest.raises(PartitionError, match="columns"):
            ColumnBlockLayout(n=16, gpu_count=8, rows=4, cols=4)

    def test_index_range_checks(self):
        layout = BlockLayout(n=8, gpu_count=2)
        with pytest.raises(PartitionError, match="out of range"):
            layout.owner(8)
        with pytest.raises(PartitionError):
            layout.global_index(2, 0)
        with pytest.raises(PartitionError):
            layout.global_index(0, 4)


class TestIndexMath:
    def test_block(self):
        layout = BlockLayout(n=8, gpu_count=2)
        assert layout.owner(0) == (0, 0)
        assert layout.owner(5) == (1, 1)
        assert layout.global_index(1, 3) == 7

    def test_cyclic(self):
        layout = CyclicLayout(n=8, gpu_count=2)
        assert layout.owner(0) == (0, 0)
        assert layout.owner(5) == (1, 2)
        assert layout.global_index(1, 3) == 7
        assert layout.global_index(0, 2) == 4

    def test_spectral(self):
        # n=16, G=2: M=8, chunk=4.  k = k1 + 8*k2.
        layout = SpectralLayout(n=16, gpu_count=2)
        assert layout.chunk == 4
        # k=0: k1=0,k2=0 -> gpu 0, local 0.
        assert layout.owner(0) == (0, 0)
        # k=9: k1=1,k2=1 -> gpu 0, local 1*2+1=3.
        assert layout.owner(9) == (0, 3)
        # k=6: k1=6,k2=0 -> gpu 1, local (6-4)*2+0=4.
        assert layout.owner(6) == (1, 4)

    def test_exchange(self):
        # n=16, G=2: M=8, chunk=4.  j = s*8 + k1.
        layout = UniNTTExchangeLayout(n=16, gpu_count=2)
        # j=0: s=0,k1=0 -> gpu 0, local 0.
        assert layout.owner(0) == (0, 0)
        # j=13: s=1,k1=5 -> gpu 1, local (5-4)*2+1=3.
        assert layout.owner(13) == (1, 3)

    def test_column_block(self):
        # 4x4 matrix over 2 GPUs: GPU 1 owns columns 2..3.
        layout = ColumnBlockLayout(n=16, gpu_count=2, rows=4, cols=4)
        # j = r*4+c; j=6 -> r=1,c=2 -> gpu 1, local 0*4+1=1.
        assert layout.owner(6) == (1, 1)
        assert layout.global_index(1, 1) == 6

    def test_transposed_block(self):
        layout = TransposedBlockLayout(n=16, gpu_count=2, rows=4, cols=4)
        # j=k1*4+k2; j=6 -> k1=1,k2=2 -> k=1+4*2=9 -> gpu 1, local 1.
        assert layout.owner(6) == (1, 1)
        assert layout.global_index(1, 1) == 6


@pytest.mark.parametrize("n,g", [(16, 2), (64, 4), (256, 4), (64, 8)])
def test_bijection_all_layouts(n, g):
    """owner and global_index are mutually inverse bijections."""
    for layout in all_layouts(n, g):
        seen = set()
        for gpu in range(g):
            for local in range(layout.shard_size):
                j = layout.global_index(gpu, local)
                assert 0 <= j < n
                assert j not in seen
                seen.add(j)
                assert layout.owner(j) == (gpu, local)
        assert len(seen) == n


class TestDistributeCollect:
    @pytest.mark.parametrize("n,g", [(16, 2), (64, 4)])
    def test_roundtrip(self, n, g, rng):
        values = list(range(n))
        for layout in all_layouts(n, g):
            shards = distribute(values, layout)
            assert len(shards) == g
            assert all(len(s) == n // g for s in shards)
            assert collect(shards, layout) == values

    def test_cyclic_shards_are_strides(self):
        layout = CyclicLayout(n=8, gpu_count=2)
        shards = distribute(list(range(8)), layout)
        assert shards == [[0, 2, 4, 6], [1, 3, 5, 7]]

    def test_block_shards_are_slices(self):
        layout = BlockLayout(n=8, gpu_count=2)
        shards = distribute(list(range(8)), layout)
        assert shards == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_distribute_length_check(self):
        with pytest.raises(PartitionError, match="layout is for"):
            distribute([1, 2], BlockLayout(n=4, gpu_count=2))

    def test_collect_shape_checks(self):
        layout = BlockLayout(n=4, gpu_count=2)
        with pytest.raises(PartitionError, match="GPUs"):
            collect([[1, 2]], layout)
        with pytest.raises(PartitionError, match="shard has"):
            collect([[1], [2, 3, 4]], layout)


@given(n_log=st.integers(min_value=4, max_value=8),
       g_log=st.integers(min_value=1, max_value=2))
def test_spectral_exchange_relationship(n_log, g_log):
    """SpectralLayout is UniNTTExchangeLayout with s replaced by k2.

    Both place (group, lane) pairs identically: slot (gpu, local) maps
    to the same (k1, second-index) decomposition.
    """
    n, g = 1 << n_log, 1 << g_log
    spectral = SpectralLayout(n=n, gpu_count=g)
    exchange = UniNTTExchangeLayout(n=n, gpu_count=g)
    m = n // g
    for gpu in range(g):
        for local in range(m):
            k = spectral.global_index(gpu, local)
            j = exchange.global_index(gpu, local)
            k1_spec, k2 = k % m, k // m
            s, k1_exch = j // m, j % m
            assert k1_spec == k1_exch
            assert k2 == s
