"""Tests for the plan executor (the UniNTT recursion's ground truth)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import PlanError
from repro.field import TEST_FIELD_7681
from repro.ntt import (
    balanced_plan, dft, execute_plan, execute_plan_inverse, leaf, ntt,
    plan_intt, plan_ntt, split,
)

F = TEST_FIELD_7681


def random_plan(n: int, rng: random.Random):
    """A random decomposition tree for size n."""
    if n <= 2 or rng.random() < 0.3:
        return leaf(n)
    log_n = n.bit_length() - 1
    outer_log = rng.randrange(1, log_n)
    return split(random_plan(1 << outer_log, rng),
                 random_plan(1 << (log_n - outer_log), rng))


class TestExecution:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 64, 256])
    def test_leaf_plan_matches_ntt(self, n, rng):
        x = F.random_vector(n, rng)
        assert plan_ntt(F, leaf(n), x) == ntt(F, x)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_plans_match_reference(self, seed):
        rng = random.Random(seed)
        n = 1 << rng.randrange(2, 9)
        plan = random_plan(n, rng)
        x = F.random_vector(n, rng)
        assert plan_ntt(F, plan, x) == dft(F, x), plan.describe()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_plans_roundtrip(self, seed):
        rng = random.Random(1000 + seed)
        n = 1 << rng.randrange(2, 8)
        plan = random_plan(n, rng)
        x = F.random_vector(n, rng)
        assert plan_intt(F, plan, plan_ntt(F, plan, x)) == x

    def test_deep_unbalanced_plan(self, rng):
        # 256 = 2 x (2 x (2 x 32)) — a pathological skewed tree.
        plan = split(leaf(2), split(leaf(2), split(leaf(2), leaf(32))))
        x = F.random_vector(256, rng)
        assert plan_ntt(F, plan, x) == ntt(F, x)

    def test_different_plans_same_spectrum(self, rng):
        x = F.random_vector(256, rng)
        plans = [balanced_plan(256, leaf_size=ls) for ls in (2, 4, 16, 256)]
        spectra = [plan_ntt(F, p, x) for p in plans]
        assert all(s == spectra[0] for s in spectra)

    def test_all_fields(self, ntt_field, rng):
        plan = balanced_plan(64, leaf_size=4)
        x = ntt_field.random_vector(64, rng)
        assert plan_ntt(ntt_field, plan, x) == ntt(ntt_field, x)


class TestExplicitRoots:
    def test_forward_inverse_with_root(self, rng):
        n = 64
        w = F.root_of_unity(n)
        plan = balanced_plan(n, leaf_size=4)
        x = F.random_vector(n, rng)
        spectrum = execute_plan(F, plan, x, w)
        assert spectrum == dft(F, x, root=w)
        assert execute_plan_inverse(F, plan, spectrum, w) == x

    def test_inverse_root_gives_unscaled_inverse(self, rng):
        n = 16
        w = F.root_of_unity(n)
        plan = balanced_plan(n, leaf_size=4)
        x = F.random_vector(n, rng)
        back = execute_plan(F, plan, execute_plan(F, plan, x, w), F.inv(w))
        n_inv = F.inv(n)
        assert [v * n_inv % F.modulus for v in back] == x


class TestValidation:
    def test_size_mismatch(self):
        with pytest.raises(PlanError, match="size"):
            execute_plan(F, leaf(8), [0] * 4, F.root_of_unity(8))

    def test_size_one(self):
        assert plan_ntt(F, leaf(1), [7]) == [7]
        assert plan_intt(F, leaf(1), [7]) == [7]


@given(st.integers(min_value=0, max_value=3),
       st.lists(st.integers(min_value=0, max_value=7680),
                min_size=64, max_size=64))
def test_plan_invariance_property(seed, values):
    """The spectrum is independent of the decomposition chosen."""
    rng = random.Random(seed)
    plan = random_plan(64, rng)
    assert plan_ntt(F, plan, values) == ntt(F, values)
