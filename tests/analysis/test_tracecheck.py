"""Trace race detector: clean engine runs pass, manufactured races fail."""

import random

import pytest

from repro.analysis import check_trace
from repro.field import GOLDILOCKS
from repro.multigpu import DistributedVector
from repro.multigpu.schedule import build_unintt_schedule
from repro.multigpu.unintt import UniNTTEngine
from repro.sim.cluster import SimCluster
from repro.sim.trace import Trace, TraceEvent

EB = 8


def checks_of(findings):
    return {finding.check for finding in findings}


def run_forward(n=256, gpus=4):
    field = GOLDILOCKS
    cluster = SimCluster(field, gpus)
    engine = UniNTTEngine(cluster)
    values = field.random_vector(n, random.Random(0))
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    engine.forward(vec)
    return cluster.trace


class TestCleanTraces:
    def test_engine_trace_is_clean(self):
        assert check_trace(run_forward()) == []

    def test_engine_trace_matches_schedule(self):
        trace = run_forward()
        schedule = build_unintt_schedule(256, 4, EB)
        assert check_trace(trace, schedule=schedule) == []

    def test_empty_trace_is_clean(self):
        assert check_trace(Trace()) == []


class TestManufacturedFaults:
    def test_unknown_kind(self):
        trace = Trace()
        trace.record(TraceEvent(kind="frobnicate", level="gpu"))
        assert checks_of(check_trace(trace)) == {"trace.unknown-kind"}

    def test_negative_charge(self):
        trace = Trace()
        trace.record(TraceEvent(kind="local-compute", level="gpu",
                                field_muls=-5))
        assert checks_of(check_trace(trace)) == {"trace.negative-charge"}

    def test_per_gpu_bytes_exceeding_total(self):
        trace = Trace()
        trace.record(TraceEvent(kind="all-to-all", level="multi-gpu",
                                max_bytes_per_gpu=100, total_bytes=10))
        assert checks_of(check_trace(trace)) == {
            "trace.inconsistent-bytes"}

    def test_write_conflict_same_step(self):
        trace = Trace()
        trace.record(TraceEvent(kind="local-compute", level="gpu",
                                step=7, gpu=2))
        trace.record(TraceEvent(kind="pointwise", level="gpu",
                                step=7, gpu=2))
        assert checks_of(check_trace(trace)) == {"trace.write-conflict"}

    def test_distinct_gpus_same_step_are_fine(self):
        trace = Trace()
        trace.record(TraceEvent(kind="local-compute", level="gpu",
                                step=7, gpu=2))
        trace.record(TraceEvent(kind="local-compute", level="gpu",
                                step=7, gpu=3))
        assert check_trace(trace) == []

    def test_unsynced_cross_device_read(self):
        trace = Trace()
        trace.record(TraceEvent(kind="local-compute", level="gpu",
                                gpu=0, reads=(1,)))
        assert checks_of(check_trace(trace)) == {"trace.unsynced-read"}

    def test_collective_may_read_remote(self):
        trace = Trace()
        trace.record(TraceEvent(kind="all-to-all", level="multi-gpu",
                                gpu=0, reads=(1, 2, 3),
                                max_bytes_per_gpu=8, total_bytes=24))
        assert check_trace(trace) == []

    def test_plan_divergence(self):
        trace = run_forward()
        # A schedule for twice the size disagrees on every level.
        schedule = build_unintt_schedule(512, 4, EB)
        assert "trace.plan-divergence" in checks_of(
            check_trace(trace, schedule=schedule))


class TestFaultResolution:
    def test_resolved_fault_is_clean(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="transient-comm@0"))
        trace.record(TraceEvent(kind="retry", level="resilience",
                                detail="attempt=1"))
        assert check_trace(trace) == []

    def test_reshard_resolves_device_death(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="device-death@0:gpu=1"))
        trace.record(TraceEvent(kind="reshard", level="resilience",
                                max_bytes_per_gpu=8, total_bytes=16,
                                detail="gpus 4->2"))
        assert check_trace(trace) == []

    def test_unresolved_fault_flagged(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="corrupt-shard@2:gpu=1"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.unresolved-fault"}
        assert "corrupt-shard@2:gpu=1" in findings[0].message

    def test_degradations_need_no_resolution(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="link-degrade@0:factor=0.5"))
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="straggler@0:gpu=2,factor=3"))
        assert check_trace(trace) == []

    def test_faults_and_resolutions_match_one_to_one(self):
        trace = Trace()
        for _ in range(2):
            trace.record(TraceEvent(kind="fault", level="resilience",
                                    detail="transient-comm@0"))
        trace.record(TraceEvent(kind="retry", level="resilience",
                                detail="attempt=1"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.unresolved-fault"}
        assert len(findings) == 1

    def test_resilience_level_exempt_from_plan_comparison(self):
        trace = run_forward()
        trace.record(TraceEvent(kind="checkpoint", level="resilience",
                                max_bytes_per_gpu=8, total_bytes=32))
        schedule = build_unintt_schedule(256, 4, EB)
        assert check_trace(trace, schedule=schedule) == []


class TestServeDanglingDispatch:
    def test_paired_dispatch_and_complete_is_clean(self):
        trace = Trace()
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=0 requests=2"))
        trace.record(TraceEvent(kind="serve-complete", level="serve",
                                detail="batch=0 finish=1.0"))
        assert check_trace(trace) == []

    def test_dangling_dispatch_is_flagged(self):
        trace = Trace()
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=0 requests=2"))
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=1 requests=1"))
        trace.record(TraceEvent(kind="serve-complete", level="serve",
                                detail="batch=0 finish=1.0"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.serve-dangling-dispatch"}
        assert len(findings) == 1
        assert "batch=1" in findings[0].message

    def test_batches_pair_by_id_not_by_order(self):
        trace = Trace()
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=0 requests=1"))
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=1 requests=1"))
        trace.record(TraceEvent(kind="serve-complete", level="serve",
                                detail="batch=1 finish=1.0"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.serve-dangling-dispatch"}
        assert "batch=0" in findings[0].message

    def test_accept_reject_cache_events_are_clean(self):
        trace = Trace()
        trace.record(TraceEvent(kind="serve-accept", level="serve",
                                detail="request=0 queue=1/4"))
        trace.record(TraceEvent(kind="serve-reject", level="serve",
                                detail="request=1 queue-full capacity=4"))
        trace.record(TraceEvent(kind="serve-cache", level="serve",
                                detail="batch=0 plan-miss"))
        assert check_trace(trace) == []

    def test_serve_level_exempt_from_plan_comparison(self):
        trace = run_forward()
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=0"))
        trace.record(TraceEvent(kind="serve-complete", level="serve",
                                detail="batch=0"))
        schedule = build_unintt_schedule(256, 4, EB)
        assert check_trace(trace, schedule=schedule) == []


class TestUnrecoveredCrash:
    def test_crash_answered_by_recover_is_clean(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="server-crash@9"))
        trace.record(TraceEvent(kind="serve-recover", level="serve",
                                detail="journal-seq=9 replayed=4 "
                                       "requeued=2"))
        assert check_trace(trace) == []

    def test_unanswered_crash_is_flagged(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="server-crash@9"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.unrecovered-crash"}
        assert "server-crash@9" in findings[0].message

    def test_recover_out_of_nowhere_is_flagged(self):
        trace = Trace()
        trace.record(TraceEvent(kind="serve-recover", level="serve",
                                detail="journal-seq=9 replayed=4 "
                                       "requeued=2"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.unrecovered-crash"}
        assert "answers no" in findings[0].message

    def test_other_fault_kinds_do_not_open_a_crash(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="transient-comm@3"))
        trace.record(TraceEvent(kind="retry", level="resilience",
                                detail="transient-comm@3 "
                                       "TransientCommError attempt=2"))
        assert checks_of(check_trace(trace)) \
            .isdisjoint({"trace.unrecovered-crash"})


class TestShedAndCompleted:
    def test_shed_request_in_completed_batch_is_flagged(self):
        trace = Trace()
        trace.record(TraceEvent(kind="serve-shed", level="serve",
                                detail="request=3 fault-rate=0.6"))
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=0 ids=3,4 requests=2"))
        trace.record(TraceEvent(kind="serve-complete", level="serve",
                                detail="batch=0 finish=1.0"))
        findings = check_trace(trace)
        assert "trace.shed-and-completed" in checks_of(findings)
        assert any("request 3" in f.message for f in findings)

    def test_shed_without_completion_is_clean(self):
        trace = Trace()
        trace.record(TraceEvent(kind="serve-shed", level="serve",
                                detail="request=3 fault-rate=0.6"))
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=0 ids=4,5 requests=2"))
        trace.record(TraceEvent(kind="serve-complete", level="serve",
                                detail="batch=0 finish=1.0"))
        assert check_trace(trace) == []

    def test_dispatched_but_never_completed_shed_is_clean(self):
        # The shed id appears in a batch that never completes; only a
        # *completed* batch convicts.
        trace = Trace()
        trace.record(TraceEvent(kind="serve-shed", level="serve",
                                detail="request=3 fault-rate=0.6"))
        trace.record(TraceEvent(kind="serve-dispatch", level="serve",
                                detail="batch=0 ids=3 requests=1"))
        findings = check_trace(trace)
        assert "trace.shed-and-completed" not in checks_of(findings)


class TestJournalGap:
    def test_contiguous_sequence_is_clean(self):
        trace = Trace()
        for seq in range(4):
            trace.record(TraceEvent(kind="serve-journal", level="serve",
                                    detail=f"seq={seq} kind=admit"))
        assert check_trace(trace) == []

    def test_gap_is_flagged(self):
        trace = Trace()
        for seq in (0, 1, 3):
            trace.record(TraceEvent(kind="serve-journal", level="serve",
                                    detail=f"seq={seq} kind=admit"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.journal-gap"}
        assert "expected 2" in findings[0].message

    def test_recover_resets_the_expectation(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="server-crash@5"))
        trace.record(TraceEvent(kind="serve-recover", level="serve",
                                detail="journal-seq=5 replayed=3 "
                                       "requeued=1"))
        trace.record(TraceEvent(kind="serve-journal", level="serve",
                                detail="seq=6 kind=recover"))
        trace.record(TraceEvent(kind="serve-journal", level="serve",
                                detail="seq=7 kind=dispatch"))
        assert check_trace(trace) == []

    def test_wrong_seq_after_recover_is_flagged(self):
        trace = Trace()
        trace.record(TraceEvent(kind="fault", level="resilience",
                                detail="server-crash@5"))
        trace.record(TraceEvent(kind="serve-recover", level="serve",
                                detail="journal-seq=5 replayed=3 "
                                       "requeued=1"))
        trace.record(TraceEvent(kind="serve-journal", level="serve",
                                detail="seq=9 kind=recover"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.journal-gap"}


def _serve(kind, detail):
    return TraceEvent(kind=kind, level="serve", detail=detail)


class TestUnresolvedSuspicion:
    def test_suspicion_resolved_by_recovery_is_clean(self):
        trace = Trace()
        trace.record(_serve("serve-heartbeat",
                            "replica=1 suspect phi=4 tick=7"))
        trace.record(_serve("serve-heartbeat",
                            "replica=1 recovered tick=9"))
        assert check_trace(trace) == []

    def test_suspicion_resolved_by_failover_is_clean(self):
        trace = Trace()
        trace.record(_serve("serve-heartbeat",
                            "replica=1 suspect phi=8 tick=9"))
        trace.record(_serve("serve-failover",
                            "replica=1 orphans=2 replayed=5 tick=9"))
        assert check_trace(trace) == []

    def test_hanging_suspicion_is_flagged(self):
        trace = Trace()
        trace.record(_serve("serve-heartbeat",
                            "replica=0 suspect phi=4 tick=3"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.unresolved-suspicion"}
        assert "never resolved" in findings[0].message

    def test_failover_out_of_nowhere_is_flagged(self):
        trace = Trace()
        trace.record(_serve("serve-failover",
                            "replica=2 orphans=0 replayed=1 tick=4"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.unresolved-suspicion"}
        assert "answers no open suspicion" in findings[0].message

    def test_suspicions_key_on_the_replica(self):
        # A failover of replica 1 cannot retire replica 0's suspicion.
        trace = Trace()
        trace.record(_serve("serve-heartbeat",
                            "replica=0 suspect phi=4 tick=3"))
        trace.record(_serve("serve-failover",
                            "replica=1 orphans=0 replayed=0 tick=4"))
        findings = check_trace(trace)
        assert [f.check for f in findings] \
            == ["trace.unresolved-suspicion"] * 2


class TestDuplicateComplete:
    def test_each_request_completing_once_is_clean(self):
        trace = Trace()
        trace.record(_serve("serve-dispatch", "batch=0 ids=1,2 n=16"))
        trace.record(_serve("serve-complete", "batch=0 finish=1e-3"))
        trace.record(_serve("serve-dispatch", "batch=1 ids=3 n=16"))
        trace.record(_serve("serve-complete", "batch=1 finish=2e-3"))
        assert check_trace(trace) == []

    def test_request_completing_in_two_batches_is_flagged(self):
        trace = Trace()
        trace.record(_serve("serve-dispatch", "batch=0 ids=1,2 n=16"))
        trace.record(_serve("serve-complete", "batch=0 finish=1e-3"))
        trace.record(_serve("serve-dispatch", "batch=1 ids=2 n=16"))
        trace.record(_serve("serve-complete", "batch=1 finish=2e-3"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.duplicate-complete"}
        assert "request 2" in findings[0].message

    def test_failover_readmission_that_completes_once_is_clean(self):
        # The fleet's exactly-once shape: the dead replica's dispatch
        # is voided by its failover, the orphan re-runs elsewhere and
        # completes exactly once.
        trace = Trace()
        trace.record(_serve("serve-heartbeat",
                            "replica=0 suspect phi=8 tick=9"))
        trace.record(_serve("serve-dispatch",
                            "batch=0 ids=7 n=16 replica=0"))
        trace.record(_serve("serve-failover",
                            "replica=0 orphans=1 replayed=2 tick=9"))
        trace.record(_serve("serve-dispatch",
                            "batch=1 ids=7 n=16 replica=1"))
        trace.record(_serve("serve-complete",
                            "batch=1 finish=2e-3 replica=1"))
        assert check_trace(trace) == []


class TestPerReplicaJournalGap:
    def test_interleaved_replica_journals_are_keyed_apart(self):
        # Two replicas interleave seqs 0,1 each on one shared trace;
        # a global expectation would misfire, the per-replica one is
        # clean.
        trace = Trace()
        for seq, replica in ((0, 0), (0, 1), (1, 0), (1, 1)):
            trace.record(_serve(
                "serve-journal",
                f"seq={seq} kind=admit replica={replica}"))
        assert check_trace(trace) == []

    def test_gap_in_one_replica_stream_is_flagged(self):
        trace = Trace()
        trace.record(_serve("serve-journal", "seq=0 kind=admit replica=0"))
        trace.record(_serve("serve-journal", "seq=0 kind=admit replica=1"))
        trace.record(_serve("serve-journal", "seq=2 kind=admit replica=1"))
        findings = check_trace(trace)
        assert checks_of(findings) == {"trace.journal-gap"}

    def test_failover_fences_only_the_dead_replicas_journal(self):
        # After replica 0's failover its journal expectation resets
        # (rejoin starts a fresh journal at seq 0); replica 1's stream
        # must stay contiguous.
        trace = Trace()
        trace.record(_serve("serve-heartbeat",
                            "replica=0 suspect phi=8 tick=9"))
        trace.record(_serve("serve-journal", "seq=0 kind=admit replica=0"))
        trace.record(_serve("serve-journal", "seq=0 kind=admit replica=1"))
        trace.record(_serve("serve-failover",
                            "replica=0 orphans=0 replayed=1 tick=9"))
        trace.record(_serve("serve-journal", "seq=0 kind=admit replica=0"))
        trace.record(_serve("serve-journal", "seq=1 kind=admit replica=1"))
        assert check_trace(trace) == []
