"""ServeReport accounting: percentiles, folding, serialization."""

import json

import pytest

from repro.errors import ServeError
from repro.hw import DGX_A100
from repro.serve import ProofServer, ProofRequest, percentile


def test_percentile_is_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.25) == 1.0
    assert percentile(values, 0.5) == 2.0
    assert percentile(values, 0.75) == 3.0
    assert percentile(values, 1.0) == 4.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ServeError):
        percentile(values, 1.5)


def _report():
    workload = [
        ProofRequest(request_id=0, field_name="Goldilocks", log_size=4),
        ProofRequest(request_id=1, field_name="BabyBear", log_size=6,
                     arrival_s=1.0),
    ]
    return ProofServer(DGX_A100).serve(workload)


def test_breakdown_groups_by_field():
    report = _report()
    breakdown = report.breakdown_by_field(DGX_A100)
    assert sorted(breakdown) == ["BabyBear", "Goldilocks"]
    assert all(b.total_s > 0 for b in breakdown.values())


def test_plan_cost_validates_and_matches_busy_time():
    report = _report()
    cost = report.plan_cost(DGX_A100)
    cost.validate()
    assert cost.total_s == pytest.approx(report.modeled_busy_s())


def test_latency_includes_queueing_not_just_service():
    report = _report()
    for result in report.results:
        assert result.latency_s >= result.finish_s - result.start_s


def test_json_is_machine_readable_and_sorted():
    payload = json.loads(_report().to_json())
    assert payload["machine"] == "DGX-A100"
    assert payload["completed"] == 2
    assert "latency_percentiles_s" in payload
    assert list(payload) == sorted(payload)
