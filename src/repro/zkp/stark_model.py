"""End-to-end cost model for hash-based (STARK-family) provers.

The second proving paradigm the paper's NTT acceleration serves.  A
STARK prover has **no MSM at all**: its time is low-degree extensions
(big batched coset NTTs), constraint evaluation (pointwise), Merkle
hashing, and FRI folding.  That makes the NTT share of proof time far
larger than in pairing-based systems — the strongest version of the
paper's motivation.

Per proof of a ``columns``-wide trace of length ``n`` with LDE blowup
``b`` (defaults follow Plonky2-style systems over Goldilocks):

* ``columns`` INTTs of size n (trace to coefficients);
* ``columns`` coset NTTs of size b*n (the LDE);
* 1 INTT + 1 coset NTT of size b*n (composition polynomial);
* FRI: log2 folding rounds, each a pointwise pass over a halving
  domain, plus one Merkle tree per round;
* Merkle hashing of the LDE matrix and FRI layers.

Hashing throughput is a machine-level parameter (``hashes_per_s``,
defaulting to a GPU Poseidon2-class rate of ~1e9/s per device); everything else reuses the
NTT engines and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProverError
from repro.field.presets import GOLDILOCKS
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel
from repro.hw.model import MachineModel
from repro.multigpu.base import DistributedNTTEngine
from repro.ntt.polymul import next_power_of_two

__all__ = ["StarkCostEstimate", "StarkCostModel"]


@dataclass(frozen=True)
class StarkCostEstimate:
    """Seconds per STARK proof, split by kernel family."""

    trace_length: int
    lde_size: int
    ntt_s: float
    hash_s: float
    pointwise_s: float

    @property
    def total_s(self) -> float:
        return self.ntt_s + self.hash_s + self.pointwise_s

    def ntt_fraction(self) -> float:
        return self.ntt_s / self.total_s if self.total_s else 0.0


class StarkCostModel:
    """Prices a STARK proof on one machine with one NTT engine choice."""

    def __init__(self, machine: MachineModel,
                 ntt_engine: DistributedNTTEngine,
                 field: PrimeField = GOLDILOCKS,
                 columns: int = 96,
                 blowup: int = 8,
                 final_degree: int = 64,
                 constraint_ops: int = 8,
                 hashes_per_s: float = 1e9):
        if columns < 1:
            raise ProverError(f"columns must be >= 1, got {columns}")
        if blowup < 2 or blowup & (blowup - 1):
            raise ProverError(
                f"blowup must be a power of two >= 2, got {blowup}")
        if hashes_per_s <= 0:
            raise ProverError("hashes_per_s must be positive")
        self.machine = machine
        self.engine = ntt_engine
        self.field = field
        self.columns = columns
        self.blowup = blowup
        self.final_degree = final_degree
        self.constraint_ops = constraint_ops
        self.hashes_per_s = hashes_per_s
        self._cost = CostModel(machine, field)

    # -- pieces ------------------------------------------------------------

    def ntt_seconds(self, n: int) -> float:
        """All transforms of one proof on the bound engine."""
        lde = self.blowup * n
        per_trace_intt = self.engine.estimate(self.machine, n,
                                              inverse=True).total_s
        per_lde_ntt = self.engine.estimate(self.machine, lde).total_s
        composition_intt = self.engine.estimate(self.machine, lde,
                                                inverse=True).total_s
        return (self.columns * (per_trace_intt + per_lde_ntt)
                + composition_intt + per_lde_ntt)

    def hash_seconds(self, n: int) -> float:
        """Merkle trees over the LDE matrix and the FRI layers.

        Hashing parallelizes perfectly across the machine's GPUs.
        """
        lde = self.blowup * n
        # LDE matrix: one leaf hash per (row), compressing `columns`
        # values, plus the internal tree: ~2 * lde hashes total; the
        # leaf row-compression costs columns/8 hash calls each (8
        # field elements per permutation call).
        leaf_hashes = lde * max(1, self.columns // 8)
        tree_hashes = 2 * lde
        # FRI layers halve: total extra leaves < lde.
        fri_hashes = 2 * lde
        total = leaf_hashes + tree_hashes + fri_hashes
        return total / (self.hashes_per_s * self.machine.gpu_count)

    def pointwise_seconds(self, n: int) -> float:
        """Constraint evaluation + FRI folds: streaming passes."""
        lde = self.blowup * n
        eb = self._cost.element_bytes
        constraint_bytes = 2 * lde * self.columns * eb  # read cols, write
        constraint_muls = lde * self.columns * self.constraint_ops
        fold_bytes = 4 * lde * eb  # geometric sum of halving passes
        per_gpu = self.machine.gpu_count
        seconds = max(
            self._cost.memory_seconds((constraint_bytes + fold_bytes)
                                      // per_gpu),
            self._cost.compute_seconds(constraint_muls // per_gpu))
        return seconds

    # -- the headline -----------------------------------------------------------

    def proof_cost(self, trace_length: int) -> StarkCostEstimate:
        """Estimated proof time for a trace of the given length."""
        if trace_length < 1:
            raise ProverError(
                f"trace_length must be >= 1, got {trace_length}")
        n = next_power_of_two(trace_length)
        return StarkCostEstimate(
            trace_length=n,
            lde_size=self.blowup * n,
            ntt_s=self.ntt_seconds(n),
            hash_s=self.hash_seconds(n),
            pointwise_s=self.pointwise_seconds(n),
        )
