"""Functional multi-GPU simulator: devices, collectives, traces."""

from repro.sim.cluster import SimCluster
from repro.sim.device import GpuCounters, SimGPU
from repro.sim.report import render_events, render_summary, render_trace
from repro.sim.trace import Trace, TraceEvent
from repro.sim.uniform import (
    HIERARCHY_SCALES, LevelRun, simulate_at_level, uniformity_sweep,
)

__all__ = ["SimCluster", "SimGPU", "GpuCounters", "Trace", "TraceEvent",
           "LevelRun", "HIERARCHY_SCALES", "simulate_at_level",
           "uniformity_sweep",
           "render_events", "render_summary", "render_trace"]
