"""Tests for the recursive radix-4 transform."""

import pytest

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.ntt import (
    dft, intt_radix4, ntt, ntt_radix4, radix2_butterfly_count,
    radix4_multiply_count,
)

F = TEST_FIELD_7681


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 64, 128, 256, 512])
    def test_matches_dft_all_power_parities(self, n, rng):
        """Covers both even powers (pure radix-4) and odd (mixed)."""
        x = F.random_vector(n, rng)
        assert ntt_radix4(F, x) == dft(F, x)

    def test_all_fields(self, ntt_field, rng):
        x = ntt_field.random_vector(64, rng)
        assert ntt_radix4(ntt_field, x) == ntt(ntt_field, x)

    @pytest.mark.parametrize("n", [4, 16, 32, 256])
    def test_roundtrip(self, n, rng):
        x = F.random_vector(n, rng)
        assert intt_radix4(F, ntt_radix4(F, x)) == x

    def test_mix_with_radix2_inverse(self, rng):
        """Radix choice is an implementation detail: spectra agree."""
        from repro.ntt import intt
        x = F.random_vector(64, rng)
        assert intt(F, ntt_radix4(F, x)) == x

    def test_explicit_root(self, rng):
        n = 16
        w = F.root_of_unity(n)
        x = F.random_vector(n, rng)
        assert ntt_radix4(F, x, root=w) == dft(F, x, root=w)
        assert intt_radix4(F, ntt_radix4(F, x, root=w), root=w) == x


class TestValidation:
    @pytest.mark.parametrize("n", [0, 3, 12])
    def test_bad_sizes(self, n):
        with pytest.raises(NTTError, match="power of two"):
            ntt_radix4(F, [0] * n)
        with pytest.raises(NTTError, match="power of two"):
            intt_radix4(F, [0] * n)


class TestMultiplyCount:
    def test_base_cases(self):
        assert radix4_multiply_count(1) == 0
        assert radix4_multiply_count(2) == 0
        assert radix4_multiply_count(4) == 3

    def test_recurrences(self):
        assert radix4_multiply_count(16) == 4 * 3 + 3 * 4
        # 8 = 4 x 2: four size-2 butterflies (free) + one combine level.
        assert radix4_multiply_count(8) == 3 * 2

    @pytest.mark.parametrize("log_n", [4, 6, 8, 10, 12, 20])
    def test_beats_radix2(self, log_n):
        n = 1 << log_n
        assert radix4_multiply_count(n) < radix2_butterfly_count(n)

    def test_asymptotic_ratio(self):
        """Radix-4 should save roughly 25% of twiddle multiplies."""
        n = 1 << 20
        ratio = radix4_multiply_count(n) / radix2_butterfly_count(n)
        assert 0.70 < ratio < 0.85
