"""EventLoop and SharedCounter: deterministic next-event selection.

The fleet replays bit-identically only if "what happens next" is a
pure function of the schedule.  These tests pin the ordering contract
— ``(t_s, priority, seq)``, payload never consulted — plus lazy
cancellation and the monotonic shared id source.
"""

import pytest

from repro.errors import ServeError
from repro.runtime import EventLoop, SharedCounter, VirtualClock


class TestSharedCounter:
    def test_is_monotonic_and_peekable(self):
        counter = SharedCounter()
        assert counter.peek == 0
        assert [counter.next() for _ in range(3)] == [0, 1, 2]
        assert counter.peek == 3

    def test_advance_to_never_rewinds(self):
        counter = SharedCounter(start=5)
        counter.advance_to(3)
        assert counter.peek == 5
        counter.advance_to(9)
        assert counter.next() == 9

    def test_negative_start_rejected(self):
        with pytest.raises(ServeError):
            SharedCounter(start=-1)


class TestEventLoop:
    def test_pops_in_time_order_and_advances_the_clock(self):
        loop = EventLoop()
        loop.schedule(2.0, "b")
        loop.schedule(1.0, "a")
        loop.schedule(3.0, "c")
        kinds = [loop.pop_next().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]
        assert loop.clock.now_s == 3.0

    def test_ties_break_on_priority_then_insertion(self):
        loop = EventLoop()
        loop.schedule(1.0, "late-class", priority=2)
        loop.schedule(1.0, "first-in", priority=1)
        loop.schedule(1.0, "second-in", priority=1)
        kinds = [loop.pop_next().kind for _ in range(3)]
        assert kinds == ["first-in", "second-in", "late-class"]

    def test_payload_never_influences_ordering(self):
        # Payloads may be unorderable (dicts, None); ties must resolve
        # on seq without ever comparing them.
        loop = EventLoop()
        loop.schedule(1.0, "x", payload={"un": "orderable"})
        loop.schedule(1.0, "y", payload=None)
        assert [loop.pop_next().kind for _ in range(2)] == ["x", "y"]

    def test_cancellation_is_lazy_but_invisible(self):
        loop = EventLoop()
        doomed = loop.schedule(1.0, "doomed")
        loop.schedule(2.0, "kept")
        loop.cancel(doomed)
        assert len(loop) == 1
        assert loop.peek_next_time() == 2.0
        assert loop.pop_next().kind == "kept"
        loop.cancel(doomed)  # cancelling again is a no-op
        assert loop.empty

    def test_cannot_schedule_in_the_past_or_at_non_finite_times(self):
        loop = EventLoop(VirtualClock(start_s=5.0))
        with pytest.raises(ServeError, match="past"):
            loop.schedule(4.9, "too-late")
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ServeError, match="non-finite"):
                loop.schedule(bad, "unreal")

    def test_pop_on_empty_raises(self):
        loop = EventLoop()
        assert loop.peek_next_time() is None
        with pytest.raises(ServeError, match="empty"):
            loop.pop_next()

    def test_rescheduling_while_draining_is_stable(self):
        # A handler scheduling new events mid-drain (how heartbeats
        # self-perpetuate) must not disturb the order of pending ones.
        loop = EventLoop()
        loop.schedule(1.0, "tick")
        loop.schedule(2.0, "arrival")
        seen = []
        while not loop.empty:
            event = loop.pop_next()
            seen.append((event.t_s, event.kind))
            if event.kind == "tick" and event.t_s < 3.0:
                loop.schedule(event.t_s + 1.0, "tick")
        assert seen == [(1.0, "tick"), (2.0, "arrival"), (2.0, "tick"),
                        (3.0, "tick")]
