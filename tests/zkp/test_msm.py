"""Tests for multi-scalar multiplication."""

import pytest

from repro.errors import CurveError
from repro.zkp import (
    BN254_G1, MsmWorkModel, msm_naive, msm_pippenger,
    pippenger_window_bits,
)

GEN = BN254_G1.generator()


def sample_instance(n, rng):
    scalars = [rng.randrange(BN254_G1.order) for _ in range(n)]
    points = [GEN * rng.randrange(1, 10_000) for _ in range(n)]
    return scalars, points


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 40])
    def test_pippenger_matches_naive(self, n, rng):
        scalars, points = sample_instance(n, rng)
        assert msm_pippenger(BN254_G1, scalars, points) == \
            msm_naive(BN254_G1, scalars, points)

    @pytest.mark.parametrize("window", [1, 2, 4, 8, 13])
    def test_window_sizes(self, window, rng):
        scalars, points = sample_instance(10, rng)
        expected = msm_naive(BN254_G1, scalars, points)
        assert msm_pippenger(BN254_G1, scalars, points,
                             window_bits=window) == expected

    def test_empty(self):
        assert msm_pippenger(BN254_G1, [], []).is_infinity()
        assert msm_naive(BN254_G1, [], []).is_infinity()

    def test_zero_scalars(self, rng):
        _, points = sample_instance(5, rng)
        assert msm_pippenger(BN254_G1, [0] * 5, points).is_infinity()

    def test_unreduced_scalars(self, rng):
        _, points = sample_instance(3, rng)
        scalars = [BN254_G1.order + 2, 2 * BN254_G1.order + 3, -1]
        assert msm_pippenger(BN254_G1, scalars, points) == \
            msm_naive(BN254_G1, [2, 3, BN254_G1.order - 1], points)

    def test_single_term(self):
        assert msm_pippenger(BN254_G1, [7], [GEN]) == GEN * 7


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(CurveError, match="equal lengths"):
            msm_pippenger(BN254_G1, [1, 2], [GEN])

    def test_bad_window(self):
        with pytest.raises(CurveError, match="window_bits"):
            msm_pippenger(BN254_G1, [1], [GEN], window_bits=0)

    def test_foreign_point_rejected(self):
        from repro.field import PrimeField
        from repro.zkp import CurveParams
        tiny = CurveParams(name="t", base=PrimeField(13), a=0, b=3,
                           generator_x=1, generator_y=2, order=7)
        with pytest.raises(CurveError, match="same curve"):
            msm_naive(BN254_G1, [1], [tiny.generator()])


class TestWindowHeuristic:
    def test_grows_with_n(self):
        assert pippenger_window_bits(16) <= pippenger_window_bits(1 << 20)

    def test_clamped(self):
        assert pippenger_window_bits(0) == 1
        assert pippenger_window_bits(4) == 1
        assert pippenger_window_bits(1 << 30) == 16


class TestWorkModel:
    def test_zero_size(self):
        model = MsmWorkModel()
        assert model.point_adds(0) == 0

    def test_monotone_in_n(self):
        model = MsmWorkModel()
        assert model.field_muls(1 << 10) < model.field_muls(1 << 20)

    def test_sublinear_amortization(self):
        """Pippenger cost per point falls as n grows."""
        model = MsmWorkModel()
        per_small = model.field_muls(1 << 10) / (1 << 10)
        per_big = model.field_muls(1 << 22) / (1 << 22)
        assert per_big < per_small

    def test_multi_gpu_divides_work(self):
        model = MsmWorkModel()
        n = 1 << 20
        single = model.field_muls(n)
        per_gpu = model.field_muls_multi_gpu(n, 8)
        assert per_gpu < single
        # near-linear: within 2x of ideal split
        assert per_gpu < 2 * single / 8 + model.field_muls(0) + 10**6

    def test_multi_gpu_validation(self):
        with pytest.raises(CurveError, match="gpu_count"):
            MsmWorkModel().field_muls_multi_gpu(100, 0)

    def test_explicit_window(self):
        model = MsmWorkModel()
        # windows = ceil(254/c); adds = windows*(n + 2^(c+1)).
        assert model.point_adds(100, window_bits=127) == 2 * (100 + 2 ** 128)
        assert model.point_doubles(100, window_bits=127) == 127
