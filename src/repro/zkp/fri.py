"""FRI: the Fast Reed-Solomon IOP of proximity.

The NTT workload of hash-based (STARK-family) proof systems: the prover
low-degree-extends a polynomial onto a ``blowup``-times-larger coset
(one big coset NTT), Merkle-commits the evaluations, and then repeatedly
*folds* the function in half with verifier randomness until the residual
polynomial is small enough to send in the clear.  Queries spot-check the
folds against the Merkle roots.

Folding rule, with ``x`` ranging over the round's coset and ``beta`` the
round challenge::

    f'(x^2) = (f(x) + f(-x)) / 2  +  beta * (f(x) - f(-x)) / (2x)

i.e. the even part plus beta times the odd part — which halves both the
degree bound and the domain.  Completeness: folding a degree < d
polynomial yields degree < d/2, so an honest prover always passes.
Soundness (far words get caught by queries) is inherited from the
published analysis; this implementation reproduces the prover's exact
computation and the verifier's exact checks, with a SHA-256 Fiat-Shamir
transcript for non-interactivity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProverError
from repro.field.prime_field import PrimeField
from repro.field.vector import vec_inv
from repro.ntt import coset as coset_mod
from repro.ntt.twiddle import default_cache
from repro.zkp.merkle import MerklePath, MerkleTree

__all__ = ["FriParameters", "FriProof", "FriQueryRound", "FriProver",
           "FriVerifier", "Transcript", "low_degree_extend",
           "fri_query_indices"]


class Transcript:
    """A SHA-256 Fiat-Shamir transcript."""

    def __init__(self, label: bytes = b"repro-fri"):
        self._state = hashlib.sha256(label).digest()

    def absorb(self, data: bytes) -> None:
        self._state = hashlib.sha256(self._state + data).digest()

    def absorb_int(self, value: int) -> None:
        self.absorb(value.to_bytes((max(value.bit_length(), 1) + 7) // 8,
                                   "big"))

    def challenge_field(self, field: PrimeField) -> int:
        """Draw a field element (rejection-free: 2x modulus bits)."""
        width = (2 * field.modulus.bit_length() + 7) // 8
        out = b""
        counter = 0
        while len(out) < width:
            out += hashlib.sha256(self._state + counter.to_bytes(4, "big")
                                  ).digest()
            counter += 1
        self.absorb(b"challenge")
        return int.from_bytes(out[:width], "big") % field.modulus

    def challenge_index(self, bound: int) -> int:
        """Draw a query index in [0, bound)."""
        digest = hashlib.sha256(self._state + b"index").digest()
        self.absorb(b"index")
        return int.from_bytes(digest, "big") % bound


@dataclass(frozen=True)
class FriParameters:
    """Protocol parameters."""

    field: PrimeField
    degree_bound: int         # strict: deg(f) < degree_bound (power of 2)
    blowup: int = 4           # domain size = blowup * degree_bound
    final_degree: int = 4     # stop folding at deg < final_degree
    query_count: int = 16

    def __post_init__(self) -> None:
        for name in ("degree_bound", "blowup", "final_degree"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ProverError(f"{name} must be a power of two, "
                                  f"got {value}")
        if self.final_degree > self.degree_bound:
            raise ProverError("final_degree cannot exceed degree_bound")
        if self.query_count < 1:
            raise ProverError("query_count must be positive")

    @property
    def domain_size(self) -> int:
        return self.degree_bound * self.blowup

    @property
    def round_count(self) -> int:
        """Folding rounds until the degree bound reaches final_degree."""
        rounds = 0
        degree = self.degree_bound
        while degree > self.final_degree:
            degree //= 2
            rounds += 1
        return rounds

    def coset_shift(self) -> int:
        return self.field.multiplicative_generator


@dataclass(frozen=True)
class FriQueryRound:
    """One round's openings for one query: f(x) and f(-x)."""

    point_path: MerklePath
    negated_path: MerklePath


@dataclass(frozen=True)
class FriProof:
    """Commitments, per-query openings, and the final polynomial."""

    roots: tuple[bytes, ...]
    queries: tuple[tuple[FriQueryRound, ...], ...]  # [query][round]
    final_coefficients: tuple[int, ...]


def low_degree_extend(field: PrimeField, coefficients: Sequence[int],
                      params: FriParameters) -> list[int]:
    """Evaluate a degree < degree_bound polynomial on the FRI coset."""
    if len(coefficients) > params.degree_bound:
        raise ProverError(
            f"{len(coefficients)} coefficients exceed the degree bound "
            f"{params.degree_bound}")
    padded = list(coefficients) + [0] * (params.domain_size
                                         - len(coefficients))
    return coset_mod.coset_ntt(field, padded, params.coset_shift(),
                               default_cache)


class FriProver:
    """Produces FRI proximity proofs for committed evaluations."""

    def __init__(self, params: FriParameters):
        self.params = params
        self.field = params.field

    def prove(self, coefficients: Sequence[int]) -> FriProof:
        """Prove that ``coefficients`` is a low-degree polynomial.

        Runs the full commit phase (fold + Merkle per round) and answers
        Fiat-Shamir queries.
        """
        return self.prove_evaluations(
            low_degree_extend(self.field, coefficients, self.params))

    def prove_evaluations(self, evaluations: Sequence[int],
                          transcript: Transcript | None = None) -> FriProof:
        """Prove proximity for evaluations already on the FRI coset.

        This is the entry point outer protocols (the STARK prover) use:
        they compute the composition polynomial *pointwise* on the coset
        and never materialize its coefficients.  An optional seeded
        ``transcript`` binds the proof to outer-protocol commitments.
        """
        field = self.field
        p = field.modulus
        params = self.params
        if len(evaluations) != params.domain_size:
            raise ProverError(
                f"need {params.domain_size} evaluations, got "
                f"{len(evaluations)}")
        if transcript is None:
            transcript = Transcript()
        evaluations = list(evaluations)
        layers: list[list[int]] = [evaluations]
        trees: list[MerkleTree] = [MerkleTree(evaluations)]
        transcript.absorb(trees[0].root)

        shift = params.coset_shift()
        size = params.domain_size
        half_inv = field.inv(2)
        for _ in range(params.round_count):
            beta = transcript.challenge_field(field)
            current = layers[-1]
            half = size // 2
            # x_j = shift * w^j for the current coset.
            omega = field.root_of_unity(size)
            xs = default_cache.powers(field, omega, half)
            xs = [shift * x % p for x in xs]
            inv_xs = vec_inv(field, xs)
            folded = [0] * half
            for j in range(half):
                even = (current[j] + current[j + half]) * half_inv % p
                odd = (current[j] - current[j + half]) * half_inv % p \
                    * inv_xs[j] % p
                folded[j] = (even + beta * odd) % p
            layers.append(folded)
            trees.append(MerkleTree(folded))
            transcript.absorb(trees[-1].root)
            size = half
            shift = shift * shift % p

        # Final layer: recover and send the residual coefficients.
        final_evals = layers[-1]
        final_coeffs = coset_mod.coset_intt(field, final_evals, shift,
                                            default_cache)
        # Degree check on our own output (honest-prover invariant).
        trimmed = list(final_coeffs)
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        if len(trimmed) > params.final_degree:
            raise ProverError(
                "input exceeded the declared degree bound")
        for c in trimmed:
            transcript.absorb_int(c)

        # Query phase.
        queries = []
        for _ in range(params.query_count):
            index = transcript.challenge_index(params.domain_size // 2)
            rounds = []
            size = params.domain_size
            for tree in trees[:-1]:
                half = size // 2
                index %= half
                rounds.append(FriQueryRound(
                    point_path=tree.open(index),
                    negated_path=tree.open(index + half),
                ))
                size = half
            queries.append(tuple(rounds))
        return FriProof(roots=tuple(t.root for t in trees),
                        queries=tuple(queries),
                        final_coefficients=tuple(trimmed))


def fri_query_indices(params: FriParameters, proof: FriProof,
                      transcript: Transcript | None = None) -> list[int]:
    """Replay a proof's transcript and return its layer-0 query indices.

    Deterministic: outer protocols (the STARK prover *and* verifier)
    call this to learn where they must open their own commitments.
    """
    if transcript is None:
        transcript = Transcript()
    transcript.absorb(proof.roots[0])
    for root in proof.roots[1:]:
        transcript.challenge_field(params.field)
        transcript.absorb(root)
    for c in proof.final_coefficients:
        transcript.absorb_int(c)
    return [transcript.challenge_index(params.domain_size // 2)
            for _ in range(params.query_count)]


class FriVerifier:
    """Checks FRI proofs by replaying the transcript and the folds."""

    def __init__(self, params: FriParameters):
        self.params = params
        self.field = params.field

    def verify(self, proof: FriProof,
               transcript: Transcript | None = None) -> bool:
        field = self.field
        p = field.modulus
        params = self.params

        if len(proof.roots) != params.round_count + 1:
            return False
        if len(proof.final_coefficients) > params.final_degree:
            return False

        # Replay the transcript to recover betas and query indices.
        if transcript is None:
            transcript = Transcript()
        transcript.absorb(proof.roots[0])
        betas = []
        for root in proof.roots[1:]:
            betas.append(transcript.challenge_field(field))
            transcript.absorb(root)
        for c in proof.final_coefficients:
            transcript.absorb_int(c)

        half_inv = field.inv(2)
        for rounds in proof.queries:
            if len(rounds) != params.round_count:
                return False
            index = transcript.challenge_index(params.domain_size // 2)
            size = params.domain_size
            shift = params.coset_shift()
            expected: int | None = None
            for round_no, opening in enumerate(rounds):
                half = size // 2
                position = index       # where the previous fold landed
                index = position % half
                point = opening.point_path
                negated = opening.negated_path
                if point.index != index or negated.index != index + half:
                    return False
                root = proof.roots[round_no]
                if not (MerkleTree.verify(root, point)
                        and MerkleTree.verify(root, negated)):
                    return False
                landed = point.leaf if position < half else negated.leaf
                if expected is not None and landed != expected:
                    return False
                x = shift * field.pow(field.root_of_unity(size),
                                      index) % p
                even = (point.leaf + negated.leaf) * half_inv % p
                odd = (point.leaf - negated.leaf) * half_inv % p \
                    * field.inv(x) % p
                expected = (even + betas[round_no] * odd) % p
                size = half
                shift = shift * shift % p

            # The last expected value must match the final polynomial.
            x_final = shift * field.pow(field.root_of_unity(size),
                                        index) % p
            value = 0
            for c in reversed(proof.final_coefficients):
                value = (value * x_final + c) % p
            if expected is not None and value != expected:
                return False
        return True
