"""Bluestein's algorithm: NTTs of *arbitrary* length.

Power-of-two engines cover ZKP's subgroup domains, but real pipelines
occasionally need other lengths (mixed-radix domains, odd-sized public
input blocks).  Bluestein's chirp-z trick turns a length-n transform —
any n whose ``2n`` divides ``p - 1`` — into one power-of-two cyclic
convolution:

    X[k] = psi^(k^2) * sum_j (x[j] * psi^(j^2)) * psi^(-(k-j)^2)

with ``psi`` a primitive 2n-th root (so ``psi^2`` is the n-th root the
transform is defined over).  The sum is a convolution of the chirped
input with the fixed kernel ``psi^(-j^2)``, computed by zero-padding to
the next power of two >= 2n-1 and reusing :mod:`repro.ntt.polymul`'s
machinery.

Cost: three power-of-two transforms of size ~4n — the standard price of
arbitrary-length support, and why ZKP systems design their domains to
avoid it.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt import radix2
from repro.ntt.polymul import next_power_of_two
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["bluestein_ntt", "bluestein_intt"]


def _chirp(field: PrimeField, n: int, inverse: bool) -> list[int]:
    """The chirp sequence ``psi^(j^2)`` (or its inverse) for j < n."""
    p = field.modulus
    psi = field.root_of_unity_general(2 * n)
    if inverse:
        psi = field.inv(psi)
    # psi^(j^2) via the exponent recurrence j^2 = (j-1)^2 + 2j - 1.
    out = [1] * n
    power = 1
    step = psi  # psi^(2j - 1) for j = 1 starts at psi^1
    psi_sq = psi * psi % p
    for j in range(1, n):
        power = power * step % p
        out[j] = power
        step = step * psi_sq % p
    return out


def bluestein_ntt(field: PrimeField, values: Sequence[int],
                  cache: TwiddleCache | None = None) -> list[int]:
    """Forward NTT of arbitrary length n (``2n`` must divide ``p - 1``).

    Matches :func:`repro.ntt.reference.dft` with the field's general
    n-th root; for power-of-two n it agrees with :func:`repro.ntt.ntt`.
    """
    n = len(values)
    if n == 0:
        raise NTTError("cannot transform an empty vector")
    cache = cache or default_cache
    if n == 1:
        return [values[0] % field.modulus]
    p = field.modulus

    chirp = _chirp(field, n, inverse=False)
    inv_chirp = _chirp(field, n, inverse=True)

    # a_j = x_j * psi^(j^2);  kernel b_j = psi^(-j^2) on |j| < n.
    a = [v * c % p for v, c in zip(values, chirp)]
    m = next_power_of_two(2 * n - 1)
    padded_a = a + [0] * (m - n)
    kernel = [0] * m
    for j in range(n):
        kernel[j] = inv_chirp[j]
        if j:
            kernel[m - j] = inv_chirp[j]  # negative index wraps

    spec_a = radix2.ntt(field, padded_a, cache)
    spec_k = radix2.ntt(field, kernel, cache)
    conv = radix2.intt(field, [x * y % p
                               for x, y in zip(spec_a, spec_k)], cache)
    return [conv[k] * chirp[k] % p for k in range(n)]


def bluestein_intt(field: PrimeField, values: Sequence[int],
                   cache: TwiddleCache | None = None) -> list[int]:
    """Inverse arbitrary-length NTT (includes the 1/n scaling)."""
    n = len(values)
    if n == 0:
        raise NTTError("cannot transform an empty vector")
    if n == 1:
        return [values[0] % field.modulus]
    p = field.modulus
    # Forward transform with the inverse root = unscaled inverse; the
    # chirp of the inverse root is exactly the inverse chirp, so run the
    # same pipeline with the chirps swapped.
    cache = cache or default_cache
    chirp = _chirp(field, n, inverse=True)
    inv_chirp = _chirp(field, n, inverse=False)
    a = [v * c % p for v, c in zip(values, chirp)]
    m = next_power_of_two(2 * n - 1)
    padded_a = a + [0] * (m - n)
    kernel = [0] * m
    for j in range(n):
        kernel[j] = inv_chirp[j]
        if j:
            kernel[m - j] = inv_chirp[j]
    spec_a = radix2.ntt(field, padded_a, cache)
    spec_k = radix2.ntt(field, kernel, cache)
    conv = radix2.intt(field, [x * y % p
                               for x, y in zip(spec_a, spec_k)], cache)
    n_inv = field.inv(n % p)
    return [conv[k] * chirp[k] % p * n_inv % p for k in range(n)]
