"""Tests for bulk vector operations."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError
from repro.field import (
    TEST_FIELD_97, validate_vector, vec_add, vec_dot, vec_inv, vec_mul,
    vec_neg, vec_pow_series, vec_scale, vec_sub, vec_sum,
)

F = TEST_FIELD_97


class TestElementwise:
    def test_add_sub_mul(self):
        a, b = [1, 96, 50], [2, 3, 50]
        assert vec_add(F, a, b) == [3, 2, 3]
        assert vec_sub(F, a, b) == [96, 93, 0]
        assert vec_mul(F, a, b) == [2, 94, 2500 % 97]

    def test_scale_neg(self):
        assert vec_scale(F, [1, 2, 3], 10) == [10, 20, 30]
        assert vec_neg(F, [0, 1, 96]) == [0, 96, 1]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            vec_add(F, [1, 2], [1])

    def test_empty_vectors(self):
        assert vec_add(F, [], []) == []
        assert vec_sum(F, []) == 0


class TestPowSeries:
    def test_basic(self):
        assert vec_pow_series(F, 2, 5) == [1, 2, 4, 8, 16]

    def test_start(self):
        assert vec_pow_series(F, 2, 3, start=5) == [5, 10, 20]

    def test_wraps(self):
        series = vec_pow_series(F, 96, 3)  # 96 == -1
        assert series == [1, 96, 1]

    def test_zero_count(self):
        assert vec_pow_series(F, 2, 0) == []


class TestBatchInverse:
    def test_matches_scalar(self, rng):
        values = [rng.randrange(1, 97) for _ in range(20)]
        inverses = vec_inv(F, values)
        for v, inv in zip(values, inverses):
            assert v * inv % 97 == 1

    def test_zero_raises_with_index(self):
        with pytest.raises(FieldError, match="index 2"):
            vec_inv(F, [1, 2, 0, 4])

    def test_empty(self):
        assert vec_inv(F, []) == []

    def test_single(self):
        assert vec_inv(F, [2]) == [F.inv(2)]


class TestReductions:
    def test_dot(self):
        assert vec_dot(F, [1, 2, 3], [4, 5, 6]) == (4 + 10 + 18) % 97

    def test_sum(self):
        assert vec_sum(F, [50, 50]) == 3


class TestValidate:
    def test_accepts_canonical(self):
        validate_vector(F, [0, 1, 96])

    def test_rejects_out_of_range(self):
        with pytest.raises(FieldError, match="index 1"):
            validate_vector(F, [0, 97])

    def test_rejects_negative(self):
        with pytest.raises(FieldError):
            validate_vector(F, [-1])

    def test_rejects_non_int(self):
        with pytest.raises(FieldError):
            validate_vector(F, [1.5])

    def test_accepts_numpy_integer_scalars(self):
        np = pytest.importorskip("numpy")
        # Vectorized backends hand back np.uint64 scalars; these are
        # Integral but not int, and must validate like plain ints.
        validate_vector(F, [np.uint64(0), np.uint64(96), np.int64(5)])

    def test_rejects_out_of_range_numpy_scalar(self):
        np = pytest.importorskip("numpy")
        with pytest.raises(FieldError, match="index 0"):
            validate_vector(F, [np.uint64(97)])

    def test_rejects_bool(self):
        # bool is Integral in Python's tower but never a field element.
        with pytest.raises(FieldError):
            validate_vector(F, [True])


vecs = st.lists(st.integers(min_value=0, max_value=96), min_size=1,
                max_size=20)


@given(a=vecs)
def test_neg_is_involution(a):
    assert vec_neg(F, vec_neg(F, a)) == a


@given(a=vecs)
def test_add_neg_is_zero(a):
    assert vec_add(F, a, vec_neg(F, a)) == [0] * len(a)


@given(a=vecs, s=st.integers(min_value=1, max_value=96))
def test_scale_then_inverse_scale(a, s):
    scaled = vec_scale(F, a, s)
    assert vec_scale(F, scaled, F.inv(s)) == a
