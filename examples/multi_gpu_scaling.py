"""Multi-GPU NTT scaling study (the paper's headline comparison).

Functionally executes all three engines on a simulated node (bit-exact
against a single-node reference), then sweeps the analytic cost model
across GPU counts, sizes, and machines.

Run:  python examples/multi_gpu_scaling.py
"""

import random

from repro.bench import (
    format_table, headline_speedups, multi_gpu_scaling,
)
from repro.field import BLS12_381_FR
from repro.multigpu import (
    BaselineFourStepEngine, DistributedVector, SingleGpuEngine, UniNTTEngine,
)
from repro.ntt import ntt
from repro.sim import SimCluster


def functional_comparison() -> None:
    """Run all engines on real data; report measured communication."""
    field = BLS12_381_FR
    n = 1 << 12
    gpus = 8
    rng = random.Random(1)
    values = field.random_vector(n, rng)
    reference = ntt(field, values)

    print(f"functional run: {field.name}, n = 2^12, {gpus} simulated GPUs")
    headers = ["engine", "correct", "collectives", "inter-GPU bytes",
               "bytes/GPU sent"]
    rows = []
    for engine_cls in (SingleGpuEngine, BaselineFourStepEngine,
                       UniNTTEngine):
        cluster = SimCluster(field, gpus)
        engine = engine_cls(cluster)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        out = engine.forward(vec)
        correct = out.to_values() == reference
        by_level = cluster.trace.bytes_by_level()
        rows.append([
            engine.name, "yes" if correct else "NO",
            cluster.trace.collective_count(),
            by_level.get("multi-gpu", 0),
            max(g.counters.bytes_sent for g in cluster.gpus),
        ])
    print(format_table(headers, rows))
    print()


def analytic_scaling() -> None:
    """Cost-model sweep: the shape of the paper's scaling figure."""
    headers, rows = multi_gpu_scaling()
    print(format_table(headers, rows,
                       title="estimated NTT time vs GPU count (DGX-A100, "
                             "BLS12-381-Fr)"))
    print()
    headers, rows = headline_speedups()
    print(format_table(headers, rows,
                       title="geomean UniNTT speedups per machine"))


def main() -> None:
    functional_comparison()
    analytic_scaling()


if __name__ == "__main__":
    main()
