"""Trace rendering: turn a simulator run into a readable report.

Production GPU work lives and dies by its profiler output; this module
is the simulator's equivalent — an event-by-event log plus per-level
aggregates, so a user can see exactly where an engine's bytes and
multiplications went.
"""

from __future__ import annotations

from repro.sim.trace import Trace

__all__ = ["render_events", "render_summary", "render_trace"]


def _format_bytes(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.2f} MiB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.2f} KiB"
    return f"{nbytes} B"


def render_events(trace: Trace) -> str:
    """One line per event, in execution order."""
    lines = []
    for i, event in enumerate(trace):
        parts = [f"{i:3d}  {event.kind:14s} @{event.level:10s}"]
        if event.total_bytes:
            parts.append(f"{_format_bytes(event.total_bytes):>12s} total")
            parts.append(
                f"{_format_bytes(event.max_bytes_per_gpu):>12s}/gpu")
        if event.field_muls:
            parts.append(f"{event.field_muls:>12,d} muls")
        if event.detail:
            parts.append(f"[{event.detail}]")
        lines.append("  ".join(parts))
    return "\n".join(lines) if lines else "(empty trace)"


def render_summary(trace: Trace) -> str:
    """Aggregates: per-level bytes, collective count, total work."""
    lines = [f"events:      {len(trace)}",
             f"collectives: {trace.collective_count()}",
             f"field muls:  {trace.total_field_muls():,}"]
    by_level = trace.bytes_by_level()
    critical = trace.critical_bytes_by_level()
    for level in sorted(by_level):
        lines.append(
            f"bytes @{level:10s} total {_format_bytes(by_level[level]):>12s}"
            f"   critical-path {_format_bytes(critical.get(level, 0)):>12s}")
    return "\n".join(lines)


def render_trace(trace: Trace, title: str = "") -> str:
    """Full report: title, event log, summary."""
    parts = []
    if title:
        parts.extend([title, "=" * len(title)])
    parts.append(render_events(trace))
    parts.append("-" * 40)
    parts.append(render_summary(trace))
    return "\n".join(parts)
