"""Crash consistency: journal, snapshots, recovery, exactly-once.

The acceptance bar for the durability layer is strict: for every crash
point in a grid of journal sequence numbers, across more than one
workload shape, the crash-recover-resume run must merge to outputs
**bit-identical** to the uninterrupted run, lose no request, duplicate
no request, and leave a recovered trace the race detector finds nothing
wrong with.
"""

import json

import pytest

from repro.analysis import check_trace
from repro.errors import JournalError, ServeError, ServerCrashError
from repro.serve import (
    ProofServer, RecoveryManager, WorkloadSpec, WriteAheadJournal,
    generate_workload, serve_durably,
)
from repro.serve.durability import JournalRecord
from repro.sim.faults import FaultPlan

WORKLOADS = {
    "staggered-mixed": WorkloadSpec(
        requests=12, log_sizes=(8, 9), mean_interarrival_s=1e-4,
        deadline_s=1.0, priority_levels=2, seed=3),
    "burst-batched": WorkloadSpec(
        requests=18, log_sizes=(8,), batch=2, deadline_s=1.0, seed=7),
}

#: Journal sequence numbers the chaos grid kills the server at; chosen
#: to land on different record kinds (admissions, dispatches, emits,
#: snapshots) across both workloads.
CRASH_POINTS = (1, 3, 5, 9, 14, 20, 27, 35)


def crash_plan(*steps):
    return FaultPlan.from_specs([f"server-crash@{s}" for s in steps])


def run_baseline(spec):
    requests = generate_workload(spec)
    server = ProofServer(journal=WriteAheadJournal(), snapshot_every=4)
    report = server.serve(requests)
    outputs = {r.request.request_id: r.outputs for r in report.results}
    return requests, report, outputs, server


class TestChaosGrid:
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("crash_seq", CRASH_POINTS)
    def test_recovery_is_bit_identical(self, workload_name, crash_seq):
        spec = WORKLOADS[workload_name]
        requests, baseline, expected, _ = run_baseline(spec)
        assert crash_seq < baseline.journal_records, (
            "crash point beyond the journal; widen the workload")

        journal = WriteAheadJournal()
        plan = crash_plan(crash_seq)
        outcome = serve_durably(
            requests,
            lambda: ProofServer(journal=journal, snapshot_every=4,
                                crash_plan=plan))

        assert outcome.crashed and outcome.recoveries == 1
        got_ids = [r.request.request_id for r in outcome.results]
        assert got_ids == sorted(expected), (
            "a request was lost or duplicated across the crash")
        for result in outcome.results:
            assert result.outputs == expected[result.request.request_id]
        assert check_trace(outcome.server.trace) == []

    def test_multi_crash_terminates_and_stays_exact(self):
        spec = WORKLOADS["staggered-mixed"]
        requests, _, expected, _ = run_baseline(spec)
        journal = WriteAheadJournal()
        plan = crash_plan(2, 11, 25, 40)
        outcome = serve_durably(
            requests,
            lambda: ProofServer(journal=journal, snapshot_every=4,
                                crash_plan=plan))
        assert outcome.recoveries >= 3
        assert {r.request.request_id: r.outputs
                for r in outcome.results} == expected
        assert check_trace(outcome.server.trace) == []

    def test_back_to_back_crash_points_hit_the_recover_record(self):
        # The second crash fires on the very record the first recovery
        # appends, so the replay must handle a tail ending in "recover".
        spec = WORKLOADS["burst-batched"]
        requests, _, expected, _ = run_baseline(spec)
        journal = WriteAheadJournal()
        outcome = serve_durably(
            requests,
            lambda: ProofServer(journal=journal, snapshot_every=4,
                                crash_plan=crash_plan(6, 7)))
        assert outcome.recoveries == 2
        assert {r.request.request_id: r.outputs
                for r in outcome.results} == expected

    def test_every_crash_is_answered_in_the_recovered_trace(self):
        spec = WORKLOADS["staggered-mixed"]
        requests, _, _, _ = run_baseline(spec)
        journal = WriteAheadJournal()
        outcome = serve_durably(
            requests,
            lambda: ProofServer(journal=journal, snapshot_every=4,
                                crash_plan=crash_plan(9)))
        trace = outcome.server.trace
        crashes = [e for e in trace.events if e.kind == "fault"
                   and e.detail.startswith("server-crash")]
        recovers = [e for e in trace.events if e.kind == "serve-recover"]
        assert len(crashes) == 1 and len(recovers) == 1


class TestPricing:
    def test_journal_is_off_the_critical_path(self):
        # Group commit: journaling prices fabric work into journal_s
        # but must not move the virtual clock, so the journaled run's
        # makespan and outputs equal the bare run's exactly.
        spec = WORKLOADS["staggered-mixed"]
        requests = generate_workload(spec)
        bare = ProofServer().serve(requests)
        journaled = ProofServer(journal=WriteAheadJournal(),
                                snapshot_every=4).serve(requests)
        assert journaled.makespan_s == bare.makespan_s
        assert [r.outputs for r in journaled.results] \
            == [r.outputs for r in bare.results]
        assert journaled.journal_records > 0
        assert journaled.journal_s > 0.0
        assert journaled.snapshots > 0

    def test_journal_and_recovery_fold_into_plan_cost(self):
        spec = WORKLOADS["staggered-mixed"]
        requests = generate_workload(spec)
        bare = ProofServer().serve(requests)
        journal = WriteAheadJournal()
        outcome = serve_durably(
            requests,
            lambda: ProofServer(journal=journal, snapshot_every=4,
                                crash_plan=crash_plan(10)))
        server = outcome.server
        final = outcome.report
        assert final.recovery_s > 0.0
        assert final.replayed_records > 0
        cost = final.plan_cost(server.machine)
        assert cost.total_s > 0.0
        # The recovered leg re-ran real work *and* paid downtime, so
        # summed across legs the durable run costs more than the bare
        # run of the same workload.
        total = sum(leg.plan_cost(server.machine).total_s
                    for leg in outcome.legs)
        assert total > bare.plan_cost(server.machine).total_s

    def test_recovery_downtime_advances_the_clock(self):
        spec = WORKLOADS["burst-batched"]
        requests = generate_workload(spec)
        journal = WriteAheadJournal()
        outcome = serve_durably(
            requests,
            lambda: ProofServer(journal=journal, snapshot_every=4,
                                crash_plan=crash_plan(8)))
        crash_t = journal.records[8].t_s
        assert outcome.report.makespan_s \
            >= crash_t + outcome.report.recovery_s


class TestJournal:
    def test_unknown_kind_rejected(self):
        with pytest.raises(JournalError, match="unknown journal"):
            WriteAheadJournal().append("frobnicate", {}, t_s=0.0)

    def test_unserializable_payload_rejected(self):
        with pytest.raises(JournalError, match="JSON"):
            WriteAheadJournal().append("admit", {"bad": object()},
                                       t_s=0.0)

    def test_verify_detects_tampered_payload(self):
        journal = WriteAheadJournal()
        record = journal.append("admit", {"request_id": 1}, t_s=0.0)
        journal.records[0] = JournalRecord(
            seq=record.seq, t_s=record.t_s, kind=record.kind,
            payload={"request_id": 2}, checksum=record.checksum)
        with pytest.raises(JournalError, match="checksum"):
            journal.verify()

    def test_verify_detects_sequence_gap(self):
        journal = WriteAheadJournal()
        journal.append("admit", {"request_id": 1}, t_s=0.0)
        journal.append("admit", {"request_id": 2}, t_s=0.0)
        del journal.records[0]
        with pytest.raises(JournalError, match="gap"):
            journal.verify()

    def test_json_round_trip(self):
        journal = WriteAheadJournal()
        journal.append("admit", {"request_id": 1}, t_s=0.0)
        journal.append("snapshot", {"t_s": 0.0, "queued": [],
                                    "handled_ids": [], "next_batch_id": 0,
                                    "plan_keys": [],
                                    "twiddle_shapes": []}, t_s=1.5e-4)
        clone = WriteAheadJournal.from_json(journal.to_json())
        assert clone.records == journal.records
        assert clone.records_since_snapshot \
            == journal.records_since_snapshot

    def test_from_json_rejects_garbage(self):
        for text in ("nonsense", "[]", json.dumps({"records": "nope"}),
                     json.dumps({"records": [{"seq": 0}]})):
            with pytest.raises(JournalError):
                WriteAheadJournal.from_json(text)

    def test_snapshot_cadence(self):
        requests = generate_workload(WORKLOADS["staggered-mixed"])
        journal = WriteAheadJournal()
        report = ProofServer(journal=journal,
                             snapshot_every=4).serve(requests)
        assert report.snapshots \
            == sum(1 for r in journal if r.kind == "snapshot")
        assert journal.latest_snapshot() is not None
        assert journal.records_since_snapshot < len(journal)


class TestRecoveryManager:
    def test_empty_journal_rejected(self):
        manager = RecoveryManager(WriteAheadJournal(), ProofServer)
        with pytest.raises(JournalError, match="empty"):
            manager.resume_state()

    def test_factory_must_share_the_journal(self):
        requests = generate_workload(WORKLOADS["burst-batched"])
        journal = WriteAheadJournal()
        with pytest.raises(ServerCrashError):
            ProofServer(journal=journal,
                        crash_plan=crash_plan(3)).serve(requests)
        manager = RecoveryManager(
            journal, lambda: ProofServer(journal=WriteAheadJournal()))
        with pytest.raises(ServeError, match="same"):
            manager.recover(requests)

    def test_serve_durably_requires_a_journal(self):
        requests = generate_workload(WORKLOADS["burst-batched"])
        with pytest.raises(ServeError, match="journal"):
            serve_durably(requests, ProofServer)

    def test_crash_error_carries_partial_report(self):
        requests = generate_workload(WORKLOADS["staggered-mixed"])
        with pytest.raises(ServerCrashError) as exc:
            ProofServer(journal=WriteAheadJournal(), snapshot_every=4,
                        crash_plan=crash_plan(20)).serve(requests)
        crash = exc.value
        assert crash.crash_seq == 20
        assert crash.report is not None
        # Crash-order invariant: results land in the report before
        # their emit record, so the partial report's results are
        # exactly the journaled emits.
        emitted = {r.request.request_id for r in crash.report.results}
        assert len(emitted) == crash.report.completed

    def test_crash_requires_journal(self):
        with pytest.raises(ServeError, match="journal"):
            ProofServer(crash_plan=crash_plan(1))

    def test_crash_plan_must_hold_only_crashes(self):
        plan = FaultPlan.from_specs(
            ["server-crash@1", "transient-comm@0"])
        with pytest.raises(ServeError, match="only server-crash"):
            ProofServer(journal=WriteAheadJournal(), crash_plan=plan)

    def test_snapshot_restores_cache_keys(self):
        spec = WORKLOADS["staggered-mixed"]
        requests = generate_workload(spec)
        journal = WriteAheadJournal()
        outcome = serve_durably(
            requests,
            lambda: ProofServer(journal=journal, snapshot_every=4,
                                crash_plan=crash_plan(30)))
        snapshot = journal.latest_snapshot()
        assert snapshot is not None
        server = outcome.server
        for machine, field, log_size, strategy \
                in snapshot.payload["plan_keys"]:
            if machine == server.machine.name:
                assert (machine, field, log_size, strategy) \
                    in server.plan_cache.keys()
