"""Repo lint: AST checks for the project's own invariants.

Generic linters cannot know that this codebase routes all bulk modular
arithmetic through the :class:`~repro.field.backend.FieldBackend`
``vec_*`` helpers, that the simulator must be bit-deterministic, or
that trace event kinds form a closed registry.  This module encodes
those rules as AST visitors over ``src/repro/``:

* ``lint.raw-mod`` — inside ``multigpu/`` (the hot paths), no
  element-wise modular sweep may bypass the backend: comprehensions
  whose element is a ``%`` expression, lambdas returning one, and
  single-statement loops storing one into a subscript are all bulk
  operations that belong in ``repro.field.vector``.  Scalar ``%`` (an
  index computation, a single twiddle) is fine and not flagged.
* ``lint.nondeterminism`` — inside ``sim/``, ``multigpu/``, and
  ``serve/``, no ``random.*`` (except constructing a seeded
  ``random.Random``) and no ``time.*``: simulated results must be a
  pure function of their inputs.
* ``lint.dict-order`` — in the same packages, no loop or comprehension
  may iterate directly over ``.values()``/``.items()``/``.keys()`` of
  a shard/device/cluster/breaker map: those dicts are keyed by device
  or engine, their insertion order depends on execution history, and
  order-dependent iteration over them is exactly how replay divergence
  sneaks in.  Wrapping the call in ``sorted(...)`` fixes the order and
  the finding.
* ``lint.pow-inverse`` — inside ``ntt/`` and ``multigpu/`` (the
  big-field hot paths), no per-element Fermat inversion: a 3-argument
  ``pow(x, e - 2, m)`` computes one modular inverse per call, which on
  BN254-Fr/BLS12-381-Fr costs ~380 squarings each.  Bulk inversion
  belongs in ``vec_inv`` (one inversion per *vector* via Montgomery's
  batch trick), and the multi-limb backend runs it vectorized.  A
  scalar inverse in setup code (a twiddle seed, an n^-1 factor)
  carries the same cost but runs once; those sites use
  ``field.inv(...)``, which this check deliberately does not match.
* ``lint.wall-clock`` — inside ``serve/``, ``sim/``, and ``runtime/``,
  no wall-clock read at all: ``time.time``/``time.monotonic``/
  ``time.perf_counter`` (and their ``_ns`` variants),
  ``datetime.now``/``utcnow``/``today``, and bare calls to those names
  when imported via ``from time import ...``.  The serving and
  simulation layers run on :class:`~repro.serve.clock.VirtualClock`;
  a single wall-clock read makes reports differ run-to-run and breaks
  journal replay.  (This overlaps ``lint.nondeterminism`` for plain
  ``time.*`` in ``serve/``/``sim/`` — deliberately: the wall-clock
  rule also covers ``runtime/``, ``datetime``, and from-imports that
  the module-attribute check cannot see.)
* ``lint.mutable-default`` — repo-wide: no mutable default arguments.
* ``lint.trace-kind`` — repo-wide: every literal ``kind=`` passed to
  ``TraceEvent`` must be registered in
  :data:`repro.sim.trace.EVENT_KINDS`.
* ``lint.raw-transfers`` — repo-wide: no hand-constructed
  ``ShardTransfer(...)`` outside the schedule builders
  (``multigpu/schedule.py``) and the pass framework
  (``analysis/passes.py``/``analysis/synth.py``).  Transfer tuples
  written by hand drift from the layout walk that
  ``make_transfers`` mirrors, and the byte totals the verifier,
  cost model, and simulator all cross-check silently diverge.

The module itself depends only on the standard library (plus the
registry in :mod:`repro.sim.trace`, which is stdlib-only too), so
``python -m repro.analysis.lint`` works as a bare pre-commit hook with
no third-party packages installed.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys

from repro.analysis.findings import (
    Check, Finding, findings_to_json, render_findings,
)
from repro.sim.trace import EVENT_KINDS

__all__ = ["CHECKS", "lint_paths", "lint_file", "default_root", "main"]

CHECKS = (
    Check("lint.raw-mod", 1,
          "bulk modular arithmetic in multigpu/ bypassing FieldBackend"),
    Check("lint.nondeterminism", 1,
          "unseeded random.* or time.* inside sim/, multigpu/, or serve/"),
    Check("lint.dict-order", 1,
          "order-sensitive iteration over a shard/device map"),
    Check("lint.pow-inverse", 1,
          "per-element pow(x, e-2, m) inversion on an NTT/multigpu "
          "hot path; use vec_inv (batch inversion)"),
    Check("lint.wall-clock", 1,
          "wall-clock read (time.time/monotonic/perf_counter, "
          "datetime.now, ...) inside serve/, sim/, or runtime/; "
          "simulated time comes from VirtualClock"),
    Check("lint.mutable-default", 1,
          "mutable default argument"),
    Check("lint.trace-kind", 1,
          "TraceEvent kind not declared in EVENT_KINDS"),
    Check("lint.raw-transfers", 1,
          "hand-constructed ShardTransfer outside make_transfers/the "
          "schedule builders/the pass framework"),
)

#: The only files allowed to construct ``ShardTransfer`` directly: the
#: builders that derive transfers from layouts, and the pass framework
#: that rewrites them under the verification gate.  ``/``-separated,
#: relative to the lint root.
TRANSFER_BUILDER_FILES = frozenset({
    "multigpu/schedule.py",
    "analysis/passes.py",
    "analysis/synth.py",
})

#: Sub-packages whose element-wise arithmetic must ride the backend.
HOT_PACKAGES = ("multigpu",)

#: Sub-packages on the big-field hot path, where a per-element Fermat
#: inverse (3-arg ``pow`` with an ``e - 2`` exponent) is a ~380x
#: per-call slowdown against batch inversion.
BIGFIELD_PACKAGES = ("ntt", "multigpu")

#: Sub-packages that must be bit-deterministic.
DETERMINISTIC_PACKAGES = ("sim", "multigpu", "serve")

#: Sub-packages that run on :class:`~repro.serve.clock.VirtualClock`:
#: any wall-clock read there makes reports differ run-to-run and
#: breaks journal replay.  ``runtime`` (the shared event loop) is
#: included even though it is not in :data:`DETERMINISTIC_PACKAGES` —
#: its clock *is* the simulated time source, so leaking real time into
#: it would corrupt every consumer at once.
WALL_CLOCK_PACKAGES = ("serve", "sim", "runtime")

#: ``time``-module attributes that read the host's clocks.
_WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "monotonic", "perf_counter", "process_time",
    "time_ns", "monotonic_ns", "perf_counter_ns",
    "clock_gettime", "clock_gettime_ns",
})

#: ``datetime``/``date`` constructors that capture "now".
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Dict view methods whose iteration order is insertion order — i.e.
#: execution history — rather than anything reproducible by key.
_DICT_VIEW_METHODS = frozenset({"values", "items", "keys"})

#: Receiver-name fragments marking a map keyed by device or engine
#: (``self._breakers``, ``shard_map``, ``per_gpu`` ...); iterating one
#: unsorted makes replay order depend on fault/arrival history.
_ORDER_SENSITIVE_FRAGMENTS = ("shard", "gpu", "device", "cluster",
                              "breaker", "engine")

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mod(node: ast.AST) -> bool:
    """True for an expression whose outermost operation is ``%``."""
    return isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)


class _FileLinter(ast.NodeVisitor):
    def __init__(self, rel_path: str, hot: bool, deterministic: bool,
                 bigfield: bool = False, transfer_builder: bool = False,
                 wall_clock: bool = False):
        self.rel_path = rel_path
        self.hot = hot
        self.deterministic = deterministic
        self.bigfield = bigfield
        self.transfer_builder = transfer_builder
        self.wall_clock = wall_clock
        #: Local names bound to wall-clock readers by
        #: ``from time import ...`` (honoring ``as`` aliases), so bare
        #: ``monotonic()`` calls are caught too.
        self._clock_imports: set[str] = set()
        self.findings: list[Finding] = []

    def _flag(self, check: str, message: str, node: ast.AST) -> None:
        self.findings.append(Finding(
            check, message, f"{self.rel_path}:{node.lineno}"))

    # -- lint.raw-mod ---------------------------------------------------------

    def _check_comprehension(self, node) -> None:
        if self.hot and _is_mod(node.elt):
            self._flag(
                "lint.raw-mod",
                "comprehension applies % element-wise; route it "
                "through repro.field.vector (vec_mul/vec_scale/...)",
                node)
        for generator in node.generators:
            self._check_dict_order(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if self.hot and _is_mod(node.body):
            self._flag(
                "lint.raw-mod",
                "lambda returns a % expression (bulk combiner); use a "
                "repro.field.vector helper", node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self.hot and len(node.body) == 1:
            stmt = node.body[0]
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Subscript)
                    and _is_mod(stmt.value)):
                self._flag(
                    "lint.raw-mod",
                    "loop stores a % expression per element; this is a "
                    "vector sweep — use repro.field.vector", node)
        self._check_dict_order(node.iter)
        self.generic_visit(node)

    # -- lint.dict-order ------------------------------------------------------

    def _check_dict_order(self, iter_node: ast.AST) -> None:
        """Flag iteration straight over a shard-map's dict view.

        Only the *direct* loop iterable is checked, so wrapping the
        view in ``sorted(...)`` (which fixes the order) clears the
        finding by construction.
        """
        if not self.deterministic:
            return
        if not (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr in _DICT_VIEW_METHODS
                and not iter_node.args and not iter_node.keywords):
            return
        receiver = iter_node.func.value
        if isinstance(receiver, ast.Attribute):
            name = receiver.attr
        elif isinstance(receiver, ast.Name):
            name = receiver.id
        else:
            return
        lowered = name.lower()
        if any(fragment in lowered
               for fragment in _ORDER_SENSITIVE_FRAGMENTS):
            self._flag(
                "lint.dict-order",
                f"iterating {name}.{iter_node.func.attr}() directly: "
                "this map is keyed by device/engine and its insertion "
                "order is execution history — wrap it in sorted(...)",
                iter_node)

    # -- lint.nondeterminism ------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.deterministic and isinstance(node.value, ast.Name):
            module = node.value.id
            if module == "random" and node.attr != "Random":
                self._flag(
                    "lint.nondeterminism",
                    f"random.{node.attr} in a deterministic package; "
                    "only seeded random.Random(...) is allowed", node)
            elif module == "time":
                self._flag(
                    "lint.nondeterminism",
                    f"time.{node.attr} in a deterministic package; "
                    "simulated time comes from the cost model", node)
        self.generic_visit(node)

    # -- lint.wall-clock ----------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.wall_clock and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME_ATTRS:
                    self._clock_imports.add(alias.asname or alias.name)
                    self._flag(
                        "lint.wall-clock",
                        f"from time import {alias.name}: wall-clock "
                        "reader imported into a simulated-time "
                        "package; time here comes from VirtualClock",
                        node)
        self.generic_visit(node)

    def _check_wall_clock_call(self, node: ast.Call) -> None:
        if not self.wall_clock:
            return
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id in self._clock_imports:
                self._flag(
                    "lint.wall-clock",
                    f"{callee.id}() reads the host clock; serve/sim/"
                    "runtime time comes from VirtualClock", node)
            return
        if not isinstance(callee, ast.Attribute):
            return
        receiver = callee.value
        if (isinstance(receiver, ast.Name) and receiver.id == "time"
                and callee.attr in _WALL_CLOCK_TIME_ATTRS):
            self._flag(
                "lint.wall-clock",
                f"time.{callee.attr}() reads the host clock; serve/"
                "sim/runtime time comes from VirtualClock", node)
            return
        if callee.attr in _WALL_CLOCK_DATETIME_ATTRS:
            base = receiver.id if isinstance(receiver, ast.Name) \
                else receiver.attr if isinstance(receiver, ast.Attribute) \
                else ""
            if base in ("datetime", "date"):
                self._flag(
                    "lint.wall-clock",
                    f"{base}.{callee.attr}() captures the host's "
                    "current date/time; simulated runs must not "
                    "depend on when they execute", node)

    # -- lint.mutable-default -----------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS)
            if mutable:
                self._flag(
                    "lint.mutable-default",
                    f"function {node.name!r} has a mutable default "
                    "argument; use None (or a dataclass "
                    "default_factory)", default)
        self.generic_visit(node)

    visit_FunctionDef = _check_defaults
    visit_AsyncFunctionDef = _check_defaults

    # -- lint.trace-kind ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock_call(node)
        callee = node.func
        name = callee.attr if isinstance(callee, ast.Attribute) \
            else callee.id if isinstance(callee, ast.Name) else ""
        if (self.bigfield and name == "pow"
                and isinstance(callee, ast.Name)
                and len(node.args) == 3
                and isinstance(node.args[1], ast.BinOp)
                and isinstance(node.args[1].op, ast.Sub)
                and isinstance(node.args[1].right, ast.Constant)
                and node.args[1].right.value == 2):
            self._flag(
                "lint.pow-inverse",
                "pow(x, e - 2, m) is a per-element Fermat inverse "
                "(~380 squarings per call on the big ZKP fields); use "
                "vec_inv — one inversion per vector via batch "
                "inversion, vectorized under the multi-limb backend",
                node)
        if name == "ShardTransfer" and not self.transfer_builder:
            self._flag(
                "lint.raw-transfers",
                "hand-constructed ShardTransfer; transfer tuples come "
                "from make_transfers/the schedule builders (or the "
                "gated pass framework), so their byte totals match the "
                "layout walk the verifier and simulator check against",
                node)
        if name == "TraceEvent":
            kind_args = [kw.value for kw in node.keywords
                         if kw.arg == "kind"]
            if not kind_args and node.args:
                kind_args = [node.args[0]]
            for value in kind_args:
                if (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and value.value not in EVENT_KINDS):
                    self._flag(
                        "lint.trace-kind",
                        f"TraceEvent kind {value.value!r} is not "
                        "registered in repro.sim.trace.EVENT_KINDS",
                        value)
        self.generic_visit(node)


def default_root() -> str:
    """The ``src/repro`` package directory this module is installed in."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _package_of(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    parts = rel.split(os.sep)
    return parts[0] if len(parts) > 1 else ""


def lint_file(path: str, root: str | None = None) -> list[Finding]:
    """Lint one Python source file; returns its findings."""
    root = root or default_root()
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding("lint.raw-mod",
                        f"file does not parse: {error}", rel)]
    package = _package_of(path, root)
    linter = _FileLinter(
        rel_path=rel,
        hot=package in HOT_PACKAGES,
        deterministic=package in DETERMINISTIC_PACKAGES,
        bigfield=package in BIGFIELD_PACKAGES,
        transfer_builder=rel.replace(os.sep, "/")
        in TRANSFER_BUILDER_FILES,
        wall_clock=package in WALL_CLOCK_PACKAGES)
    linter.visit(tree)
    return sorted(linter.findings,
                  key=lambda f: (f.where, f.check, f.message))


def lint_paths(paths: list[str] | None = None,
               root: str | None = None) -> list[Finding]:
    """Lint files and directories (recursively); default: ``src/repro``."""
    root = root or default_root()
    targets = paths or [root]
    files: list[str] = []
    for target in targets:
        if os.path.isdir(target):
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__")
                files.extend(os.path.join(dirpath, name)
                             for name in sorted(filenames)
                             if name.endswith(".py"))
        else:
            files.append(target)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, root=root))
    return findings


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro-lint`` / ``python -m ...lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-invariant lint over src/repro (stdlib only)")
    parser.add_argument("paths", nargs="*",
                        help="files/directories (default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths or None)
    if args.json:
        print(findings_to_json(findings, tool="lint"))
    else:
        print(render_findings(findings, tool="lint"))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
