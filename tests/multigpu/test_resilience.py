"""Chaos tests: resilient engines complete bit-exactly under faults.

The grid crosses fault kinds x engines x cluster shapes.  Every
recoverable scenario must (a) reproduce the fault-free reference
bit-exactly, (b) leave a trace that ``check_trace`` accepts — in
particular every aborting fault must be matched by a retry/reshard —
and (c) cost strictly more than the clean run.
"""

import pytest

from repro.analysis.tracecheck import check_trace
from repro.errors import ResilienceError, SimulationError
from repro.field import TEST_FIELD_7681
from repro.hw import DGX_A100
from repro.multigpu import (
    DistributedVector, PairwiseExchangeEngine, ResilienceReport,
    ResilientNTTEngine, RetryPolicy, UniNTTEngine, VectorCheckpoint,
)
from repro.ntt import ntt
from repro.sim import FaultInjector, FaultPlan, SimCluster

F = TEST_FIELD_7681

ENGINES = [UniNTTEngine, PairwiseExchangeEngine]
SHAPES = [(4, 256), (8, 512)]

# Every fault targets collective step 0 so it hits both engine
# families: UniNTT runs a single all-to-all per transform, the pairwise
# engine runs log2(g) exchanges.
FAULT_GRID = [
    ("clean", []),
    ("transient", ["transient-comm@0"]),
    ("corrupt", ["corrupt-shard@0:gpu=1,delta=9"]),
    ("degrade", ["link-degrade@0:factor=0.5"]),
    ("straggler", ["straggler@0:gpu=0,factor=2"]),
    ("death", ["device-death@0:gpu=1"]),
    ("combo", ["transient-comm@0", "link-degrade@1:factor=0.5"]),
]


def resilient_setup(engine_cls, gpus, specs, seed=0xC0C0):
    plan = FaultPlan.from_specs(specs, seed=seed)
    injector = FaultInjector(plan, F.modulus)
    cluster = SimCluster(F, gpus, injector=injector)
    return ResilientNTTEngine(cluster, engine_cls, seed=seed)


class TestChaosGrid:
    @pytest.mark.parametrize("gpus,n", SHAPES,
                             ids=[f"{g}gpu-n{n}" for g, n in SHAPES])
    @pytest.mark.parametrize("engine_cls", ENGINES,
                             ids=lambda c: c.__name__)
    @pytest.mark.parametrize("name,specs", FAULT_GRID,
                             ids=[name for name, _ in FAULT_GRID])
    def test_recoverable_faults_are_bit_exact(self, name, specs,
                                              engine_cls, gpus, n, rng):
        values = F.random_vector(n, rng)
        reference = ntt(F, values)

        engine = resilient_setup(engine_cls, gpus, specs)
        vec = DistributedVector.from_values(
            engine.cluster, values, engine.input_layout(n))
        out = engine.forward(vec)

        assert out.to_values() == reference
        findings = check_trace(engine.cluster.trace)
        assert findings == [], [str(f) for f in findings]

    @pytest.mark.parametrize("engine_cls", ENGINES,
                             ids=lambda c: c.__name__)
    def test_faulty_run_costs_strictly_more(self, engine_cls, rng):
        gpus, n = 4, 256
        values = F.random_vector(n, rng)

        costs = {}
        for name, specs in [("clean", []),
                            ("transient", ["transient-comm@0"]),
                            ("death", ["device-death@0:gpu=2"])]:
            engine = resilient_setup(engine_cls, gpus, specs)
            vec = DistributedVector.from_values(
                engine.cluster, values, engine.input_layout(n))
            engine.forward(vec)
            costs[name] = engine.report.plan_cost(DGX_A100)
        assert costs["transient"].total_s > costs["clean"].total_s
        assert costs["death"].total_s > costs["clean"].total_s

    def test_device_death_reshards_onto_survivors(self, rng):
        n = 256
        values = F.random_vector(n, rng)
        engine = resilient_setup(UniNTTEngine, 4,
                                 ["device-death@0:gpu=3"])
        vec = DistributedVector.from_values(
            engine.cluster, values, engine.input_layout(n))
        out = engine.forward(vec)
        assert engine.gpu_count == 2  # 3 survivors -> 2 (power of two)
        assert engine.report.gpu_counts == [4, 2]
        assert engine.report.reshards == 1
        assert out.to_values() == ntt(F, values)
        kinds = [e.kind for e in engine.cluster.trace.events]
        assert "reshard" in kinds and "fault" in kinds

    def test_roundtrip_with_coset_under_fault(self, rng):
        n = 128
        values = F.random_vector(n, rng)
        shift = 3
        engine = resilient_setup(UniNTTEngine, 4, ["transient-comm@0"])
        vec = DistributedVector.from_values(
            engine.cluster, values, engine.input_layout(n))
        out = engine.forward(vec, coset_shift=shift)
        back = engine.inverse(out, coset_shift=shift)
        assert back.to_values() == values

    def test_exhausted_retries_raise(self, rng):
        n = 64
        engine = resilient_setup(UniNTTEngine, 4,
                                 ["transient-comm@0:count=10"])
        vec = DistributedVector.from_values(
            engine.cluster, F.random_vector(n, rng),
            engine.input_layout(n))
        with pytest.raises(ResilienceError, match="after 3 attempt"):
            engine.forward(vec)
        # the unanswered final fault must be visible to the detector
        findings = check_trace(engine.cluster.trace)
        assert any(f.check == "trace.unresolved-fault"
                   for f in findings)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SimulationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError, match=">= 0"):
            RetryPolicy(backoff_messages=-1)

    def test_backoff_doubles(self):
        policy = RetryPolicy(backoff_messages=4)
        assert [policy.backoff_units(a) for a in (1, 2, 3)] == [4, 8, 16]


class TestCheckpoint:
    def test_checkpoint_restores_across_layouts(self, rng):
        n = 64
        values = F.random_vector(n, rng)
        cluster = SimCluster(F, 4)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        ckpt = vec.checkpoint()
        assert isinstance(ckpt, VectorCheckpoint)
        assert ckpt.n == n
        assert cluster.trace.events[-1].kind == "checkpoint"

        # restore onto a *different* cluster shape: the checkpoint is
        # layout-independent, which is what makes resharding possible.
        small = SimCluster(F, 2)
        other = UniNTTEngine(small)
        restored = DistributedVector.restore(small, ckpt,
                                             other.input_layout(n))
        assert restored.to_values() == values

    def test_restore_rejects_size_mismatch(self, rng):
        cluster = SimCluster(F, 2)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(
            cluster, F.random_vector(64, rng), engine.input_layout(64))
        ckpt = vec.checkpoint()
        with pytest.raises(SimulationError, match="128"):
            DistributedVector.restore(cluster, ckpt,
                                      engine.input_layout(128))


class TestResilientEngineInterface:
    def test_factory_must_bind_given_cluster(self):
        cluster = SimCluster(F, 4)
        stray = SimCluster(F, 4)
        with pytest.raises(SimulationError, match="bind"):
            ResilientNTTEngine(cluster, lambda c: UniNTTEngine(stray))

    def test_delegates_engine_surface(self):
        cluster = SimCluster(F, 4)
        engine = ResilientNTTEngine(cluster, UniNTTEngine)
        inner = UniNTTEngine(SimCluster(F, 4))
        assert engine.field is F
        assert engine.gpu_count == 4
        assert engine.name == f"resilient[{inner.name}]"
        assert engine.input_layout(256) == inner.input_layout(256)
        assert engine.output_layout(256) == inner.output_layout(256)
        est = engine.estimate(DGX_A100, 1024)
        assert est.total_s > 0

    def test_report_summary_and_plan_cost_validate(self, rng):
        engine = resilient_setup(UniNTTEngine, 4, ["transient-comm@0"])
        n = 64
        vec = DistributedVector.from_values(
            engine.cluster, F.random_vector(n, rng),
            engine.input_layout(n))
        engine.forward(vec)
        summary = engine.report.summary()
        assert summary["retries"] == 1
        assert summary["wasted_attempts"] == 1
        assert summary["transforms"] == 1
        cost = engine.report.plan_cost(DGX_A100)
        cost.validate()
        assert cost.total_s > 0

    def test_empty_report_prices_to_zero(self):
        report = ResilienceReport(field=F)
        assert report.breakdown(DGX_A100).total_s == 0.0


class TestPackedBigFieldBoundary:
    """Limb-packed big-field arrays round-trip through checkpoint/restore.

    Under the multi-limb backend a big-field vector may reach the
    staging boundary as a packed ``(L, n)`` limb-plane array.  Shards
    and checkpoints must still hold plain ints — the loader must never
    iterate an element into its limb rows.
    """

    def _skip_without_numpy(self):
        from repro.field import numpy_available

        if not numpy_available():
            pytest.skip("multi-limb backend needs numpy")

    def test_packed_planes_round_trip_checkpoint_restore(self, rng):
        self._skip_without_numpy()
        from repro.field import BN254_FR, MultiLimbBackend, use_backend

        n = 64
        values = BN254_FR.random_vector(n, rng)
        backend = MultiLimbBackend()
        packed = backend.pack(BN254_FR, values)
        assert getattr(packed, "ndim", 0) == 2  # really limb planes
        with use_backend("multilimb"):
            cluster = SimCluster(BN254_FR, 4)
            engine = UniNTTEngine(cluster)
            vec = DistributedVector.from_values(
                cluster, packed, engine.input_layout(n))
            # shards hold plain ints, never limb rows / numpy scalars
            for gpu in cluster.gpus:
                assert all(type(v) is int for v in gpu.shard)
            assert vec.to_values() == values

            ckpt = vec.checkpoint()
            assert ckpt.values == tuple(values)
            restored = DistributedVector.restore(
                cluster, ckpt, engine.input_layout(n))
            assert restored.to_values() == values

    def test_resilient_transform_accepts_packed_input(self, rng):
        self._skip_without_numpy()
        from repro.field import BN254_FR, MultiLimbBackend, use_backend

        n = 64
        values = BN254_FR.random_vector(n, rng)
        packed = MultiLimbBackend().pack(BN254_FR, values)
        with use_backend("multilimb"):
            reference = ntt(BN254_FR, values)
            plan = FaultPlan.from_specs(["transient-comm@0"], seed=7)
            injector = FaultInjector(plan, BN254_FR.modulus)
            cluster = SimCluster(BN254_FR, 4, injector=injector)
            engine = ResilientNTTEngine(cluster, UniNTTEngine, seed=7)
            vec = DistributedVector.from_values(
                cluster, packed, engine.input_layout(n))
            out = engine.forward(vec)
            assert out.to_values() == reference
            assert engine.report.retries == 1

    def test_shard_loader_rejects_raw_planes(self, rng):
        self._skip_without_numpy()
        from repro.field import BN254_FR, MultiLimbBackend

        packed = MultiLimbBackend().pack(BN254_FR, BN254_FR.random_vector(8, rng))
        cluster = SimCluster(BN254_FR, 2)
        with pytest.raises(SimulationError, match="staging boundary"):
            cluster.gpus[0].load(packed)

    def test_validate_vector_accepts_packed_planes(self, rng):
        self._skip_without_numpy()
        from repro.field import (
            BN254_FR, MultiLimbBackend, use_backend, validate_vector,
        )

        packed = MultiLimbBackend().pack(BN254_FR, BN254_FR.random_vector(8, rng))
        with use_backend("multilimb"):
            validate_vector(BN254_FR, packed)  # does not raise
