"""Tests for the binary-exchange distributed engine."""

import pytest

from repro.errors import PartitionError
from repro.field import BLS12_381_FR, GOLDILOCKS, TEST_FIELD_7681
from repro.hw import DGX1_V100, DGX_A100, PipelinedGroup
from repro.multigpu import (
    BaselineFourStepEngine, BitrevSpectralLayout, CyclicLayout,
    DistributedVector, PairwiseExchangeEngine, UniNTTEngine,
)
from repro.ntt import ntt
from repro.ntt.twiddle import bit_reverse
from repro.sim import SimCluster

F = TEST_FIELD_7681


def run_forward(field, g, n, rng):
    cluster = SimCluster(field, g)
    engine = PairwiseExchangeEngine(cluster)
    values = field.random_vector(n, rng)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    return engine, values, engine.forward(vec)


class TestLayout:
    def test_bijection(self):
        layout = BitrevSpectralLayout(n=32, gpu_count=4)
        seen = set()
        for gpu in range(4):
            for local in range(8):
                j = layout.global_index(gpu, local)
                assert layout.owner(j) == (gpu, local)
                seen.add(j)
        assert seen == set(range(32))

    def test_bitrev_placement(self):
        # n=32, G=4, M=8: k = k1 + 8*k2 lives on gpu bitrev2(k2).
        layout = BitrevSpectralLayout(n=32, gpu_count=4)
        for k2 in range(4):
            gpu, local = layout.owner(3 + 8 * k2)
            assert gpu == bit_reverse(k2, 2)
            assert local == 3


class TestCorrectness:
    @pytest.mark.parametrize("g,n", [(1, 64), (2, 64), (4, 256), (8, 512)])
    def test_forward_matches_reference(self, g, n, rng):
        engine, values, out = run_forward(F, g, n, rng)
        assert out.to_values() == ntt(F, values)
        assert isinstance(out.layout, BitrevSpectralLayout)

    @pytest.mark.parametrize("field", [GOLDILOCKS, BLS12_381_FR],
                             ids=lambda f: f.name)
    def test_production_fields(self, field, rng):
        engine, values, out = run_forward(field, 4, 64, rng)
        assert out.to_values() == ntt(field, values)

    @pytest.mark.parametrize("g,n", [(2, 64), (4, 64), (8, 256)])
    def test_roundtrip(self, g, n, rng):
        engine, values, out = run_forward(F, g, n, rng)
        back = engine.inverse(out)
        assert back.to_values() == values
        assert isinstance(back.layout, CyclicLayout)
        engine.cluster.check_conservation()

    def test_size_validation(self, rng):
        cluster = SimCluster(F, 8)
        engine = PairwiseExchangeEngine(cluster)
        with pytest.raises(PartitionError, match="2\\*G"):
            engine.forward_profile(8)


class TestCommunication:
    def test_stage_count(self, rng):
        engine, _, _ = run_forward(F, 8, 512, rng)
        assert engine.cluster.trace.count("pairwise") == 3  # log2(8)

    def test_volume_vs_unintt(self, rng):
        """Pairwise moves ~log2(G) shards; UniNTT ~(G-1)/G of one."""
        n, g = 512, 8
        volumes = {}
        for engine_cls in (PairwiseExchangeEngine, UniNTTEngine):
            cluster = SimCluster(F, g)
            engine = engine_cls(cluster)
            vec = DistributedVector.from_values(
                cluster, F.random_vector(n, rng), engine.input_layout(n))
            engine.forward(vec)
            volumes[engine_cls] = cluster.gpus[0].counters.bytes_sent
        m_bytes = (n // g) * cluster.element_bytes
        assert volumes[PairwiseExchangeEngine] == 3 * m_bytes
        assert volumes[UniNTTEngine] == m_bytes * 7 // 8

    def test_profile_matches_counters(self, rng):
        engine, _, out = run_forward(F, 4, 256, rng)
        engine.inverse(out)
        profile = engine.forward_profile(256) + engine.inverse_profile(256)
        phases = [p for step in profile
                  for p in (step.phases if isinstance(step, PipelinedGroup)
                            else [step])]
        counters = engine.cluster.gpus[0].counters
        assert sum(p.exchange_bytes for p in phases) == counters.bytes_sent
        assert sum(p.field_muls for p in phases) == counters.field_muls
        assert sum(p.mem_bytes for p in phases) == \
            counters.mem_traffic_bytes


class TestEstimates:
    def test_unintt_always_beats_pairwise(self):
        """UniNTT's single exchange dominates log2(G) shard swaps."""
        cluster = SimCluster(BLS12_381_FR, 8)
        for machine in (DGX_A100, DGX1_V100):
            for log_n in (20, 24, 28):
                n = 1 << log_n
                t_pair = PairwiseExchangeEngine(cluster).estimate(
                    machine, n).total_s
                t_uni = UniNTTEngine(cluster).estimate(machine, n).total_s
                assert t_uni < t_pair

    def test_pairwise_vs_baseline_is_topology_dependent(self):
        """Pairwise beats the baseline on rings (dedicated pair links)
        but loses at scale on NVSwitch (pure volume: 3M vs ~2.6M)."""
        n = 1 << 24
        cluster = SimCluster(BLS12_381_FR, 8)

        def times(machine):
            return (PairwiseExchangeEngine(cluster).estimate(
                        machine, n).total_s,
                    BaselineFourStepEngine(cluster).estimate(
                        machine, n).total_s)

        pair_ring, base_ring = times(DGX1_V100)
        assert pair_ring < base_ring
        pair_switch, base_switch = times(DGX_A100)
        assert pair_switch > base_switch

    def test_pairwise_pattern_priced_differently_on_ring(self):
        """Ring topologies favour pairwise patterns per byte."""
        from repro.hw import CostModel, Phase
        model = CostModel(DGX1_V100, BLS12_381_FR)
        nbytes = 1 << 24
        pair = model.exchange_seconds(nbytes, "multi-gpu", 1, "pairwise")
        a2a = model.exchange_seconds(nbytes, "multi-gpu", 1, "alltoall")
        assert pair < a2a
