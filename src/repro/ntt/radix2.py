"""Iterative radix-2 NTT kernels.

Two classic schedules are provided:

* **DIT** (decimation in time, Cooley-Tukey): consumes *bit-reversed*
  input and produces natural-order output; butterflies run from stride 1
  upward.
* **DIF** (decimation in frequency, Gentleman-Sande): consumes natural
  input and produces *bit-reversed* output; butterflies run from stride
  n/2 downward.

A DIF forward followed by a DIT inverse therefore needs **no bit-reversal
pass at all** — the permuted intermediate order cancels.  This is the
single-level instance of the paper's "overhead-free" theme and is how
the ZKP pipeline chains NTT -> pointwise -> INTT.

The user-facing :func:`ntt` / :func:`intt` wrappers return natural order.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.backend import get_backend
from repro.field.prime_field import PrimeField
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = [
    "ntt", "intt", "ntt_dit_inplace", "ntt_dif_inplace",
    "apply_bit_reversal", "radix2_butterfly_count",
]

#: Below this size the pack/unpack overhead of a lane backend exceeds
#: the butterfly savings; stay on the scalar path.
_ACCEL_MIN_SIZE = 32


def _lane_ops(field: PrimeField):
    """Whole-stage lane arithmetic from the active backend, or None."""
    return get_backend().lane_ops(field)


def _check_size(n: int, field: PrimeField) -> None:
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    log_n = n.bit_length() - 1
    if log_n > field.two_adicity:
        raise NTTError(
            f"size 2^{log_n} exceeds {field.name} two-adicity "
            f"{field.two_adicity}")


def apply_bit_reversal(values: list[int], cache: TwiddleCache | None = None) -> None:
    """In-place bit-reversal permutation of a power-of-two-length list."""
    cache = cache or default_cache
    perm = cache.bitrev(len(values))
    for i, j in enumerate(perm):
        if i < j:
            values[i], values[j] = values[j], values[i]


def ntt_dit_inplace(field: PrimeField, values: list[int],
                    twiddles: Sequence[int]) -> None:
    """Radix-2 DIT butterflies: bit-reversed input -> natural output.

    ``twiddles`` is the half-table ``[w^0 .. w^(n/2 - 1)]`` for the
    primitive n-th root ``w`` (forward or inverse, caller's choice).
    """
    n = len(values)
    p = field.modulus
    half = 1
    while half < n:
        step = (n // 2) // half  # stride into the n/2-entry twiddle table
        for start in range(0, n, half * 2):
            t_index = 0
            for j in range(start, start + half):
                w = twiddles[t_index]
                t_index += step
                u = values[j]
                v = values[j + half] * w % p
                s = u + v
                values[j] = s - p if s >= p else s
                d = u - v
                values[j + half] = d + p if d < 0 else d
        half *= 2


def ntt_dif_inplace(field: PrimeField, values: list[int],
                    twiddles: Sequence[int]) -> None:
    """Radix-2 DIF butterflies: natural input -> bit-reversed output."""
    n = len(values)
    p = field.modulus
    half = n // 2
    while half >= 1:
        step = (n // 2) // half
        for start in range(0, n, half * 2):
            t_index = 0
            for j in range(start, start + half):
                w = twiddles[t_index]
                t_index += step
                u = values[j]
                v = values[j + half]
                s = u + v
                values[j] = s - p if s >= p else s
                values[j + half] = (u - v) * w % p
        half //= 2


def ntt(field: PrimeField, values: Sequence[int],
        cache: TwiddleCache | None = None,
        root: int | None = None) -> list[int]:
    """Forward NTT, natural order in and out.

    ``root`` overrides the primitive n-th root (used by decomposition
    plans, which transform sub-problems with powers of the global root).
    """
    n = len(values)
    if root is None:
        _check_size(n, field)
    elif n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    if n >= _ACCEL_MIN_SIZE:
        ops = _lane_ops(field)
        if ops is not None and n >= ops.min_size:
            from repro.field.simd import vectorized_ntt

            res = vectorized_ntt(ops, ops.pack(list(values)), cache, root)
            return (ops.unpack(res) if ops.unpack is not None
                    else res.tolist())
    out = list(values)
    if n == 1:
        return out
    if root is None:
        table = cache.forward(field, n)
    else:
        table = cache.powers(field, root, n // 2)
    ntt_dif_inplace(field, out, table)
    apply_bit_reversal(out, cache)
    return out


def intt(field: PrimeField, values: Sequence[int],
         cache: TwiddleCache | None = None,
         root: int | None = None) -> list[int]:
    """Inverse NTT, natural order in and out (includes the 1/n scaling).

    ``root``, if given, is the *forward* primitive n-th root; its inverse
    is used internally.
    """
    n = len(values)
    if root is None:
        _check_size(n, field)
    elif n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    if n >= _ACCEL_MIN_SIZE:
        ops = _lane_ops(field)
        if ops is not None and n >= ops.min_size:
            from repro.field.simd import vectorized_intt

            res = vectorized_intt(ops, ops.pack(list(values)), cache, root)
            return (ops.unpack(res) if ops.unpack is not None
                    else res.tolist())
    out = list(values)
    if n == 1:
        return out
    if root is None:
        table = cache.inverse(field, n)
    else:
        table = cache.powers(field, field.inv(root), n // 2)
    ntt_dif_inplace(field, out, table)
    apply_bit_reversal(out, cache)
    p = field.modulus
    n_inv = field.inv(n % p)
    for i, v in enumerate(out):
        out[i] = v * n_inv % p
    return out


def radix2_butterfly_count(n: int) -> int:
    """Number of butterflies a radix-2 transform of size n performs.

    Used by the analytic cost model: ``(n/2) * log2(n)``.
    """
    if n <= 1:
        return 0
    return (n // 2) * (n.bit_length() - 1)
