"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "f99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Goldilocks" in out
        assert "DGX-A100" in out
        assert "4xDGX-A100" in out

    def test_experiment_single(self, capsys):
        assert main(["experiment", "f9"]) == 0
        out = capsys.readouterr().out
        assert "communication breakdown" in out
        assert "unintt" in out

    def test_experiment_multiple(self, capsys):
        assert main(["experiment", "t1", "f10"]) == 0
        out = capsys.readouterr().out
        assert "hardware platforms" in out
        assert "ablation" in out

    @pytest.mark.parametrize("engine", ["single", "baseline", "pairwise",
                                        "unintt"])
    def test_estimate_each_engine(self, engine, capsys):
        assert main(["estimate", "--engine", engine,
                     "--log-size", "20"]) == 0
        out = capsys.readouterr().out
        assert "ms" in out
        assert "bottleneck" in out

    def test_estimate_other_machine_and_field(self, capsys):
        assert main(["estimate", "--machine", "DGX-1-V100",
                     "--field", "Goldilocks", "--log-size", "18"]) == 0
        assert "DGX-1-V100" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "verified" in out

    def test_experiment_registry_complete(self):
        """Every bench-file experiment has a CLI id."""
        for required in ("t1", "t2", "t3", "f7", "f8", "f9", "f10", "f11",
                         "f12", "f14"):
            assert required in EXPERIMENTS


class TestTraceAndTune:
    def test_trace(self, capsys):
        assert main(["trace", "--log-size", "8", "--gpus", "4"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "collectives: 1" in out

    @pytest.mark.parametrize("engine", ["baseline", "pairwise"])
    def test_trace_other_engines(self, engine, capsys):
        assert main(["trace", "--log-size", "8", "--gpus", "4",
                     "--engine", engine]) == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_tune(self, capsys):
        assert main(["tune", "--log-size", "20"]) == 0
        out = capsys.readouterr().out
        assert "best tile" in out
        assert "engine ranking" in out
        assert "unintt" in out
        assert "sched:" not in out

    def test_tune_on_a_cluster_ranks_schedules(self, capsys):
        assert main(["tune", "--log-size", "20",
                     "--machine", "4xDGX-A100"]) == 0
        out = capsys.readouterr().out
        assert "on 4xDGX-A100" in out
        assert "sched:" in out

    def test_tune_unknown_machine_names_clusters(self, capsys):
        assert main(["tune", "--log-size", "20",
                     "--machine", "no-such"]) == 2
        err = capsys.readouterr().err
        assert "no preset machine or cluster" in err
        assert "4xDGX-A100" in err

    def test_estimate_with_machine_file(self, tmp_path, capsys):
        import json

        from repro.hw import DGX1_V100, machine_to_dict

        path = tmp_path / "m.json"
        path.write_text(json.dumps(machine_to_dict(DGX1_V100)))
        assert main(["estimate", "--machine-file", str(path),
                     "--log-size", "20"]) == 0
        assert "DGX-1-V100" in capsys.readouterr().out


class TestErrorHygiene:
    """Library failures exit 2 with one line; --debug gets the traceback."""

    def test_unknown_field_exits_2_with_one_line(self, capsys):
        assert main(["estimate", "--field", "NoSuchField"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro: error: ")
        assert "NoSuchField" in captured.err
        assert captured.err.count("\n") == 1
        assert "Traceback" not in captured.err

    def test_unknown_machine_exits_2(self, capsys):
        assert main(["estimate", "--machine", "NoSuchBox"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ")
        assert "NoSuchBox" in err

    def test_missing_machine_file_exits_2(self, capsys):
        assert main(["estimate", "--machine-file", "/no/such.json"]) == 2
        assert "repro: error: " in capsys.readouterr().err

    def test_bad_fault_spec_exits_2(self, capsys):
        assert main(["trace", "--log-size", "8", "--gpus", "4",
                     "--fault", "transient-comm"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ")
        assert "@step" in err

    def test_debug_reraises(self):
        with pytest.raises(KeyError, match="NoSuchField"):
            main(["--debug", "estimate", "--field", "NoSuchField"])


class TestFaultInjectionCli:
    def test_trace_with_fault_and_resilience(self, capsys):
        assert main(["trace", "--log-size", "8", "--gpus", "4",
                     "--fault", "transient-comm@0", "--resilient"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "fault" in out
        assert "retry" in out
        assert "resilience:" in out

    def test_trace_with_device_death(self, capsys):
        assert main(["trace", "--log-size", "8", "--gpus", "4",
                     "--fault", "device-death@0:gpu=1",
                     "--resilient"]) == 0
        out = capsys.readouterr().out
        assert "reshard" in out

    def test_trace_with_fault_plan_file(self, tmp_path, capsys):
        from repro.sim import FaultPlan

        plan = FaultPlan.from_specs(["transient-comm@0"], seed=3)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert main(["trace", "--log-size", "8", "--gpus", "4",
                     "--fault-plan", str(path), "--resilient"]) == 0
        assert "retry" in capsys.readouterr().out

    def test_unrecovered_fault_fails_run(self, capsys):
        # without --resilient a transient fault aborts the transform
        assert main(["trace", "--log-size", "8", "--gpus", "4",
                     "--fault", "transient-comm@0"]) == 2
        assert "transiently" in capsys.readouterr().err

    def test_f20_registered(self):
        assert "f20" in EXPERIMENTS


class TestServe:
    def test_serve_default_burst(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "6"]) == 0
        out = capsys.readouterr().out
        assert "served 4/4" in out
        assert "plan cache" in out
        assert "latency" in out

    def test_serve_verify_is_bit_exact(self, capsys):
        assert main(["serve", "--requests", "3", "--log-size", "6",
                     "--direction", "inverse", "--verify"]) == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_serve_json(self, capsys):
        import json

        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--json", "--verify"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] == 4
        assert payload["verified"] is True
        assert "latency_percentiles_s" in payload

    def test_serve_workload_file(self, tmp_path, capsys):
        path = tmp_path / "workload.json"
        path.write_text('{"spec": {"requests": 3, "log_sizes": [6]}}')
        assert main(["serve", "--workload", str(path)]) == 0
        assert "served 3/3" in capsys.readouterr().out

    def test_serve_with_fault_retries_and_verifies(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "8",
                     "--strategy", "split",
                     "--fault", "transient-comm@2", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "retries 1" in out
        assert "bit-exact" in out

    def test_serve_backpressure_reports_rejections(self, capsys):
        assert main(["serve", "--requests", "5", "--log-size", "6",
                     "--queue-capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 2/5" in out
        assert "rejected 3" in out

    def test_serve_bad_field_exits_2(self, capsys):
        assert main(["serve", "--field", "NoSuchField"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_mixed_field_fault_injection_exits_2(self, capsys):
        assert main(["serve", "--requests", "2", "--log-size", "6",
                     "--field", "Goldilocks", "--field", "BabyBear",
                     "--fault", "transient-comm@0"]) == 2
        assert "single-field" in capsys.readouterr().err

    def test_f21_registered(self):
        assert "f21" in EXPERIMENTS


class TestServeErrorHygiene:
    """Malformed serve inputs exit 2 with one clean line."""

    def test_invalid_workload_json(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        path.write_text("{not json")
        assert main(["serve", "--workload", str(path)]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error: ")
        assert "JSON" in captured.err
        assert captured.err.count("\n") == 1
        assert "Traceback" not in captured.err

    def test_workload_spec_wrong_type(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        path.write_text('{"spec": [1, 2, 3]}')
        assert main(["serve", "--workload", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ")
        assert "spec" in err
        assert err.count("\n") == 1

    def test_workload_bad_request_record(self, tmp_path, capsys):
        path = tmp_path / "w.json"
        path.write_text('{"requests": [{"no_such_field": 1}]}')
        assert main(["serve", "--workload", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_malformed_fault_plan_json(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        path.write_text('{"faults": "oops"}')
        assert main(["serve", "--requests", "2", "--log-size", "6",
                     "--fault-plan", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ")
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_crash_without_recover(self, capsys):
        assert main(["serve", "--requests", "2", "--log-size", "6",
                     "--crash", "3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ")
        assert "--recover" in err
        assert err.count("\n") == 1


class TestDurabilityCli:
    def test_journal_line_in_output(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--journal"]) == 0
        assert "durability: journal" in capsys.readouterr().out

    def test_crash_recover_verify(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--crash", "5", "--recover", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "served 4/4" in out
        assert "1 recovery(ies)" in out
        assert "bit-exact" in out

    def test_crash_recover_json(self, capsys):
        import json

        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--crash", "5", "--recover", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recoveries"] == 1
        assert payload["merged_completed"] == 4

    def test_degrade_line_in_output(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--strategy", "split", "--no-batching",
                     "--fault", "transient-comm@0:count=100000",
                     "--degrade"]) == 0
        out = capsys.readouterr().out
        assert "degradation:" in out
        assert "served 4/4" in out

    def test_f22_experiment_is_registered(self):
        from repro.cli import EXPERIMENTS

        assert "f22" in EXPERIMENTS
        build_parser().parse_args(["experiment", "f22"])


class TestFleetCli:
    def test_fleet_serve_text_summary(self, capsys):
        assert main(["serve", "--requests", "6", "--log-size", "6",
                     "--replicas", "2", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "fleet of 2 replicas served 6/6" in out
        assert "detector:" in out
        assert "per-replica completed:" in out
        assert "bit-exact" in out

    def test_fleet_serve_json(self, capsys):
        import json

        assert main(["serve", "--requests", "6", "--log-size", "6",
                     "--replicas", "2", "--json", "--verify"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replicas"] == 2
        assert payload["completed"] == 6
        assert payload["verified"] is True

    def test_fleet_survives_a_replica_kill(self, capsys):
        assert main(["serve", "--requests", "8", "--log-size", "6",
                     "--replicas", "3",
                     "--fault", "replica-crash@1:replica=1",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "served 8/8" in out
        # The burst is single-shape, so the dead replica may hold no
        # work (no failover needed); the death is still accounted and
        # every request still completes bit-exactly.
        assert "1 death(s)" in out
        assert "bit-exact" in out

    def test_fleet_tenant_weights_flow_through(self, capsys):
        assert main(["serve", "--requests", "6", "--log-size", "6",
                     "--replicas", "2",
                     "--tenant-weight", "gold=4.0"]) == 0
        assert "fleet of 2 replicas" in capsys.readouterr().out

    def test_fleet_faults_need_a_fleet(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--fault", "replica-crash@1:replica=0"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_fleet_rejects_single_server_durability_flags(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--replicas", "2", "--crash", "5"]) == 2
        assert "--crash" in capsys.readouterr().err

    def test_bad_tenant_weight_spec_exits_2(self, capsys):
        assert main(["serve", "--requests", "4", "--log-size", "6",
                     "--replicas", "2",
                     "--tenant-weight", "goldfour"]) == 2
        assert "TENANT=WEIGHT" in capsys.readouterr().err

    def test_f25_experiment_is_registered(self):
        from repro.cli import EXPERIMENTS

        assert "f25" in EXPERIMENTS
        build_parser().parse_args(["experiment", "f25"])
