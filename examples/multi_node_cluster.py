"""Scaling past one node: the recursion's fifth level.

Runs the two-level hierarchical UniNTT functionally on a simulated
2-node x 4-GPU cluster (bit-exact, with per-fabric byte accounting),
then prices 2-8 real DGX-A100 nodes over InfiniBand against the
topology-unaware alternatives.

Run:  python examples/multi_node_cluster.py
"""

import random

from repro.bench import format_table, multi_node_scaling
from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.hw import FOUR_NODE_DGX_A100
from repro.multigpu import DistributedVector, HierarchicalUniNTTEngine
from repro.ntt import ntt
from repro.sim import SimCluster


def functional_two_level() -> None:
    field = GOLDILOCKS
    nodes, per_node = 2, 4
    n = 1 << 10
    rng = random.Random(3)
    values = field.random_vector(n, rng)

    cluster = SimCluster(field, nodes * per_node, node_size=per_node)
    engine = HierarchicalUniNTTEngine(cluster)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    out = engine.forward(vec)
    assert out.to_values() == ntt(field, values)
    by_level = cluster.trace.bytes_by_level()
    print(f"2 nodes x 4 GPUs, 2^10 {field.name} NTT: bit-exact")
    print(f"  intra-node (NVSwitch) bytes: "
          f"{by_level.get('multi-gpu', 0):,}")
    print(f"  inter-node (network) bytes:  "
          f"{by_level.get('multi-node', 0):,}")
    back = engine.inverse(out)
    assert back.to_values() == values
    print("  inverse restored the input\n")


def cluster_estimates() -> None:
    print(f"preset cluster: {FOUR_NODE_DGX_A100.describe()}\n")
    headers, rows = multi_node_scaling(field=BLS12_381_FR)
    print(format_table(
        headers, rows,
        title="estimated NTT time across node counts (BLS12-381-Fr)"))
    print()
    print("the hierarchical engine's inter-node volume equals the flat")
    print("engine's; the gain is moving the rest onto NVSwitch and")
    print("cutting collective latency — the recursion argument.")


def main() -> None:
    functional_two_level()
    cluster_estimates()


if __name__ == "__main__":
    main()
