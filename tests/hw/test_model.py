"""Tests for the abstract hardware model."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    A100_GPU, DGX_A100, GpuSpec, LevelSpec, MachineModel, nvswitch,
)


class TestLevelSpec:
    def test_valid(self):
        spec = LevelSpec(name="warp", fanout=32, unit_capacity=32,
                         exchange_bandwidth=1e12, exchange_latency=1e-9)
        assert spec.plan_fanout == 32

    def test_plan_fanout_rounds_down(self):
        spec = LevelSpec(name="gpu", fanout=108, unit_capacity=1024,
                         exchange_bandwidth=1e12, exchange_latency=1e-6)
        assert spec.plan_fanout == 64

    @pytest.mark.parametrize("kwargs,match", [
        (dict(fanout=0), "fanout"),
        (dict(unit_capacity=0), "unit_capacity"),
        (dict(exchange_bandwidth=0), "bandwidth"),
        (dict(exchange_latency=-1), "latency"),
    ])
    def test_validation(self, kwargs, match):
        base = dict(name="x", fanout=2, unit_capacity=8,
                    exchange_bandwidth=1e9, exchange_latency=0)
        base.update(kwargs)
        with pytest.raises(HardwareModelError, match=match):
            LevelSpec(**base)


class TestGpuSpec:
    def test_field_mul_throughput_scales_with_limbs(self):
        one_limb = A100_GPU.field_mul_per_s(1)
        four_limb = A100_GPU.field_mul_per_s(4)
        assert one_limb > four_limb
        # 1 limb: 1 + 2 = 3 word ops; 4 limbs: 16 + 20 = 36.
        assert one_limb / four_limb == pytest.approx(36 / 3)

    def test_field_mul_limb_validation(self):
        with pytest.raises(HardwareModelError, match="limbs"):
            A100_GPU.field_mul_per_s(0)

    def test_levels_structure(self):
        levels = A100_GPU.levels(element_bytes=32)
        assert [lvl.name for lvl in levels] == ["gpu", "block", "warp"]
        gpu, block, warp = levels
        assert gpu.fanout == A100_GPU.sm_count
        assert warp.fanout == 32
        # smaller levels have faster fabrics but less capacity
        assert warp.exchange_latency < block.exchange_latency \
            < gpu.exchange_latency
        assert warp.unit_capacity < gpu.unit_capacity

    def test_throughput_validation(self):
        with pytest.raises(HardwareModelError, match="positive"):
            GpuSpec(name="bad", word_mul_per_s=0, hbm_bandwidth=1,
                    hbm_capacity_bytes=1)


class TestMachineModel:
    def test_gpu_count_power_of_two(self):
        with pytest.raises(HardwareModelError, match="power of two"):
            MachineModel(name="x", gpu=A100_GPU, gpu_count=6,
                         interconnect=nvswitch())

    def test_levels_outermost_first(self):
        levels = DGX_A100.levels(element_bytes=32)
        assert [lvl.name for lvl in levels] == ["multi-gpu", "gpu", "block",
                                                "warp"]
        assert levels[0].fanout == 8

    def test_level_lookup(self):
        spec = DGX_A100.level("warp", element_bytes=32)
        assert spec.name == "warp"
        with pytest.raises(HardwareModelError, match="no level"):
            DGX_A100.level("nope", element_bytes=32)

    def test_with_gpu_count(self):
        half = DGX_A100.with_gpu_count(4)
        assert half.gpu_count == 4
        assert half.gpu is DGX_A100.gpu
        assert "4xGPU" in half.name

    def test_max_transform_size(self):
        n = DGX_A100.max_transform_size(element_bytes=32)
        assert n & (n - 1) == 0
        total_elems = 8 * A100_GPU.hbm_capacity_bytes // 64
        assert n <= total_elems

    def test_describe(self):
        text = DGX_A100.describe()
        assert "DGX-A100" in text
        assert "8x" in text
