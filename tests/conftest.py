"""Shared fixtures and hypothesis configuration."""

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.field import (
    BABYBEAR, BLS12_381_FR, BN254_FR, GOLDILOCKS, TEST_FIELD_97,
    TEST_FIELD_7681,
)

# Field arithmetic in pure Python is slow enough that hypothesis's
# default deadline produces flaky failures; examples stay modest instead.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
# The CI fuzz profile is fully derandomized: the same example sequence
# every run, so a differential-fuzz failure in CI reproduces locally
# with HYPOTHESIS_PROFILE=ci and is never a flake.
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xA5A5)


@pytest.fixture(params=[TEST_FIELD_97, TEST_FIELD_7681, GOLDILOCKS,
                        BABYBEAR, BN254_FR, BLS12_381_FR],
                ids=lambda f: f.name)
def any_field(request):
    """Every preset field, small and production."""
    return request.param


@pytest.fixture(params=[TEST_FIELD_7681, GOLDILOCKS, BN254_FR],
                ids=lambda f: f.name)
def ntt_field(request):
    """A representative spread of NTT-capable fields (fast subset)."""
    return request.param
