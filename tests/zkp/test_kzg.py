"""Tests for KZG commitments and openings."""

import dataclasses

import pytest

from repro.errors import ProverError
from repro.field import BN254_FR
from repro.zkp import KzgScheme, Polynomial, trusted_setup

TAU = 0xFACEFEED


@pytest.fixture(scope="module")
def scheme():
    return KzgScheme(trusted_setup(16, TAU))


def poly(*coeffs):
    return Polynomial(BN254_FR, list(coeffs))


class TestCommit:
    def test_commitment_binds_polynomial(self, scheme):
        assert scheme.commit(poly(1, 2, 3)) != scheme.commit(poly(1, 2, 4))

    def test_commitment_is_evaluation_in_exponent(self, scheme):
        p = poly(7, 0, 0, 5)
        assert scheme.commit(p) == \
            scheme.curve.generator() * p.evaluate(TAU)

    def test_linearity(self, scheme):
        a, b = poly(1, 2), poly(3, 0, 4)
        assert scheme.commit(a) + scheme.commit(b) == scheme.commit(a + b)


class TestOpen:
    def test_valid_opening_verifies(self, scheme, rng):
        p = Polynomial(BN254_FR, BN254_FR.random_vector(10, rng))
        commitment = scheme.commit(p)
        for point in (0, 1, 999, BN254_FR.modulus - 1):
            opening = scheme.open(p, point)
            assert opening.value == p.evaluate(point)
            assert scheme.check_with_trapdoor(commitment, opening, TAU)

    def test_opening_at_tau_itself(self, scheme):
        """Degenerate but well-defined: tau - z = 0, witness check still
        distinguishes the correct value."""
        p = poly(5, 6, 7)
        commitment = scheme.commit(p)
        opening = scheme.open(p, TAU)
        assert scheme.check_with_trapdoor(commitment, opening, TAU)

    def test_constant_polynomial(self, scheme):
        p = poly(42)
        opening = scheme.open(p, 123)
        assert opening.value == 42
        assert opening.witness.is_infinity()  # zero quotient
        assert scheme.check_with_trapdoor(scheme.commit(p), opening, TAU)


class TestSoundness:
    def test_wrong_value_rejected(self, scheme, rng):
        p = Polynomial(BN254_FR, BN254_FR.random_vector(8, rng))
        commitment = scheme.commit(p)
        opening = scheme.open(p, 55)
        bad = dataclasses.replace(
            opening, value=(opening.value + 1) % BN254_FR.modulus)
        assert not scheme.check_with_trapdoor(commitment, bad, TAU)

    def test_wrong_witness_rejected(self, scheme):
        p = poly(1, 2, 3)
        commitment = scheme.commit(p)
        opening = scheme.open(p, 55)
        bad = dataclasses.replace(
            opening, witness=opening.witness + scheme.curve.generator())
        assert not scheme.check_with_trapdoor(commitment, bad, TAU)

    def test_wrong_commitment_rejected(self, scheme):
        p, q = poly(1, 2, 3), poly(1, 2, 4)
        opening = scheme.open(p, 55)
        assert not scheme.check_with_trapdoor(scheme.commit(q), opening,
                                              TAU)


class TestBatch:
    def test_batch_open(self, scheme, rng):
        polys = [Polynomial(BN254_FR, BN254_FR.random_vector(5, rng))
                 for _ in range(3)]
        openings = scheme.batch_open(polys, 99)
        for p, opening in zip(polys, openings):
            assert opening.point == 99
            assert scheme.check_with_trapdoor(scheme.commit(p), opening,
                                              TAU)

    def test_degree_bound_enforced(self, scheme):
        with pytest.raises(ProverError, match="degree"):
            scheme.commit(Polynomial.monomial(BN254_FR, 16))
