"""The abstract hardware model.

The paper's methodology rests on one abstraction: a hierarchy level is a
set of *units*, each with private storage, joined by an *exchange
fabric* with a bandwidth and a latency.  A warp is 32 lanes joined by
the register shuffle network; a thread block is warps joined by shared
memory; a GPU is SMs joined by global memory (HBM); a node is GPUs
joined by NVLink/PCIe.  Because every level looks the same, one NTT
decomposition and one set of optimizations apply to all of them.

:class:`LevelSpec` is that abstraction; :class:`GpuSpec` packages the
intra-GPU levels plus compute throughput; :class:`MachineModel` adds the
multi-GPU level.  Numbers for real machines live in
:mod:`repro.hw.machines`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.topology import Interconnect

__all__ = ["LevelSpec", "GpuSpec", "MachineModel"]


@dataclass(frozen=True)
class LevelSpec:
    """One level of the abstract hierarchy.

    Attributes
    ----------
    name:
        Level name; matches the ``level`` tags in decomposition plans.
    fanout:
        Number of child units one parent unit contains (e.g. 32 lanes
        per warp).
    unit_capacity:
        Field elements one child unit can hold in its private storage
        (registers per lane, shared memory per block, HBM per GPU).
    exchange_bandwidth:
        Bytes/second a unit can move through this level's fabric.
    exchange_latency:
        Seconds of fixed cost per exchange operation at this level
        (a shuffle instruction, a __syncthreads, a kernel launch, a
        collective start).
    """

    name: str
    fanout: int
    unit_capacity: int
    exchange_bandwidth: float
    exchange_latency: float

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise HardwareModelError(
                f"level {self.name!r}: fanout must be positive, "
                f"got {self.fanout}")
        if self.unit_capacity < 1:
            raise HardwareModelError(
                f"level {self.name!r}: unit_capacity must be positive")
        if self.exchange_bandwidth <= 0:
            raise HardwareModelError(
                f"level {self.name!r}: exchange bandwidth must be positive")
        if self.exchange_latency < 0:
            raise HardwareModelError(
                f"level {self.name!r}: latency cannot be negative")

    @property
    def plan_fanout(self) -> int:
        """Largest power-of-two fanout usable by a radix-2 plan split."""
        return 1 << (self.fanout.bit_length() - 1)


@dataclass(frozen=True)
class GpuSpec:
    """A single GPU: compute throughput plus its internal hierarchy.

    Attributes
    ----------
    name:
        Marketing name ("A100-SXM4-80GB").
    word_mul_per_s:
        Sustained 64x64->128-bit integer multiplies per second across
        the whole GPU.  Field-multiplication throughput is derived from
        this and the field's limb count, so one GPU spec serves every
        field.
    hbm_bandwidth:
        Global-memory bandwidth, bytes/second.
    hbm_capacity_bytes:
        Global-memory capacity.
    sm_count / warps_per_sm / lanes_per_warp:
        Execution hierarchy shape.
    smem_per_block_bytes / smem_bandwidth:
        Shared-memory capacity per thread block and aggregate bandwidth.
    shuffle_bandwidth:
        Aggregate register-shuffle bandwidth (warp-level fabric).
    kernel_launch_latency:
        Seconds per kernel launch (the GPU level's exchange latency: a
        global-memory round trip requires a new kernel).
    """

    name: str
    word_mul_per_s: float
    hbm_bandwidth: float
    hbm_capacity_bytes: int
    sm_count: int = 108
    warps_per_sm: int = 8
    lanes_per_warp: int = 32
    smem_per_block_bytes: int = 164 * 1024
    smem_bandwidth: float = 19e12
    shuffle_bandwidth: float = 80e12
    kernel_launch_latency: float = 5e-6

    def __post_init__(self) -> None:
        if self.word_mul_per_s <= 0 or self.hbm_bandwidth <= 0:
            raise HardwareModelError(
                f"{self.name}: throughputs must be positive")

    def field_mul_per_s(self, limbs: int) -> float:
        """Field multiplications/second for a ``limbs``-limb modulus.

        A Montgomery multiply costs ``limbs^2`` word products plus a
        ``limbs * (limbs + 1)`` REDC pass (see
        :meth:`repro.field.MontgomeryContext.mul_word_ops`).
        """
        if limbs < 1:
            raise HardwareModelError(f"limbs must be >= 1, got {limbs}")
        word_ops = limbs * limbs + limbs * (limbs + 1)
        return self.word_mul_per_s / word_ops

    def levels(self, element_bytes: int) -> list[LevelSpec]:
        """The intra-GPU hierarchy, outermost (GPU) first."""
        regs_per_lane = 32  # elements resident in registers per lane
        return [
            LevelSpec(
                name="gpu",
                fanout=self.sm_count,
                unit_capacity=self.smem_per_block_bytes // element_bytes,
                exchange_bandwidth=self.hbm_bandwidth / self.sm_count,
                exchange_latency=self.kernel_launch_latency,
            ),
            LevelSpec(
                name="block",
                fanout=self.warps_per_sm,
                unit_capacity=self.lanes_per_warp * regs_per_lane,
                exchange_bandwidth=self.smem_bandwidth / (
                    self.sm_count * self.warps_per_sm),
                exchange_latency=1e-7,  # a __syncthreads round
            ),
            LevelSpec(
                name="warp",
                fanout=self.lanes_per_warp,
                unit_capacity=regs_per_lane,
                exchange_bandwidth=self.shuffle_bandwidth / (
                    self.sm_count * self.warps_per_sm * self.lanes_per_warp),
                exchange_latency=2e-9,  # a shuffle instruction
            ),
        ]


@dataclass(frozen=True)
class MachineModel:
    """A multi-GPU machine: N identical GPUs on one interconnect."""

    name: str
    gpu: GpuSpec
    gpu_count: int
    interconnect: Interconnect

    def __post_init__(self) -> None:
        if self.gpu_count < 1 or self.gpu_count & (self.gpu_count - 1):
            raise HardwareModelError(
                f"gpu_count must be a power of two, got {self.gpu_count}")

    def with_gpu_count(self, gpu_count: int) -> "MachineModel":
        """The same machine restricted/extended to ``gpu_count`` GPUs."""
        return MachineModel(name=f"{self.name}[{gpu_count}xGPU]",
                            gpu=self.gpu, gpu_count=gpu_count,
                            interconnect=self.interconnect)

    def levels(self, element_bytes: int) -> list[LevelSpec]:
        """The full hierarchy outermost first: multi-GPU, gpu, block, warp."""
        hbm_elems = self.gpu.hbm_capacity_bytes // element_bytes
        multi = LevelSpec(
            name="multi-gpu",
            fanout=self.gpu_count,
            unit_capacity=hbm_elems,
            exchange_bandwidth=self.interconnect.alltoall_bandwidth(
                self.gpu_count),
            exchange_latency=self.interconnect.latency,
        )
        return [multi] + self.gpu.levels(element_bytes)

    def level(self, name: str, element_bytes: int) -> LevelSpec:
        """Look up one hierarchy level by name."""
        for spec in self.levels(element_bytes):
            if spec.name == name:
                return spec
        raise HardwareModelError(f"{self.name} has no level named {name!r}")

    def max_transform_size(self, element_bytes: int) -> int:
        """Largest single NTT that fits (needs ~2x for double buffering)."""
        total = self.gpu_count * self.gpu.hbm_capacity_bytes
        elements = total // (2 * element_bytes)
        if elements < 1:
            return 0
        return 1 << (elements.bit_length() - 1)

    def describe(self) -> str:
        return (f"{self.name}: {self.gpu_count}x {self.gpu.name}, "
                f"{self.interconnect.describe()}")
