"""Graceful degradation: breakers, single-GPU fallback, shedding.

Fabric faults only fire on collectives, so every test that needs the
injector to actually bite uses ``strategy="split"`` with batching off —
the same setup the chaos-serving tests use.
"""

import pytest

from repro.analysis import check_trace
from repro.errors import ServeError
from repro.field.presets import GOLDILOCKS
from repro.serve import (
    BREAKER_STATES, CircuitBreaker, DegradePolicy, ProofServer,
    WorkloadSpec, generate_workload,
)
from repro.sim.faults import FaultInjector, FaultPlan

SPEC = WorkloadSpec(requests=10, log_sizes=(8,), mean_interarrival_s=1e-4,
                    deadline_s=1.0, seed=11)


def injector(*specs):
    return FaultInjector(FaultPlan.from_specs(list(specs)),
                         GOLDILOCKS.modulus)


def degraded_server(policy=None, **kwargs):
    kwargs.setdefault("strategy", "split")
    kwargs.setdefault("batching", False)
    return ProofServer(degrade=policy or DegradePolicy(), **kwargs)


class TestDegradePolicy:
    @pytest.mark.parametrize("bad", [
        {"breaker_threshold": 0},
        {"cooldown_s": -1e-6},
        {"window": 0},
        {"shed_fault_rate": 0.0},
        {"shed_fault_rate": 1.5},
        {"shed_queue_fraction": 0.0},
        {"shed_queue_fraction": 1.0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ServeError):
            DegradePolicy(**bad)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("Goldilocks", DegradePolicy(
            breaker_threshold=3))
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(0.0) is True
        assert breaker.state == "open"

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("Goldilocks", DegradePolicy(
            breaker_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success()
        assert breaker.record_failure(0.0) is False
        assert breaker.state == "closed"

    def test_cooldown_half_opens(self):
        policy = DegradePolicy(breaker_threshold=1, cooldown_s=1e-3)
        breaker = CircuitBreaker("Goldilocks", policy)
        breaker.record_failure(0.0)
        assert breaker.poll(0.5e-3) == "open"
        assert breaker.poll(1.0e-3) == "half-open"

    def test_probe_failure_reopens(self):
        policy = DegradePolicy(breaker_threshold=1, cooldown_s=1e-3)
        breaker = CircuitBreaker("Goldilocks", policy)
        breaker.record_failure(0.0)
        breaker.poll(2e-3)
        assert breaker.record_failure(2e-3) is True
        assert breaker.state == "open"
        # The cooldown restarts from the failed probe.
        assert breaker.poll(2.5e-3) == "open"

    def test_probe_success_closes(self):
        policy = DegradePolicy(breaker_threshold=1, cooldown_s=1e-3)
        breaker = CircuitBreaker("Goldilocks", policy)
        breaker.record_failure(0.0)
        breaker.poll(2e-3)
        assert breaker.record_success() is True
        assert breaker.state == "closed"

    def test_states_registry(self):
        assert BREAKER_STATES == ("closed", "open", "half-open")


class TestFallback:
    def test_sustained_faults_complete_on_single_gpu(self):
        requests = generate_workload(SPEC)
        clean = ProofServer(strategy="split", batching=False) \
            .serve(requests)
        server = degraded_server(
            DegradePolicy(breaker_threshold=2),
            injector=injector("transient-comm@0:count=100000"))
        report = server.serve(requests)
        assert report.completed == len(requests)
        assert report.breaker_trips >= 1
        assert report.fallback_dispatches >= 1
        fallback = [d for d in report.dispatches
                    if d.engine == "single-gpu"]
        assert fallback and all(d.strategy == "single-gpu" or d.engine
                                == "single-gpu" for d in fallback)
        # Bit-exactness: the fallback engine computes the same NTT.
        assert {r.request.request_id: r.outputs for r in report.results} \
            == {r.request.request_id: r.outputs for r in clean.results}
        assert check_trace(server.trace) == []

    def test_fallback_is_priced_via_its_own_profile(self):
        # The single-GPU engine is not free: every fallback dispatch
        # carries its own nonzero phase profile, and that profile is
        # the one-GPU engine's — not a copy of the primary's.
        requests = generate_workload(SPEC)
        clean = ProofServer(strategy="split", batching=False) \
            .serve(requests)
        report = degraded_server(
            DegradePolicy(breaker_threshold=1),
            injector=injector("transient-comm@0:count=100000")) \
            .serve(requests)
        fallback = [d for d in report.dispatches
                    if d.engine == "single-gpu"]
        assert fallback
        primary_durations = {d.duration_s for d in clean.dispatches}
        for record in fallback:
            assert record.duration_s > 0.0
            assert record.steps
            assert record.duration_s not in primary_durations

    def test_retry_only_server_fails_where_degraded_survives(self):
        requests = generate_workload(SPEC)
        with pytest.raises(ServeError) as exc:
            ProofServer(strategy="split", batching=False,
                        injector=injector(
                            "transient-comm@0:count=100000")) \
                .serve(requests)
        assert getattr(exc.value, "report", None) is not None
        survived = degraded_server(
            injector=injector("transient-comm@0:count=100000")) \
            .serve(requests)
        assert survived.completed == len(requests)

    def test_probe_success_returns_to_primary(self):
        # A finite fault burst: the breaker opens, half-opens after the
        # cooldown, the probe succeeds on the healed fabric, and the
        # remaining requests run on the multi-GPU primary again.
        requests = generate_workload(SPEC)
        server = degraded_server(
            DegradePolicy(breaker_threshold=1, cooldown_s=1e-5),
            injector=injector("transient-comm@0:count=2"))
        report = server.serve(requests)
        assert report.completed == len(requests)
        assert report.breaker_probes >= 1
        engines = [d.engine for d in report.dispatches]
        assert engines[-1] == "multi-gpu"
        assert check_trace(server.trace) == []

    def test_breaker_events_are_traced(self):
        requests = generate_workload(SPEC)
        server = degraded_server(
            DegradePolicy(breaker_threshold=1, cooldown_s=1e-5),
            injector=injector("transient-comm@0:count=2"))
        server.serve(requests)
        details = [e.detail for e in server.trace.events
                   if e.kind == "serve-breaker"]
        assert any("open" in d for d in details)


class TestShedding:
    def test_overloaded_faulty_queue_sheds(self):
        spec = WorkloadSpec(requests=12, log_sizes=(8,), deadline_s=1.0,
                            priority_levels=3, seed=13)
        requests = generate_workload(spec)
        server = degraded_server(
            DegradePolicy(breaker_threshold=4, shed_fault_rate=0.4,
                          shed_queue_fraction=0.3),
            queue_capacity=8,
            injector=injector("transient-comm@0:count=100000"))
        report = server.serve(requests)
        assert report.shed > 0
        assert report.shed_s > 0.0
        shed_ids = {
            int(e.detail.split()[0].partition("=")[2])
            for e in server.trace.events if e.kind == "serve-shed"}
        completed_ids = {r.request.request_id for r in report.results}
        assert shed_ids and not shed_ids & completed_ids
        assert report.plan_cost(server.machine).total_s > 0.0
        assert check_trace(server.trace) == []

    def test_shedding_prices_into_plan_cost(self):
        spec = WorkloadSpec(requests=12, log_sizes=(8,), deadline_s=1.0,
                            priority_levels=3, seed=13)
        requests = generate_workload(spec)
        shed_server = degraded_server(
            DegradePolicy(breaker_threshold=4, shed_fault_rate=0.4,
                          shed_queue_fraction=0.3),
            queue_capacity=8,
            injector=injector("transient-comm@0:count=100000"))
        shed_report = shed_server.serve(requests)
        assert shed_report.shed > 0
        cost = shed_report.plan_cost(shed_server.machine)
        assert cost.exchange_s >= shed_report.shed_s
