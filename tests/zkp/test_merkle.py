"""Tests for Merkle commitments."""

import dataclasses

import pytest

from repro.errors import ProverError
from repro.zkp import MerklePath, MerkleTree, hash_leaf, hash_nodes


class TestTree:
    def test_power_of_two_required(self):
        with pytest.raises(ProverError, match="power-of-two"):
            MerkleTree([1, 2, 3])
        with pytest.raises(ProverError, match="power-of-two"):
            MerkleTree([])

    def test_single_leaf(self):
        tree = MerkleTree([42])
        assert tree.depth == 0
        assert tree.root == hash_leaf(42)
        assert MerkleTree.verify(tree.root, tree.open(0))

    def test_depth(self):
        assert MerkleTree(list(range(16))).depth == 4

    def test_root_deterministic(self):
        assert MerkleTree([1, 2, 3, 4]).root == MerkleTree([1, 2, 3, 4]).root

    def test_root_binds_content(self):
        assert MerkleTree([1, 2, 3, 4]).root != MerkleTree([1, 2, 3, 5]).root

    def test_root_binds_order(self):
        assert MerkleTree([1, 2, 3, 4]).root != MerkleTree([2, 1, 3, 4]).root

    def test_manual_two_leaf_root(self):
        tree = MerkleTree([7, 9])
        assert tree.root == hash_nodes(hash_leaf(7), hash_leaf(9))


class TestPaths:
    def test_all_positions_verify(self):
        leaves = [v * 13 % 97 for v in range(32)]
        tree = MerkleTree(leaves)
        for index in range(32):
            path = tree.open(index)
            assert path.leaf == leaves[index]
            assert MerkleTree.verify(tree.root, path)

    def test_out_of_range(self):
        tree = MerkleTree([1, 2])
        with pytest.raises(ProverError, match="out of range"):
            tree.open(2)

    def test_wrong_leaf_rejected(self):
        tree = MerkleTree([1, 2, 3, 4])
        path = tree.open(1)
        bad = dataclasses.replace(path, leaf=99)
        assert not MerkleTree.verify(tree.root, bad)

    def test_wrong_index_rejected(self):
        tree = MerkleTree([1, 2, 3, 4])
        path = tree.open(1)
        bad = dataclasses.replace(path, index=2)
        assert not MerkleTree.verify(tree.root, bad)

    def test_wrong_sibling_rejected(self):
        tree = MerkleTree([1, 2, 3, 4])
        path = tree.open(0)
        bad = dataclasses.replace(
            path, siblings=(hash_leaf(9),) + path.siblings[1:])
        assert not MerkleTree.verify(tree.root, bad)

    def test_domain_separation(self):
        """A leaf hash can never collide with a node hash."""
        assert hash_leaf(5) != hash_nodes(hash_leaf(5), hash_leaf(5))
