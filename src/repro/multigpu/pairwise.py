"""Binary-exchange distributed NTT (the classic distributed-FFT design).

The third point of the design space: instead of UniNTT's single
all-to-all, the cross-GPU transform is executed as ``log2(G)``
**butterfly stages**, each a disjoint-pair exchange of the full local
shard.  This is how distributed FFTs on message-passing machines were
traditionally built, and what a straightforward port of the in-GPU
butterfly structure to the multi-GPU level produces.

Trade-off against UniNTT:

* volume: ``M * log2(G)`` bytes per GPU versus ``M * (G-1)/G`` — ~3x
  more at 8 GPUs;
* pattern: disjoint pairs ride dedicated links (no all-to-all
  congestion), which partially compensates on ring topologies;
* latency: ``log2(G)`` synchronizations versus 1.

Like UniNTT it needs no transpose passes: the input is cyclic, the
twiddles are fused, and the output is left in a bit-reversed spectral
layout that :meth:`inverse` consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.field.vector import vec_add, vec_mul, vec_scale, vec_sub
from repro.hw.cost import Phase, Step
from repro.multigpu import accounting as acct
from repro.multigpu.base import DistributedNTTEngine, DistributedVector
from repro.multigpu.layout import CyclicLayout, Layout
from repro.ntt import radix2
from repro.ntt.twiddle import bit_reverse, default_cache
from repro.sim.trace import TraceEvent

__all__ = ["BitrevSpectralLayout", "PairwiseExchangeEngine"]


@dataclass(frozen=True)
class BitrevSpectralLayout(Layout):
    """Output order of the binary-exchange engine.

    With ``M = n/G`` and spectrum split ``k = k1 + M*k2``: GPU
    ``bitrev(k2)`` holds the k1-vector for its k2 (local index = k1) —
    the natural end state of ``log2 G`` DIF stages over the GPU
    dimension.
    """

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        m = self.shard_size
        k1, k2 = global_index % m, global_index // m
        bits = self.gpu_count.bit_length() - 1
        return bit_reverse(k2, bits), k1

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        bits = self.gpu_count.bit_length() - 1
        return local + self.shard_size * bit_reverse(gpu, bits)


class PairwiseExchangeEngine(DistributedNTTEngine):
    """Cross-GPU NTT via log2(G) pairwise butterfly stages."""

    name = "pairwise-exchange"

    # -- layouts -----------------------------------------------------------

    def input_layout(self, n: int) -> Layout:
        return CyclicLayout(n=n, gpu_count=self.gpu_count)

    def output_layout(self, n: int) -> Layout:
        return BitrevSpectralLayout(n=n, gpu_count=self.gpu_count)

    def _check_size(self, n: int) -> None:
        if n < 2 * self.gpu_count:
            raise PartitionError(
                f"pairwise engine needs n >= 2*G ({n} < "
                f"{2 * self.gpu_count})")

    # -- functional ------------------------------------------------------------

    def forward(self, vec: DistributedVector) -> DistributedVector:
        n = vec.n
        self._check_size(n)
        self._check_input(vec, self.input_layout(n))
        g = self.gpu_count
        m = n // g
        field = self.field
        p = field.modulus
        root = field.root_of_unity(n)
        cluster = self.cluster

        # Local M-point transforms + fused twiddle (as in UniNTT).
        root_m = pow(root, g, p)
        for gpu in cluster.gpus:
            gpu.shard = radix2.ntt(field, gpu.shard, default_cache,
                                   root=root_m)
            s = gpu.gpu_id
            if s:
                tw = default_cache.powers(field, pow(root, s, p), m)
                gpu.shard = vec_mul(field, gpu.shard, tw)
        self._charge_local(m, twiddle=True, detail="pairwise-local")

        # DIF butterfly stages over the GPU dimension, root w^M (order G).
        root_g = pow(root, m, p)
        twiddles = default_cache.powers(field, root_g, max(g // 2, 1))
        half = g // 2
        while half >= 1:
            step = (g // 2) // half
            partner = [s ^ half for s in range(g)]
            payloads = [gpu.shard for gpu in cluster.gpus]
            received = cluster.pairwise_exchange(
                partner, payloads, detail=f"pairwise-stage-h{half}")
            for gpu in cluster.gpus:
                s = gpu.gpu_id
                theirs = received[s]
                mine = gpu.shard
                if s & half:
                    w = twiddles[(s & (half - 1)) * step]
                    gpu.shard = vec_scale(
                        field, vec_sub(field, theirs, mine), w)
                else:
                    gpu.shard = vec_add(field, mine, theirs)
            self._charge_stage(m, detail=f"pairwise-combine-h{half}")
            half //= 2
        return DistributedVector(
            cluster=cluster,
            layout=BitrevSpectralLayout(n=n, gpu_count=g))

    def inverse(self, vec: DistributedVector) -> DistributedVector:
        n = vec.n
        self._check_size(n)
        self._check_input(vec, self.output_layout(n))
        g = self.gpu_count
        m = n // g
        field = self.field
        p = field.modulus
        root = field.root_of_unity(n)
        inv_root = field.inv(root)
        cluster = self.cluster

        # DIT butterfly stages over the GPU dimension (bit-reversed in,
        # natural out), with the inverse root.
        inv_root_g = pow(inv_root, m, p)
        twiddles = default_cache.powers(field, inv_root_g, max(g // 2, 1))
        half = 1
        while half < g:
            step = (g // 2) // half
            partner = [s ^ half for s in range(g)]
            # The butterfly needs v = a_{j+h} * w; the twiddle applies to
            # the bit-set partner's value before it travels either way.
            payloads = []
            for gpu in cluster.gpus:
                s = gpu.gpu_id
                if s & half:
                    w = twiddles[(s & (half - 1)) * step]
                    payloads.append(vec_scale(field, gpu.shard, w))
                    self._charge_stage_twiddle(m)
                else:
                    payloads.append(gpu.shard)
            received = cluster.pairwise_exchange(
                partner, payloads, detail=f"pairwise-inv-h{half}")
            for gpu in cluster.gpus:
                s = gpu.gpu_id
                theirs = received[s]
                if s & half:
                    w = twiddles[(s & (half - 1)) * step]
                    mine_tw = vec_scale(field, gpu.shard, w)
                    gpu.shard = vec_sub(field, theirs, mine_tw)
                else:
                    gpu.shard = vec_add(field, gpu.shard, theirs)
            self._charge_stage(m, detail=f"pairwise-inv-combine-h{half}")
            half *= 2

        # Scale 1/G, inverse twiddle, local inverse transform (scale 1/M).
        g_inv = field.inv(g % p)
        inv_root_m = pow(inv_root, g, p)
        m_inv = field.inv(m % p)
        for gpu in cluster.gpus:
            s = gpu.gpu_id
            shard = vec_scale(field, gpu.shard, g_inv)
            if s:
                tw = default_cache.powers(field, pow(inv_root, s, p), m)
                shard = vec_mul(field, shard, tw)
            piece = radix2.ntt(field, shard, default_cache, root=inv_root_m)
            gpu.shard = vec_scale(field, piece, m_inv)
        self._charge_local(m, twiddle=True, scaled=True,
                           detail="pairwise-inv-local")
        return DistributedVector(cluster=cluster,
                                 layout=CyclicLayout(n=n, gpu_count=g))

    # -- accounting --------------------------------------------------------------

    def _charge_local(self, m: int, twiddle: bool, detail: str,
                      scaled: bool = False) -> None:
        eb = self.cluster.element_bytes
        muls = acct.local_ntt_muls(m)
        if twiddle:
            muls += acct.twiddle_muls(m)
        if scaled:
            muls += 2 * m  # the 1/G and 1/M scaling passes
        mem = acct.local_ntt_mem_bytes(m, eb, self.tile)
        for gpu in self.cluster.gpus:
            gpu.charge_compute(muls, mem)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu", max_bytes_per_gpu=mem,
            total_bytes=mem * self.gpu_count,
            field_muls=muls * self.gpu_count, detail=detail))

    def _charge_stage(self, m: int, detail: str) -> None:
        """One butterfly combine over the shard: <= m multiplies, one pass."""
        eb = self.cluster.element_bytes
        mem = acct.pointwise_mem_bytes(m, eb)
        for gpu in self.cluster.gpus:
            gpu.charge_compute(m, mem)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu", max_bytes_per_gpu=mem,
            total_bytes=mem * self.gpu_count,
            field_muls=m * self.gpu_count, detail=detail))

    def _charge_stage_twiddle(self, m: int) -> None:
        """Pre-send twiddle of the inverse stage (no extra memory pass)."""
        # Charged on the sending GPU only; folded into the send prep.
        pass

    # -- analytic ----------------------------------------------------------------

    def _profile(self, n: int, inverse: bool) -> list[Step]:
        self._check_size(n)
        g = self.gpu_count
        eb = self.cluster.element_bytes
        m = n // g
        stages = acct.log2_int(g)

        local_muls = acct.local_ntt_muls(m) + acct.twiddle_muls(m)
        if inverse:
            local_muls += 2 * m
        local = Phase(name="local-ntt", field_muls=local_muls,
                      mem_bytes=acct.local_ntt_mem_bytes(m, eb, self.tile))

        steps: list[Step] = []
        stage_steps: list[Step] = []
        for i in range(stages):
            stage_steps.append(Phase(
                name=f"stage-{i}", field_muls=m,
                mem_bytes=acct.pointwise_mem_bytes(m, eb),
                exchange_bytes=m * eb, exchange_pattern="pairwise",
                messages=1))
        if inverse:
            steps = stage_steps + [local]
        else:
            steps = [local] + stage_steps
        return steps

    def forward_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=False)

    def inverse_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=True)
