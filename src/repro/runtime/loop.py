"""A deterministic scheduled-event heap and shared id counter.

:class:`EventLoop` is the piece the single-server scheduler never
needed and the replicated fleet cannot live without: with one server,
"what happens next" is always either the next arrival or the end of
the one in-flight dispatch, so a plain loop suffices.  With N replicas
making concurrent progress on one virtual axis, next-event selection
becomes a real scheduling problem — arrivals, N independent dispatch
completions, heartbeat ticks, and fault firings all interleave — and
any ambiguity in tie-breaking forks the replay.  The loop therefore
orders events by ``(t_s, priority, seq)``: virtual time first, then an
explicit caller-declared priority class, then insertion order.  Same
schedule in, same pop sequence out, always.

:class:`SharedCounter` is the matching id substrate: a monotonic
counter multiple components draw from.  The fleet hands one to every
replica so batch ids are globally unique across the whole fleet (which
is what lets a single shared trace be audited for duplicate
completions), and :class:`repro.sim.trace.Trace` stamps its logical
step axis from one.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field as dataclass_field
from typing import Any

from repro.errors import ServeError
from repro.runtime.clock import VirtualClock

__all__ = ["EventLoop", "ScheduledEvent", "SharedCounter"]


class SharedCounter:
    """A monotonic integer source shared across components."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ServeError(f"counter cannot start at {start} < 0")
        self._next = int(start)

    @property
    def peek(self) -> int:
        """The value the next :meth:`next` call will return."""
        return self._next

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    def advance_to(self, floor: int) -> None:
        """Ensure the next value is at least ``floor`` (never rewinds)."""
        self._next = max(self._next, int(floor))

    def __repr__(self) -> str:
        return f"SharedCounter(next={self._next})"


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """One pending event, ordered by ``(t_s, priority, seq)``.

    ``kind`` and ``payload`` are excluded from the ordering: ties are
    broken purely by the declared priority class and then insertion
    order, never by payload contents.
    """

    t_s: float
    priority: int
    seq: int
    kind: str = dataclass_field(compare=False)
    payload: Any = dataclass_field(compare=False, default=None)


class EventLoop:
    """A deterministic future-event list on a :class:`VirtualClock`.

    ``pop_next`` advances the clock to the popped event's timestamp, so
    driving a simulation is simply ``while not loop.empty: handle(
    loop.pop_next())``.  Cancellation is lazy (tombstones), which keeps
    scheduling O(log n) and — unlike heap surgery — order-stable.
    """

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def schedule(self, t_s: float, kind: str, payload: Any = None, *,
                 priority: int = 0) -> ScheduledEvent:
        """Enqueue an event at absolute virtual time ``t_s``."""
        if not math.isfinite(t_s):
            raise ServeError(
                f"cannot schedule {kind!r} at non-finite time {t_s!r}")
        if t_s < self.clock.now_s:
            raise ServeError(
                f"cannot schedule {kind!r} at {t_s} in the past "
                f"(now={self.clock.now_s})")
        event = ScheduledEvent(t_s=float(t_s), priority=priority,
                               seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        self._pending.add(event.seq)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: ScheduledEvent) -> None:
        """Drop a pending event (no-op if already popped/cancelled)."""
        if event.seq in self._pending:
            self._pending.discard(event.seq)
            self._cancelled.add(event.seq)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].seq in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._heap).seq)

    def peek_next_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].t_s if self._heap else None

    def pop_next(self) -> ScheduledEvent:
        """Pop the next event, advancing the clock to its time."""
        self._drop_cancelled()
        if not self._heap:
            raise ServeError("pop_next on an empty event loop")
        event = heapq.heappop(self._heap)
        self._pending.discard(event.seq)
        self.clock.advance_to(event.t_s)
        return event
