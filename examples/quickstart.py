"""Quickstart: fields, NTTs, polynomial products, and a multi-GPU transform.

Run:  python examples/quickstart.py
"""

import random

from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.multigpu import DistributedVector, UniNTTEngine
from repro.ntt import intt, ntt, poly_multiply
from repro.sim import SimCluster


def main() -> None:
    rng = random.Random(42)

    # --- 1. A plain NTT round trip over the BLS12-381 scalar field.
    field = BLS12_381_FR
    values = field.random_vector(8, rng)
    spectrum = ntt(field, values)
    recovered = intt(field, spectrum)
    assert recovered == values
    print(f"[1] NTT round trip over {field.name}: OK "
          f"(first spectrum value: {spectrum[0] % 10**12}...)")

    # --- 2. Polynomial multiplication via the convolution theorem.
    a = [3, 0, 1]          # 3 + x^2
    b = [1, 2]             # 1 + 2x
    product = poly_multiply(GOLDILOCKS, a, b)
    assert product == [3, 6, 1, 2]  # 3 + 6x + x^2 + 2x^3
    print(f"[2] (3 + x^2)(1 + 2x) = {product} over {GOLDILOCKS.name}")

    # --- 3. A distributed transform on a simulated 8-GPU node.
    n = 1 << 12
    cluster = SimCluster(field, gpu_count=8)
    engine = UniNTTEngine(cluster)
    values = field.random_vector(n, rng)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    out = engine.forward(vec)
    assert out.to_values() == ntt(field, values)
    summary = cluster.trace.summary()
    print(f"[3] UniNTT forward of 2^12 on 8 simulated GPUs: OK")
    print(f"    collectives: {summary['collectives']} "
          f"(the baseline four-step would need 3)")
    print(f"    inter-GPU bytes: "
          f"{summary['bytes_by_level'].get('multi-gpu', 0):,}")

    # --- 4. And back, consuming the permuted spectral layout directly.
    back = engine.inverse(out)
    assert back.to_values() == values
    print(f"[4] inverse transform restored the input; round trip used "
          f"{cluster.trace.collective_count()} collectives total")


if __name__ == "__main__":
    main()
