"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version, preset fields, machines, and clusters.
``experiment <id> [...]``
    Regenerate one reconstructed table/figure (or ``all``) and print it.
``demo``
    A 30-second guided tour: functional multi-GPU transform plus a real
    Groth16-style proof.
``estimate``
    Price one NTT configuration (machine x field x size x engine).
``trace``
    Run one engine functionally on the simulator and print its event
    log and per-level communication summary.
``tune``
    Autotune tile size and rank the engines for a workload.
``analyze plan|trace|lint|optimize``
    Static analysis: verify a symbolic communication schedule, race-check
    a simulator trace against it, lint ``src/repro`` for project
    invariants, or synthesize and rank verified schedule rewrites for a
    topology.  All four support ``--json`` and exit non-zero on
    findings, so they double as CI gates.
``serve``
    Run the proof-serving scheduler over a workload (synthetic via
    generator flags, or explicit via ``--workload`` JSON) and print the
    serving report: throughput, latency percentiles, batching and
    cache statistics.  ``--verify`` checks every output bit-exactly
    against the reference transform.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import __version__
from repro.bench import format_table
from repro.bench import runners as bench_runners

__all__ = ["main", "build_parser"]

#: Experiment id -> (runner, title).
EXPERIMENTS: dict[str, tuple[Callable[[], tuple], str]] = {
    "t1": (bench_runners.platforms_table, "T1: hardware platforms"),
    "t2": (bench_runners.workloads_table, "T2: NTT workloads"),
    "t3": (bench_runners.batch_throughput, "T3: batched NTT throughput"),
    "f7": (bench_runners.single_gpu_comparison, "F7: single-GPU NTT"),
    "f8": (bench_runners.multi_gpu_scaling, "F8: multi-GPU scaling"),
    "f8-headline": (bench_runners.headline_speedups,
                    "F8 summary: geomean speedups"),
    "f9": (bench_runners.comm_breakdown, "F9: communication breakdown"),
    "f10": (bench_runners.ablation, "F10: optimization ablation"),
    "f11": (bench_runners.end_to_end, "F11: end-to-end proof generation"),
    "f12": (bench_runners.interconnect_sensitivity,
            "F12: interconnect sensitivity"),
    "f14": (bench_runners.multi_node_scaling, "F14: multi-node scaling"),
    "f15": (bench_runners.stark_end_to_end,
            "F15: STARK end-to-end proof generation"),
    "f16": (lambda: _uniformity_table(),
            "F16: hierarchy uniformity (functional)"),
    "f17": (lambda: _autotune_table(),
            "F17: autotuned tiles and plan attribution"),
    "f18": (lambda: _streaming_table(),
            "F18: out-of-core (host-staged) NTT"),
    "f19": (bench_runners.backend_comparison,
            "F19: field backend comparison (measured)"),
    "f20": (bench_runners.resilience_overhead,
            "F20: resilience overhead under injected faults"),
    "f21": (bench_runners.serving_throughput,
            "F21: serving throughput vs offered load"),
    "f22": (bench_runners.durability_degradation,
            "F22: crash recovery and graceful degradation"),
    "f23": (bench_runners.bigfield_comparison,
            "F23: big-field multi-limb backend comparison (measured)"),
    "f24": (bench_runners.schedule_synthesis,
            "F24: verified schedule synthesis vs hand-written"),
    "f25": (bench_runners.fleet_scaling,
            "F25: fleet goodput vs replicas under replica kills"),
}


def _streaming_table():
    from repro.field import BLS12_381_FR
    from repro.hw import DGX_A100
    from repro.multigpu import StreamingHostEngine, UniNTTEngine
    from repro.sim import SimCluster

    headers = ["log2(n)", "in-memory ms", "streaming ms", "host tax"]
    rows = []
    cluster = SimCluster(BLS12_381_FR, 8)
    stream = StreamingHostEngine(cluster)
    memory = UniNTTEngine(cluster)
    for log_n in (24, 26, 28, 30):
        n = 1 << log_n
        est = stream.estimate(DGX_A100, n)
        t_mem = memory.estimate(DGX_A100, n).total_s
        rows.append([log_n, t_mem * 1e3, est.total_s * 1e3,
                     est.total_s / t_mem])
    return headers, rows


def _autotune_table():
    from repro.field import BLS12_381_FR, GOLDILOCKS
    from repro.hw import ALL_MACHINES, price_plan
    from repro.multigpu import autotune_tile, machine_plan

    headers = ["machine", "field", "best tile", "UniNTT ms",
               "plan dominant level"]
    rows = []
    n = 1 << 24
    for machine in ALL_MACHINES:
        for field in (GOLDILOCKS, BLS12_381_FR):
            tile, seconds = autotune_tile(machine, field, n)
            plan = machine_plan(machine, field, n)
            cost = price_plan(machine, field, plan)
            rows.append([machine.name, field.name, tile, seconds * 1e3,
                         cost.dominant_level()])
    return headers, rows


def _uniformity_table():
    from repro.field import GOLDILOCKS
    from repro.sim import uniformity_sweep

    headers = ["level", "units", "n", "exchanges",
               "exchanged elems/elem"]
    rows = [[r.level, r.units, r.n, r.exchanges,
             r.elements_exchanged_per_element]
            for r in uniformity_sweep(GOLDILOCKS, n_per_unit=64)]
    return headers, rows


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UniNTT reproduction: multi-GPU NTT for ZKP "
                    "(simulated)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--debug", action="store_true",
                        help="full tracebacks instead of one-line errors")
    parser.add_argument("--backend", default=None,
                        choices=["auto", "python", "numpy", "multilimb"],
                        help="field compute backend (default: "
                             "$REPRO_BACKEND or auto)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="presets and library summary")

    exp = sub.add_parser("experiment",
                         help="regenerate a reconstructed table/figure")
    exp.add_argument("ids", nargs="+",
                     choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment id(s), or 'all'")

    sub.add_parser("demo", help="guided functional tour")

    est = sub.add_parser("estimate", help="price one NTT configuration")
    est.add_argument("--machine", default="DGX-A100")
    est.add_argument("--machine-file", default=None,
                     help="JSON machine description (overrides --machine)")
    est.add_argument("--field", default="BLS12-381-Fr")
    est.add_argument("--log-size", type=int, default=24)
    est.add_argument("--engine", default="unintt",
                     choices=["single", "baseline", "pairwise", "unintt"])

    tr = sub.add_parser("trace",
                        help="run one engine on the simulator, print "
                             "its event log")
    tr.add_argument("--field", default="Goldilocks")
    tr.add_argument("--gpus", type=int, default=8)
    tr.add_argument("--log-size", type=int, default=10)
    tr.add_argument("--engine", default="unintt",
                    choices=["single", "baseline", "pairwise", "unintt"])
    tr.add_argument("--fault", action="append", default=[],
                    metavar="KIND@STEP[:K=V,...]",
                    help="inject a fault, e.g. transient-comm@0 or "
                         "device-death@0:gpu=1 (repeatable)")
    tr.add_argument("--fault-plan", default=None, metavar="FILE",
                    help="JSON FaultPlan file (overrides --fault)")
    tr.add_argument("--fault-seed", type=int, default=0,
                    help="seed for --fault specs (default 0)")
    tr.add_argument("--resilient", action="store_true",
                    help="wrap the engine in ResilientNTTEngine "
                         "(retry/checksum/reshard recovery)")

    tune = sub.add_parser("tune", help="autotune tile + rank engines")
    tune.add_argument("--machine", default="DGX-A100")
    tune.add_argument("--field", default="BLS12-381-Fr")
    tune.add_argument("--log-size", type=int, default=24)

    analyze = sub.add_parser(
        "analyze",
        help="static analysis (plan / trace / lint / optimize)")
    asub = analyze.add_subparsers(dest="analyze_command", required=True)

    ap = asub.add_parser("plan",
                         help="symbolically verify a multi-GPU schedule")
    ap.add_argument("--engine", default="unintt",
                    choices=["unintt", "pairwise"])
    ap.add_argument("--field", default="Goldilocks")
    ap.add_argument("--gpus", type=int, default=8)
    ap.add_argument("--log-size", type=int, default=12)
    ap.add_argument("--machine", default="DGX-A100",
                    help="machine model for level/cost checks")
    ap.add_argument("--ablation", action="store_true",
                    help="verify every ablation_grid() configuration")
    from repro.analysis.plancheck import SEED_BUGS

    ap.add_argument("--seed-bug", action="append", default=[],
                    choices=sorted(SEED_BUGS),
                    help="inject a deliberate bug first (repeatable)")
    ap.add_argument("--json", action="store_true")

    at = asub.add_parser("trace",
                         help="run an engine, race-check its trace "
                              "against the static schedule")
    at.add_argument("--engine", default="unintt",
                    choices=["unintt", "pairwise"])
    at.add_argument("--field", default="Goldilocks")
    at.add_argument("--gpus", type=int, default=8)
    at.add_argument("--log-size", type=int, default=10)
    at.add_argument("--json", action="store_true")

    al = asub.add_parser("lint",
                         help="AST lint of src/repro project invariants")
    al.add_argument("paths", nargs="*",
                    help="files/directories (default: the installed "
                         "repro package)")
    al.add_argument("--json", action="store_true")

    ao = asub.add_parser(
        "optimize",
        help="synthesize, gate, and rank communication-schedule "
             "rewrites for a topology")
    ao.add_argument("--machine", default="4xDGX-A100",
                    help="machine or cluster preset (clusters unlock "
                         "hierarchical synthesis)")
    ao.add_argument("--field", default="BLS12-381-Fr")
    ao.add_argument("--log-size", type=int, default=24)
    ao.add_argument("--json", action="store_true")

    sv = sub.add_parser("serve",
                        help="run the proof-serving scheduler over a "
                             "workload")
    sv.add_argument("--machine", default="DGX-A100")
    sv.add_argument("--workload", default=None, metavar="FILE",
                    help="JSON workload file (overrides generator flags)")
    sv.add_argument("--requests", type=int, default=8,
                    help="synthetic workload size (default 8)")
    sv.add_argument("--log-size", type=int, action="append", default=[],
                    metavar="K", help="transform size 2^K (repeatable; "
                                      "default 10)")
    sv.add_argument("--field", action="append", default=[],
                    help="field preset (repeatable; default Goldilocks)")
    sv.add_argument("--direction", action="append", default=[],
                    choices=["forward", "inverse"],
                    help="transform direction (repeatable; default "
                         "forward)")
    sv.add_argument("--batch", type=int, default=1,
                    help="vectors per request (default 1)")
    sv.add_argument("--mean-interarrival", type=float, default=0.0,
                    metavar="S", help="mean inter-arrival gap in virtual "
                                      "seconds (0 = burst, the default)")
    sv.add_argument("--deadline", type=float, default=None, metavar="S",
                    help="per-request relative deadline in virtual "
                         "seconds")
    sv.add_argument("--priority-levels", type=int, default=1)
    sv.add_argument("--seed", type=int, default=0,
                    help="workload seed (default 0)")
    sv.add_argument("--queue-capacity", type=int, default=64)
    sv.add_argument("--max-batch", type=int, default=16,
                    help="most requests one dispatch may coalesce")
    sv.add_argument("--no-batching", action="store_true",
                    help="serve one request per dispatch (baseline)")
    sv.add_argument("--no-caching", action="store_true",
                    help="rebuild plans/twiddles per dispatch (baseline)")
    sv.add_argument("--strategy", default=None,
                    choices=["replicate", "split"],
                    help="pin the batch strategy instead of planning")
    sv.add_argument("--twiddle-capacity", type=int, default=None,
                    help="LRU bound on resident twiddle tables")
    sv.add_argument("--replicas", type=int, default=1,
                    help="serve through a replicated fleet of N "
                         "journaled servers (default 1: the single "
                         "ProofServer path)")
    sv.add_argument("--heartbeat-interval", type=float, default=None,
                    metavar="S", help="fleet heartbeat tick in virtual "
                                      "seconds (default 5e-4)")
    sv.add_argument("--tenant-weight", action="append", default=[],
                    metavar="TENANT=W",
                    help="per-tenant WFQ weight (repeatable; "
                         "unlisted tenants weigh 1.0)")
    sv.add_argument("--no-steal", action="store_true",
                    help="disable cross-replica work stealing")
    sv.add_argument("--fault", action="append", default=[],
                    metavar="KIND@STEP[:K=V,...]",
                    help="inject a fault (repeatable; see 'repro "
                         "trace'; with --replicas > 1 use fleet kinds "
                         "like replica-crash@TICK:replica=R)")
    sv.add_argument("--fault-plan", default=None, metavar="FILE",
                    help="JSON FaultPlan file (overrides --fault)")
    sv.add_argument("--journal", action="store_true",
                    help="record every serving decision in a "
                         "write-ahead journal (priced)")
    sv.add_argument("--crash", type=int, action="append", default=[],
                    metavar="SEQ",
                    help="kill the server when the journal reaches "
                         "sequence SEQ (repeatable; implies --journal; "
                         "requires --recover)")
    sv.add_argument("--recover", action="store_true",
                    help="replay the journal after each --crash and "
                         "resume until the workload drains")
    sv.add_argument("--snapshot-every", type=int, default=8,
                    metavar="N",
                    help="journal records between snapshots (default 8)")
    sv.add_argument("--degrade", action="store_true",
                    help="enable graceful degradation: circuit "
                         "breakers, single-GPU fallback, load shedding")
    sv.add_argument("--verify", action="store_true",
                    help="check every output against the reference "
                         "transform")
    sv.add_argument("--json", action="store_true",
                    help="emit the report as JSON")
    return parser


def _cmd_info() -> int:
    from repro.analysis import all_checks
    from repro.field import ALL_FIELDS, available_backends, get_backend
    from repro.hw import ALL_CLUSTERS, ALL_MACHINES

    print(f"repro {__version__} — UniNTT reproduction (simulated)")
    print("\nfields:")
    for field in ALL_FIELDS:
        print(f"  {field.name:16s} {field.modulus.bit_length()}-bit, "
              f"two-adicity {field.two_adicity}")
    print("\nbackends:")
    active = get_backend().name
    for name, available in available_backends().items():
        status = "available" if available else "unavailable"
        marker = "  (active)" if name == active and available else ""
        print(f"  {name:16s} {status}{marker}")
    print("\nmulti-limb schedules (fields above 64 bits):")
    from repro.field.limbgen import describe_schedule

    for field in ALL_FIELDS:
        if field.modulus >= 1 << 64 and field.modulus % 2:
            for line in describe_schedule(
                    field.modulus, field.name).splitlines():
                print(f"  {line}")
    print("\nmachines:")
    for machine in ALL_MACHINES:
        print(f"  {machine.describe()}")
    print("\nclusters:")
    for cluster in ALL_CLUSTERS:
        print(f"  {cluster.describe()}")
    print("\nanalysis checks:")
    for check in all_checks():
        print(f"  {check.check_id:26s} v{check.version}  "
              f"{check.description}")
    print(f"\nexperiments: {', '.join(sorted(EXPERIMENTS))}")
    return 0


def _cmd_experiment(ids: Sequence[str]) -> int:
    wanted = sorted(EXPERIMENTS) if "all" in ids else list(ids)
    for exp_id in wanted:
        runner, title = EXPERIMENTS[exp_id]
        headers, rows = runner()
        print(format_table(headers, rows, title=title))
        print()
    return 0


def _cmd_demo() -> int:
    import random

    from repro.field import BLS12_381_FR, BN254_FR
    from repro.multigpu import DistributedVector, UniNTTEngine
    from repro.ntt import ntt
    from repro.sim import SimCluster
    from repro.zkp import Prover, QAP, square_chain, trusted_setup

    rng = random.Random(0)
    n = 1 << 10
    cluster = SimCluster(BLS12_381_FR, 8)
    engine = UniNTTEngine(cluster)
    values = BLS12_381_FR.random_vector(n, rng)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    out = engine.forward(vec)
    ok = out.to_values() == ntt(BLS12_381_FR, values)
    print(f"[1] 2^10 NTT on 8 simulated GPUs: "
          f"{'bit-exact' if ok else 'MISMATCH'}; "
          f"{cluster.trace.collective_count()} collective(s)")

    r1cs, witness = square_chain(BN254_FR, steps=16)
    qap = QAP(r1cs)
    tau = 0xDEC0DE
    prover = Prover(qap, trusted_setup(qap.domain.size, tau))
    proof, polys = prover.prove(witness)
    verified = prover.check(proof, polys, tau)
    print(f"[2] Groth16-style proof ({len(r1cs.constraints)} constraints):"
          f" {'verified' if verified else 'FAILED'}")
    return 0 if ok and verified else 1


def _cmd_estimate(machine_name: str, field_name: str, log_size: int,
                  engine_name: str,
                  machine_file: str | None = None) -> int:
    from repro.field import field_by_name
    from repro.hw import load_machine_file, machine_by_name
    from repro.multigpu import (
        BaselineFourStepEngine, PairwiseExchangeEngine, SingleGpuEngine,
        UniNTTEngine,
    )
    from repro.sim import SimCluster

    if machine_file is not None:
        machine = load_machine_file(machine_file)
    else:
        machine = machine_by_name(machine_name)
    field = field_by_name(field_name)
    cluster = SimCluster(field, machine.gpu_count)
    engine_cls = {
        "single": SingleGpuEngine,
        "baseline": BaselineFourStepEngine,
        "pairwise": PairwiseExchangeEngine,
        "unintt": UniNTTEngine,
    }[engine_name]
    engine = engine_cls(cluster)
    breakdown = engine.estimate(machine, 1 << log_size)
    print(f"{engine.name} on {machine.name}, {field.name}, n=2^{log_size}:")
    print(f"  total    {breakdown.total_s * 1e3:10.3f} ms "
          f"(bottleneck: {breakdown.dominant_resource()})")
    for phase, seconds in breakdown.per_phase.items():
        print(f"  {phase:22s} {seconds * 1e3:10.3f} ms")
    return 0


def _engine_class(name: str):
    from repro.multigpu import (
        BaselineFourStepEngine, PairwiseExchangeEngine, SingleGpuEngine,
        UniNTTEngine,
    )

    return {
        "single": SingleGpuEngine,
        "baseline": BaselineFourStepEngine,
        "pairwise": PairwiseExchangeEngine,
        "unintt": UniNTTEngine,
    }[name]


def _cmd_trace(field_name: str, gpus: int, log_size: int,
               engine_name: str, fault_specs: Sequence[str] = (),
               fault_plan_file: str | None = None, fault_seed: int = 0,
               resilient: bool = False) -> int:
    import random

    from repro.field import field_by_name
    from repro.multigpu import DistributedVector, ResilientNTTEngine
    from repro.ntt import ntt
    from repro.sim import (
        FaultInjector, FaultPlan, SimCluster, render_trace,
    )

    field = field_by_name(field_name)
    n = 1 << log_size
    plan = None
    if fault_plan_file is not None:
        with open(fault_plan_file, encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    elif fault_specs:
        plan = FaultPlan.from_specs(list(fault_specs), seed=fault_seed)
    injector = FaultInjector(plan, field.modulus) if plan is not None \
        else None
    cluster = SimCluster(field, gpus, injector=injector)
    if resilient:
        engine = ResilientNTTEngine(cluster, _engine_class(engine_name))
    else:
        engine = _engine_class(engine_name)(cluster)
    values = field.random_vector(n, random.Random(0))
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    out = engine.forward(vec)
    correct = out.to_values() == ntt(field, values)
    title = (f"{engine.name}: 2^{log_size} {field.name} forward on "
             f"{gpus} simulated GPUs "
             f"({'bit-exact' if correct else 'MISMATCH'})")
    print(render_trace(cluster.trace, title=title))
    if resilient:
        counts = engine.report.summary()
        print("resilience: " + ", ".join(
            f"{key}={counts[key]}" for key in sorted(counts)))
    return 0 if correct else 1


def _machine_or_cluster(name: str):
    """Resolve a preset machine or multi-node cluster by name."""
    from repro.hw import (
        ALL_CLUSTERS, ALL_MACHINES, cluster_by_name, machine_by_name,
    )

    try:
        return cluster_by_name(name)
    except KeyError:
        try:
            return machine_by_name(name)
        except KeyError:
            known = [m.name for m in ALL_MACHINES] \
                + [c.name for c in ALL_CLUSTERS]
            raise KeyError(f"no preset machine or cluster named "
                           f"{name!r}; known: {known}") from None


def _cmd_tune(machine_name: str, field_name: str, log_size: int) -> int:
    from repro.field import field_by_name
    from repro.multigpu import autotune_tile, select_engine

    machine = _machine_or_cluster(machine_name)
    field = field_by_name(field_name)
    n = 1 << log_size
    # Tile autotuning works on the flat all-GPUs view; the engine
    # ranking sees the cluster itself so schedule candidates compete.
    flat = machine.flattened() if hasattr(machine, "node_count") \
        else machine
    tile, seconds = autotune_tile(flat, field, n)
    print(f"workload: 2^{log_size} {field.name} on {machine.name}")
    print(f"best tile: {tile} elements "
          f"(UniNTT estimate {seconds * 1e3:.3f} ms)\n")
    print("engine ranking:")
    for choice in select_engine(machine, field, n):
        print(f"  {choice.name:38s} {choice.seconds * 1e3:10.3f} ms  "
              f"({choice.bottleneck}-bound)")
    return 0


def _cmd_analyze_plan(engine: str, field_name: str, gpus: int,
                      log_size: int, machine_name: str, ablation: bool,
                      seed_bugs: Sequence[str], as_json: bool) -> int:
    from repro.analysis import analyze_plan, findings_to_json, \
        render_findings
    from repro.field import field_by_name
    from repro.hw import machine_by_name
    from repro.multigpu import ablation_grid
    from repro.multigpu.schedule import ALL_ON

    field = field_by_name(field_name)
    machine = machine_by_name(machine_name).with_gpu_count(gpus)
    n = 1 << log_size
    configs = ablation_grid() if ablation and engine == "unintt" \
        else [("default", ALL_ON)]
    findings = []
    for label, options in configs:
        schedule, found = analyze_plan(
            n, gpus, field, engine=engine, options=options,
            machine=machine, seed_bugs=tuple(seed_bugs))
        findings.extend(found)
        if not as_json:
            verdict = f"{len(found)} finding(s)" if found else "ok"
            print(f"# {schedule.name} [{label}] n=2^{log_size} "
                  f"G={gpus}: {verdict}")
    if as_json:
        print(findings_to_json(findings, tool="plan"))
    else:
        print(render_findings(findings, tool="plan"))
    return 1 if findings else 0


def _cmd_analyze_trace(engine: str, field_name: str, gpus: int,
                       log_size: int, as_json: bool) -> int:
    import random

    from repro.analysis import check_trace, findings_to_json, \
        render_findings
    from repro.field import field_by_name
    from repro.multigpu import DistributedVector
    from repro.multigpu.schedule import (
        build_pairwise_schedule, build_unintt_schedule,
    )
    from repro.sim import SimCluster

    field = field_by_name(field_name)
    n = 1 << log_size
    cluster = SimCluster(field, gpus)
    eng = _engine_class(engine)(cluster)
    values = field.random_vector(n, random.Random(0))
    vec = DistributedVector.from_values(cluster, values,
                                        eng.input_layout(n))
    eng.forward(vec)
    if engine == "unintt":
        schedule = build_unintt_schedule(n, gpus, cluster.element_bytes)
    else:
        schedule = build_pairwise_schedule(n, gpus,
                                           cluster.element_bytes)
    findings = check_trace(cluster.trace, schedule=schedule)
    if as_json:
        print(findings_to_json(findings, tool="trace"))
    else:
        print(f"# {eng.name}: {len(cluster.trace)} events, "
              f"{cluster.trace.collective_count()} collectives")
        print(render_findings(findings, tool="trace"))
    return 1 if findings else 0


def _cmd_analyze_optimize(machine_name: str, field_name: str,
                          log_size: int, as_json: bool) -> int:
    from repro.analysis import check_cost, findings_to_json, \
        render_findings, verify_rewrite
    from repro.analysis.synth import enumerate_candidates
    from repro.field import field_by_name
    from repro.multigpu import select_schedule

    machine = _machine_or_cluster(machine_name)
    field = field_by_name(field_name)
    n = 1 << log_size
    flat = machine.flattened() if hasattr(machine, "node_count") \
        else machine
    total = machine.total_gpus if hasattr(machine, "node_count") \
        else machine.gpu_count

    # Re-run the gate independently of enumerate_candidates' internal
    # one: the CLI reports findings, it does not trust the builder.
    findings = []
    candidates = enumerate_candidates(machine, field, n)
    for cand in candidates:
        findings.extend(verify_rewrite(
            cand.base, cand.schedule, machine=cand.machine, field=field,
            delta=cand.delta))
        findings.extend(check_cost(flat, field, n,
                                   schedule=cand.schedule,
                                   delta=cand.delta))
    choices = select_schedule(machine, field, n)
    if as_json:
        print(findings_to_json(findings, tool="optimize"))
        return 1 if findings else 0
    print(f"# schedule candidates for 2^{log_size} {field.name} on "
          f"{machine.name} ({total} GPUs), fastest first")
    for rank, choice in enumerate(choices, start=1):
        origin = "synthesized" if choice.synthesized else "hand-written"
        marker = "  <- selected" if rank == 1 else ""
        print(f"  {rank}. {choice.name:44s} "
              f"{choice.cost.total_s * 1e3:9.3f} ms sequential, "
              f"{choice.seconds * 1e3:9.3f} ms modeled  "
              f"[{origin}]{marker}")
    print(render_findings(findings, tool="optimize"))
    return 1 if findings else 0


def _cmd_analyze_lint(paths: Sequence[str], as_json: bool) -> int:
    from repro.analysis.lint import main as lint_main

    argv = list(paths)
    if as_json:
        argv.append("--json")
    return lint_main(argv)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.field import field_by_name
    from repro.hw import machine_by_name
    from repro.serve import (
        DegradePolicy, ProofServer, WorkloadSpec, WriteAheadJournal,
        generate_workload, serve_durably, workload_from_json,
    )
    from repro.sim import FaultInjector, FaultPlan

    machine = machine_by_name(args.machine)
    if args.workload is not None:
        with open(args.workload, encoding="utf-8") as handle:
            requests = workload_from_json(handle.read())
    else:
        spec = WorkloadSpec(
            requests=args.requests,
            log_sizes=tuple(args.log_size) or (10,),
            field_names=tuple(args.field) or ("Goldilocks",),
            directions=tuple(args.direction) or ("forward",),
            batch=args.batch,
            mean_interarrival_s=args.mean_interarrival,
            deadline_s=args.deadline,
            priority_levels=args.priority_levels,
            seed=args.seed)
        requests = generate_workload(spec)
    plan = None
    if args.fault_plan is not None:
        with open(args.fault_plan, encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    elif args.fault:
        plan = FaultPlan.from_specs(list(args.fault))
    if args.replicas > 1:
        return _cmd_serve_fleet(args, machine, requests, plan)
    if plan is not None and plan.fleet_faults():
        raise ServeError(
            "fleet faults (replica-crash/network-partition/"
            "heartbeat-loss) need a fleet: pass --replicas >= 2")
    modulus = None
    if plan is not None:
        moduli = {field_by_name(r.field_name).modulus for r in requests}
        if len(moduli) != 1:
            raise ServeError(
                f"fault injection needs a single-field workload, got "
                f"{sorted(set(r.field_name for r in requests))}")
        modulus = moduli.pop()

    crash_plan = None
    if args.crash:
        if not args.recover:
            raise ServeError(
                "--crash without --recover would just lose the run; "
                "pass --recover to replay the journal after each crash")
        crash_plan = FaultPlan.from_specs(
            [f"server-crash@{s}" for s in args.crash], seed=args.seed)
    journal = WriteAheadJournal() if (args.crash or args.journal) \
        else None
    degrade = DegradePolicy() if args.degrade else None

    def build_server() -> ProofServer:
        # Each recovery leg gets a fresh injector (the process died;
        # its collective counter died with it) but shares the journal.
        return ProofServer(
            machine,
            queue_capacity=args.queue_capacity,
            max_batch_requests=args.max_batch,
            batching=not args.no_batching,
            caching=not args.no_caching,
            strategy=args.strategy,
            twiddle_capacity=args.twiddle_capacity,
            injector=FaultInjector(plan, modulus)
            if plan is not None else None,
            journal=journal,
            snapshot_every=args.snapshot_every,
            crash_plan=crash_plan,
            degrade=degrade)

    if crash_plan is not None:
        outcome = serve_durably(requests, build_server)
        report = outcome.report
        results = outcome.results
        recoveries = outcome.recoveries
        legs = outcome.legs
    else:
        server = build_server()
        report = server.serve(requests)
        results = report.results
        recoveries = 0
        legs = [report]

    verified = _verify_results(results) if args.verify else None
    if args.json:
        import json as json_module
        payload = json_module.loads(report.to_json())
        payload["recoveries"] = recoveries
        payload["merged_completed"] = len(results)
        if verified is not None:
            payload["verified"] = verified
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0 if verified in (None, True) else 1

    summary = report.summary()
    served = len(results)
    rps = served / summary["makespan_s"] if summary["makespan_s"] else 0.0
    print(f"served {served}/{len(requests)} requests "
          f"on {machine.name} in {summary['makespan_s'] * 1e3:.3f} ms "
          f"({rps:.0f} req/s)")
    print(f"  batches {summary['batches']} "
          f"(mean {summary['mean_batch_requests']:.2f} req/batch, "
          f"strategies {summary['strategy_counts']}), "
          f"rejected {summary['rejected']}, "
          f"deadline misses {summary['deadline_misses']}, "
          f"retries {summary['retries']}")
    print(f"  plan cache {summary['plan_hits']} hit / "
          f"{summary['plan_misses']} miss; twiddle cache "
          f"{summary['twiddle_hits']} hit / {summary['twiddle_misses']} "
          f"miss / {summary['twiddle_evictions']} evicted")
    if journal is not None:
        replayed = sum(leg.replayed_records for leg in legs)
        recovery_ms = sum(leg.recovery_s for leg in legs) * 1e3
        print(f"  durability: journal {len(journal)} records, "
              f"{sum(leg.snapshots for leg in legs)} snapshot(s), "
              f"{recoveries} recovery(ies), {replayed} replayed, "
              f"recovery {recovery_ms:.3f} ms")
    if degrade is not None:
        print(f"  degradation: shed {summary['shed']}, breaker trips "
              f"{summary['breaker_trips']}, probes "
              f"{summary['breaker_probes']}, single-GPU fallbacks "
              f"{summary['fallback_dispatches']}")
    percentiles = report.latency_percentiles_s()
    print("  latency  " + "  ".join(
        f"{name} {percentiles[name] * 1e3:.3f} ms"
        for name in ("p50", "p90", "p99", "max")))
    if verified is not None:
        print(f"  outputs: {'bit-exact' if verified else 'MISMATCH'}")
    return 0 if verified in (None, True) else 1


def _verify_results(results) -> bool:
    from repro.ntt import intt, ntt

    for result in results:
        request = result.request
        field = request.field
        reference = intt if request.direction == "inverse" else ntt
        for lane, out in zip(request.vectors(), result.outputs):
            if list(out) != reference(field, list(lane)):
                return False
    return True


def _cmd_serve_fleet(args: argparse.Namespace, machine, requests,
                     plan) -> int:
    from repro.errors import ServeError
    from repro.serve import FleetPolicy, FleetServer

    for flag, name in ((args.crash, "--crash"),
                       (args.recover, "--recover"),
                       (args.degrade, "--degrade")):
        if flag:
            raise ServeError(
                f"{name} is the single-server durability/degradation "
                "path; a fleet already journals every replica and "
                "recovers through failover — drop the flag or drop "
                "--replicas")
    weights = []
    for spec in args.tenant_weight:
        tenant, sep, value = spec.partition("=")
        if not sep or not tenant:
            raise ServeError(
                f"--tenant-weight wants TENANT=WEIGHT, got {spec!r}")
        try:
            weights.append((tenant, float(value)))
        except ValueError:
            raise ServeError(
                f"--tenant-weight {spec!r}: weight is not a number"
            ) from None
    policy_kwargs = dict(replicas=args.replicas,
                         steal_enabled=not args.no_steal,
                         tenant_weights=tuple(weights))
    if args.heartbeat_interval is not None:
        policy_kwargs["heartbeat_interval_s"] = args.heartbeat_interval
    fleet = FleetServer(
        machine,
        policy=FleetPolicy(**policy_kwargs),
        faults=plan,
        queue_capacity=args.queue_capacity,
        max_batch_requests=args.max_batch,
        batching=not args.no_batching,
        caching=not args.no_caching,
        strategy=args.strategy,
        twiddle_capacity=args.twiddle_capacity,
        snapshot_every=args.snapshot_every)
    report = fleet.serve(requests)
    verified = _verify_results(report.results) if args.verify else None

    if args.json:
        import json as json_module
        payload = json_module.loads(report.to_json())
        if verified is not None:
            payload["verified"] = verified
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0 if verified in (None, True) else 1

    summary = report.summary()
    print(f"fleet of {args.replicas} replicas served "
          f"{report.completed}/{len(requests)} requests on "
          f"{machine.name} in {summary['makespan_s'] * 1e3:.3f} ms "
          f"({summary['goodput_rps']:.0f} req/s goodput)")
    print(f"  routing: {summary['routed']} routed, "
          f"{summary['unroutable']} unroutable; "
          f"rejected {summary['rejected']}, shed {summary['shed']}, "
          f"deadline misses {summary['deadline_misses']}")
    print(f"  detector: {summary['heartbeats']} heartbeats, "
          f"{summary['suspicions']} suspicion(s), "
          f"{summary['detector_recoveries']} recovery(ies), "
          f"{summary['failovers']} failover(s) "
          f"({summary['failover_requests']} re-homed, "
          f"{summary['replayed_records']} replayed); "
          f"{summary['deaths']} death(s), "
          f"{summary['partitions']} partition(s), "
          f"{summary['heartbeat_losses']} heartbeat loss(es), "
          f"{summary['rejoins']} rejoin(s)")
    print(f"  stealing: {summary['steals']} steal(s) moving "
          f"{summary['stolen_requests']} request(s)")
    overhead_ms = (summary["route_s"] + summary["heartbeat_s"]
                   + summary["failover_s"] + summary["steal_s"]) * 1e3
    print(f"  overhead: route {summary['route_s'] * 1e3:.3f} ms + "
          f"heartbeat {summary['heartbeat_s'] * 1e3:.3f} + "
          f"failover {summary['failover_s'] * 1e3:.3f} + "
          f"steal {summary['steal_s'] * 1e3:.3f} = {overhead_ms:.3f} ms")
    completed = [r.completed for r in report.replica_reports]
    print(f"  per-replica completed: {completed}")
    tenants = report.tenant_breakdown()
    if sorted(tenants) != ["default"]:
        for tenant in sorted(tenants):
            stats = tenants[tenant]
            print(f"  tenant {tenant}: completed {stats['completed']}, "
                  f"rejected {stats['rejected']}, shed {stats['shed']}")
    percentiles = report.latency_percentiles_s()
    print("  latency  " + "  ".join(
        f"{name} {percentiles[name] * 1e3:.3f} ms"
        for name in ("p50", "p90", "p99", "max")))
    if verified is not None:
        print(f"  outputs: {'bit-exact' if verified else 'MISMATCH'}")
    return 0 if verified in (None, True) else 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "info":
        return _cmd_info()
    if args.command == "experiment":
        return _cmd_experiment(args.ids)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "estimate":
        return _cmd_estimate(args.machine, args.field, args.log_size,
                             args.engine, args.machine_file)
    if args.command == "trace":
        return _cmd_trace(args.field, args.gpus, args.log_size,
                          args.engine, fault_specs=args.fault,
                          fault_plan_file=args.fault_plan,
                          fault_seed=args.fault_seed,
                          resilient=args.resilient)
    if args.command == "tune":
        return _cmd_tune(args.machine, args.field, args.log_size)
    if args.command == "analyze":
        if args.analyze_command == "plan":
            return _cmd_analyze_plan(
                args.engine, args.field, args.gpus, args.log_size,
                args.machine, args.ablation, args.seed_bug, args.json)
        if args.analyze_command == "trace":
            return _cmd_analyze_trace(args.engine, args.field, args.gpus,
                                      args.log_size, args.json)
        if args.analyze_command == "lint":
            return _cmd_analyze_lint(args.paths, args.json)
        if args.analyze_command == "optimize":
            return _cmd_analyze_optimize(args.machine, args.field,
                                         args.log_size, args.json)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Library failures (:class:`~repro.errors.ReproError` and the
    ``KeyError`` the preset lookups raise for unknown names) exit with
    code 2 and a one-line message; pass ``--debug`` for the traceback.
    """
    args = build_parser().parse_args(argv)
    from repro.errors import FieldError, ReproError
    from repro.field import get_backend, set_backend

    try:
        if args.backend is not None:
            set_backend(args.backend)
        get_backend()  # resolve $REPRO_BACKEND now: fail fast and clean
    except FieldError as error:
        if args.debug:
            raise
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    try:
        return _dispatch(args)
    except (ReproError, KeyError) as error:
        if args.debug:
            raise
        message = error.args[0] if error.args else error
        print(f"repro: error: {message}", file=sys.stderr)
        return 2
    except OSError as error:
        if args.debug:
            raise
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
