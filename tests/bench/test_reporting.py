"""Tests for benchmark reporting utilities."""

import os

import pytest

from repro.bench import format_table, geomean, speedup_string, write_report
from repro.errors import BenchmarkError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "------" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.6], [1e-9], [0.0]])
        assert "0.123" in text
        assert "1.235e+04" in text
        assert "1.000e-09" in text

    def test_row_width_mismatch(self):
        with pytest.raises(BenchmarkError, match="row 0"):
            format_table(["a", "b"], [[1]])


class TestStats:
    def test_geomean(self):
        assert geomean([4, 1]) == pytest.approx(2.0)
        assert geomean([3]) == pytest.approx(3.0)

    def test_geomean_validation(self):
        with pytest.raises(BenchmarkError, match="empty"):
            geomean([])
        with pytest.raises(BenchmarkError, match="positive"):
            geomean([1, 0])

    def test_speedup_string(self):
        assert speedup_string(2.0, 1.0) == "2.00x"
        with pytest.raises(BenchmarkError):
            speedup_string(1.0, 0.0)


class TestWriteReport:
    def test_writes_file(self):
        path = write_report("test_artifact", "hello")
        try:
            with open(path, encoding="utf-8") as handle:
                assert handle.read() == "hello\n"
            assert os.path.basename(path) == "test_artifact.txt"
        finally:
            os.remove(path)
