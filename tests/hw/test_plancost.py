"""Tests for decomposition-plan pricing."""

import pytest

from repro.errors import PlanError
from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.hw import DGX1_V100, DGX_A100, price_plan
from repro.multigpu import alltoall_bytes_per_gpu, machine_plan
from repro.ntt import balanced_plan, hierarchical_plan, leaf, split


class TestPricing:
    def test_leaf_plan_has_no_exchanges(self):
        cost = price_plan(DGX_A100, GOLDILOCKS, leaf(1 << 16))
        assert cost.exchange_bytes_by_level == {}
        assert cost.exchange_s == 0
        assert cost.compute_s > 0
        assert cost.dominant_level() == "none"

    def test_multi_gpu_bytes_match_engine_formula(self):
        """The plan's multi-GPU charge equals the UniNTT closed form —
        the uniform formula specialized to the outermost level."""
        n = 1 << 24
        plan = machine_plan(DGX_A100, BLS12_381_FR, n)
        cost = price_plan(DGX_A100, BLS12_381_FR, plan)
        expected = alltoall_bytes_per_gpu(n // 8, 8, 32)
        assert cost.exchange_bytes_by_level["multi-gpu"] == expected

    def test_total_includes_all_levels(self):
        n = 1 << 24
        plan = machine_plan(DGX_A100, BLS12_381_FR, n)
        cost = price_plan(DGX_A100, BLS12_381_FR, plan)
        assert set(cost.exchange_bytes_by_level) >= {"multi-gpu", "gpu"}
        assert cost.total_s == pytest.approx(
            cost.compute_s + cost.exchange_s)

    def test_unknown_level_rejected(self):
        plan = split(leaf(4), leaf(4), level="tpu-pod")
        with pytest.raises(PlanError, match="tpu-pod"):
            price_plan(DGX_A100, GOLDILOCKS, plan)

    def test_untagged_splits_charge_compute_only(self):
        plan = balanced_plan(1 << 16, leaf_size=64)  # no level tags
        cost = price_plan(DGX_A100, GOLDILOCKS, plan)
        assert cost.exchange_bytes_by_level == {}
        assert cost.butterfly_muls > 0

    def test_nested_units_reduce_inner_volume(self):
        """Inner levels each see 1/R of the data per unit."""
        n = 1 << 20
        plan = hierarchical_plan(n, [("multi-gpu", 8), ("gpu", 64)],
                                 leaf_size=1 << 10)
        cost = price_plan(DGX_A100, BLS12_381_FR, plan)
        outer = cost.exchange_bytes_by_level["multi-gpu"]
        inner = cost.exchange_bytes_by_level["gpu"]
        # outer: (n/8)*(7/8)*32; inner: (n/(8*64))*(63/64)*32.
        assert outer == (n // 8) * 7 // 8 * 32
        assert inner == (n // (8 * 64)) * 63 // 64 * 32

    def test_machine_comparison(self):
        """The same plan is cheaper on the faster machine."""
        n = 1 << 24
        plan = hierarchical_plan(n, [("multi-gpu", 8)], leaf_size=1 << 12)
        slow = price_plan(DGX1_V100, BLS12_381_FR, plan).total_s
        fast = price_plan(DGX_A100, BLS12_381_FR, plan).total_s
        assert fast < slow

    def test_deeper_decomposition_trades_levels(self):
        """Adding intra-GPU splits moves bytes off the dominant level
        only logically — totals stay consistent and positive."""
        n = 1 << 22
        shallow = hierarchical_plan(n, [("multi-gpu", 8)],
                                    leaf_size=1 << 16)
        deep = machine_plan(DGX_A100, BLS12_381_FR, n)
        c_shallow = price_plan(DGX_A100, BLS12_381_FR, shallow)
        c_deep = price_plan(DGX_A100, BLS12_381_FR, deep)
        assert c_shallow.exchange_bytes_by_level["multi-gpu"] == \
            c_deep.exchange_bytes_by_level["multi-gpu"]
        assert "gpu" in c_deep.exchange_bytes_by_level
        assert "gpu" not in c_shallow.exchange_bytes_by_level


class TestPriceSchedule:
    def schedule(self, n=1 << 12, gpus=8, eb=8):
        from repro.multigpu.schedule import build_unintt_schedule

        return build_unintt_schedule(n, gpus, eb)

    def test_cost_is_validate_clean(self):
        from repro.hw import price_schedule

        cost = price_schedule(DGX_A100, GOLDILOCKS, self.schedule())
        assert cost.validate() == []
        assert cost.total_s == pytest.approx(cost.compute_s
                                             + cost.exchange_s)

    def test_butterfly_muls_come_from_the_schedule(self):
        from repro.hw import price_schedule

        schedule = self.schedule()
        cost = price_schedule(DGX_A100, GOLDILOCKS, schedule)
        assert cost.butterfly_muls == schedule.total_field_muls()

    def test_per_unit_bytes_match_the_flat_plan(self):
        from repro.hw import price_schedule

        n, gpus, eb = 1 << 24, 8, 32
        schedule = self.schedule(n, gpus, eb)
        cost = price_schedule(DGX_A100, BLS12_381_FR, schedule)
        assert cost.exchange_bytes_by_level["multi-gpu"] \
            == alltoall_bytes_per_gpu(n // gpus, gpus, eb)

    def test_multinode_levels_priced_on_their_own_fabric(self):
        from repro.analysis.synth import synthesize_hierarchical
        from repro.hw import FOUR_NODE_DGX_A100, price_schedule

        schedule = self.schedule(1 << 20, 32, 32)
        hier, _ = synthesize_hierarchical(schedule, 8)
        cost = price_schedule(FOUR_NODE_DGX_A100, BLS12_381_FR, hier)
        assert "multi-node" in cost.exchange_bytes_by_level
        assert cost.validate() == []


class TestScheduleSeconds:
    def test_pipelined_overlap_is_never_slower(self):
        from repro.analysis.passes import fuse_pipeline
        from repro.hw import price_schedule, schedule_seconds
        from repro.multigpu.schedule import build_unintt_schedule

        schedule = build_unintt_schedule(1 << 16, 8, 8)
        fused = fuse_pipeline(schedule)
        sequential = price_schedule(DGX_A100, GOLDILOCKS, fused).total_s
        assert schedule_seconds(DGX_A100, GOLDILOCKS, fused) \
            <= sequential + 1e-15

    def test_unpipelined_schedule_matches_sequential_cost(self):
        from repro.hw import price_schedule, schedule_seconds
        from repro.multigpu.schedule import build_unintt_schedule

        schedule = build_unintt_schedule(1 << 16, 8, 8)
        assert all(not getattr(op, "pipelined", False)
                   for op in schedule.ops)
        sequential = price_schedule(DGX_A100, GOLDILOCKS,
                                    schedule).total_s
        assert schedule_seconds(DGX_A100, GOLDILOCKS, schedule) \
            == pytest.approx(sequential)

    def test_steps_group_pipelined_chains(self):
        from repro.analysis.passes import fuse_pipeline
        from repro.hw import schedule_steps
        from repro.multigpu.schedule import build_unintt_schedule

        schedule = build_unintt_schedule(1 << 12, 8, 8)
        plain = schedule_steps(schedule)
        fused = schedule_steps(fuse_pipeline(schedule))
        assert len(fused) < len(plain)
