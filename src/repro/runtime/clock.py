"""A deterministic virtual clock for discrete-event simulation.

Nothing in the simulated stack reads wall time: every timestamp —
request arrivals, dispatch starts, completions, deadlines, heartbeat
ticks — lives on this virtual axis, and the only way time moves is by
explicit, modeled-duration advances.  Two runs over the same workload
therefore replay bit-identically, which is what makes the serving
reports (and the chaos tests on top of them) reproducible artifacts
rather than load-dependent measurements.

Every advance is validated: negative, NaN, or otherwise non-finite
deltas raise :class:`~repro.errors.ServeError` instead of silently
corrupting virtual time (``nan`` compares false against everything, so
one absorbed ``nan`` would poison every later deadline comparison
without ever tripping an assertion).
"""

from __future__ import annotations

import math

from repro.errors import ServeError

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        if not math.isfinite(start_s):
            raise ServeError(
                f"clock cannot start at non-finite time {start_s!r}")
        if start_s < 0:
            raise ServeError(f"clock cannot start at {start_s} < 0")
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance_to(self, t_s: float) -> float:
        """Jump forward to absolute time ``t_s`` (never backward)."""
        if not math.isfinite(t_s):
            raise ServeError(
                f"clock cannot advance to non-finite time {t_s!r}")
        if t_s < self._now_s:
            raise ServeError(
                f"clock cannot rewind from {self._now_s} to {t_s}")
        self._now_s = float(t_s)
        return self._now_s

    def advance_by(self, dt_s: float) -> float:
        """Advance by a modeled duration ``dt_s >= 0``."""
        if not math.isfinite(dt_s):
            raise ServeError(
                f"cannot advance by non-finite duration {dt_s!r}")
        if dt_s < 0:
            raise ServeError(f"cannot advance by {dt_s} < 0 seconds")
        self._now_s += float(dt_s)
        return self._now_s

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now_s:.6f}s)"
