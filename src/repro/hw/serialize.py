"""Machine descriptions as JSON (custom hardware without code changes).

A downstream user's cluster is never exactly a preset; these converters
let them describe GPUs, interconnects, machines, and multi-node clusters
in a JSON file and feed it to the CLI (``repro estimate
--machine-file my_cluster.json``) or the API.  Round-tripping through
``to_dict``/``from_dict`` is the tested contract.
"""

from __future__ import annotations

import json

from repro.errors import HardwareModelError
from repro.hw.model import GpuSpec, MachineModel
from repro.hw.multinode import MultiNodeMachine
from repro.hw.topology import Interconnect

__all__ = [
    "gpu_to_dict", "gpu_from_dict", "interconnect_to_dict",
    "interconnect_from_dict", "machine_to_dict", "machine_from_dict",
    "cluster_to_dict", "cluster_from_dict", "load_machine_file",
]

_GPU_FIELDS = ("name", "word_mul_per_s", "hbm_bandwidth",
               "hbm_capacity_bytes", "sm_count", "warps_per_sm",
               "lanes_per_warp", "smem_per_block_bytes", "smem_bandwidth",
               "shuffle_bandwidth", "kernel_launch_latency")

_INTERCONNECT_FIELDS = ("kind", "link_bandwidth", "latency",
                        "peer_to_peer", "ring_factor_base")


def gpu_to_dict(gpu: GpuSpec) -> dict:
    return {name: getattr(gpu, name) for name in _GPU_FIELDS}


def gpu_from_dict(data: dict) -> GpuSpec:
    _check_keys(data, _GPU_FIELDS, required=("name", "word_mul_per_s",
                                             "hbm_bandwidth",
                                             "hbm_capacity_bytes"))
    return GpuSpec(**data)


def interconnect_to_dict(fabric: Interconnect) -> dict:
    return {name: getattr(fabric, name) for name in _INTERCONNECT_FIELDS}


def interconnect_from_dict(data: dict) -> Interconnect:
    _check_keys(data, _INTERCONNECT_FIELDS,
                required=("kind", "link_bandwidth", "latency"))
    return Interconnect(**data)


def machine_to_dict(machine: MachineModel) -> dict:
    return {
        "type": "machine",
        "name": machine.name,
        "gpu": gpu_to_dict(machine.gpu),
        "gpu_count": machine.gpu_count,
        "interconnect": interconnect_to_dict(machine.interconnect),
    }


def machine_from_dict(data: dict) -> MachineModel:
    _check_keys(data, ("type", "name", "gpu", "gpu_count", "interconnect"),
                required=("name", "gpu", "gpu_count", "interconnect"))
    return MachineModel(
        name=data["name"],
        gpu=gpu_from_dict(data["gpu"]),
        gpu_count=data["gpu_count"],
        interconnect=interconnect_from_dict(data["interconnect"]),
    )


def cluster_to_dict(cluster: MultiNodeMachine) -> dict:
    return {
        "type": "cluster",
        "name": cluster.name,
        "node": machine_to_dict(cluster.node),
        "node_count": cluster.node_count,
        "network": interconnect_to_dict(cluster.network),
    }


def cluster_from_dict(data: dict) -> MultiNodeMachine:
    _check_keys(data, ("type", "name", "node", "node_count", "network"),
                required=("name", "node", "node_count", "network"))
    return MultiNodeMachine(
        name=data["name"],
        node=machine_from_dict(data["node"]),
        node_count=data["node_count"],
        network=interconnect_from_dict(data["network"]),
    )


def load_machine_file(path: str) -> MachineModel | MultiNodeMachine:
    """Load a machine or cluster description from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    kind = data.get("type", "machine")
    if kind == "machine":
        return machine_from_dict(data)
    if kind == "cluster":
        return cluster_from_dict(data)
    raise HardwareModelError(
        f"{path}: unknown machine type {kind!r} "
        f"(expected 'machine' or 'cluster')")


def _check_keys(data: dict, allowed: tuple[str, ...],
                required: tuple[str, ...]) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise HardwareModelError(
            f"unknown machine-description keys: {sorted(unknown)}")
    missing = set(required) - set(data)
    if missing:
        raise HardwareModelError(
            f"missing machine-description keys: {sorted(missing)}")
