"""Tests for the Stockham autosort transform."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.ntt import dft, intt_stockham, ntt, ntt_stockham

F = TEST_FIELD_7681


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 512])
    def test_matches_reference(self, n, rng):
        x = F.random_vector(n, rng)
        assert ntt_stockham(F, x) == dft(F, x)

    def test_all_fields(self, ntt_field, rng):
        x = ntt_field.random_vector(64, rng)
        assert ntt_stockham(ntt_field, x) == ntt(ntt_field, x)

    @pytest.mark.parametrize("n", [2, 32, 128])
    def test_roundtrip(self, n, rng):
        x = F.random_vector(n, rng)
        assert intt_stockham(F, ntt_stockham(F, x)) == x

    def test_interchangeable_with_radix2(self, rng):
        """The variants are drop-in replacements for each other."""
        from repro.ntt import intt
        x = F.random_vector(64, rng)
        assert intt(F, ntt_stockham(F, x)) == x
        assert intt_stockham(F, ntt(F, x)) == x

    def test_explicit_root(self, rng):
        n = 16
        w = F.root_of_unity(n)
        x = F.random_vector(n, rng)
        assert ntt_stockham(F, x, root=w) == dft(F, x, root=w)
        assert intt_stockham(F, ntt_stockham(F, x, root=w), root=w) == x

    def test_input_not_mutated(self, rng):
        x = F.random_vector(32, rng)
        original = list(x)
        ntt_stockham(F, x)
        assert x == original


class TestValidation:
    @pytest.mark.parametrize("n", [0, 3, 12])
    def test_bad_sizes(self, n):
        with pytest.raises(NTTError, match="power of two"):
            ntt_stockham(F, [0] * n)
        with pytest.raises(NTTError, match="power of two"):
            intt_stockham(F, [0] * n)


@given(st.lists(st.integers(min_value=0, max_value=7680),
                min_size=32, max_size=32))
def test_stockham_equals_radix2_property(values):
    assert ntt_stockham(F, values) == ntt(F, values)
