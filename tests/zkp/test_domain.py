"""Tests for evaluation domains."""

import pytest

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.zkp import EvaluationDomain

F = TEST_FIELD_7681


class TestConstruction:
    def test_basic(self):
        domain = EvaluationDomain(F, 16)
        assert domain.size == 16
        assert pow(domain.generator, 16, F.modulus) == 1
        assert pow(domain.generator, 8, F.modulus) != 1

    def test_size_validation(self):
        with pytest.raises(NTTError, match="power of two"):
            EvaluationDomain(F, 12)

    def test_equality_and_hash(self):
        assert EvaluationDomain(F, 8) == EvaluationDomain(F, 8)
        assert EvaluationDomain(F, 8) != EvaluationDomain(F, 16)
        assert len({EvaluationDomain(F, 8), EvaluationDomain(F, 8)}) == 1


class TestPoints:
    def test_elements_are_generator_powers(self):
        domain = EvaluationDomain(F, 8)
        points = domain.elements()
        assert len(points) == 8
        assert points[0] == 1
        for i, point in enumerate(points):
            assert point == domain.element(i)
        assert len(set(points)) == 8  # all distinct

    def test_element_wraps(self):
        domain = EvaluationDomain(F, 8)
        assert domain.element(9) == domain.element(1)

    def test_coset_elements(self):
        domain = EvaluationDomain(F, 4)
        shift = 3
        coset = domain.coset_elements(shift)
        assert coset == [3 * e % F.modulus for e in domain.elements()]


class TestVanishing:
    def test_zero_on_domain(self):
        domain = EvaluationDomain(F, 16)
        for i in (0, 1, 7, 15):
            assert domain.vanishing_eval(domain.element(i)) == 0

    def test_nonzero_off_domain(self):
        domain = EvaluationDomain(F, 16)
        shift = domain.default_coset_shift()
        assert domain.vanishing_eval(shift) != 0

    def test_constant_on_coset(self):
        domain = EvaluationDomain(F, 8)
        shift = domain.default_coset_shift()
        constant = domain.vanishing_on_coset(shift)
        p = F.modulus
        for e in domain.coset_elements(shift):
            assert (pow(e, 8, p) - 1) % p == constant

    def test_coset_shift_in_domain_rejected(self):
        domain = EvaluationDomain(F, 8)
        with pytest.raises(NTTError, match="vanishes"):
            domain.vanishing_on_coset(domain.element(3))


class TestTransforms:
    def test_ntt_roundtrip(self, rng):
        domain = EvaluationDomain(F, 32)
        coeffs = F.random_vector(32, rng)
        assert domain.intt(domain.ntt(coeffs)) == coeffs

    def test_coset_roundtrip(self, rng):
        domain = EvaluationDomain(F, 32)
        coeffs = F.random_vector(32, rng)
        shift = domain.default_coset_shift()
        assert domain.coset_intt(domain.coset_ntt(coeffs, shift),
                                 shift) == coeffs

    def test_length_validation(self):
        domain = EvaluationDomain(F, 8)
        with pytest.raises(NTTError, match="size"):
            domain.ntt([1, 2])
        with pytest.raises(NTTError, match="size"):
            domain.coset_intt([1, 2], 3)


class TestLagrange:
    def test_reconstructs_evaluation(self, rng):
        """sum_i L_i(z) * P(w^i) == P(z) for any polynomial."""
        domain = EvaluationDomain(F, 8)
        coeffs = F.random_vector(8, rng)
        evals = domain.ntt(coeffs)
        z = domain.default_coset_shift() * 5 % F.modulus
        lag = domain.lagrange_coefficients(z)
        p = F.modulus
        recon = sum(l * e for l, e in zip(lag, evals)) % p
        direct = 0
        for c in reversed(coeffs):
            direct = (direct * z + c) % p
        assert recon == direct

    def test_sums_to_one(self):
        """sum_i L_i(z) = 1 (interpolating the constant 1)."""
        domain = EvaluationDomain(F, 16)
        z = 9999 % F.modulus
        assert sum(domain.lagrange_coefficients(z)) % F.modulus == 1

    def test_point_in_domain_rejected(self):
        domain = EvaluationDomain(F, 8)
        with pytest.raises(NTTError, match="domain"):
            domain.lagrange_coefficients(domain.element(2))
