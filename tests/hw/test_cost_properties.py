"""Hypothesis property tests over the cost model.

The model's outputs feed every reproduced figure; these invariants make
sure no pricing path can produce nonsense (negative time, non-monotone
charges, overlap that slows things down).
"""

from hypothesis import given, strategies as st

from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.hw import CostModel, DGX_A100, DGX_H100, Phase, PipelinedGroup

MODEL = CostModel(DGX_A100, BLS12_381_FR)

charges = st.integers(min_value=0, max_value=10**12)


@given(muls=charges, mem=charges, exch=charges,
       msgs=st.integers(min_value=0, max_value=100))
def test_phase_time_non_negative(muls, mem, exch, msgs):
    phase = Phase(name="p", field_muls=muls, mem_bytes=mem,
                  exchange_bytes=exch, messages=msgs)
    assert MODEL.phase_seconds(phase) >= 0


@given(muls=charges, mem=charges, extra=st.integers(min_value=1,
                                                    max_value=10**12))
def test_more_work_never_cheaper(muls, mem, extra):
    base = Phase(name="p", field_muls=muls, mem_bytes=mem)
    more_compute = Phase(name="p", field_muls=muls + extra, mem_bytes=mem)
    more_memory = Phase(name="p", field_muls=muls, mem_bytes=mem + extra)
    t = MODEL.phase_seconds(base)
    assert MODEL.phase_seconds(more_compute) >= t
    assert MODEL.phase_seconds(more_memory) >= t


@given(muls=charges, exch=charges)
def test_overlap_never_slower(muls, exch):
    compute = Phase(name="c", field_muls=muls)
    comm = Phase(name="x", exchange_bytes=exch, messages=1)
    sequential = MODEL.estimate([compute, comm]).total_s
    pipelined = MODEL.estimate(
        [PipelinedGroup(name="g", phases=(compute, comm))]).total_s
    assert pipelined <= sequential + 1e-15


@given(muls=charges, mem=charges)
def test_phase_at_least_each_resource(muls, mem):
    phase = Phase(name="p", field_muls=muls, mem_bytes=mem)
    t = MODEL.phase_seconds(phase)
    assert t >= MODEL.compute_seconds(muls) - 1e-18
    assert t >= MODEL.memory_seconds(mem) - 1e-18


@given(steps=st.lists(
    st.builds(Phase, name=st.just("p"), field_muls=charges,
              mem_bytes=charges, exchange_bytes=charges,
              messages=st.integers(min_value=0, max_value=10)),
    min_size=1, max_size=6))
def test_estimate_is_sum_of_phases(steps):
    total = MODEL.estimate(steps).total_s
    assert total == sum(MODEL.phase_seconds(s) for s in steps)


@given(exch=st.integers(min_value=1, max_value=10**12))
def test_faster_machine_not_slower(exch):
    """H100 (faster in every constant) never prices a phase higher."""
    phase = Phase(name="x", field_muls=exch, mem_bytes=exch,
                  exchange_bytes=exch, messages=1)
    slow = CostModel(DGX_A100, GOLDILOCKS).phase_seconds(phase)
    fast = CostModel(DGX_H100, GOLDILOCKS).phase_seconds(phase)
    assert fast <= slow
