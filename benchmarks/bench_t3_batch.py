"""T3: batched NTT throughput."""

from repro.bench import batch_throughput


def test_t3_batch(benchmark, emit):
    table = benchmark(batch_throughput)
    emit("T3_batch_throughput",
         "T3: batched NTT throughput (DGX-A100, 2^18 BLS12-381-Fr)", table)
