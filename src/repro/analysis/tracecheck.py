"""Trace race detector: post-hoc checks over simulator event streams.

A :class:`~repro.sim.trace.Trace` is the simulator's account of what
ran; this module decides whether that account is *coherent*.  The
semantics come from the :data:`~repro.sim.trace.EVENT_KINDS` registry:
collectives synchronize (participants may read each other's shards
inside the primitive), everything else is local.  From that alone the
detector flags:

* **unknown kinds** — events outside the declared registry;
* **write conflicts** — two events stamped with the *same* logical
  step whose write sets (the devices they rewrite) intersect: declared
  concurrency plus overlapping writes is a data race by construction;
* **unsynchronized reads** — a non-collective event that claims to
  have read another device's shard (``reads``), which no fabric
  carried;
* **malformed charges** — negative bytes/muls, or a per-GPU critical
  path larger than the event's own total;
* **plan divergence** — when the static schedule for the run is
  supplied, per-level byte totals that disagree with
  :meth:`~repro.multigpu.schedule.CommSchedule.bytes_by_level`, which
  turns every simulated run into a self-checking oracle;
* **unresolved faults** — every injected ``fault`` event whose kind
  aborts or corrupts work (:data:`repro.sim.faults.RESOLUTION_REQUIRED`)
  must be answered later in the trace by a ``retry`` or ``reshard``
  event, matched one-to-one in order; a fault nothing recovered from
  means the run's output cannot be trusted.

Events on the ``"resilience"`` level (checkpoints, reshards, verify
probes) describe recovery traffic outside the engines' static
schedules, so the plan-divergence comparison skips that level.
"""

from __future__ import annotations

from repro.analysis.findings import Check, Finding
from repro.multigpu.schedule import CommSchedule
from repro.sim.faults import RESOLUTION_REQUIRED
from repro.sim.trace import EVENT_KINDS, Trace, TraceEvent

__all__ = ["CHECKS", "check_trace", "RESILIENCE_LEVEL", "SERVE_LEVEL"]

#: Trace level carrying recovery traffic; exempt from plan comparison.
RESILIENCE_LEVEL = "resilience"

#: Trace level carrying request-serving bookkeeping (queue admission,
#: batch dispatch, cache consults); like recovery traffic it sits
#: outside the engines' static schedules, so the plan-divergence
#: comparison skips it too.
SERVE_LEVEL = "serve"

CHECKS = (
    Check("trace.unknown-kind", 1,
          "an event kind is not declared in EVENT_KINDS"),
    Check("trace.write-conflict", 1,
          "two same-step events write the same device's shard"),
    Check("trace.unsynced-read", 1,
          "a non-collective event read a remote shard"),
    Check("trace.negative-charge", 1,
          "an event charges negative bytes or multiplications"),
    Check("trace.inconsistent-bytes", 1,
          "per-GPU critical-path bytes exceed the event total"),
    Check("trace.plan-divergence", 1,
          "traced per-level bytes disagree with the static schedule"),
    Check("trace.unresolved-fault", 1,
          "an injected fault has no retry/reshard resolution"),
    Check("trace.serve-dangling-dispatch", 1,
          "a serve-dispatch batch never reached serve-complete"),
    Check("trace.unrecovered-crash", 1,
          "a server-crash fault has no serve-recover, or vice versa"),
    Check("trace.shed-and-completed", 1,
          "a request was shed but its outputs were also emitted"),
    Check("trace.journal-gap", 1,
          "write-ahead journal sequence numbers are not contiguous"),
)


def _write_set(event: TraceEvent) -> frozenset[int] | None:
    """Devices whose shards the event rewrites; ``None`` = all of them."""
    if event.gpu < 0:
        return None
    return frozenset({event.gpu})


def check_trace(trace: Trace,
                schedule: CommSchedule | None = None) -> list[Finding]:
    """Check one trace; returns every incoherence found.

    ``schedule`` (optional) is the symbolic schedule of the run the
    trace came from; supplying it enables the byte-total comparison.
    """
    findings: list[Finding] = []
    by_step: dict[int, list[tuple[int, TraceEvent]]] = {}

    for index, event in enumerate(trace.events):
        where = f"trace[{index}]({event.kind}@{event.level})"
        spec = EVENT_KINDS.get(event.kind)
        if spec is None:
            findings.append(Finding(
                "trace.unknown-kind",
                f"kind {event.kind!r} is not registered in EVENT_KINDS",
                where))
            continue
        if min(event.total_bytes, event.max_bytes_per_gpu,
               event.field_muls) < 0:
            findings.append(Finding(
                "trace.negative-charge",
                f"negative charge (bytes {event.total_bytes}/"
                f"{event.max_bytes_per_gpu}, muls {event.field_muls})",
                where))
        elif event.max_bytes_per_gpu > event.total_bytes:
            findings.append(Finding(
                "trace.inconsistent-bytes",
                f"one GPU moved {event.max_bytes_per_gpu} bytes but the "
                f"event total is only {event.total_bytes}", where))
        if not spec.collective:
            remote = sorted(r for r in event.reads if r != event.gpu)
            if remote:
                findings.append(Finding(
                    "trace.unsynced-read",
                    f"non-collective event read remote shard(s) "
                    f"{remote} outside any collective", where))
        by_step.setdefault(event.step, []).append((index, event))

    for step in sorted(by_step):
        group = by_step[step]
        for a in range(len(group)):
            for b in range(a + 1, len(group)):
                index_a, event_a = group[a]
                index_b, event_b = group[b]
                writes_a = _write_set(event_a)
                writes_b = _write_set(event_b)
                if writes_a is None or writes_b is None:
                    overlap: object = "all devices"
                elif writes_a & writes_b:
                    overlap = sorted(writes_a & writes_b)
                else:
                    continue
                findings.append(Finding(
                    "trace.write-conflict",
                    f"events {index_a}({event_a.kind}) and "
                    f"{index_b}({event_b.kind}) run at step {step} and "
                    f"both write {overlap}",
                    f"trace.step[{step}]"))

    pending: list[tuple[int, TraceEvent]] = []
    for index, event in enumerate(trace.events):
        if event.kind == "fault":
            fault_kind = event.detail.partition("@")[0]
            if fault_kind in RESOLUTION_REQUIRED:
                pending.append((index, event))
        elif event.kind in ("retry", "reshard") and pending:
            pending.pop(0)
    for index, event in pending:
        findings.append(Finding(
            "trace.unresolved-fault",
            f"fault {event.detail!r} was never answered by a "
            "retry/reshard event",
            f"trace[{index}](fault)"))

    # Every dispatched serving batch must retire: the batch tag (the
    # first detail token, "batch=<id>") of a serve-dispatch event must
    # reappear on a *later* serve-complete.  A dispatch nothing completed
    # means requests were dropped mid-flight.
    open_batches: dict[str, int] = {}
    for index, event in enumerate(trace.events):
        if event.level != SERVE_LEVEL:
            continue
        tag = event.detail.split(" ", 1)[0]
        if event.kind == "serve-dispatch":
            open_batches[tag] = index
        elif event.kind == "serve-complete":
            open_batches.pop(tag, None)
    for tag, index in sorted(open_batches.items(),
                             key=lambda item: item[1]):
        findings.append(Finding(
            "trace.serve-dangling-dispatch",
            f"batch {tag!r} was dispatched but never completed",
            f"trace[{index}](serve-dispatch)"))

    # Every simulated server crash must be answered — in order, one to
    # one — by a later serve-recover event, and every serve-recover must
    # answer a crash: a recovery out of nowhere means the journal was
    # replayed against a run that never died.
    open_crashes: list[tuple[int, TraceEvent]] = []
    for index, event in enumerate(trace.events):
        if event.kind == "fault" \
                and event.detail.partition("@")[0] == "server-crash":
            open_crashes.append((index, event))
        elif event.kind == "serve-recover":
            if open_crashes:
                open_crashes.pop(0)
            else:
                findings.append(Finding(
                    "trace.unrecovered-crash",
                    f"serve-recover {event.detail!r} answers no "
                    "server-crash fault",
                    f"trace[{index}](serve-recover)"))
    for index, event in open_crashes:
        findings.append(Finding(
            "trace.unrecovered-crash",
            f"server crash {event.detail!r} was never answered by a "
            "serve-recover event",
            f"trace[{index}](fault)"))

    # A shed request was refused service; its id must never appear in a
    # completed batch's id list.  (serve-shed details lead with
    # "request=<id>"; serve-dispatch details carry "ids=<id,...>" and
    # lead with the batch tag serve-complete retires.)
    shed_ids: dict[str, int] = {}
    batch_ids: dict[str, list[str]] = {}
    completed_ids: set[str] = set()
    for index, event in enumerate(trace.events):
        if event.level != SERVE_LEVEL:
            continue
        if event.kind == "serve-shed":
            token = event.detail.split(" ", 1)[0]
            if token.startswith("request="):
                shed_ids.setdefault(
                    token.partition("=")[2], index)
        elif event.kind == "serve-dispatch":
            tag = event.detail.split(" ", 1)[0]
            for token in event.detail.split(" "):
                if token.startswith("ids="):
                    batch_ids[tag] = token.partition("=")[2].split(",")
        elif event.kind == "serve-complete":
            tag = event.detail.split(" ", 1)[0]
            completed_ids.update(batch_ids.get(tag, []))
    for request_id in sorted(set(shed_ids) & completed_ids,
                             key=lambda rid: shed_ids[rid]):
        findings.append(Finding(
            "trace.shed-and-completed",
            f"request {request_id} was shed by the degradation "
            "controller but its batch also completed",
            f"trace[{shed_ids[request_id]}](serve-shed)"))

    # Journal appends must be gapless: each serve-journal event carries
    # "seq=<n>", and within one trace the sequence must advance by
    # exactly one.  A serve-recover event ("journal-seq=<crash>") resets
    # the expectation to the crash point plus one — the recovery leg's
    # first append lands right after the record the crash interrupted.
    expected_seq: int | None = None
    for index, event in enumerate(trace.events):
        if event.kind == "serve-recover":
            token = event.detail.split(" ", 1)[0]
            if token.startswith("journal-seq="):
                try:
                    expected_seq = int(token.partition("=")[2]) + 1
                except ValueError:
                    pass
        elif event.kind == "serve-journal":
            token = event.detail.split(" ", 1)[0]
            if not token.startswith("seq="):
                continue
            try:
                seq = int(token.partition("=")[2])
            except ValueError:
                continue
            if expected_seq is not None and seq != expected_seq:
                findings.append(Finding(
                    "trace.journal-gap",
                    f"journal append carries seq {seq}, expected "
                    f"{expected_seq} (records lost or reordered)",
                    f"trace[{index}](serve-journal)"))
            expected_seq = seq + 1

    if schedule is not None:
        expected = schedule.bytes_by_level()
        actual = trace.bytes_by_level()
        for level in sorted(set(expected) | set(actual)):
            if level in (RESILIENCE_LEVEL, SERVE_LEVEL):
                continue
            want, got = expected.get(level, 0), actual.get(level, 0)
            if want != got:
                findings.append(Finding(
                    "trace.plan-divergence",
                    f"trace moved {got} bytes at level {level!r}, "
                    f"static schedule predicts {want}",
                    f"trace.bytes_by_level[{level}]"))
    return findings
