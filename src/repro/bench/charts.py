"""ASCII charts: figure-shaped output for a terminal-only world.

The paper's figures are bar/line charts; the benchmark harness emits
their data as tables, and this module renders the same series as
horizontal bar charts so the *shape* (who wins, how the gap grows) is
visible at a glance in CI logs and terminals.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import BenchmarkError

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, scale: float, width: int) -> str:
    """A unicode bar of ``value/scale * width`` character cells."""
    if scale <= 0:
        return ""
    cells = value / scale * width
    full = int(cells)
    remainder = int((cells - full) * 8)
    return _FULL * full + (_PARTIAL[remainder] if remainder else "")


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 40,
              unit: str = "") -> str:
    """Render one series as labeled horizontal bars."""
    if len(labels) != len(values):
        raise BenchmarkError(
            f"{len(labels)} labels for {len(values)} values")
    if not values:
        raise BenchmarkError("empty chart")
    if any(v < 0 for v in values):
        raise BenchmarkError("bar charts need non-negative values")
    scale = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = _bar(value, scale, width)
        lines.append(f"{str(label):>{label_width}}  {bar} "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(group_labels: Sequence[str],
                      series: dict[str, Sequence[float]],
                      title: str = "", width: int = 40,
                      unit: str = "") -> str:
    """Render several series side by side per group.

    ``series`` maps a series name to one value per group; all series are
    drawn on a common scale so cross-series comparison is honest.
    """
    if not series:
        raise BenchmarkError("no series to chart")
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise BenchmarkError(
                f"series {name!r} has {len(values)} values for "
                f"{len(group_labels)} groups")
        if any(v < 0 for v in values):
            raise BenchmarkError("bar charts need non-negative values")
    scale = max(max(values) for values in series.values()) or 1.0
    name_width = max(len(name) for name in series)
    label_width = max(len(str(label)) for label in group_labels)
    lines = []
    if title:
        lines.append(title)
    for i, group in enumerate(group_labels):
        lines.append(f"{str(group):>{label_width}}")
        for name, values in series.items():
            bar = _bar(values[i], scale, width)
            lines.append(f"{'':>{label_width}}  {name:>{name_width}} "
                         f"{bar} {values[i]:g}{unit}")
    return "\n".join(lines)
