"""The single-GPU engine: the pre-UniNTT state of the art.

End-to-end ZKP systems before this paper ran MSM on all GPUs but NTT on
one: the data is gathered to a single device, transformed there with a
tiled hierarchical kernel, and scattered back.  This engine reproduces
that structure so the end-to-end benchmark can show the Amdahl
bottleneck the paper motivates with.

``naive=True`` degrades the local kernel to one global-memory pass per
butterfly stage — the unoptimized reference point of the single-GPU
comparison figure.
"""

from __future__ import annotations

from repro.hw.cost import Phase, Step
from repro.multigpu import accounting as acct
from repro.multigpu.base import DistributedNTTEngine, DistributedVector
from repro.multigpu.layout import BlockLayout, Layout
from repro.ntt import radix2
from repro.ntt.twiddle import default_cache
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = ["SingleGpuEngine"]


class SingleGpuEngine(DistributedNTTEngine):
    """Gather -> one-device tiled NTT -> scatter."""

    def __init__(self, cluster: SimCluster, tile: int = 4096,
                 naive: bool = False):
        super().__init__(cluster, tile)
        self.naive = naive
        self.name = "single-gpu-naive" if naive else "single-gpu"

    # -- layouts -----------------------------------------------------------

    def input_layout(self, n: int) -> Layout:
        return BlockLayout(n=n, gpu_count=self.gpu_count)

    def output_layout(self, n: int) -> Layout:
        return BlockLayout(n=n, gpu_count=self.gpu_count)

    # -- functional ------------------------------------------------------------

    def _run(self, vec: DistributedVector, inverse: bool) -> DistributedVector:
        n = vec.n
        layout = self.input_layout(n)
        self._check_input(vec, layout)
        shards = self.cluster.gather_to(0, detail=f"{self.name}-gather")
        values = [v for shard in shards for v in shard]  # block order
        root_gpu = self.cluster.gpus[0]
        direction = "intt" if inverse else "ntt"
        result = (radix2.intt if inverse else radix2.ntt)(
            self.field, values, default_cache)
        root_gpu.charge_compute(
            field_muls=self._local_muls(n, inverse),
            mem_bytes=self._local_mem_bytes(n))
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu",
            max_bytes_per_gpu=self._local_mem_bytes(n),
            total_bytes=self._local_mem_bytes(n),
            field_muls=self._local_muls(n, inverse),
            detail=f"{self.name}-{direction}"))
        m = n // self.gpu_count
        self.cluster.scatter_from(
            0, [result[g * m:(g + 1) * m] for g in range(self.gpu_count)],
            detail=f"{self.name}-scatter")
        return DistributedVector(cluster=self.cluster, layout=layout)

    def forward(self, vec: DistributedVector) -> DistributedVector:
        return self._run(vec, inverse=False)

    def inverse(self, vec: DistributedVector) -> DistributedVector:
        return self._run(vec, inverse=True)

    # -- accounting --------------------------------------------------------------

    def _local_muls(self, n: int, inverse: bool) -> int:
        muls = acct.local_ntt_muls(n)
        if inverse:
            muls += n  # the 1/n scaling pass
        return muls

    def _local_mem_bytes(self, n: int) -> int:
        eb = self.cluster.element_bytes
        if self.naive:
            return 2 * n * eb * acct.log2_int(max(n, 2))
        return acct.local_ntt_mem_bytes(n, eb, self.tile)

    # -- analytic ----------------------------------------------------------------

    def _profile(self, n: int, inverse: bool) -> list[Step]:
        g = self.gpu_count
        eb = self.cluster.element_bytes
        m = n // g
        edge_bytes = (g - 1) * m * eb  # root link is the critical path
        return [
            Phase(name="gather", exchange_bytes=edge_bytes, messages=g - 1),
            Phase(name="local-ntt", field_muls=self._local_muls(n, inverse),
                  mem_bytes=self._local_mem_bytes(n)),
            Phase(name="scatter", exchange_bytes=edge_bytes, messages=g - 1),
        ]

    def forward_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=False)

    def inverse_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=True)
