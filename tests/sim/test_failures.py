"""Failure-injection tests: the simulator catches what it should.

A distributed transform has many silent-corruption opportunities; these
tests verify that (a) injected faults actually change results (the
suite's correctness assertions have teeth), and (b) the validation
hooks detect malformed state early.
"""

import pytest

from repro.errors import SimulationError
from repro.field import TEST_FIELD_7681
from repro.multigpu import (
    BaselineFourStepEngine, DistributedVector, UniNTTEngine,
)
from repro.ntt import ntt
from repro.sim import SimCluster

F = TEST_FIELD_7681


class TestShardValidation:
    def test_clean_shards_pass(self, rng):
        cluster = SimCluster(F, 4)
        cluster.load_shards([F.random_vector(8, rng) for _ in range(4)])
        cluster.validate_shards()

    def test_out_of_field_value_detected(self, rng):
        cluster = SimCluster(F, 4)
        cluster.load_shards([F.random_vector(8, rng) for _ in range(4)])
        cluster.corrupt(2, 3, F.modulus + 5)
        with pytest.raises(SimulationError, match="GPU 2"):
            cluster.validate_shards()

    def test_wrong_type_detected(self, rng):
        cluster = SimCluster(F, 2)
        cluster.load_shards([[1, 2], [3, 4]])
        cluster.gpus[1].shard[0] = 2.5  # type: ignore[assignment]
        with pytest.raises(SimulationError, match="GPU 1"):
            cluster.validate_shards()

    def test_corrupt_returns_previous(self, rng):
        cluster = SimCluster(F, 2)
        cluster.load_shards([[10, 20], [30, 40]])
        assert cluster.corrupt(0, 1, 99) == 20
        assert cluster.gpus[0].shard[1] == 99

    def test_corrupt_bounds(self):
        cluster = SimCluster(F, 2)
        cluster.load_shards([[1], [2]])
        with pytest.raises(SimulationError, match="gpu_id"):
            cluster.corrupt(5, 0, 1)
        with pytest.raises(SimulationError, match="out of range"):
            cluster.corrupt(0, 9, 1)


class TestFaultPropagation:
    """An injected fault must change the output — no silent masking."""

    @pytest.mark.parametrize("engine_cls",
                             [UniNTTEngine, BaselineFourStepEngine],
                             ids=lambda c: c.__name__)
    def test_input_corruption_changes_output(self, engine_cls, rng):
        n, g = 256, 4
        values = F.random_vector(n, rng)
        reference = ntt(F, values)

        cluster = SimCluster(F, g)
        engine = engine_cls(cluster)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        cluster.corrupt(1, 5, (cluster.gpus[1].shard[5] + 1) % F.modulus)
        out = engine.forward(vec)
        assert out.to_values() != reference

    def test_single_bit_fault_spreads_everywhere(self, rng):
        """The butterfly network mixes every input into every output:
        one corrupted element perturbs (almost) the whole spectrum."""
        n, g = 256, 4
        values = F.random_vector(n, rng)
        reference = ntt(F, values)

        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        cluster.corrupt(0, 0, (cluster.gpus[0].shard[0] + 1) % F.modulus)
        got = engine.forward(vec).to_values()
        differing = sum(1 for a, b in zip(got, reference) if a != b)
        assert differing == n  # x[0] feeds every output with weight 1

    def test_roundtrip_detects_mid_pipeline_fault(self, rng):
        """NTT -> corrupt -> INTT differs from the input: end-to-end
        checksums over the round trip catch in-flight corruption."""
        n, g = 64, 4
        values = F.random_vector(n, rng)
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        out = engine.forward(vec)
        cluster.corrupt(3, 0, (cluster.gpus[3].shard[0] + 1) % F.modulus)
        back = engine.inverse(out)
        assert back.to_values() != values
