"""Tests for the autotuning layer."""

import pytest

from repro.errors import HardwareModelError
from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.hw import A100_PCIE_NODE, DGX_A100, DGX_H100
from repro.multigpu import autotune_tile, machine_plan, select_engine
from repro.ntt import ntt, plan_ntt


class TestMachinePlan:
    def test_outermost_is_gpu_count(self):
        plan = machine_plan(DGX_A100, GOLDILOCKS, 1 << 20)
        assert plan.level == "multi-gpu"
        assert plan.radix[0] == 8

    def test_executes_correctly(self, rng):
        n = 1 << 10
        plan = machine_plan(DGX_A100, GOLDILOCKS, n, leaf_size=4)
        x = GOLDILOCKS.random_vector(n, rng)
        assert plan_ntt(GOLDILOCKS, plan, x) == ntt(GOLDILOCKS, x)

    def test_small_transform_skips_levels(self):
        plan = machine_plan(DGX_A100, GOLDILOCKS, 64)
        assert plan.size == 64
        assert plan.depth() <= 2

    def test_leaf_size_from_register_capacity(self):
        plan = machine_plan(DGX_A100, GOLDILOCKS, 1 << 22)
        leaves = [node.size for node in plan.walk() if node.is_leaf]
        # default leaf = per-lane register capacity (32 elements)
        assert max(leaves) <= 64


class TestAutotuneTile:
    def test_returns_valid_tile(self):
        tile, seconds = autotune_tile(DGX_A100, BLS12_381_FR, 1 << 24)
        assert tile >= 64 and tile & (tile - 1) == 0
        assert seconds > 0
        eb = 32
        assert tile <= DGX_A100.gpu.smem_per_block_bytes // eb

    def test_never_worse_than_any_candidate(self):
        """The tuner's pick is at least as fast as fixed defaults."""
        from repro.multigpu import UniNTTEngine
        from repro.sim import SimCluster

        n = 1 << 26
        _, best_seconds = autotune_tile(DGX_A100, GOLDILOCKS, n)
        for tile in (64, 512, 4096):
            cluster = SimCluster(GOLDILOCKS, 8)
            seconds = UniNTTEngine(cluster, tile=tile).estimate(
                DGX_A100, n).total_s
            assert best_seconds <= seconds + 1e-12

    def test_explicit_gpu_count(self):
        tile, _ = autotune_tile(DGX_A100, GOLDILOCKS, 1 << 20, gpu_count=2)
        assert tile >= 64


class TestSelectEngine:
    def test_ranked_fastest_first(self):
        choices = select_engine(DGX_A100, BLS12_381_FR, 1 << 24)
        seconds = [c.seconds for c in choices]
        assert seconds == sorted(seconds)
        assert len(choices) == 4

    def test_unintt_wins_at_scale(self):
        choices = select_engine(A100_PCIE_NODE, BLS12_381_FR, 1 << 24)
        assert choices[0].name.startswith("unintt")

    def test_small_sizes_exclude_constrained_engines(self):
        """At n < G^2 the spectral engines drop out but something runs."""
        choices = select_engine(DGX_H100, GOLDILOCKS, 32)
        names = [c.name for c in choices]
        assert names  # single-gpu at minimum
        assert all("unintt" not in name for name in names)

    def test_bottleneck_reported(self):
        choices = select_engine(A100_PCIE_NODE, BLS12_381_FR, 1 << 26)
        assert choices[0].bottleneck in ("compute", "memory", "exchange")


class TestClusterSelectEngine:
    def test_plain_machine_pool_is_unchanged(self):
        # The original four-engine contract must not grow on plain
        # machines — schedule candidates join only on clusters.
        choices = select_engine(DGX_A100, BLS12_381_FR, 1 << 24)
        assert len(choices) == 4
        assert all(not c.name.startswith("sched:") for c in choices)

    def test_cluster_pool_includes_schedule_candidates(self):
        from repro.hw import FOUR_NODE_DGX_A100

        choices = select_engine(FOUR_NODE_DGX_A100, BLS12_381_FR,
                                1 << 24)
        names = [c.name for c in choices]
        assert any(name.startswith("sched:") for name in names)
        assert any(not name.startswith("sched:") for name in names)
        seconds = [c.seconds for c in choices]
        assert seconds == sorted(seconds)

    def test_synthesized_schedule_wins_on_the_cluster(self):
        from repro.hw import FOUR_NODE_DGX_A100

        choices = select_engine(FOUR_NODE_DGX_A100, BLS12_381_FR,
                                1 << 24)
        assert choices[0].name.startswith("sched:")
        assert "@hier[" in choices[0].name


class TestSelectSchedule:
    def test_ranked_with_validated_costs(self):
        from repro.multigpu import select_schedule

        choices = select_schedule(DGX_A100, BLS12_381_FR, 1 << 20)
        assert len(choices) == 2
        seconds = [c.seconds for c in choices]
        assert seconds == sorted(seconds)
        for choice in choices:
            assert choice.cost.validate() == []
            assert choice.schedule.num_gpus == DGX_A100.gpu_count

    def test_cluster_ranking_prefers_hierarchy(self):
        from repro.hw import FOUR_NODE_DGX_A100
        from repro.multigpu import select_schedule

        choices = select_schedule(FOUR_NODE_DGX_A100, BLS12_381_FR,
                                  1 << 24)
        assert len(choices) == 3
        assert choices[0].synthesized
        assert "@hier[" in choices[0].name
        flat = next(c for c in choices if not c.synthesized)
        assert choices[0].cost.total_s < flat.cost.total_s
