"""The uniform optimization set.

The paper designs each optimization once against the abstract hardware
model and instantiates it per level.  :class:`UniNTTOptions` is that
set, as toggles the ablation benchmark flips:

* ``fused_twiddle`` — fold the inter-factor twiddle scaling into the
  adjacent butterfly pass instead of a standalone memory sweep.  At the
  warp level this is "twiddles in registers"; at the GPU level it is
  "no twiddle kernel"; the toggle applies uniformly.
* ``keep_permuted_output`` — leave the forward output in
  :class:`~repro.multigpu.layout.SpectralLayout` instead of
  materializing natural order, deleting one all-to-all (and, at the
  intra-GPU levels, the bit-reversal pass: DIF forward + DIT inverse).
* ``overlap`` — pipeline the all-to-all chunk-by-chunk with the cross
  transforms that consume it (at the warp level the analogue is
  shuffle/compute dual issue).
* ``radix_fusion`` — use radix-4 butterflies for local transforms,
  reducing twiddle multiplications (register-level instance of the same
  "do more per visit" idea that tiling applies at the memory level).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["UniNTTOptions", "ALL_ON", "ALL_OFF", "ablation_grid"]


@dataclass(frozen=True)
class UniNTTOptions:
    """Toggle set for the uniform optimizations."""

    fused_twiddle: bool = True
    keep_permuted_output: bool = True
    overlap: bool = True
    radix_fusion: bool = True

    def label(self) -> str:
        """Compact on/off string for reports, e.g. ``FT+PO+OV+RF``."""
        parts = [
            ("FT", self.fused_twiddle),
            ("PO", self.keep_permuted_output),
            ("OV", self.overlap),
            ("RF", self.radix_fusion),
        ]
        on = [tag for tag, enabled in parts if enabled]
        return "+".join(on) if on else "none"

    def without(self, name: str) -> "UniNTTOptions":
        """Copy with one optimization disabled (ablation helper)."""
        if not hasattr(self, name):
            raise AttributeError(f"unknown optimization {name!r}")
        return replace(self, **{name: False})


#: Full UniNTT configuration.
ALL_ON = UniNTTOptions()

#: The un-optimized decomposition (still one-exchange-structured).
ALL_OFF = UniNTTOptions(fused_twiddle=False, keep_permuted_output=False,
                        overlap=False, radix_fusion=False)


def ablation_grid() -> list[tuple[str, "UniNTTOptions"]]:
    """The configurations the ablation figure sweeps.

    Returns (label, options) pairs: everything on, each optimization
    individually removed, and everything off.
    """
    grid: list[tuple[str, UniNTTOptions]] = [("all-on", ALL_ON)]
    for name in ("fused_twiddle", "keep_permuted_output", "overlap",
                 "radix_fusion"):
        grid.append((f"no-{name}", ALL_ON.without(name)))
    grid.append(("all-off", ALL_OFF))
    return grid
