"""Distributed NTT engines: layouts, baselines, and UniNTT."""

from repro.multigpu.accounting import (
    alltoall_bytes_per_gpu, local_ntt_mem_bytes, local_ntt_muls, log2_int,
    pointwise_mem_bytes, small_batch_mem_bytes, small_batch_ntt_muls,
    tile_passes, twiddle_muls,
)
from repro.multigpu.autotune import (
    EngineChoice, ScheduleChoice, autotune_tile, machine_plan,
    select_engine, select_schedule,
)
from repro.multigpu.base import (
    DistributedNTTEngine, DistributedVector, VectorCheckpoint, redistribute,
)
from repro.multigpu.baseline import BaselineFourStepEngine
from repro.multigpu.batch_engine import BatchedDistributedNTT
from repro.multigpu.hierarchical import (
    HierarchicalUniNTTEngine, InterNodeExchangeLayout,
    IntraNodeExchangeLayout, NestedCyclicLayout, NestedSpectralLayout,
    NodeSpectralLayout,
)
from repro.multigpu.pairwise import BitrevSpectralLayout, PairwiseExchangeEngine
from repro.multigpu.layout import (
    BlockLayout, ColumnBlockLayout, CyclicLayout, Layout, SpectralLayout,
    TransposedBlockLayout, UniNTTExchangeLayout, collect, distribute,
)
from repro.multigpu.polynomial import DistributedPolynomial
from repro.multigpu.resilience import (
    ResilienceReport, ResilientNTTEngine, RetryPolicy,
)
from repro.multigpu.schedule import ALL_OFF, ALL_ON, UniNTTOptions, ablation_grid
from repro.multigpu.singlegpu import SingleGpuEngine
from repro.multigpu.streaming import StreamingEstimate, StreamingHostEngine
from repro.multigpu.unintt import UniNTTEngine

__all__ = [
    "Layout", "BlockLayout", "CyclicLayout", "SpectralLayout",
    "ColumnBlockLayout", "TransposedBlockLayout", "UniNTTExchangeLayout",
    "distribute", "collect",
    "DistributedVector", "DistributedNTTEngine", "redistribute",
    "VectorCheckpoint",
    "RetryPolicy", "ResilienceReport", "ResilientNTTEngine",
    "SingleGpuEngine", "BaselineFourStepEngine", "UniNTTEngine",
    "PairwiseExchangeEngine", "BitrevSpectralLayout",
    "BatchedDistributedNTT",
    "machine_plan", "autotune_tile", "select_engine", "EngineChoice",
    "select_schedule", "ScheduleChoice",
    "DistributedPolynomial",
    "StreamingHostEngine", "StreamingEstimate",
    "HierarchicalUniNTTEngine", "NestedCyclicLayout", "NestedSpectralLayout",
    "NodeSpectralLayout", "IntraNodeExchangeLayout",
    "InterNodeExchangeLayout",
    "UniNTTOptions", "ALL_ON", "ALL_OFF", "ablation_grid",
    "log2_int", "tile_passes", "local_ntt_muls", "local_ntt_mem_bytes",
    "small_batch_ntt_muls", "small_batch_mem_bytes", "twiddle_muls",
    "pointwise_mem_bytes", "alltoall_bytes_per_gpu",
]
