"""Tests for decomposition plan construction."""

import pytest

from repro.errors import PlanError
from repro.ntt import (
    Plan, balanced_plan, hierarchical_plan, leaf, plan_for_machine_shape,
    split,
)


class TestNodeValidation:
    def test_leaf(self):
        node = leaf(8)
        assert node.is_leaf
        assert node.size == 8
        assert node.radix == (8, 1)
        assert node.depth() == 0

    def test_split(self):
        node = split(leaf(4), leaf(8), level="gpu")
        assert not node.is_leaf
        assert node.size == 32
        assert node.radix == (4, 8)
        assert node.level == "gpu"
        assert node.depth() == 1

    def test_non_power_size_rejected(self):
        with pytest.raises(PlanError, match="power of two"):
            leaf(12)

    def test_half_split_rejected(self):
        with pytest.raises(PlanError, match="both an outer and an inner"):
            Plan(size=8, outer=leaf(2), inner=None)

    def test_mismatched_factors_rejected(self):
        with pytest.raises(PlanError, match="does not factor"):
            Plan(size=16, outer=leaf(2), inner=leaf(4))

    def test_unit_factor_rejected(self):
        with pytest.raises(PlanError, match="at least 2"):
            Plan(size=8, outer=leaf(1), inner=leaf(8))


class TestTraversal:
    def test_walk_preorder(self):
        tree = split(split(leaf(2), leaf(2), level="a"), leaf(4), level="b")
        sizes = [node.size for node in tree.walk()]
        assert sizes == [16, 4, 2, 2, 4]

    def test_levels_used(self):
        tree = split(leaf(4), split(leaf(2), leaf(2), level="inner"),
                     level="outer")
        assert tree.levels_used() == ["outer", "inner"]

    def test_describe_renders_tree(self):
        tree = split(leaf(2), leaf(4), level="gpu")
        text = tree.describe()
        assert "split[8 = 2 x 4] @gpu" in text
        assert "leaf[2]" in text
        assert "leaf[4]" in text


class TestBalancedPlan:
    def test_small_is_leaf(self):
        assert balanced_plan(16, leaf_size=16).is_leaf

    def test_splits_until_leaf_size(self):
        plan = balanced_plan(1 << 12, leaf_size=1 << 4)
        for node in plan.walk():
            if node.is_leaf:
                assert node.size <= 1 << 4

    def test_size_preserved(self):
        plan = balanced_plan(1 << 10, leaf_size=8)
        assert plan.size == 1 << 10

    def test_leaf_size_validation(self):
        with pytest.raises(PlanError, match="leaf_size"):
            balanced_plan(16, leaf_size=1)

    def test_size_validation(self):
        with pytest.raises(PlanError, match="power of two"):
            balanced_plan(24)


class TestHierarchicalPlan:
    def test_levels_in_order(self):
        plan = hierarchical_plan(1 << 12, [("multi-gpu", 8), ("gpu", 16),
                                           ("warp", 4)], leaf_size=4)
        assert plan.levels_used()[:3] == ["multi-gpu", "gpu", "warp"]

    def test_outer_split_sizes_match_fanouts(self):
        plan = hierarchical_plan(1 << 12, [("multi-gpu", 8), ("gpu", 16)],
                                 leaf_size=16)
        assert plan.radix[0] == 8
        assert plan.inner is not None
        assert plan.inner.radix[0] == 16

    def test_small_transform_skips_outer_levels(self):
        # 2^4 transform cannot use an 8-way multi-GPU and a 16-way GPU split.
        plan = hierarchical_plan(16, [("multi-gpu", 8), ("gpu", 16)],
                                 leaf_size=4)
        assert plan.size == 16
        used = plan.levels_used()
        assert used and used[0] == "multi-gpu"

    def test_exact_consumption(self):
        """Fanouts that exactly consume the size still produce a plan."""
        plan = hierarchical_plan(64, [("a", 8), ("b", 8)], leaf_size=2)
        assert plan.size == 64

    def test_non_power_fanout_rejected(self):
        with pytest.raises(PlanError, match="fanout"):
            hierarchical_plan(64, [("x", 3)])

    def test_trivial_size(self):
        assert hierarchical_plan(1, [("a", 8)]).is_leaf
        assert hierarchical_plan(2, [("a", 8)]).size == 2


class TestMachineShape:
    def test_standard_shape(self):
        plan = plan_for_machine_shape(1 << 20, gpu_count=8)
        assert plan.level == "multi-gpu"
        assert plan.radix[0] == 8
        assert plan.size == 1 << 20

    def test_executes_correctly(self, rng):
        from repro.field import TEST_FIELD_7681 as F
        from repro.ntt import ntt, plan_ntt

        plan = plan_for_machine_shape(512, gpu_count=4, sm_per_gpu=4,
                                      warps_per_block=2, lanes_per_warp=2,
                                      leaf_size=4)
        x = F.random_vector(512, rng)
        assert plan_ntt(F, plan, x) == ntt(F, x)
