"""Cross-backend equivalence tests.

Every operation of :class:`repro.field.NumPyBackend` must agree
bit-for-bit with :class:`repro.field.PythonBackend` — the reference
semantics — on every preset field plus two extra primes chosen to land
in the 33..64-bit Montgomery kernel regime.  The randomized vectors mix
in the edge values (0, 1, p-1) that stress carry/borrow paths.
"""

import random

import pytest

from repro.errors import FieldError
from repro.field import (
    ALL_FIELDS, BACKEND_ENV_VAR, NumPyBackend, PythonBackend,
    available_backends, get_backend, numpy_available, set_backend,
    use_backend,
)
from repro.field.prime_field import PrimeField

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy backend unavailable")

#: 43 * 2^32 + 1 — 38 bits, exercises the generic Montgomery kernel.
MONT38 = PrimeField(43 * (1 << 32) + 1, generator=3, name="Mont38")
#: 27 * 2^56 + 1 — 61 bits, near the top of the uint64 lane regime.
MONT61 = PrimeField(27 * (1 << 56) + 1, generator=5, name="Mont61")

FIELDS = list(ALL_FIELDS) + [MONT38, MONT61]


def _vectors(field, rng, size=64):
    p = field.modulus
    edge = [0, 1, p - 1, p // 2, min(p - 1, (1 << 32) - 1),
            min(p - 1, 1 << 32)]
    a = edge + [rng.randrange(p) for _ in range(size)]
    b = list(reversed(edge)) + [rng.randrange(p) for _ in range(size)]
    return a, b


@pytest.fixture
def backends():
    return PythonBackend(), NumPyBackend()


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
class TestBackendEquivalence:
    def test_elementwise(self, field, backends, rng):
        py, np_ = backends
        a, b = _vectors(field, rng)
        for op in ("add", "sub", "mul"):
            ref = py.unpack(field, getattr(py, op)(
                field, py.pack(field, a), py.pack(field, b)))
            got = np_.unpack(field, getattr(np_, op)(
                field, np_.pack(field, a), np_.pack(field, b)))
            assert got == ref, f"{op} mismatch over {field.name}"

    def test_neg_scale(self, field, backends, rng):
        py, np_ = backends
        a, _ = _vectors(field, rng)
        s = rng.randrange(field.modulus)
        assert (np_.unpack(field, np_.neg(field, np_.pack(field, a)))
                == py.unpack(field, py.neg(field, py.pack(field, a))))
        assert (np_.unpack(field, np_.scale(field, np_.pack(field, a), s))
                == py.unpack(field, py.scale(field, py.pack(field, a), s)))

    def test_pow_series(self, field, backends, rng):
        py, np_ = backends
        base = rng.randrange(1, field.modulus)
        for n in (0, 1, 7, 64, 100):
            assert (np_.unpack(field, np_.pow_series(field, base, n))
                    == py.pow_series(field, base, n))

    def test_inv(self, field, backends, rng):
        py, np_ = backends
        a = [rng.randrange(1, field.modulus) for _ in range(50)] + [1]
        assert np_.unpack(field, np_.inv(field, a)) == py.inv(field, a)

    def test_inv_zero_raises_with_index(self, field, backends):
        _, np_ = backends
        with pytest.raises(FieldError, match="index 2"):
            np_.inv(field, [1, 1, 0, 1])

    def test_reductions(self, field, backends, rng):
        py, np_ = backends
        a, b = _vectors(field, rng)
        assert np_.dot(field, a, b) == py.dot(field, a, b)
        assert np_.sum(field, a) == py.sum(field, a)
        assert isinstance(np_.dot(field, a, b), int)
        assert isinstance(np_.sum(field, a), int)

    def test_non_canonical_inputs_reduced(self, field, backends):
        # Python semantics accept any ints and reduce mod p; the numpy
        # pack path must match (including negatives, which overflow
        # uint64 conversion).
        py, np_ = backends
        p = field.modulus
        a = [-1, -p, p, p + 1, 2 * p + 5, 0]
        b = [3, 5, 7, 11, 13, 17]
        ref = py.unpack(field, py.mul(field, py.pack(field, a),
                                      py.pack(field, b)))
        got = np_.unpack(field, np_.mul(field, np_.pack(field, a),
                                        np_.pack(field, b)))
        assert got == ref

    def test_length_mismatch_raises(self, field, backends):
        _, np_ = backends
        with pytest.raises(ValueError):
            np_.add(field, np_.pack(field, [1, 2]), np_.pack(field, [1]))


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
def test_ntt_round_trip_matches_python(field, rng):
    from repro.ntt import intt, ntt

    n = min(64, 1 << field.two_adicity)
    values = field.random_vector(n, rng)
    with use_backend("python"):
        ref = ntt(field, values)
    with use_backend("numpy"):
        assert ntt(field, values) == ref
        assert intt(field, ref) == values


@pytest.mark.parametrize("engine", ["radix2", "radix4", "stockham",
                                    "fourstep", "recursive", "bluestein"])
def test_engines_under_numpy_backend(engine, rng):
    from repro.field import GOLDILOCKS
    from repro.ntt import ntt
    from repro.ntt.bluestein import bluestein_ntt
    from repro.ntt.fourstep import four_step_ntt
    from repro.ntt.plan import balanced_plan
    from repro.ntt.radix4 import ntt_radix4
    from repro.ntt.recursive import plan_ntt
    from repro.ntt.stockham import ntt_stockham

    runner = {
        "radix2": ntt,
        "radix4": ntt_radix4,
        "stockham": ntt_stockham,
        "fourstep": four_step_ntt,
        "recursive": lambda f, v: plan_ntt(f, balanced_plan(len(v)), v),
        "bluestein": bluestein_ntt,
    }[engine]
    n = 128
    values = GOLDILOCKS.random_vector(n, rng)
    with use_backend("python"):
        ref = runner(GOLDILOCKS, values)
    with use_backend("numpy"):
        assert runner(GOLDILOCKS, values) == ref


class TestSelection:
    def test_available_backends(self):
        avail = available_backends()
        assert avail["python"] is True
        assert avail["numpy"] is True

    def test_set_and_restore(self):
        original = get_backend().name
        try:
            set_backend("python")
            assert get_backend().name == "python"
            set_backend("numpy")
            assert get_backend().name == "numpy"
        finally:
            set_backend(original)

    def test_auto_resolves_to_numpy(self):
        original = get_backend().name
        try:
            set_backend("auto")
            assert get_backend().name == "numpy"
        finally:
            set_backend(original)

    def test_unknown_backend_raises(self):
        with pytest.raises(FieldError, match="unknown backend"):
            set_backend("cuda")

    def test_context_manager_restores(self):
        before = get_backend().name
        with use_backend("python"):
            assert get_backend().name == "python"
        assert get_backend().name == before

    def test_context_manager_restores_on_error(self):
        before = get_backend().name
        with pytest.raises(RuntimeError):
            with use_backend("python"):
                raise RuntimeError("boom")
        assert get_backend().name == before

    def test_env_var_selects_backend(self):
        import subprocess
        import sys

        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.field import get_backend; "
             "print(get_backend().name)"],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", BACKEND_ENV_VAR: "python"},
            cwd=".").stdout.strip()
        assert out == "python"


def test_big_fields_fall_back_to_python_semantics(rng):
    # BN254/BLS12-381 exceed uint64; the numpy backend must still give
    # correct answers (via its Python fallback), not crash.
    from repro.field import BLS12_381_FR

    np_ = NumPyBackend()
    py = PythonBackend()
    a = [rng.randrange(BLS12_381_FR.modulus) for _ in range(8)]
    b = [rng.randrange(BLS12_381_FR.modulus) for _ in range(8)]
    assert (np_.unpack(BLS12_381_FR, np_.mul(
        BLS12_381_FR, np_.pack(BLS12_381_FR, a), np_.pack(BLS12_381_FR, b)))
        == py.unpack(BLS12_381_FR, py.mul(
            BLS12_381_FR, py.pack(BLS12_381_FR, a),
            py.pack(BLS12_381_FR, b))))


def test_random_cross_backend_fuzz(rng):
    # One broader randomized sweep: random sizes, random ops, every
    # preset field, both backends must agree exactly.
    from repro.field.vector import vec_add, vec_mul, vec_sub

    for field in FIELDS:
        for _ in range(5):
            n = rng.randrange(1, 40)
            a = field.random_vector(n, rng)
            b = field.random_vector(n, rng)
            for op in (vec_add, vec_sub, vec_mul):
                with use_backend("python"):
                    ref = op(field, a, b)
                with use_backend("numpy"):
                    assert op(field, a, b) == ref


class TestMultiLimbSelection:
    def test_multilimb_is_listed(self):
        assert available_backends().get("multilimb") is True

    def test_set_and_restore(self):
        original = get_backend().name
        try:
            set_backend("multilimb")
            assert get_backend().name == "multilimb"
        finally:
            set_backend(original)

    def test_auto_still_resolves_to_numpy(self):
        # multilimb is opt-in: "auto" must not silently switch the
        # big-field representation out from under existing users.
        original = get_backend().name
        try:
            set_backend("auto")
            assert get_backend().name == "numpy"
        finally:
            set_backend(original)

    def test_env_var_selects_multilimb(self):
        import subprocess
        import sys

        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.field import get_backend; "
             "print(get_backend().name)"],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", BACKEND_ENV_VAR: "multilimb"},
            cwd=".").stdout.strip()
        assert out == "multilimb"


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
class TestMultiLimbEquivalence:
    """MultiLimbBackend agrees with PythonBackend on EVERY preset.

    Below 64 bits it inherits the uint64 lanes; at 254/255 bits it
    switches to limb planes — either way the answers must be the
    reference answers, on the same edge-heavy vectors the numpy
    equivalence matrix uses.
    """

    def test_elementwise(self, field, rng):
        from repro.field import MultiLimbBackend

        py, ml = PythonBackend(), MultiLimbBackend()
        a, b = _vectors(field, rng)
        for op in ("add", "sub", "mul"):
            ref = py.unpack(field, getattr(py, op)(
                field, py.pack(field, a), py.pack(field, b)))
            got = ml.unpack(field, getattr(ml, op)(
                field, ml.pack(field, a), ml.pack(field, b)))
            assert got == ref, f"{op} mismatch over {field.name}"

    def test_scale_pow_series_inv(self, field, rng):
        from repro.field import MultiLimbBackend

        py, ml = PythonBackend(), MultiLimbBackend()
        a, _ = _vectors(field, rng)
        nonzero = [v or 1 for v in a]
        s = rng.randrange(1, field.modulus)
        assert ml.unpack(field, ml.scale(field, ml.pack(field, a), s)) == \
            py.unpack(field, py.scale(field, py.pack(field, a), s))
        assert ml.unpack(field, ml.pow_series(field, s, 17)) == \
            py.unpack(field, py.pow_series(field, s, 17))
        assert ml.unpack(field, ml.inv(field, ml.pack(field, nonzero))) == \
            py.unpack(field, py.inv(field, py.pack(field, nonzero)))

    def test_reductions(self, field, rng):
        from repro.field import MultiLimbBackend

        py, ml = PythonBackend(), MultiLimbBackend()
        a, b = _vectors(field, rng)
        assert ml.sum(field, ml.pack(field, a)) == \
            py.sum(field, py.pack(field, a))
        assert ml.dot(field, ml.pack(field, a), ml.pack(field, b)) == \
            py.dot(field, py.pack(field, a), py.pack(field, b))
