"""Crash consistency for the proof server: journal, snapshots, recovery.

The serving loop of :class:`~repro.serve.scheduler.ProofServer` is a
single process; if it dies mid-batch, every admitted request, cache
entry, and in-flight dispatch dies with it.  This module makes the
server crash-consistent the way production proof-serving systems are:

* :class:`WriteAheadJournal` — an append-only log of checksummed
  :class:`JournalRecord` entries keyed to the
  :class:`~repro.serve.clock.VirtualClock`.  The server writes a record
  *before* each externally visible state change (``admit``, ``reject``,
  ``shed``, ``dispatch``) and *after* each completion (``emit``,
  ``complete``), so the journal always brackets the truth: anything
  dispatched but not emitted is an orphan the next incarnation must
  finish.
* :class:`ServerSnapshot` — a periodic checkpoint of queue, handled-id
  set, batch counter, and cache/ledger keys, stored as an ordinary
  ``snapshot`` journal record.  Snapshots are only taken at quiescent
  points (between dispatches), so a snapshot never captures in-flight
  state.
* :class:`RecoveryManager` — verifies the journal (sequence gaps and
  checksum mismatches raise :class:`~repro.errors.JournalError`),
  restores the latest snapshot, replays the journal tail, and resumes a
  fresh server with a :class:`ResumeState`: orphaned requests are
  re-admitted **exactly once**, already-emitted requests are never
  re-run, and the recovered run's outputs are bit-identical to an
  uninterrupted run's (requests carry seeds, not data, so re-execution
  is a pure function).
* :func:`serve_durably` — the run-to-completion driver: serve, catch
  :class:`~repro.errors.ServerCrashError`, recover, repeat until the
  workload drains; returns a :class:`RecoveryOutcome` merging the
  results every incarnation emitted.

Pricing: journal appends and snapshots are charged off the critical
path (group commit) into ``ServeReport.journal_s``; recovery downtime
— replaying the tail and restoring the snapshot — advances the virtual
clock and lands in ``ServeReport.recovery_s``.  Both fold into the
report's validating :class:`~repro.hw.plancost.PlanCost`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Iterator

from repro.errors import JournalError, ServeError, ServerCrashError
from repro.serve.report import ServeReport
from repro.serve.request import ProofRequest, RequestResult

__all__ = [
    "JOURNAL_KINDS", "JOURNAL_MESSAGES", "RECOVER_MESSAGES",
    "REPLAY_MESSAGES_PER_RECORD", "SNAPSHOT_MESSAGES",
    "JournalRecord", "WriteAheadJournal", "ServerSnapshot",
    "ResumeState", "RecoveryManager", "RecoveryOutcome",
    "output_digest", "replay_journal", "serve_durably",
]

#: The closed vocabulary of journal record kinds, in lifecycle order.
#: ``steal`` is written by the *victim* of a cross-replica work steal:
#: the request left this journal's queue but was re-admitted (and
#: re-journaled) on the thief, so replay removes it here without
#: marking it handled.
JOURNAL_KINDS = ("admit", "reject", "shed", "dispatch", "emit",
                 "complete", "snapshot", "recover", "steal")

#: Fabric latency units one journal append costs (group commit: the
#: record is durable before the state change it guards is visible).
JOURNAL_MESSAGES = 1

#: Fabric latency units one snapshot costs (serialize + fsync).
SNAPSHOT_MESSAGES = 8

#: Fixed fabric latency units one recovery costs (open the journal,
#: restore the latest snapshot).
RECOVER_MESSAGES = 8

#: Additional latency units per journal-tail record replayed.
REPLAY_MESSAGES_PER_RECORD = 2


def _checksum(seq: int, t_s: float, kind: str, payload_json: str) -> str:
    blob = f"{seq}|{t_s!r}|{kind}|{payload_json}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def output_digest(outputs: tuple[tuple[int, ...], ...]) -> str:
    """Stable short digest of a request's output lanes (for ``emit``)."""
    return hashlib.sha256(repr(outputs).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JournalRecord:
    """One append-only journal entry.

    Attributes
    ----------
    seq:
        Sequence number; contiguous from 0 with no gaps.
    t_s:
        Virtual-clock timestamp the record was written at.
    kind:
        One of :data:`JOURNAL_KINDS`.
    payload:
        JSON-serializable record body (round-tripped through ``json``
        at append time, so what is stored is exactly what replays).
    checksum:
        Truncated SHA-256 over ``(seq, t_s, kind, payload)``; verified
        by :meth:`WriteAheadJournal.verify` before any recovery.
    """

    seq: int
    t_s: float
    kind: str
    payload: dict
    checksum: str


class WriteAheadJournal:
    """Append-only, checksummed, replayable server log.

    The journal object deliberately lives *outside* the server: a
    simulated crash destroys the server (queue, caches, trace, report)
    but not the journal, exactly like a process dying above a durable
    log file.
    """

    def __init__(self) -> None:
        self.records: list[JournalRecord] = []
        self._last_snapshot_seq = -1

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self.records)

    @property
    def next_seq(self) -> int:
        return len(self.records)

    @property
    def records_since_snapshot(self) -> int:
        """Records appended after the latest ``snapshot`` record."""
        return len(self.records) - (self._last_snapshot_seq + 1)

    def append(self, kind: str, payload: dict, *,
               t_s: float) -> JournalRecord:
        """Append one checksummed record; returns it."""
        if kind not in JOURNAL_KINDS:
            raise JournalError(
                f"unknown journal record kind {kind!r}; known: "
                f"{', '.join(JOURNAL_KINDS)}")
        try:
            payload_json = json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError) as error:
            raise JournalError(
                f"journal payload for {kind!r} is not JSON-serializable: "
                f"{error}") from error
        seq = len(self.records)
        record = JournalRecord(
            seq=seq, t_s=float(t_s), kind=kind,
            payload=json.loads(payload_json),
            checksum=_checksum(seq, float(t_s), kind, payload_json))
        self.records.append(record)
        if kind == "snapshot":
            self._last_snapshot_seq = seq
        return record

    def verify(self) -> None:
        """Raise :class:`JournalError` on any gap or checksum mismatch."""
        for index, record in enumerate(self.records):
            if record.seq != index:
                raise JournalError(
                    f"journal gap: record at position {index} carries "
                    f"seq {record.seq}")
            payload_json = json.dumps(record.payload, sort_keys=True)
            expected = _checksum(record.seq, record.t_s, record.kind,
                                 payload_json)
            if record.checksum != expected:
                raise JournalError(
                    f"journal record {record.seq} ({record.kind}) fails "
                    f"its checksum: stored {record.checksum}, computed "
                    f"{expected}")

    def latest_snapshot(self) -> JournalRecord | None:
        """The most recent ``snapshot`` record, or ``None``."""
        for record in reversed(self.records):
            if record.kind == "snapshot":
                return record
        return None

    def tail(self, after_seq: int) -> list[JournalRecord]:
        """Records strictly after ``after_seq``, in order."""
        return [r for r in self.records if r.seq > after_seq]

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"records": [
                {"seq": r.seq, "t_s": r.t_s, "kind": r.kind,
                 "payload": r.payload, "checksum": r.checksum}
                for r in self.records]},
            indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WriteAheadJournal":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise JournalError(
                f"journal is not valid JSON: {error}") from error
        if not isinstance(data, dict) \
                or not isinstance(data.get("records"), list):
            raise JournalError(
                "journal JSON must be an object with a 'records' list")
        journal = cls()
        for entry in data["records"]:
            try:
                record = JournalRecord(
                    seq=int(entry["seq"]), t_s=float(entry["t_s"]),
                    kind=str(entry["kind"]), payload=dict(entry["payload"]),
                    checksum=str(entry["checksum"]))
            except (KeyError, TypeError, ValueError) as error:
                raise JournalError(
                    f"malformed journal record: {error}") from error
            journal.records.append(record)
            if record.kind == "snapshot":
                journal._last_snapshot_seq = record.seq
        journal.verify()
        return journal


@dataclass(frozen=True)
class ServerSnapshot:
    """Quiescent-point checkpoint of the server's in-memory state."""

    t_s: float
    queued: tuple[dict, ...]
    handled_ids: tuple[int, ...]
    next_batch_id: int
    plan_keys: tuple[tuple[str, str, int, str], ...]
    twiddle_shapes: tuple[tuple[str, int, str], ...]

    def to_payload(self) -> dict:
        return {
            "t_s": self.t_s,
            "queued": list(self.queued),
            "handled_ids": list(self.handled_ids),
            "next_batch_id": self.next_batch_id,
            "plan_keys": [list(k) for k in self.plan_keys],
            "twiddle_shapes": [list(s) for s in self.twiddle_shapes],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ServerSnapshot":
        try:
            return cls(
                t_s=float(payload["t_s"]),
                queued=tuple(dict(q) for q in payload["queued"]),
                handled_ids=tuple(int(i)
                                  for i in payload["handled_ids"]),
                next_batch_id=int(payload["next_batch_id"]),
                plan_keys=tuple(tuple(k) for k in payload["plan_keys"]),
                twiddle_shapes=tuple(
                    tuple(s) for s in payload["twiddle_shapes"]))
        except (KeyError, TypeError, ValueError) as error:
            raise JournalError(
                f"malformed snapshot payload: {error}") from error


@dataclass(frozen=True)
class ResumeState:
    """Everything a fresh server needs to continue a crashed run.

    Built by :meth:`RecoveryManager.resume_state` from the latest
    snapshot plus the journal tail, and consumed by
    ``ProofServer.serve(requests, resume=...)``.
    """

    clock_s: float
    crash_seq: int
    replayed_records: int
    queued: tuple[ProofRequest, ...]
    handled_ids: frozenset[int]
    next_batch_id: int
    plan_keys: tuple[tuple[str, str, int, str], ...] = ()
    twiddle_shapes: tuple[tuple[str, int, str], ...] = ()


@dataclass
class RecoveryOutcome:
    """Merged account of a :func:`serve_durably` run."""

    report: ServeReport
    legs: list[ServeReport] = dataclass_field(default_factory=list)
    results: list[RequestResult] = dataclass_field(default_factory=list)
    recoveries: int = 0
    server: object = None

    @property
    def crashed(self) -> bool:
        return self.recoveries > 0


def replay_journal(journal: WriteAheadJournal) -> ResumeState:
    """Verify and replay a journal into a :class:`ResumeState`.

    The replay partitions request ids into *handled* (emitted,
    rejected, or shed — never to be touched again) and *orphaned*
    (admitted or mid-dispatch at the journal's end — to be re-admitted
    exactly once).  Both :meth:`RecoveryManager.resume_state` (single-
    server crash recovery) and the fleet's journaled failover
    (:mod:`repro.serve.fleet`) are this function: failover is simply
    replaying a fenced replica's journal and re-routing the orphans.
    """
    journal.verify()
    if not len(journal):
        raise JournalError("cannot recover from an empty journal")

    snapshot_record = journal.latest_snapshot()
    queued: dict[int, dict] = {}
    handled: set[int] = set()
    inflight: dict[int, dict[int, dict]] = {}
    next_batch_id = 0
    plan_keys: tuple = ()
    twiddle_shapes: tuple = ()
    after_seq = -1
    if snapshot_record is not None:
        snapshot = ServerSnapshot.from_payload(snapshot_record.payload)
        for record in snapshot.queued:
            queued[int(record["request_id"])] = record
        handled.update(snapshot.handled_ids)
        next_batch_id = snapshot.next_batch_id
        plan_keys = snapshot.plan_keys
        twiddle_shapes = snapshot.twiddle_shapes
        after_seq = snapshot_record.seq

    replayed = 0
    for record in journal.tail(after_seq):
        replayed += 1
        payload = record.payload
        if record.kind == "admit":
            request = dict(payload["request"])
            queued[int(request["request_id"])] = request
        elif record.kind in ("reject", "shed"):
            request_id = int(payload["request_id"])
            handled.add(request_id)
            queued.pop(request_id, None)
        elif record.kind == "steal":
            # The request moved to another replica's queue (and was
            # journaled there as a fresh admit); it is no longer this
            # journal's responsibility but is NOT handled — the thief
            # finishes it.
            queued.pop(int(payload["request_id"]), None)
        elif record.kind == "dispatch":
            batch_id = int(payload["batch_id"])
            members: dict[int, dict] = {}
            for request_id in payload["request_ids"]:
                request_id = int(request_id)
                member = queued.pop(request_id, None)
                if member is None:
                    raise JournalError(
                        f"journal record {record.seq} dispatches "
                        f"request {request_id} that was never "
                        "admitted")
                members[request_id] = member
            inflight[batch_id] = members
            next_batch_id = max(next_batch_id, batch_id + 1)
        elif record.kind == "emit":
            request_id = int(payload["request_id"])
            handled.add(request_id)
            for members in inflight.values():
                members.pop(request_id, None)
        elif record.kind == "complete":
            batch_id = int(payload["batch_id"])
            leftovers = inflight.pop(batch_id, {})
            missing = sorted(set(leftovers) - handled)
            if missing:
                raise JournalError(
                    f"journal record {record.seq} completes batch "
                    f"{batch_id} but requests {missing} were never "
                    "emitted")
        elif record.kind == "recover":
            # An earlier incarnation already recovered here: it
            # moved every unemitted in-flight request back into its
            # queue, so the replay must do the same or a later
            # re-dispatch of those requests would look like a
            # dispatch of never-admitted work.
            for batch_id in sorted(inflight):
                for request_id, member in sorted(
                        inflight[batch_id].items()):
                    if request_id not in handled:
                        queued[request_id] = member
            inflight.clear()
        # "snapshot" cannot appear after the latest snapshot by
        # construction.

    orphans: dict[int, dict] = {}
    for batch_id in sorted(inflight):
        for request_id, record in sorted(inflight[batch_id].items()):
            if request_id not in handled:
                orphans[request_id] = record
    orphans.update(queued)
    requeue = tuple(
        ProofRequest.from_record(orphans[request_id])
        for request_id in sorted(orphans))

    last = journal.records[-1]
    return ResumeState(
        clock_s=last.t_s,
        crash_seq=last.seq,
        replayed_records=replayed,
        queued=requeue,
        handled_ids=frozenset(handled),
        next_batch_id=next_batch_id,
        plan_keys=plan_keys,
        twiddle_shapes=twiddle_shapes)


class RecoveryManager:
    """Restores a crashed server from its write-ahead journal.

    Parameters
    ----------
    journal:
        The surviving :class:`WriteAheadJournal` of the crashed run.
    server_factory:
        Zero-argument callable building a server configured exactly
        like the crashed one **and bound to the same journal** (the
        manager checks this; resuming onto a different journal would
        fork history).
    """

    def __init__(self, journal: WriteAheadJournal,
                 server_factory: Callable[[], object]) -> None:
        self.journal = journal
        self.server_factory = server_factory
        self.recoveries = 0
        self.last_server = None

    def resume_state(self) -> ResumeState:
        """Verify the journal, replay it, and classify every request.

        Delegates to :func:`replay_journal` — the same replay the
        fleet's journaled failover runs over a fenced replica's
        journal.
        """
        return replay_journal(self.journal)

    def recover(self, requests: list[ProofRequest]) -> ServeReport:
        """One recovery leg: build a fresh server and resume the run.

        May itself raise :class:`~repro.errors.ServerCrashError` if the
        fault plan holds further crash points; :func:`serve_durably`
        loops until the workload drains.
        """
        state = self.resume_state()
        server = self.server_factory()
        if getattr(server, "journal", None) is not self.journal:
            raise ServeError(
                "recovery server must share the crashed server's "
                "journal (pass the same WriteAheadJournal to the "
                "factory's ProofServer)")
        self.recoveries += 1
        self.last_server = server
        return server.serve(requests, resume=state)


def serve_durably(requests: list[ProofRequest],
                  server_factory: Callable[[], object], *,
                  max_recoveries: int = 16) -> RecoveryOutcome:
    """Serve a workload to completion across any number of crashes.

    Builds a server, serves, and on every
    :class:`~repro.errors.ServerCrashError` hands the surviving journal
    to a :class:`RecoveryManager` and resumes, until the run finishes
    or ``max_recoveries`` is exhausted.  Results emitted by crashed
    incarnations (what clients actually observed) are merged with the
    final leg's; the exactly-once invariant is re-checked on the merge.
    """
    server = server_factory()
    journal = getattr(server, "journal", None)
    if journal is None:
        raise ServeError(
            "serve_durably needs a journaled server; build the factory's "
            "ProofServer with journal=WriteAheadJournal()")
    manager = RecoveryManager(journal, server_factory)
    legs: list[ServeReport] = []
    results: list[RequestResult] = []
    try:
        report = server.serve(requests)
    except ServerCrashError as crash:
        while True:
            legs.append(crash.report)
            results.extend(crash.report.results)
            if manager.recoveries >= max_recoveries:
                raise ServeError(
                    f"gave up after {manager.recoveries} recoveries "
                    f"(last crash at journal seq {crash.crash_seq})"
                ) from crash
            try:
                report = manager.recover(requests)
                break
            except ServerCrashError as next_crash:
                crash = next_crash
        server = manager.last_server
    legs.append(report)
    results.extend(report.results)
    results.sort(key=lambda r: r.request.request_id)
    emitted = [r.request.request_id for r in results]
    duplicates = sorted({i for i in emitted if emitted.count(i) > 1})
    if duplicates:
        raise ServeError(
            f"exactly-once violated: requests {duplicates} were emitted "
            "by more than one server incarnation")
    return RecoveryOutcome(report=report, legs=legs, results=results,
                           recoveries=manager.recoveries, server=server)
