"""A simulated multi-GPU cluster with counted collectives.

The cluster owns the devices and implements the communication
primitives the distributed NTT engines use:

* :meth:`SimCluster.all_to_all` — personalized all-to-all (the transpose
  collective); the workhorse of both the baseline and UniNTT engines;
* :meth:`SimCluster.pairwise_exchange` — disjoint-pair exchange (one
  butterfly stage of a cross-GPU NTT);
* :meth:`SimCluster.gather_to` / :meth:`SimCluster.scatter_from` — used
  by the single-GPU engine (and by the end-to-end pipeline when a stage
  insists on one device).

Every primitive updates per-GPU counters and appends a trace event.
Reading data *without* charging (for verification) goes through
:meth:`SimCluster.peek_shards`.

Fault injection hooks into every collective: when an injector from
:mod:`repro.sim.faults` is installed, each collective is *gated* on it
(transient failures and device deaths raise before any bytes move, so
an aborted collective charges nothing) and in-flight messages pass
through its corruption hook.  With :attr:`SimCluster.checksum_exchanges`
enabled, every cross-device message is additionally covered by a seeded
random-linear-probe checksum computed on the sender's data and checked
against the delivered data — an injected corruption then surfaces as
:class:`~repro.errors.ShardCorruptionError` instead of silently wrong
output.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ShardCorruptionError, SimulationError
from repro.field.prime_field import PrimeField
from repro.hw.cost import field_limbs
from repro.sim.device import SimGPU
from repro.sim.trace import Trace, TraceEvent

__all__ = ["SimCluster"]


class SimCluster:
    """``gpu_count`` simulated GPUs over one interconnect fabric.

    ``node_size`` optionally groups GPUs into nodes of that many
    devices; collectives then attribute bytes that cross a node
    boundary to the "multi-node" trace level and bytes that stay inside
    a node to "multi-gpu", so hierarchy-aware engines can be audited
    per fabric.
    """

    def __init__(self, field: PrimeField, gpu_count: int,
                 node_size: int | None = None, *,
                 trace: Trace | None = None,
                 injector=None):
        if gpu_count < 1 or gpu_count & (gpu_count - 1):
            raise SimulationError(
                f"gpu_count must be a power of two, got {gpu_count}")
        if node_size is not None:
            if (node_size < 1 or node_size & (node_size - 1)
                    or gpu_count % node_size):
                raise SimulationError(
                    f"node_size {node_size} must be a power of two "
                    f"dividing gpu_count {gpu_count}")
        self.field = field
        self.gpu_count = gpu_count
        self.node_size = node_size
        self.element_bytes = field_limbs(field) * 8
        self.gpus = [SimGPU(i, field) for i in range(gpu_count)]
        self.trace = trace if trace is not None else Trace()
        self.injector = injector
        self.checksum_exchanges = False
        self.checksum_seed = 0
        self._collective_seq = 0
        self._precondition_cache: set[tuple] = set()
        self.precondition_hits = 0
        self.precondition_misses = 0

    def install_faults(self, injector) -> None:
        """Attach a :class:`repro.sim.faults.FaultInjector` to this run."""
        self.injector = injector

    # -- precondition memoization ---------------------------------------------

    def _precondition_cached(self, key: tuple) -> bool:
        """Whether one collective shape was already proven well-formed.

        The engines issue the same collective shapes thousands of times
        (every transform of a given size re-validates an identical
        partner map or outbox geometry).  Validation is pure in the
        shape, so a shape already proven well-formed is admitted without
        re-walking it; the hit/miss counters let tests pin that repeated
        identical shapes are checked exactly once.  Callers record a key
        via :meth:`_precondition_proven` only *after* validation passes,
        so a rejected shape is never cached.
        """
        if key in self._precondition_cache:
            self.precondition_hits += 1
            return True
        self.precondition_misses += 1
        return False

    def _precondition_proven(self, key: tuple) -> None:
        self._precondition_cache.add(key)

    # -- fault/verification plumbing ------------------------------------------

    def _gate(self, kind: str, detail: str) -> None:
        """Let the injector veto one collective before any bytes move."""
        self._collective_seq += 1
        if self.injector is not None:
            self.injector.on_collective_start(self, kind, detail)

    def _corrupt_inflight(self, gpu_id: int, values: list[int]) -> None:
        if self.injector is not None:
            self.injector.corrupt_inflight(self, gpu_id, values)

    def _finish(self, kind: str, total_bytes: int) -> None:
        if self.injector is not None:
            self.injector.on_collective_end(self, kind, total_bytes)

    def _probe_sum(self, key: tuple, values: Sequence[int]) -> int:
        """Seeded random-linear probe: sum of w_i * v_i mod p.

        The weights are drawn from ``random.Random(key)``; sender and
        receiver derive the same key, so any additive corruption of a
        single slot shifts the sum by ``w * delta != 0`` and is caught
        with certainty (weights are non-zero mod p).
        """
        rng = random.Random(repr((self.checksum_seed,) + key))
        p = self.field.modulus
        total = 0
        for v in values:
            total = (total + rng.randrange(1, p) * v) % p
        return total

    def _check_transfer(self, kind: str, src: int, dst: int,
                        original: Sequence[int],
                        delivered: Sequence[int]) -> None:
        """Compare sender/receiver probe sums for one message."""
        if not self.checksum_exchanges or src == dst:
            return
        key = (kind, self._collective_seq, src, dst)
        if self._probe_sum(key, original) != self._probe_sum(key, delivered):
            raise ShardCorruptionError(
                f"random-linear probe mismatch on {kind} message "
                f"{src}->{dst} (collective {self._collective_seq}): "
                "in-flight data was corrupted")

    def _record_verify(self, kind: str) -> None:
        if self.checksum_exchanges:
            self.trace.record(TraceEvent(
                kind="verify", level="resilience",
                detail=f"checksum:{kind}"))

    @property
    def node_count(self) -> int:
        """Number of nodes (1 when node structure is not modeled)."""
        if self.node_size is None:
            return 1
        return self.gpu_count // self.node_size

    def node_of(self, gpu_id: int) -> int:
        """The node a GPU belongs to (0 when unstructured)."""
        if self.node_size is None:
            return 0
        return gpu_id // self.node_size

    def __repr__(self) -> str:
        return (f"SimCluster({self.gpu_count}x GPU, field={self.field.name}, "
                f"{len(self.trace)} events)")

    # -- raw data access -------------------------------------------------------

    def load_shards(self, shards: Sequence[Sequence[int]]) -> None:
        """Install one shard per GPU (host staging; not counted)."""
        if len(shards) != self.gpu_count:
            raise SimulationError(
                f"expected {self.gpu_count} shards, got {len(shards)}")
        for gpu, shard in zip(self.gpus, shards):
            gpu.load(list(shard))

    def peek_shards(self) -> list[list[int]]:
        """Copy every shard without touching any counter."""
        return [list(gpu.shard) for gpu in self.gpus]

    def reset_counters(self) -> None:
        """Zero all device counters and drop the trace."""
        for gpu in self.gpus:
            gpu.reset_counters()
        self.trace.clear()

    # -- collectives ----------------------------------------------------------

    def all_to_all(self, outboxes: Sequence[Sequence[Sequence[int]]],
                   detail: str = "") -> list[list[list[int]]]:
        """Personalized all-to-all.

        ``outboxes[src][dst]`` is the message (list of field values) GPU
        ``src`` sends to GPU ``dst``.  Returns ``inboxes`` with
        ``inboxes[dst][src]`` the received message.  Self-messages move
        no bytes.
        """
        g = self.gpu_count
        shape_key = ("all-to-all", len(outboxes),
                     tuple(len(row) for row in outboxes))
        if not self._precondition_cached(shape_key):
            if len(outboxes) != g:
                raise SimulationError(
                    f"all_to_all needs a {g}x{g} outbox matrix, "
                    f"got {len(outboxes)} rows")
            for src, row in enumerate(outboxes):
                if len(row) != g:
                    raise SimulationError(
                        f"all_to_all: GPU {src} outbox has {len(row)} "
                        f"destinations, expected {g}")
            self._precondition_proven(shape_key)
        self._gate("all-to-all", detail)
        eb = self.element_bytes
        inboxes: list[list[list[int]]] = [[[] for _ in range(g)]
                                          for _ in range(g)]
        intra_sent = [0] * g
        inter_sent = [0] * g
        for src in range(g):
            for dst in range(g):
                message = list(outboxes[src][dst])
                self._corrupt_inflight(dst, message)
                self._check_transfer("all-to-all", src, dst,
                                     outboxes[src][dst], message)
                inboxes[dst][src] = message
        for src in range(g):
            for dst in range(g):
                if src != dst:
                    nbytes = len(inboxes[dst][src]) * eb
                    if self.node_of(src) == self.node_of(dst):
                        intra_sent[src] += nbytes
                    else:
                        inter_sent[src] += nbytes
                    self.gpus[dst].charge_receive(nbytes)
        for src in range(g):
            self.gpus[src].charge_send(intra_sent[src] + inter_sent[src])
        self.trace.record(TraceEvent(
            kind="all-to-all", level="multi-gpu",
            max_bytes_per_gpu=max(intra_sent), total_bytes=sum(intra_sent),
            detail=detail))
        if self.node_size is not None and sum(inter_sent):
            self.trace.record(TraceEvent(
                kind="all-to-all", level="multi-node",
                max_bytes_per_gpu=max(inter_sent),
                total_bytes=sum(inter_sent), detail=detail))
        self._record_verify("all-to-all")
        self._finish("all-to-all", sum(intra_sent) + sum(inter_sent))
        return inboxes

    def pairwise_exchange(self, partner_of: Sequence[int],
                          payloads: Sequence[Sequence[int]],
                          detail: str = "") -> list[list[int]]:
        """Disjoint-pair exchange: GPU i sends its payload to its partner.

        ``partner_of`` must be an involution (``partner_of[partner_of[i]]
        == i``); a GPU that is its own partner moves nothing.  Returns
        the payload each GPU received.
        """
        g = self.gpu_count
        if len(partner_of) != g:
            raise SimulationError(
                f"pairwise_exchange needs one partner per GPU: "
                f"got {len(partner_of)} partners for {g} GPUs")
        if len(payloads) != g:
            raise SimulationError(
                f"pairwise_exchange needs one payload per GPU: "
                f"got {len(payloads)} payloads for {g} GPUs")
        shape_key = ("pairwise", tuple(partner_of))
        if not self._precondition_cached(shape_key):
            for i, j in enumerate(partner_of):
                if not 0 <= j < g:
                    raise SimulationError(
                        f"pairwise_exchange: GPU {i} has partner {j}, "
                        f"outside 0..{g - 1}")
                if partner_of[j] != i:
                    raise SimulationError(
                        f"partner map is not an involution at GPU {i}")
            self._precondition_proven(shape_key)
        self._gate("pairwise", detail)
        eb = self.element_bytes
        received: list[list[int]] = [[] for _ in range(g)]
        intra = {"max": 0, "total": 0}
        inter = {"max": 0, "total": 0}
        for i, j in enumerate(partner_of):
            payload = list(payloads[i])
            self._corrupt_inflight(j, payload)
            self._check_transfer("pairwise", i, j, payloads[i], payload)
            received[j] = payload
        for i, j in enumerate(partner_of):
            if i != j:
                nbytes = len(received[j]) * eb
                self.gpus[i].charge_send(nbytes)
                self.gpus[j].charge_receive(nbytes)
                bucket = intra if self.node_of(i) == self.node_of(j) \
                    else inter
                bucket["max"] = max(bucket["max"], nbytes)
                bucket["total"] += nbytes
        self.trace.record(TraceEvent(
            kind="pairwise", level="multi-gpu",
            max_bytes_per_gpu=intra["max"], total_bytes=intra["total"],
            detail=detail))
        if self.node_size is not None and inter["total"]:
            self.trace.record(TraceEvent(
                kind="pairwise", level="multi-node",
                max_bytes_per_gpu=inter["max"], total_bytes=inter["total"],
                detail=detail))
        self._record_verify("pairwise")
        self._finish("pairwise", intra["total"] + inter["total"])
        return received

    def gather_to(self, root: int, detail: str = "") -> list[list[int]]:
        """Collect every shard on GPU ``root``; returns the shard list."""
        if not 0 <= root < self.gpu_count:
            raise SimulationError(
                f"gather_to: invalid root GPU {root} "
                f"(cluster has GPUs 0..{self.gpu_count - 1})")
        self._gate("gather", detail)
        eb = self.element_bytes
        shards = []
        for gpu in self.gpus:
            shard = list(gpu.shard)
            if gpu.gpu_id != root:
                self._corrupt_inflight(root, shard)
                self._check_transfer("gather", gpu.gpu_id, root,
                                     gpu.shard, shard)
            shards.append(shard)
        total = 0
        max_sent = 0
        for gpu, shard in zip(self.gpus, shards):
            if gpu.gpu_id != root:
                nbytes = len(shard) * eb
                gpu.charge_send(nbytes)
                self.gpus[root].charge_receive(nbytes)
                total += nbytes
                max_sent = max(max_sent, nbytes)
        self.trace.record(TraceEvent(
            kind="gather", level="multi-gpu",
            max_bytes_per_gpu=max_sent, total_bytes=total, detail=detail))
        self._record_verify("gather")
        self._finish("gather", total)
        return shards

    def scatter_from(self, root: int, shards: Sequence[Sequence[int]],
                     detail: str = "") -> None:
        """Distribute ``shards[i]`` to GPU ``i`` from GPU ``root``."""
        if not 0 <= root < self.gpu_count:
            raise SimulationError(
                f"scatter_from: invalid root GPU {root} "
                f"(cluster has GPUs 0..{self.gpu_count - 1})")
        if len(shards) != self.gpu_count:
            raise SimulationError(
                f"scatter_from: expected {self.gpu_count} shards, "
                f"got {len(shards)}")
        self._gate("scatter", detail)
        eb = self.element_bytes
        staged = []
        for gpu, shard in zip(self.gpus, shards):
            copy = list(shard)
            if gpu.gpu_id != root:
                self._corrupt_inflight(gpu.gpu_id, copy)
                self._check_transfer("scatter", root, gpu.gpu_id,
                                     shard, copy)
            staged.append(copy)
        sent = 0
        for gpu, shard in zip(self.gpus, staged):
            gpu.load(shard)
            if gpu.gpu_id != root:
                nbytes = len(shard) * eb
                gpu.charge_receive(nbytes)
                sent += nbytes
        self.gpus[root].charge_send(sent)
        self.trace.record(TraceEvent(
            kind="scatter", level="multi-gpu",
            max_bytes_per_gpu=sent, total_bytes=sent, detail=detail))
        self._record_verify("scatter")
        self._finish("scatter", sent)

    # -- local accounting shared by engines ---------------------------------------

    def charge_local(self, field_muls_per_gpu: int, mem_bytes_per_gpu: int,
                     detail: str = "") -> None:
        """Charge an identical local kernel on every GPU."""
        for gpu in self.gpus:
            gpu.charge_compute(field_muls_per_gpu, mem_bytes_per_gpu)
        self.trace.record(TraceEvent(
            kind="local-compute", level="gpu",
            total_bytes=mem_bytes_per_gpu * self.gpu_count,
            max_bytes_per_gpu=mem_bytes_per_gpu,
            field_muls=field_muls_per_gpu * self.gpu_count, detail=detail))

    # -- invariants -----------------------------------------------------------

    def validate_shards(self) -> None:
        """Check every shard holds canonical field values.

        Engines run this at phase boundaries in paranoid tests; a
        corrupted element (bit flip, wrong-field write, stale buffer)
        fails fast with the device and index named.
        """
        from repro.field.vector import validate_vector

        for gpu in self.gpus:
            try:
                validate_vector(self.field, gpu.shard)
            except Exception as error:
                raise SimulationError(
                    f"GPU {gpu.gpu_id} shard invalid: {error}") from error

    def corrupt(self, gpu_id: int, local_index: int, value: int) -> int:
        """Deliberately overwrite one shard slot (fault injection).

        Returns the previous value so tests can restore it.
        """
        if not 0 <= gpu_id < self.gpu_count:
            raise SimulationError(f"invalid gpu_id {gpu_id}")
        shard = self.gpus[gpu_id].shard
        if not 0 <= local_index < len(shard):
            raise SimulationError(
                f"GPU {gpu_id}: local index {local_index} out of range")
        previous = shard[local_index]
        shard[local_index] = value
        return previous

    def check_conservation(self) -> None:
        """Total bytes sent must equal total bytes received."""
        sent = sum(g.counters.bytes_sent for g in self.gpus)
        received = sum(g.counters.bytes_received for g in self.gpus)
        if sent != received:
            raise SimulationError(
                f"conservation violated: sent {sent} != received {received}")
