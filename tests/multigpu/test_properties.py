"""Hypothesis property tests over the distributed engines.

Randomized shapes (GPU count, size, data, engine, options) must always
reproduce the single-node transform — the suite's broadest net for
index-math mistakes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.field import TEST_FIELD_7681
from repro.multigpu import (
    BaselineFourStepEngine, CyclicLayout, DistributedVector,
    PairwiseExchangeEngine, SingleGpuEngine, UniNTTEngine, UniNTTOptions,
    collect, distribute,
)
from repro.ntt import ntt
from repro.sim import SimCluster

F = TEST_FIELD_7681

# GF(7681) supports sizes up to 512 (two-adicity 9).
shapes = st.tuples(
    st.sampled_from([2, 4, 8]),          # gpu count
    st.sampled_from([6, 7, 8, 9]),       # log2 size
).filter(lambda t: (1 << t[1]) >= t[0] * t[0] * 4)


@given(shape=shapes, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20)
def test_unintt_bit_exact_any_shape(shape, seed):
    import random

    g, log_n = shape
    n = 1 << log_n
    rng = random.Random(seed)
    values = F.random_vector(n, rng)
    cluster = SimCluster(F, g)
    engine = UniNTTEngine(cluster)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    out = engine.forward(vec)
    assert out.to_values() == ntt(F, values)
    assert engine.inverse(out).to_values() == values


@given(shape=shapes, seed=st.integers(min_value=0, max_value=2**16),
       engine_index=st.integers(min_value=0, max_value=2))
@settings(max_examples=15)
def test_all_engines_agree(shape, seed, engine_index):
    import random

    g, log_n = shape
    n = 1 << log_n
    rng = random.Random(seed)
    values = F.random_vector(n, rng)
    engine_cls = [SingleGpuEngine, BaselineFourStepEngine,
                  PairwiseExchangeEngine][engine_index]
    cluster = SimCluster(F, g)
    engine = engine_cls(cluster)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    assert engine.forward(vec).to_values() == ntt(F, values)


@given(seed=st.integers(min_value=0, max_value=2**16),
       flags=st.tuples(st.booleans(), st.booleans(), st.booleans(),
                       st.booleans()))
@settings(max_examples=15)
def test_options_never_change_results(seed, flags):
    import random

    rng = random.Random(seed)
    n, g = 256, 4
    values = F.random_vector(n, rng)
    options = UniNTTOptions(fused_twiddle=flags[0],
                            keep_permuted_output=flags[1],
                            overlap=flags[2], radix_fusion=flags[3])
    cluster = SimCluster(F, g)
    engine = UniNTTEngine(cluster, options=options)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    assert engine.forward(vec).to_values() == ntt(F, values)


@given(seed=st.integers(min_value=0, max_value=2**16),
       g=st.sampled_from([2, 4, 8]))
@settings(max_examples=20)
def test_distribute_collect_roundtrip_property(seed, g):
    import random

    rng = random.Random(seed)
    n = 64 * g
    values = F.random_vector(n, rng)
    layout = CyclicLayout(n=n, gpu_count=g)
    assert collect(distribute(values, layout), layout) == values
