"""Tests for the out-of-core streaming engine."""

import pytest

from repro.errors import SimulationError
from repro.field import BLS12_381_FR, GOLDILOCKS, TEST_FIELD_7681
from repro.hw import DGX_A100
from repro.multigpu import StreamingHostEngine, UniNTTEngine
from repro.ntt import four_step_ntt, ntt
from repro.sim import SimCluster

F = TEST_FIELD_7681


@pytest.fixture
def engine():
    return StreamingHostEngine(SimCluster(F, 4))


class TestCorrectness:
    @pytest.mark.parametrize("n", [4, 16, 64, 256, 512])
    def test_matches_reference(self, n, engine, rng):
        x = F.random_vector(n, rng)
        assert engine.forward(x) == ntt(F, x)

    @pytest.mark.parametrize("n", [16, 128])
    def test_roundtrip(self, n, engine, rng):
        x = F.random_vector(n, rng)
        assert engine.inverse(engine.forward(x)) == x

    def test_agrees_with_four_step(self, engine, rng):
        x = F.random_vector(256, rng)
        assert engine.forward(x) == four_step_ntt(F, x)

    def test_production_field(self, rng):
        engine = StreamingHostEngine(SimCluster(GOLDILOCKS, 4))
        x = GOLDILOCKS.random_vector(64, rng)
        assert engine.forward(x) == ntt(GOLDILOCKS, x)

    def test_size_validation(self, engine):
        with pytest.raises(SimulationError, match="power of two"):
            engine.forward([1, 2, 3])
        with pytest.raises(SimulationError, match=">= 4"):
            engine.forward([1, 2])

    def test_bandwidth_validation(self):
        with pytest.raises(SimulationError, match="h2d_bandwidth"):
            StreamingHostEngine(SimCluster(F, 2), h2d_bandwidth=0)


class TestAccounting:
    def test_host_traffic_is_four_passes(self, engine, rng):
        n = 256
        engine.forward(F.random_vector(n, rng))
        by_level = engine.cluster.trace.bytes_by_level()
        eb = engine.cluster.element_bytes
        assert by_level["host"] == 4 * n * eb

    def test_no_inter_gpu_collectives(self, engine, rng):
        """Host staging replaces GPU-to-GPU traffic entirely."""
        engine.forward(F.random_vector(64, rng))
        assert engine.cluster.trace.collective_count() == 0


class TestEstimates:
    def test_pcie_bound_at_scale(self):
        engine = StreamingHostEngine(SimCluster(BLS12_381_FR, 8))
        est = engine.estimate(DGX_A100, 1 << 28)
        assert est.dominant() == "pcie"
        assert est.total_s == pytest.approx(est.pcie_s)

    def test_streaming_slower_than_in_memory(self):
        """The host tax: when data fits, the in-memory engine wins."""
        n = 1 << 26
        cluster = SimCluster(BLS12_381_FR, 8)
        t_stream = StreamingHostEngine(cluster).estimate(
            DGX_A100, n).total_s
        t_memory = UniNTTEngine(cluster).estimate(DGX_A100, n).total_s
        assert t_stream > 2 * t_memory

    def test_more_gpus_add_bandwidth(self):
        n = 1 << 28
        t4 = StreamingHostEngine(SimCluster(BLS12_381_FR, 4)).estimate(
            DGX_A100.with_gpu_count(4), n).total_s
        t8 = StreamingHostEngine(SimCluster(BLS12_381_FR, 8)).estimate(
            DGX_A100, n).total_s
        assert t8 == pytest.approx(t4 / 2, rel=0.01)

    def test_host_bytes_reported(self):
        engine = StreamingHostEngine(SimCluster(BLS12_381_FR, 8))
        est = engine.estimate(DGX_A100, 1 << 20)
        assert est.host_bytes == 4 * (1 << 20) * 32
