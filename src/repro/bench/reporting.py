"""Table formatting and statistics for benchmark reports.

The benchmark harness emits plain-text tables (the shape of the paper's
tables and figure series) both to stdout and to
``benchmarks/results/<experiment>.txt`` so a run leaves a reviewable
artifact.
"""

from __future__ import annotations

import math
import os
from typing import Sequence

from repro.errors import BenchmarkError

__all__ = ["format_table", "geomean", "speedup_string", "write_report",
           "results_dir", "backend_stamp"]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Floats are shown with 3 significant decimals; everything else via
    ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3e}"
            return f"{value:.3f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise BenchmarkError(
                f"row {i} has {len(row)} cells for {len(headers)} headers")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    if not values:
        raise BenchmarkError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise BenchmarkError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_string(baseline_s: float, improved_s: float) -> str:
    """Human-readable 'N.NNx' speedup."""
    if improved_s <= 0:
        raise BenchmarkError("improved time must be positive")
    return f"{baseline_s / improved_s:.2f}x"


def backend_stamp() -> str:
    """One-line identity of the active field backend for reports.

    Numbers from the functional layer depend on which compute backend
    produced them, so the benchmark harness appends this line to every
    persisted report (reports without it predate the backend layer).
    """
    from repro.field.backend import get_backend

    return f"[field backend: {get_backend().describe()}]"


def results_dir() -> str:
    """The directory benchmark reports are written into."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_report(experiment_id: str, content: str) -> str:
    """Persist a report under benchmarks/results/; returns the path."""
    path = os.path.join(results_dir(), f"{experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
        if not content.endswith("\n"):
            handle.write("\n")
    return path
