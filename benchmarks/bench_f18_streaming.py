"""F18: out-of-core transforms — the host-staging tax and its scaling."""

from repro.field import BLS12_381_FR
from repro.hw import DGX_A100
from repro.multigpu import StreamingHostEngine, UniNTTEngine
from repro.sim import SimCluster


def test_f18_streaming(benchmark, emit):
    def run():
        headers = ["log2(n)", "host GB", "in-memory ms", "streaming ms",
                   "host tax", "streaming bottleneck"]
        rows = []
        cluster = SimCluster(BLS12_381_FR, 8)
        stream = StreamingHostEngine(cluster)
        memory = UniNTTEngine(cluster)
        for log_n in (24, 26, 28, 30):
            n = 1 << log_n
            est = stream.estimate(DGX_A100, n)
            t_mem = memory.estimate(DGX_A100, n).total_s
            rows.append([
                log_n, est.host_bytes / 2**30 / 4, t_mem * 1e3,
                est.total_s * 1e3, est.total_s / t_mem, est.dominant(),
            ])
        return headers, rows

    table = benchmark(run)
    emit("F18_streaming",
         "F18: out-of-core (host-staged) NTT vs in-memory "
         "(DGX-A100, BLS12-381-Fr)", table)
