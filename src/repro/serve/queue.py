"""Admission control and deadline-aware ordering for the serving queue.

The queue is the backpressure mechanism: it holds at most ``capacity``
requests, refuses the rest (the server prices every refusal — a real
front door does work to say no), and always surfaces work in
earliest-deadline-first order with priority and arrival as tie-breaks.
Batch extraction pulls the most urgent request plus every compatible
queued request (same field, size, and direction) up to the batch bound,
so urgency decides *what* runs and compatibility decides *how much*
rides along.
"""

from __future__ import annotations

from repro.errors import ServeError
from repro.serve.request import ProofRequest

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """A bounded queue ordered by deadline urgency."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServeError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: list[ProofRequest] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, request: ProofRequest) -> bool:
        """Admit ``request`` unless the queue is full; True if admitted."""
        if self.full:
            return False
        self._items.append(request)
        return True

    def restore(self, requests: list[ProofRequest]
                | tuple[ProofRequest, ...]) -> None:
        """Re-admit recovered requests, bypassing the capacity bound.

        Recovery must never drop work the crashed server already
        admitted (the journal proves it was accepted), so the bound may
        be exceeded transiently: at crash time the queue held at most
        ``capacity`` requests plus one in-flight batch, and no new
        arrival is admitted while :meth:`full`.
        """
        self._items.extend(requests)

    def snapshot_items(self) -> tuple[ProofRequest, ...]:
        """The queued requests in insertion order (for checkpoints)."""
        return tuple(self._items)

    def drop_worst(self, count: int) -> list[ProofRequest]:
        """Shed the ``count`` least-urgent requests; returns them.

        Victims are chosen from the back of the EDF order (no deadline,
        lowest priority, latest arrival first), so shedding never
        touches the request the server would dispatch next.
        """
        if count <= 0:
            return []
        victims = sorted(self._items, key=ProofRequest.urgency_key,
                         reverse=True)[:count]
        for victim in victims:
            self._items.remove(victim)
        return victims

    def peek_urgent(self) -> ProofRequest:
        """The request EDF ordering serves next (queue unchanged)."""
        if not self._items:
            raise ServeError("peek_urgent on an empty queue")
        return min(self._items, key=ProofRequest.urgency_key)

    def take_batch(self, max_requests: int,
                   batching: bool = True) -> list[ProofRequest]:
        """Remove and return the next dispatch group.

        The group is led by the most urgent request; with ``batching``
        enabled, up to ``max_requests - 1`` further requests sharing its
        shape key join it, themselves in urgency order.
        """
        if max_requests < 1:
            raise ServeError(
                f"max_requests must be >= 1, got {max_requests}")
        head = self.peek_urgent()
        if not batching or max_requests == 1:
            self._items.remove(head)
            return [head]
        key = head.shape_key()
        compatible = sorted(
            (r for r in self._items if r.shape_key() == key),
            key=ProofRequest.urgency_key)
        group = compatible[:max_requests]
        for request in group:
            self._items.remove(request)
        return group
