"""Resilient execution of distributed NTTs under injected faults.

:class:`ResilientNTTEngine` wraps any :class:`DistributedNTTEngine` and
turns the fault model of :mod:`repro.sim.faults` into the recovery
story a production multi-GPU deployment needs:

* **checkpoint** — before each transform the input vector is
  snapshotted to the host (:meth:`DistributedVector.checkpoint`), so
  any failed attempt can restart from identical data;
* **retry with backoff** — transient collective failures and detected
  shard corruption restore the checkpoint and re-run, up to
  :attr:`RetryPolicy.max_attempts` tries, with an exponential backoff
  priced in fabric latency units;
* **algebraic verification** — per-collective random-linear-probe
  checksums (enabled on the cluster) catch in-flight corruption with
  certainty, and an end-to-end probe re-derives randomly chosen
  spectral values from the checkpoint as defense in depth;
* **graceful degradation** — on hard device death the engine re-shards
  the checkpoint onto the largest power-of-two subset of surviving
  GPUs, rebuilds itself there via its factory, and completes the
  transform bit-exactly.

Every recovery action costs time, and that time is *reported*: each
executed leg's phase profile, plus checkpoint/restore/backoff/reshard/
verification overhead phases, accumulates in a
:class:`ResilienceReport` whose :meth:`ResilienceReport.plan_cost`
prices the whole fault-laden run on a machine model.  Aborted attempts
are charged their full leg profile (a deliberate upper bound: the
failure point within the leg is not modeled), so a faulty run is always
strictly more expensive than a clean one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field

from repro.errors import (
    DeviceLostError, ResilienceError, ShardCorruptionError,
    SimulationError, TransientCommError,
)
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostBreakdown, CostModel, Phase, Step
from repro.hw.model import MachineModel
from repro.hw.plancost import PlanCost
from repro.multigpu.base import (
    DistributedNTTEngine, DistributedVector, VectorCheckpoint,
)
from repro.multigpu.layout import Layout
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = ["RetryPolicy", "ResilienceReport", "ResilientNTTEngine"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry parameters for one resilient engine.

    Attributes
    ----------
    max_attempts:
        Total tries per transform (first attempt included).  Any
        recovery — retry or reshard — consumes one try; exhausting them
        raises :class:`~repro.errors.ResilienceError`.
    backoff_messages:
        Backoff before retry ``a`` is priced as
        ``backoff_messages * 2**(a-1)`` fabric latency units (the
        exponential-backoff schedule expressed in the cost model's
        message-latency currency).
    verify_probes:
        Number of random spectral indices the end-to-end output probe
        re-derives from the checkpoint (0 disables the probe).
    """

    max_attempts: int = 3
    backoff_messages: int = 4
    verify_probes: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_messages < 0 or self.verify_probes < 0:
            raise SimulationError(
                "backoff_messages and verify_probes must be >= 0")

    def backoff_units(self, attempt: int) -> int:
        """Latency units charged before retry number ``attempt``."""
        return self.backoff_messages * (2 ** (attempt - 1))


@dataclass
class ResilienceReport:
    """Accumulated cost and event counts of a resilient run.

    ``steps`` holds every executed leg's phase profile (successful and
    aborted) plus the overhead phases; pricing them in order gives the
    modeled wall time of the whole fault-laden run.
    """

    field: PrimeField
    steps: list[Step] = dataclass_field(default_factory=list)
    transforms: int = 0
    retries: int = 0
    reshards: int = 0
    checkpoints: int = 0
    verifications: int = 0
    wasted_attempts: int = 0
    gpu_counts: list[int] = dataclass_field(default_factory=list)

    def add(self, *steps: Step) -> None:
        self.steps.extend(steps)

    def breakdown(self, machine: MachineModel) -> CostBreakdown:
        """Price the accumulated phases on ``machine``."""
        return CostModel(machine, self.field).estimate(self.steps)

    def plan_cost(self, machine: MachineModel) -> PlanCost:
        """The run's cost in :class:`PlanCost` form (validates clean).

        Exchange time is whatever the breakdown attributes to fabric
        transfers; everything else (compute and memory, including the
        pipelined overlap) is folded into ``compute_s`` so the
        ``total = compute + exchange`` invariant holds exactly.
        """
        b = self.breakdown(machine)
        levels = {}
        if b.exchange_s:
            levels["multi-gpu"] = b.exchange_s
        return PlanCost(
            total_s=b.total_s,
            compute_s=b.total_s - b.exchange_s,
            exchange_s_by_level=levels,
            exchange_bytes_by_level=dict(b.exchange_bytes_by_level))

    def summary(self) -> dict[str, int]:
        """Sorted-key event counts for reports and tests."""
        return {
            "checkpoints": self.checkpoints,
            "reshards": self.reshards,
            "retries": self.retries,
            "transforms": self.transforms,
            "verifications": self.verifications,
            "wasted_attempts": self.wasted_attempts,
        }


class ResilientNTTEngine:
    """Fault-tolerant wrapper around a distributed NTT engine.

    ``engine_factory`` builds the wrapped engine for a given cluster —
    it is called once up front and again after every reshard, so the
    same decomposition options carry over to the degraded shape::

        engine = ResilientNTTEngine(
            cluster, lambda c: UniNTTEngine(c, tile=1024))

    The wrapper exposes the engine interface pieces the pipeline layer
    uses (``cluster``/``field``/``gpu_count``/``tile``, the layout
    queries, ``forward``/``inverse``), so it drops into
    :class:`~repro.multigpu.polynomial.DistributedPolynomial` unchanged.
    """

    name = "resilient"

    def __init__(self, cluster: SimCluster, engine_factory,
                 policy: RetryPolicy | None = None,
                 verify_exchanges: bool = True,
                 verify_output: bool = True,
                 seed: int = 0):
        self.engine_factory = engine_factory
        self.engine = engine_factory(cluster)
        if not isinstance(self.engine, DistributedNTTEngine):
            raise SimulationError(
                "engine_factory must build a DistributedNTTEngine, got "
                f"{type(self.engine).__name__}")
        if self.engine.cluster is not cluster:
            raise SimulationError(
                "engine_factory must bind the engine to the cluster it "
                "is given")
        self.policy = policy if policy is not None else RetryPolicy()
        self.verify_exchanges = verify_exchanges
        self.verify_output = verify_output
        self.seed = seed
        cluster.checksum_exchanges = verify_exchanges
        cluster.checksum_seed = seed
        self.report = ResilienceReport(field=cluster.field)
        self.report.gpu_counts.append(cluster.gpu_count)
        self._transform_index = 0
        self.name = f"resilient[{self.engine.name}]"

    # -- engine interface delegation -----------------------------------------

    @property
    def cluster(self) -> SimCluster:
        return self.engine.cluster

    @property
    def field(self) -> PrimeField:
        return self.engine.field

    @property
    def gpu_count(self) -> int:
        return self.engine.gpu_count

    @property
    def tile(self) -> int:
        return self.engine.tile

    def input_layout(self, n: int) -> Layout:
        return self.engine.input_layout(n)

    def output_layout(self, n: int) -> Layout:
        return self.engine.output_layout(n)

    def estimate(self, machine: MachineModel, n: int,
                 inverse: bool = False) -> CostBreakdown:
        return self.engine.estimate(machine, n, inverse=inverse)

    def forward(self, vec: DistributedVector,
                coset_shift: int | None = None) -> DistributedVector:
        return self._run(False, vec, coset_shift)

    def inverse(self, vec: DistributedVector,
                coset_shift: int | None = None) -> DistributedVector:
        return self._run(True, vec, coset_shift)

    # -- the recovery loop ---------------------------------------------------

    def _run(self, inverse: bool, vec: DistributedVector,
             coset_shift: int | None) -> DistributedVector:
        n = vec.n
        direction = "inverse" if inverse else "forward"
        self._transform_index += 1
        self.report.transforms += 1
        ckpt = self._checkpoint(vec, n)
        attempt = 0
        while True:
            attempt += 1
            try:
                out = self._invoke(inverse, vec, coset_shift)
                if self.verify_output and self.policy.verify_probes:
                    self._probe(ckpt, out, inverse, coset_shift, n)
                break
            except (TransientCommError, ShardCorruptionError) as error:
                self._waste(inverse, n)
                if attempt >= self.policy.max_attempts:
                    raise ResilienceError(
                        f"{direction} transform failed after {attempt} "
                        f"attempt(s): {error}") from error
                self._retry(attempt, n, error)
                vec = self._restore(ckpt, inverse, n)
            except DeviceLostError as error:
                self._waste(inverse, n)
                if attempt >= self.policy.max_attempts:
                    raise ResilienceError(
                        f"{direction} transform lost a device and had no "
                        f"attempts left: {error}") from error
                self._reshard(n, error)
                vec = self._restore(ckpt, inverse, n)
        self.report.add(*self._leg_steps(inverse, n))
        return out

    def _invoke(self, inverse: bool, vec: DistributedVector,
                coset_shift: int | None) -> DistributedVector:
        method = self.engine.inverse if inverse else self.engine.forward
        if coset_shift is None:
            return method(vec)
        return method(vec, coset_shift=coset_shift)

    # -- checkpoint / restore ------------------------------------------------

    def _shard_bytes(self, n: int) -> int:
        return (n // self.gpu_count) * self.cluster.element_bytes

    def _checkpoint(self, vec: DistributedVector,
                    n: int) -> VectorCheckpoint:
        ckpt = vec.checkpoint()
        self.report.checkpoints += 1
        self.report.add(Phase(name="resilience-checkpoint",
                              mem_bytes=self._shard_bytes(n)))
        return ckpt

    def _restore(self, ckpt: VectorCheckpoint, inverse: bool,
                 n: int) -> DistributedVector:
        layout = self.output_layout(n) if inverse else self.input_layout(n)
        return DistributedVector.restore(self.cluster, ckpt, layout)

    # -- recovery actions ----------------------------------------------------

    def _waste(self, inverse: bool, n: int) -> None:
        """Charge one aborted attempt (full leg profile, upper bound)."""
        self.report.wasted_attempts += 1
        self.report.add(*self._leg_steps(inverse, n))

    def _retry(self, attempt: int, n: int, error: Exception) -> None:
        self.report.retries += 1
        units = self.policy.backoff_units(attempt)
        self.cluster.trace.record(TraceEvent(
            kind="retry", level="resilience",
            detail=(f"attempt={attempt} backoff={units} "
                    f"cause={type(error).__name__}")))
        self.report.add(
            Phase(name="resilience-backoff", messages=units),
            Phase(name="resilience-restore",
                  mem_bytes=self._shard_bytes(n)))

    def _reshard(self, n: int, error: Exception) -> None:
        cluster = self.cluster
        injector = cluster.injector
        if injector is None:
            raise ResilienceError(
                f"device lost but no fault injector installed: "
                f"{error}") from error
        survivors = injector.surviving_gpus(cluster.gpu_count)
        if not survivors:
            raise ResilienceError(
                "every GPU died; nothing to re-shard onto") from error
        new_g = 1 << (len(survivors).bit_length() - 1)
        old_g = cluster.gpu_count
        new_cluster = SimCluster(cluster.field, new_g,
                                 trace=cluster.trace, injector=injector)
        new_cluster.checksum_exchanges = cluster.checksum_exchanges
        new_cluster.checksum_seed = cluster.checksum_seed
        injector.acknowledge_deaths()
        self.engine = self.engine_factory(new_cluster)
        self.name = f"resilient[{self.engine.name}]"
        eb = new_cluster.element_bytes
        new_cluster.trace.record(TraceEvent(
            kind="reshard", level="resilience",
            max_bytes_per_gpu=(n // new_g) * eb, total_bytes=n * eb,
            detail=f"gpus {old_g}->{new_g} after "
                   f"{type(error).__name__}"))
        self.report.reshards += 1
        self.report.gpu_counts.append(new_g)
        self.report.add(Phase(name="resilience-reshard",
                              exchange_bytes=(n // new_g) * eb,
                              messages=old_g))

    # -- verification --------------------------------------------------------

    def _probe(self, ckpt: VectorCheckpoint, out: DistributedVector,
               inverse: bool, coset_shift: int | None, n: int) -> None:
        """Re-derive random spectral values straight from the checkpoint.

        Both directions check the same identity
        ``Y[k] == sum_j x[j] * (shift * w^k)^j``: forward has ``x`` in
        the checkpoint and ``Y`` in the output, inverse the other way
        around.  A wrong output fails a probe with probability
        ``1 - 1/n`` per probe even if the exchange checksums were
        bypassed.
        """
        fld = self.field
        p = fld.modulus
        root = fld.root_of_unity(n)
        shift = 1 if coset_shift is None else coset_shift % p
        if inverse:
            coeffs, spectrum = out.to_values(), list(ckpt.values)
        else:
            coeffs, spectrum = list(ckpt.values), out.to_values()
        rng = random.Random(
            repr((self.seed, "probe", self._transform_index)))
        self.report.verifications += 1
        self.cluster.trace.record(TraceEvent(
            kind="verify", level="resilience",
            detail=f"output-probe x{self.policy.verify_probes}"))
        muls = 0
        for _ in range(self.policy.verify_probes):
            k = rng.randrange(n)
            factor = (shift * pow(root, k, p)) % p
            acc = 0
            term = 1
            for x in coeffs:
                acc = (acc + x * term) % p
                term = (term * factor) % p
            muls += 2 * n
            if acc != spectrum[k] % p:
                raise ShardCorruptionError(
                    f"output probe failed at spectral index {k}: "
                    f"expected {acc}, found {spectrum[k]}")
        self.report.add(Phase(name="resilience-verify", field_muls=muls))

    # -- pricing helpers -----------------------------------------------------

    def _leg_steps(self, inverse: bool, n: int) -> list[Step]:
        """One attempt's phase profile plus any degradation penalty."""
        profile = self.engine.inverse_profile(n) if inverse \
            else self.engine.forward_profile(n)
        steps: list[Step] = list(profile)
        injector = self.cluster.injector
        if injector is not None:
            penalty = injector.drain_penalty_bytes()
            if penalty:
                steps.append(Phase(
                    name="degraded-fabric",
                    exchange_bytes=max(penalty // self.gpu_count, 1)))
        return steps
