"""Merkle trees over field-element vectors.

Hash-based proof systems (STARKs, and the FRI protocol in
:mod:`repro.zkp.fri`) commit to evaluation vectors with Merkle roots and
open individual positions with authentication paths.  SHA-256 stands in
for the sponge/algebraic hashes production systems use — the tree
structure, path logic, and soundness-relevant domain separation are the
same.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProverError

__all__ = ["MerkleTree", "MerklePath", "hash_leaf", "hash_nodes"]

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"


def hash_leaf(value: int) -> bytes:
    """Domain-separated leaf hash of a field element."""
    data = value.to_bytes((max(value.bit_length(), 1) + 7) // 8, "big")
    return hashlib.sha256(_LEAF_TAG + data).digest()


def hash_nodes(left: bytes, right: bytes) -> bytes:
    """Domain-separated internal-node hash."""
    return hashlib.sha256(_NODE_TAG + left + right).digest()


@dataclass(frozen=True)
class MerklePath:
    """An authentication path for one leaf position."""

    index: int
    leaf: int
    siblings: tuple[bytes, ...]

    def root(self) -> bytes:
        """Recompute the root this path authenticates against."""
        node = hash_leaf(self.leaf)
        index = self.index
        for sibling in self.siblings:
            if index & 1:
                node = hash_nodes(sibling, node)
            else:
                node = hash_nodes(node, sibling)
            index >>= 1
        return node


class MerkleTree:
    """A complete binary Merkle tree over a power-of-two leaf vector."""

    def __init__(self, leaves: Sequence[int]):
        count = len(leaves)
        if count == 0 or count & (count - 1):
            raise ProverError(
                f"Merkle tree needs a power-of-two leaf count, got {count}")
        self.leaves = list(leaves)
        # levels[0] = hashed leaves, levels[-1] = [root].
        levels = [[hash_leaf(v) for v in leaves]]
        while len(levels[-1]) > 1:
            prev = levels[-1]
            levels.append([hash_nodes(prev[i], prev[i + 1])
                           for i in range(0, len(prev), 2)])
        self._levels = levels

    def __len__(self) -> int:
        return len(self.leaves)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def depth(self) -> int:
        return len(self._levels) - 1

    def open(self, index: int) -> MerklePath:
        """Authentication path for one position."""
        if not 0 <= index < len(self.leaves):
            raise ProverError(
                f"leaf index {index} out of range [0, {len(self.leaves)})")
        siblings = []
        i = index
        for level in self._levels[:-1]:
            siblings.append(level[i ^ 1])
            i >>= 1
        return MerklePath(index=index, leaf=self.leaves[index],
                          siblings=tuple(siblings))

    @staticmethod
    def verify(root: bytes, path: MerklePath) -> bool:
        """Check a path against a claimed root."""
        return path.root() == root
