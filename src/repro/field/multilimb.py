"""Multi-limb vectorized backend for fields wider than 64 bits.

``NumPyBackend`` vectorizes every modulus below 2^64 but runs BN254-Fr
and BLS12-381-Fr (254/255 bits) with the pure-Python fallback — exactly
the fields the source paper's ZKP workloads care about.  This module
closes that gap: an element of a big field is split into sub-32-bit
limbs spread across ``uint64`` *limb planes* (shape ``(L, n)``, element
axis last), and all arithmetic runs as whole-plane numpy ufuncs:

* multiplication is lazy-carry CIOS Montgomery multiplication over the
  limb planes (the per-field schedule — limb width, limb count, ``n'``,
  carry headroom — comes from :mod:`repro.field.limbgen`, and the
  inner loop is the unrolled source that module emits);
* the NTT runs a DIT Stockham schedule directly on the packed planes
  with *semi-lazy* butterflies: values grow by ``2p`` per stage
  (``B_s = (2s+1)p < R``) and are reduced exactly once at the end by a
  two-limb Barrett step plus two conditional subtractions;
* data stays in the raw residue domain — only the twiddle tables are
  premultiplied by ``R`` (``montmul(x, tw*R) = x*tw``), so transforms
  pay no Montgomery domain entry/exit.

The backend is opt-in (``set_backend("multilimb")`` or
``REPRO_BACKEND=multilimb``); ``auto`` still resolves to ``numpy``.
For moduli below 64 bits it behaves exactly like ``NumPyBackend``.
See ``docs/FIELDS.md`` for the limb layout and a worked CIOS example.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import FieldError
from repro.field.backend import NumPyBackend
from repro.field.limbgen import LimbSchedule, compile_montmul, generate_schedule

__all__ = ["MultiLimbBackend"]


class _MultiLimbKernel:
    """Limb-plane arithmetic for one modulus p >= 2^64.

    Mirrors the duck-typed interface of ``backend._Kernel`` (pack,
    unpack, add/sub/neg/mul/mul_scalar plus the lane-shape hooks) but
    over ``(L, n)`` limb-plane arrays instead of 1-D uint64 lanes.
    All public ops take and return *canonical* packed arrays: limbs
    < 2^k, value < p.  Laziness is internal to the NTT core.
    """

    def __init__(self, p: int):
        import numpy as np

        self.np = np
        self.p = p
        self.schedule: LimbSchedule = generate_schedule(p)
        s = self.schedule
        k, L = s.limb_bits, s.limbs
        self.k, self.L, self.W = k, L, s.words
        self.mask = np.uint64(s.mask)
        self.sh = np.uint64(k)
        self.m64 = np.int64(s.mask)
        self.sh64 = np.int64(k)
        self.p_col = np.array([[limb] for limb in s.p_limbs],
                              dtype=np.uint64)
        self.twop_col = np.array(
            [[(2 * p >> (k * i)) & s.mask] for i in range(L)],
            dtype=np.uint64)
        self.twop_i64 = tuple(np.int64(int(v[0])) for v in self.twop_col)
        self.r2_col = self._column(s.r2)
        # Barrett exit: the top two limbs of x against the top chunk of
        # p.  With s = k(L-2) and p_top = p >> s, the estimate
        # q = (x >> s) // (p_top + 1) satisfies q*p <= x (q never
        # overshoots: floor(x/2^s)/(p_top+1) * p <= x because
        # p < (p_top+1) 2^s) and
        #   x - q*p < x/(p_top+1) + p(1 + 1/(p_top+1)) < 2p
        # for any x < R, since p_top has ~50 bits and x/(p_top+1) is
        # then ~2^211 << p.  One conditional subtraction lands
        # canonical.
        self.p_top1 = np.uint64((p >> (k * (L - 2))) + 1)
        self._montmul = compile_montmul(s)
        self._scratch_n = -1
        self._scratch: dict[str, Any] = {}
        self._stage_tables: dict = {}

    # -- scratch and helpers -------------------------------------------------

    def _column(self, v: int):
        """A canonical ``(L, 1)`` limb column for one value in [0, p)."""
        np, k = self.np, self.k
        return np.array([[(v >> (k * i)) & self.schedule.mask]
                         for i in range(self.L)], dtype=np.uint64)

    def scratch(self, n: int) -> dict:
        """Persistent CIOS scratch for lane count n (reallocated on change)."""
        if self._scratch_n != n:
            np, L = self.np, self.L
            self._scratch = dict(
                t=np.zeros((2 * L + 2, n), dtype=np.uint64),
                prod=np.empty((L, n), dtype=np.uint64),
                m=np.empty(n, dtype=np.uint64),
                b=np.empty((L, n), dtype=np.uint64),
                c0=np.empty(n, dtype=np.int64),
                c1=np.empty(n, dtype=np.int64),
            )
            self._scratch_n = n
        return self._scratch

    def montmul_lazy(self, a, b, sc):
        """CIOS montmul: a lazy-normed limbs, b canonical (a table).

        Returns the scratch view ``t[L:2L]``: value < 2p, lazy limbs.
        The view is only valid until the next call on the same scratch.
        """
        return self._montmul(self.np, self.p_col, a, b,
                             sc["t"], sc["prod"], sc["m"])

    def norm_seq(self, s) -> None:
        """Sequential unsigned carry chain -> canonical limbs (< R).

        This is the only unsigned normalization offered: a single
        *vectorized* carry pass looks tempting between montmuls, but
        it leaves limbs as large as ``2^k + (max limb >> k)`` —
        ~``2^34`` after a lazy montmul — and feeding those back into
        the CIOS accumulator overflows uint64 (the accumulator peaks
        within a bit of ``2^64`` even with canonical inputs).  The
        sequential chain restores ``< 2^k`` limbs for the same number
        of memory touches.
        """
        for j in range(self.L - 1):
            s[j + 1] += s[j] >> self.sh
            s[j] &= self.mask

    def norm_seq_signed(self, s) -> None:
        """Sequential signed carry chain (int64 view) -> canonical limbs.

        Needed whenever individual limbs may have gone negative (the
        ``a + 2p - b`` path): a vectorized pass would misinterpret the
        wrapped uint64 values.
        """
        sv = s.view(self.np.int64)
        for j in range(self.L - 1):
            sv[j + 1] += sv[j] >> self.sh64
            sv[j] &= self.m64

    def butterfly_stage(self, a, u, y0, y1, c0, c1) -> None:
        """Fused butterfly + folding carry chain for one DIT stage.

        Writes ``y0 = a + u`` and ``y1 = a - u + 2p`` limb-row by
        limb-row: the subtraction wraps below zero limb-wise (the
        uint64 bit patterns are the right two's-complement values),
        the canonical limbs of ``2p`` fold into the carry chain, and
        both halves' carries propagate in the same pass — each output
        row is produced and re-canonicalized while still cache-hot
        instead of being written by the butterfly and re-read by a
        separate normalization sweep.  Both halves finish with
        canonical limbs (< ``2^k``), ready for the next stage's
        montmul, and each value grows by at most ``2p``.  ``c0``/``c1``
        are per-half carry scratch shaped like one limb row.
        """
        np, L = self.np, self.L
        tw, sh64, m64 = self.twop_i64, self.sh64, self.m64
        v0 = y0.view(np.int64)
        v1 = y1.view(np.int64)
        for j in range(L):
            np.add(a[j], u[j], out=y0[j])
            np.subtract(a[j], u[j], out=y1[j])
            r0, r1 = v0[j], v1[j]
            r1 += tw[j]
            if j:
                r0 += c0
                r1 += c1
            if j < L - 1:
                np.right_shift(r0, sh64, out=c0)
                r0 &= m64
                np.right_shift(r1, sh64, out=c1)
                r1 &= m64

    def _cond_sub(self, u, work=None):
        """One conditional subtract of p: canonical limbs in and out.

        Computes ``u - p`` limb-wise (two's-complement wraparound),
        re-canonicalizes with a signed chain, and keeps the subtracted
        lanes whose value stayed non-negative.  Returns a fresh array
        (``np.where``), so callers may hand back scratch views safely.
        ``work`` optionally donates the difference buffer.
        """
        np, L = self.np, self.L
        if work is not None:
            d = work[:L]
        else:
            d = np.empty((L, u.shape[-1]), dtype=np.uint64)
        np.subtract(u[:L], self.p_col, out=d)
        dv = d.view(np.int64)
        for j in range(L - 1):
            dv[j + 1] += dv[j] >> self.sh64
            dv[j] &= self.m64
        return np.where(dv[L - 1] >= 0, d, u[:L])

    def reduce_canonical(self, arr, work=None):
        """Canonical limbs, any value < R -> canonical value < p.

        Barrett estimate from the top two limbs, one signed carry
        chain, one conditional subtraction (see ``p_top1`` above for
        why one always suffices).  In place on ``arr``; returns a
        fresh array.  ``work``, if given, is an equally-shaped scratch
        buffer that spares an allocation for the ``q*p`` product.
        """
        np, L = self.np, self.L
        x_hi = (arr[L - 1] << self.sh) | arr[L - 2]
        q = x_hi // self.p_top1
        if work is not None:
            np.multiply(self.p_col, q, out=work[:L])
            arr -= work[:L]
        else:
            arr -= self.p_col * q
        self.norm_seq_signed(arr)
        return self._cond_sub(arr, work=work)

    # -- pack / unpack -------------------------------------------------------

    def pack(self, values: Sequence[int]):
        """Pack ints into canonical ``(L, n)`` limb planes; None if not.

        The fast path serializes each value with ``int.to_bytes`` and
        slices limbs out of the little-endian words wholesale.  Values
        outside ``[0, 2^(64W))`` cannot serialize (``OverflowError``)
        and values at or above ``R`` would silently truncate, so both
        return ``None`` — the caller retries with ``[v % p, ...]``,
        matching the uint64 kernels' fallback protocol.  Values in
        ``[p, R)`` are accepted and Barrett-reduced vectorized.
        """
        np, k, L, W = self.np, self.k, self.L, self.W
        step = W * 8
        try:
            buf = b"".join(v.to_bytes(step, "little") for v in values)
        except (OverflowError, AttributeError, TypeError):
            return None
        n = len(buf) // step
        words = np.frombuffer(buf, dtype="<u8").reshape(n, W)
        spare = 64 * W - k * L  # bits above R in the serialized words
        if spare and n and bool((words[:, W - 1] >> np.uint64(
                64 - spare)).any()):
            return None  # >= R: limb extraction would truncate
        out = np.empty((L, n), dtype=np.uint64)
        for j in range(L):
            bit = k * j
            w, off = bit >> 6, bit & 63
            limb = words[:, w] >> np.uint64(off)
            if off + k > 64 and w + 1 < W:
                limb = limb | (words[:, w + 1] << np.uint64(64 - off))
            out[j] = limb & self.mask
        if n and self._any_ge_p(out):
            out = self.reduce_canonical(out)
        return out

    def _any_ge_p(self, arr) -> bool:
        """Vectorized lexicographic test: does any column reach p?"""
        np = self.np
        undecided = np.ones(arr.shape[-1], dtype=bool)
        ge = np.zeros(arr.shape[-1], dtype=bool)
        for j in range(self.L - 1, -1, -1):
            limb = self.p_col[j, 0]
            ge |= undecided & (arr[j] > limb)
            undecided &= arr[j] == limb
        ge |= undecided  # exactly equal to p
        return bool(ge.any())

    def unpack(self, arr) -> list[int]:
        """Canonical packed ``(L, n)`` (value < p) -> list of ints."""
        np, k, L, W = self.np, self.k, self.L, self.W
        n = arr.shape[-1]
        words = np.zeros((n, W), dtype=np.uint64)
        for j in range(L):
            bit = k * j
            w, off = bit >> 6, bit & 63
            words[:, w] |= arr[j] << np.uint64(off)
            if off + k > 64 and w + 1 < W:
                words[:, w + 1] |= arr[j] >> np.uint64(64 - off)
        buf = words.tobytes()
        step = W * 8
        mv = memoryview(buf)
        return [int.from_bytes(mv[i:i + step], "little")
                for i in range(0, len(buf), step)]

    # -- lane-shape hooks (see backend._Kernel) ------------------------------

    def lanes(self, arr) -> int:
        return arr.shape[-1]

    def zero_mask(self, arr):
        return ~arr.any(axis=0)

    def lane_int(self, arr, i: int) -> int:
        k = self.k
        return sum(int(arr[j, i]) << (k * j) for j in range(self.L))

    # -- canonical element-wise ops ------------------------------------------

    def add(self, a, b):
        s = a + b
        self.norm_seq(s)
        return self._cond_sub(s)

    def sub(self, a, b):
        s = a + self.p_col - b  # per-limb wrap: signed chain repairs it
        self.norm_seq_signed(s)
        return self._cond_sub(s)

    def neg(self, a):
        s = self.p_col - a
        self.norm_seq_signed(s)
        return self._cond_sub(s)  # a == 0 lands on p, subtracted to 0

    def mul(self, a, b):
        sc = self.scratch(a.shape[-1] if a.shape[-1] >= b.shape[-1]
                          else b.shape[-1])
        a_mont = self.montmul_lazy(a, self.r2_col, sc).copy()
        self.norm_seq(a_mont)  # montmul(a, R^2) = a*R, canonical limbs
        out = self.montmul_lazy(a_mont, b, sc)
        self.norm_seq(out)
        return self._cond_sub(out)

    def mul_scalar(self, a, s: int):
        # One montmul against s*R mod p: montmul(a, s*R) = a*s.
        s_col = self._column(s * self.schedule.r % self.p)
        sc = self.scratch(a.shape[-1])
        out = self.montmul_lazy(a, s_col, sc)
        self.norm_seq(out)
        return self._cond_sub(out)

    # -- NTT core ------------------------------------------------------------

    def pack_table(self, values: Sequence[int]):
        """Pack a twiddle table into Montgomery form: tw*R mod p, canonical.

        Vectorized domain entry: pack raw, then one montmul against
        R^2 (``montmul(tw, R^2) = tw*R``).
        """
        raw = self.pack(values)
        if raw is None:
            raw = self.pack([v % self.p for v in values])
        sc = self.scratch(raw.shape[-1])
        out = self.montmul_lazy(raw, self.r2_col, sc)
        self.norm_seq(out)
        return self._cond_sub(out)

    def _stage_tables_for(self, table, n: int) -> list:
        """Per-stage sliced+repeated twiddle views for an n-point DIT run.

        Keyed by the table's identity (a strong reference is kept, so
        ``id`` stays valid); bounded to a few transform shapes.
        """
        key = (id(table), n)
        tabs = self._stage_tables.get(key)
        if tabs is None:
            np = self.np
            half_n = n // 2
            tabs = [table]  # strong ref pins id(table)
            stride, m = half_n, 1
            while stride >= 1:
                half = m
                step = half_n // half
                if half == 1:
                    tabs.append(None)  # first stage: tw == 1
                else:
                    tw = table[:, ::step][:, :half]
                    if stride > 1:
                        tw = np.repeat(tw, stride, axis=-1)
                    tabs.append(np.ascontiguousarray(tw))
                m *= 2
                stride //= 2
            if len(self._stage_tables) >= 4:
                self._stage_tables.pop(next(iter(self._stage_tables)))
            self._stage_tables[key] = tabs
        return tabs[1:]

    def ntt_core(self, values, table):
        """Forward DIT Stockham NTT on packed planes; canonical result.

        ``values``: canonical packed ``(L, n)``; ``table``: the first
        ``n/2`` twiddle powers in Montgomery form (``pack_table``).
        Input is never mutated.  Butterflies run semi-lazily — each
        stage writes ``a + u`` and ``a - u + 2p`` with the carry chain
        fused into the same limb-row pass (``butterfly_stage``), so
        limbs leave every stage canonical and the CIOS accumulator
        stays clear of uint64 overflow, while the *value* bound grows
        to (2s+1)p over s stages, reduced once by the Barrett exit.
        """
        np, L = self.np, self.L
        n = values.shape[-1]
        stages = n.bit_length() - 1
        if stages > self.schedule.max_lazy_stages:
            raise FieldError(
                f"{n}-point transform exceeds the lazy-carry bound "
                f"(2^{self.schedule.max_lazy_stages} points) for this "
                f"limb schedule")
        if n == 1:
            return values.copy()
        half_n = n // 2
        tabs = self._stage_tables_for(table, n)
        sc = self.scratch(half_n)
        x = values
        y = np.empty_like(values)
        spare = None  # second ping-pong buffer, allocated lazily
        c0, c1 = sc["c0"], sc["c1"]
        stride, m, si = half_n, 1, 0
        while stride >= 1:
            y0 = y[:, :half_n]
            y1 = y[:, half_n:]
            if m == 1:
                self.butterfly_stage(x[:, :half_n], x[:, half_n:],
                                     y0, y1, c0, c1)
            else:
                # Gather the even half as a strided *view* (it only
                # feeds the two butterfly passes); copy the odd half
                # into persistent scratch — the CIOS loop reads it L
                # times and wants it contiguous.
                xr = x.reshape(L, m, 2, stride)
                a = xr[:, :, 0, :]
                b = sc["b"]
                np.copyto(b.reshape(L, m, stride), xr[:, :, 1, :])
                u = self.montmul_lazy(b, tabs[si], sc)
                self.butterfly_stage(a, u.reshape(L, m, stride),
                                     y0.reshape(L, m, stride),
                                     y1.reshape(L, m, stride),
                                     c0.reshape(m, stride),
                                     c1.reshape(m, stride))
            if x is values:  # never ping-pong into the caller's array
                if spare is None:
                    spare = np.empty_like(values)
                x, y = y, spare
            else:
                x, y = y, x
            m *= 2
            stride //= 2
            si += 1
        return self.reduce_canonical(x, work=y)


class MultiLimbBackend(NumPyBackend):
    """NumPyBackend plus limb-plane kernels for moduli >= 2^64.

    Everything below 64 bits dispatches exactly as ``NumPyBackend``
    (Goldilocks/BabyBear keep their specialized kernels); BN254-Fr,
    BLS12-381-Fr, and any other odd wide modulus get a
    :class:`_MultiLimbKernel` instead of the Python fallback.

    >>> from repro.field.backend import numpy_available
    >>> if numpy_available():
    ...     from repro.field.presets import BN254_FR
    ...     backend = MultiLimbBackend()
    ...     vec = backend.pack(BN254_FR, [1, BN254_FR.modulus - 1])
    ...     got = backend.unpack(BN254_FR, backend.mul(BN254_FR, vec, vec))
    ... else:
    ...     got = [1, 1]
    >>> got
    [1, 1]
    """

    name = "multilimb"

    def _kernel(self, field):
        p = field.modulus
        kernel = self._kernels.get(p)
        if isinstance(kernel, _MultiLimbKernel):
            return kernel
        if p >= 1 << 64 and p % 2:
            kernel = _MultiLimbKernel(p)
            self._kernels[p] = kernel
            return kernel
        return super()._kernel(field)

    def lane_ops(self, field):
        kernel = self._kernel(field)
        if not isinstance(kernel, _MultiLimbKernel):
            return super().lane_ops(field)
        from repro.field.simd import LaneOps

        def pack(vals):
            arr = kernel.pack(vals)
            if arr is None:
                arr = kernel.pack([v % kernel.p for v in vals])
            return arr

        return LaneOps(
            field=field, add=kernel.add, sub=kernel.sub, mul=kernel.mul,
            scale=lambda arr, s: kernel.mul_scalar(arr, s),
            pack=pack, unpack=kernel.unpack, pack_table=kernel.pack_table,
            ntt_core=kernel.ntt_core, fmt=kernel.schedule.fmt)

    def describe(self) -> str:
        return ("multilimb (numpy semantics below 64 bits; lazy-carry "
                "CIOS limb planes for BN254-Fr/BLS12-381-Fr-class moduli)")
