"""The full Groth16 protocol structure (pairing check via trapdoor).

:mod:`repro.zkp.prover` implements the *computational pipeline* (the
NTT/MSM workload).  This module implements the *protocol*: the real
Groth16 keys and three-element proofs, with every term the 2016 paper
specifies:

* setup draws toxic waste ``(alpha, beta, gamma, delta, tau)`` and
  publishes G1 elements for ``alpha``, ``beta``, ``delta``, the powers
  of tau, the per-wire terms
  ``(beta*A_j(tau) + alpha*B_j(tau) + C_j(tau)) / delta`` (private
  wires) and ``.../gamma`` (public wires), and ``tau^i * Z(tau)/delta``;
* a proof is ``(A, B, C)`` with the zero-knowledge randomizers r, s:

      A = alpha + A_w(tau) + r*delta
      B = beta  + B_w(tau) + s*delta
      C = (priv(tau) + H(tau)Z(tau))/delta + s*A + r*B - r*s*delta

* verification checks ``e(A,B) = e(alpha,beta) * e(IC,gamma) *
  e(C,delta)``.  Pairings are out of scope (prover acceleration is the
  paper's subject), and a *witness-free* check cannot be emulated — the
  verifier would need a discrete log of A or B.  Instead
  :func:`groth16_self_check` (the test harness's oracle, holding the
  witness, randomness, and trapdoor) verifies every proof element's
  discrete-log identity *and* the pairing equation in the exponent —
  strictly stronger than completeness alone, since any tampered element
  fails its identity.

Per-wire polynomial evaluations at tau are computed with one barycentric
Lagrange pass (O(n) after a batch inversion) plus one sparse sweep over
the constraints — how real setup ceremonies do it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProverError
from repro.field.presets import BN254_FR
from repro.zkp.curve import BN254_G1, CurveParams, CurvePoint
from repro.zkp.msm import msm_pippenger
from repro.zkp.qap import QAP

__all__ = ["Groth16Trapdoor", "Groth16ProvingKey", "Groth16VerifyingKey",
           "Groth16Proof", "groth16_setup", "Groth16Prover",
           "groth16_self_check"]


@dataclass(frozen=True)
class Groth16Trapdoor:
    """The toxic waste; retained only for pairing-free verification."""

    alpha: int
    beta: int
    gamma: int
    delta: int
    tau: int

    def validate(self, order: int) -> None:
        for name in ("alpha", "beta", "gamma", "delta", "tau"):
            value = getattr(self, name) % order
            if value == 0:
                raise ProverError(f"trapdoor element {name} must be "
                                  f"non-zero mod the group order")


@dataclass(frozen=True)
class Groth16ProvingKey:
    """Everything the prover needs (all G1 in this reproduction)."""

    curve: CurveParams
    alpha_g: CurvePoint
    beta_g: CurvePoint
    delta_g: CurvePoint
    tau_powers: tuple[CurvePoint, ...]          # [tau^i] for i < n
    private_terms: tuple[CurvePoint, ...]       # per private wire
    private_wires: tuple[int, ...]
    h_terms: tuple[CurvePoint, ...]             # [tau^i * Z(tau)/delta]


@dataclass(frozen=True)
class Groth16VerifyingKey:
    """The public verification material."""

    curve: CurveParams
    alpha_g: CurvePoint
    beta_g: CurvePoint
    gamma_g: CurvePoint
    delta_g: CurvePoint
    ic_terms: tuple[CurvePoint, ...]            # constant-1 wire + publics


@dataclass(frozen=True)
class Groth16Proof:
    """The three-element proof."""

    a: CurvePoint
    b: CurvePoint
    c: CurvePoint


def _per_wire_evaluations(qap: QAP, tau: int) -> tuple[list[int], ...]:
    """A_j(tau), B_j(tau), C_j(tau) for every wire j.

    Constraint i contributes ``coeff * L_i(tau)`` to wire j's
    polynomial; one barycentric pass gives all L_i(tau).
    """
    field = qap.field
    p = field.modulus
    lagrange = qap.domain.lagrange_coefficients(tau % p)
    wires = qap.r1cs.num_wires
    a_vals = [0] * wires
    b_vals = [0] * wires
    c_vals = [0] * wires
    for i, constraint in enumerate(qap.r1cs.constraints):
        l_i = lagrange[i]
        for wire, coeff in constraint.a:
            a_vals[wire] = (a_vals[wire] + coeff * l_i) % p
        for wire, coeff in constraint.b:
            b_vals[wire] = (b_vals[wire] + coeff * l_i) % p
        for wire, coeff in constraint.c:
            c_vals[wire] = (c_vals[wire] + coeff * l_i) % p
    return a_vals, b_vals, c_vals


def groth16_setup(qap: QAP, trapdoor: Groth16Trapdoor,
                  curve: CurveParams = BN254_G1,
                  ) -> tuple[Groth16ProvingKey, Groth16VerifyingKey]:
    """The (toy, transparent) trusted setup for one QAP."""
    if qap.field != BN254_FR:
        raise ProverError("Groth16 over BN254 needs the BN254 scalar "
                          f"field, got {qap.field.name}")
    order = curve.order
    trapdoor.validate(order)
    tau = trapdoor.tau % order
    g = curve.generator()
    n = qap.domain.size

    a_vals, b_vals, c_vals = _per_wire_evaluations(qap, tau)
    gamma_inv = pow(trapdoor.gamma, -1, order)
    delta_inv = pow(trapdoor.delta, -1, order)
    z_tau = qap.domain.vanishing_eval(tau)

    def wire_term(j: int, divider: int) -> int:
        return ((trapdoor.beta * a_vals[j] + trapdoor.alpha * b_vals[j]
                 + c_vals[j]) % order) * divider % order

    num_public = qap.r1cs.num_public
    public_wires = tuple(range(num_public + 1))          # incl. wire 0
    private_wires = tuple(range(num_public + 1,
                                qap.r1cs.num_wires))

    powers = []
    acc = 1
    for _ in range(n):
        powers.append(g * acc)
        acc = acc * tau % order

    pk = Groth16ProvingKey(
        curve=curve,
        alpha_g=g * trapdoor.alpha,
        beta_g=g * trapdoor.beta,
        delta_g=g * trapdoor.delta,
        tau_powers=tuple(powers),
        private_terms=tuple(g * wire_term(j, delta_inv)
                            for j in private_wires),
        private_wires=private_wires,
        h_terms=tuple(g * (pow(tau, i, order) * z_tau % order
                           * delta_inv % order)
                      for i in range(n - 1)),
    )
    vk = Groth16VerifyingKey(
        curve=curve,
        alpha_g=pk.alpha_g,
        beta_g=pk.beta_g,
        gamma_g=g * trapdoor.gamma,
        delta_g=pk.delta_g,
        ic_terms=tuple(g * wire_term(j, gamma_inv)
                       for j in public_wires),
    )
    return pk, vk


class Groth16Prover:
    """Produces real three-element Groth16 proofs."""

    def __init__(self, qap: QAP, pk: Groth16ProvingKey):
        self.qap = qap
        self.pk = pk

    def prove(self, witness: Sequence[int], r: int, s: int) -> Groth16Proof:
        """The Groth16 prover: the QAP pipeline + three commitments."""
        qap = self.qap
        pk = self.pk
        order = pk.curve.order
        r %= order
        s %= order
        polys = qap.witness_polynomials(witness)  # the 7-NTT pipeline
        g = pk.curve.generator()

        # A = alpha + A_w(tau) + r*delta  (A_w(tau) committed by MSM).
        a_commit = self._commit_coeffs(polys.a.coeffs)
        a_point = pk.alpha_g + a_commit + pk.delta_g * r

        # B = beta + B_w(tau) + s*delta.
        b_commit = self._commit_coeffs(polys.b.coeffs)
        b_point = pk.beta_g + b_commit + pk.delta_g * s

        # C = (private terms + H*Z)/delta + s*A + r*B - r*s*delta.
        private_scalars = [witness[j] % order for j in pk.private_wires]
        c_point = msm_pippenger(pk.curve, private_scalars,
                                list(pk.private_terms))
        h_coeffs = list(polys.h.coeffs)
        if len(h_coeffs) > len(pk.h_terms):
            raise ProverError("quotient degree exceeds the setup")
        if h_coeffs:
            c_point = c_point + msm_pippenger(
                pk.curve, h_coeffs, list(pk.h_terms[:len(h_coeffs)]))
        c_point = (c_point + a_point * s + b_point * r
                   - pk.delta_g * (r * s % order))
        return Groth16Proof(a=a_point, b=b_point, c=c_point)

    def _commit_coeffs(self, coeffs: Sequence[int]) -> CurvePoint:
        if len(coeffs) > len(self.pk.tau_powers):
            raise ProverError("polynomial degree exceeds the setup")
        if not coeffs:
            return self.pk.curve.infinity()
        return msm_pippenger(self.pk.curve, list(coeffs),
                             list(self.pk.tau_powers[:len(coeffs)]))


def groth16_self_check(qap: QAP, vk: Groth16VerifyingKey,
                       proof: Groth16Proof,
                       witness: Sequence[int],
                       trapdoor: Groth16Trapdoor,
                       r: int, s: int) -> bool:
    """Completeness check: with witness, randomness, and trapdoor, every
    proof element's discrete log is a known polynomial identity; verify
    each element and the pairing equation in the exponent exactly.
    """
    from repro.errors import CircuitError

    order = vk.curve.order
    g = vk.curve.generator()
    try:
        polys = qap.witness_polynomials(witness)
    except CircuitError:
        return False  # an unsatisfying witness can never check out
    tau = trapdoor.tau % order
    r %= order
    s %= order

    a_dlog = (trapdoor.alpha + polys.a.evaluate(tau)
              + r * trapdoor.delta) % order
    b_dlog = (trapdoor.beta + polys.b.evaluate(tau)
              + s * trapdoor.delta) % order
    if proof.a != g * a_dlog or proof.b != g * b_dlog:
        return False

    a_vals, b_vals, c_vals = _per_wire_evaluations(qap, tau)
    delta_inv = pow(trapdoor.delta, -1, order)
    num_public = qap.r1cs.num_public
    priv = 0
    for j in range(num_public + 1, qap.r1cs.num_wires):
        term = (trapdoor.beta * a_vals[j] + trapdoor.alpha * b_vals[j]
                + c_vals[j]) % order
        priv = (priv + witness[j] * term) % order
    h_z = polys.h.evaluate(tau) * qap.domain.vanishing_eval(tau) % order
    c_dlog = ((priv + h_z) * delta_inv
              + s * a_dlog + r * b_dlog - r * s * trapdoor.delta) % order
    if proof.c != g * c_dlog:
        return False

    # The pairing equation in the exponent.
    gamma_inv = pow(trapdoor.gamma, -1, order)
    ic = 0
    for j in range(num_public + 1):
        term = (trapdoor.beta * a_vals[j] + trapdoor.alpha * b_vals[j]
                + c_vals[j]) % order
        ic = (ic + witness[j] * term) % order
    ic_dlog = ic * gamma_inv % order
    lhs = a_dlog * b_dlog % order
    rhs = (trapdoor.alpha * trapdoor.beta
           + ic_dlog * trapdoor.gamma
           + c_dlog * trapdoor.delta) % order
    return lhs == rhs
