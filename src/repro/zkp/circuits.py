"""Parametric example circuits (the benchmark workload generators).

Each builder returns an ``(r1cs, witness)`` pair that satisfies the
system, sized so the end-to-end benchmark can sweep constraint counts.
"""

from __future__ import annotations

import random

from repro.errors import CircuitError
from repro.field.prime_field import PrimeField
from repro.zkp.r1cs import R1CS

__all__ = ["square_chain", "inner_product", "random_circuit"]


def square_chain(field: PrimeField, steps: int,
                 seed_value: int = 3) -> tuple[R1CS, list[int]]:
    """Prove knowledge of x with ``x^(2^steps) = y`` for public y.

    A verifiable-delay-style repeated-squaring circuit: ``steps``
    constraints, one private input, one public output.
    """
    if steps < 1:
        raise CircuitError(f"steps must be >= 1, got {steps}")
    r1cs = R1CS(field, num_public=1)
    x = r1cs.new_wire()
    witness = [1, 0, seed_value % field.modulus]  # [one, y(placeholder), x]
    current = x
    value = witness[2]
    for _ in range(steps):
        nxt = r1cs.constrain_square(current)
        value = value * value % field.modulus
        witness.append(value)
        current = nxt
    # Bind the final wire to the public output y.
    r1cs.constrain_equal(current, 1)
    witness[1] = value
    if not r1cs.is_satisfied(witness):
        raise CircuitError("square_chain produced an unsatisfied witness")
    return r1cs, witness


def inner_product(field: PrimeField, length: int,
                  seed: int = 1234) -> tuple[R1CS, list[int]]:
    """Prove ``<a, b> = c`` for private a, b and public c.

    ``length`` multiplication constraints plus one summation binding.
    """
    if length < 1:
        raise CircuitError(f"length must be >= 1, got {length}")
    rng = random.Random(seed)
    p = field.modulus
    a_vals = [rng.randrange(p) for _ in range(length)]
    b_vals = [rng.randrange(p) for _ in range(length)]

    r1cs = R1CS(field, num_public=1)
    a_wires = [r1cs.new_wire() for _ in range(length)]
    b_wires = [r1cs.new_wire() for _ in range(length)]
    witness = [1, 0] + a_vals + b_vals
    product_wires = []
    total = 0
    for a_w, b_w, a_v, b_v in zip(a_wires, b_wires, a_vals, b_vals):
        prod = r1cs.constrain_mul(a_w, b_w)
        product_wires.append(prod)
        witness.append(a_v * b_v % p)
        total = (total + a_v * b_v) % p
    # sum(products) * 1 = c  (the public wire).
    r1cs.add_constraint({w: 1 for w in product_wires}, {0: 1}, {1: 1})
    witness[1] = total
    if not r1cs.is_satisfied(witness):
        raise CircuitError("inner_product produced an unsatisfied witness")
    return r1cs, witness


def random_circuit(field: PrimeField, constraints: int, seed: int = 7,
                   fan_in: int = 3) -> tuple[R1CS, list[int]]:
    """A random satisfiable R1CS with the requested constraint count.

    Each constraint multiplies two random sparse combinations of earlier
    wires and binds the product to a fresh wire, mimicking the shape of
    compiled arithmetic circuits.  Used to size benchmark workloads.
    """
    if constraints < 1:
        raise CircuitError(f"constraints must be >= 1, got {constraints}")
    rng = random.Random(seed)
    p = field.modulus
    r1cs = R1CS(field, num_public=1)
    witness = [1, rng.randrange(1, p)]
    seed_wire = r1cs.new_wire()  # a private starting value
    witness.append(rng.randrange(p))

    for _ in range(constraints):
        available = r1cs.num_wires
        a_lc = {rng.randrange(available): rng.randrange(1, p)
                for _ in range(min(fan_in, available))}
        b_lc = {rng.randrange(available): rng.randrange(1, p)
                for _ in range(min(fan_in, available))}
        a_val = sum(coeff * witness[w] for w, coeff in a_lc.items()) % p
        b_val = sum(coeff * witness[w] for w, coeff in b_lc.items()) % p
        out = r1cs.new_wire()
        r1cs.add_constraint(a_lc, b_lc, {out: 1})
        witness.append(a_val * b_val % p)
    if not r1cs.is_satisfied(witness):
        raise CircuitError("random_circuit produced an unsatisfied witness")
    return r1cs, witness
