"""Tests for the Montgomery-form NTT pipeline."""

import pytest

from repro.errors import NTTError
from repro.field import (
    BLS12_381_FR, GOLDILOCKS, TEST_FIELD_7681, MontgomeryContext,
)
from repro.ntt import MontgomeryNTT, intt, ntt

F = TEST_FIELD_7681


@pytest.fixture
def engine():
    return MontgomeryNTT(MontgomeryContext(F))


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 512])
    def test_matches_plain_path(self, n, engine, rng):
        x = F.random_vector(n, rng)
        assert engine.ntt(x) == ntt(F, x)

    @pytest.mark.parametrize("n", [2, 32, 256])
    def test_roundtrip(self, n, engine, rng):
        x = F.random_vector(n, rng)
        assert engine.intt(engine.ntt(x)) == x

    @pytest.mark.parametrize("field", [GOLDILOCKS, BLS12_381_FR],
                             ids=lambda f: f.name)
    def test_production_fields(self, field, rng):
        engine = MontgomeryNTT(MontgomeryContext(field))
        x = field.random_vector(64, rng)
        assert engine.ntt(x) == ntt(field, x)


class TestFormResidency:
    def test_chained_transforms_skip_conversions(self, engine, rng):
        """A form-resident buffer round-trips without leaving form."""
        x = F.random_vector(64, rng)
        mont = engine.to_mont(x)
        fwd = engine.forward(mont)
        back = engine.inverse(fwd)
        assert back == mont  # still in form, value-identical
        assert engine.from_mont(back) == x

    def test_forward_output_is_in_form(self, engine, rng):
        """forward() output converts to the plain-path spectrum."""
        x = F.random_vector(32, rng)
        fwd = engine.forward(engine.to_mont(x))
        assert engine.from_mont(fwd) == ntt(F, x)
        # And it is genuinely Montgomery-form: raw values differ.
        assert fwd != ntt(F, x)

    def test_twiddle_tables_cached_in_form(self, engine, rng):
        x = F.random_vector(64, rng)
        engine.ntt(x)
        tables_after_first = len(engine._tables)
        engine.ntt(x)
        assert len(engine._tables) == tables_after_first

    def test_pointwise_product_in_form(self, engine, rng):
        """The ZKP pattern entirely in Montgomery form."""
        from repro.ntt import naive_cyclic_convolution

        n = 32
        a = F.random_vector(n, rng)
        b = F.random_vector(n, rng)
        ctx = engine.ctx
        spec_a = engine.forward(engine.to_mont(a))
        spec_b = engine.forward(engine.to_mont(b))
        product = [ctx.mont_mul(x, y) for x, y in zip(spec_a, spec_b)]
        got = engine.from_mont(engine.inverse(product))
        assert got == naive_cyclic_convolution(F, a, b)


class TestValidation:
    def test_size_check(self, engine):
        with pytest.raises(NTTError, match="power of two"):
            engine.forward([1, 2, 3])
