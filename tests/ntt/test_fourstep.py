"""Tests for the Bailey four-step / six-step decomposition."""

import pytest

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.ntt import (
    four_step_intt, four_step_ntt, ntt, six_step_ntt, split_size,
    transpose_flat,
)

F = TEST_FIELD_7681


class TestSplitSize:
    def test_balanced(self):
        assert split_size(16) == (4, 4)
        assert split_size(64) == (8, 8)

    def test_odd_power(self):
        assert split_size(32) == (4, 8)
        assert split_size(8) == (2, 4)

    def test_trivial(self):
        assert split_size(1) == (1, 1)
        assert split_size(2) == (1, 2)

    def test_rejects_non_power(self):
        with pytest.raises(NTTError):
            split_size(12)


class TestTranspose:
    def test_basic(self):
        # 2x3 row-major -> 3x2.
        assert transpose_flat([1, 2, 3, 4, 5, 6], 2, 3) == [1, 4, 2, 5, 3, 6]

    def test_involution(self, rng):
        values = F.random_vector(24, rng)
        once = transpose_flat(values, 4, 6)
        assert transpose_flat(once, 6, 4) == values

    def test_shape_mismatch(self):
        with pytest.raises(NTTError, match="view"):
            transpose_flat([1, 2, 3], 2, 2)


class TestFourStep:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 512])
    def test_matches_radix2(self, n, rng):
        x = F.random_vector(n, rng)
        assert four_step_ntt(F, x) == ntt(F, x)

    @pytest.mark.parametrize("rows", [2, 4, 8, 16])
    def test_all_factorizations(self, rows, rng):
        n = 256
        x = F.random_vector(n, rng)
        assert four_step_ntt(F, x, rows=rows) == ntt(F, x)

    def test_extreme_factorizations(self, rng):
        x = F.random_vector(64, rng)
        assert four_step_ntt(F, x, rows=1) == ntt(F, x)
        assert four_step_ntt(F, x, rows=64) == ntt(F, x)

    def test_roundtrip(self, rng):
        x = F.random_vector(64, rng)
        assert four_step_intt(F, four_step_ntt(F, x)) == x

    def test_roundtrip_unbalanced(self, rng):
        x = F.random_vector(128, rng)
        assert four_step_intt(F, four_step_ntt(F, x, rows=4), rows=32) == x

    def test_all_fields(self, ntt_field, rng):
        x = ntt_field.random_vector(64, rng)
        assert four_step_ntt(ntt_field, x) == ntt(ntt_field, x)

    def test_explicit_root(self, rng):
        n = 16
        w = F.root_of_unity(n)
        x = F.random_vector(n, rng)
        inv = four_step_ntt(F, four_step_ntt(F, x, root=w),
                            root=F.inv(w))
        n_inv = F.inv(n)
        assert [v * n_inv % F.modulus for v in inv] == x

    def test_invalid_rows(self):
        with pytest.raises(NTTError, match="divide"):
            four_step_ntt(F, [0] * 16, rows=3)
        with pytest.raises(NTTError, match="divide"):
            four_step_ntt(F, [0] * 16, rows=32)

    def test_non_power_size(self):
        with pytest.raises(NTTError, match="power of two"):
            four_step_ntt(F, [0] * 12)
        with pytest.raises(NTTError, match="power of two"):
            four_step_intt(F, [0] * 12)


class TestSixStep:
    @pytest.mark.parametrize("n", [1, 4, 16, 64, 256])
    def test_matches_four_step(self, n, rng):
        x = F.random_vector(n, rng)
        assert six_step_ntt(F, x) == four_step_ntt(F, x)

    @pytest.mark.parametrize("rows", [2, 8, 16])
    def test_factorizations(self, rows, rng):
        x = F.random_vector(128, rng)
        assert six_step_ntt(F, x, rows=rows) == ntt(F, x)

    def test_non_power_size(self):
        with pytest.raises(NTTError, match="power of two"):
            six_step_ntt(F, [0] * 10)

    def test_invalid_rows(self):
        with pytest.raises(NTTError, match="divide"):
            six_step_ntt(F, [0] * 16, rows=5)
