"""The uniformity claim, demonstrated executable.

The paper's abstract hardware model says a warp, a thread block, a GPU,
and a multi-GPU node are the same machine at different scales — so one
NTT decomposition and one optimization set serve all of them.  Here the
*identical* engine code runs at each scale (units = lanes, warps,
blocks, GPUs), and the communication invariant — one exchange moving
exactly (U-1)/U elements per element — holds everywhere.

Run:  python examples/hierarchy_uniformity.py
"""

from repro.bench import format_table
from repro.field import GOLDILOCKS
from repro.hw import CostModel, DGX_A100
from repro.sim import HIERARCHY_SCALES, uniformity_sweep


def run_sweep() -> None:
    print("one engine, four scales (units = lanes / warps / blocks / "
          "GPUs):\n")
    headers = ["level", "units", "n", "correct", "exchanges",
               "exchanged elems/elem", "(U-1)/U"]
    rows = []
    for run in uniformity_sweep(GOLDILOCKS, n_per_unit=64):
        rows.append([
            run.level, run.units, run.n, "yes" if run.correct else "NO",
            run.exchanges, run.elements_exchanged_per_element,
            (run.units - 1) / run.units,
        ])
    print(format_table(headers, rows))
    print()
    print("the invariant is scale-free: the exchange volume depends only")
    print("on the fanout, never on which hierarchy level executes it.")
    print()


def price_per_level() -> None:
    """The same bytes cost different time on each level's fabric."""
    model = CostModel(DGX_A100, GOLDILOCKS)
    nbytes = 64 * 1024 * model.element_bytes
    headers = ["level", "fabric latency", "time for 512 KiB exchange"]
    rows = []
    for name, _ in reversed(HIERARCHY_SCALES):
        spec = model.level(name)
        seconds = model.exchange_seconds(nbytes, name, messages=1)
        rows.append([name, f"{spec.exchange_latency * 1e9:.0f} ns",
                     f"{seconds * 1e6:.2f} us"])
    print(format_table(headers, rows,
                       title="one exchange, priced per level (DGX-A100)"))


def main() -> None:
    run_sweep()
    price_per_level()


if __name__ == "__main__":
    main()
