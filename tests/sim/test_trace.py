"""Tests for trace aggregation."""

from repro.sim import Trace, TraceEvent
from repro.sim.trace import EVENT_KINDS, collective_kinds


def sample_trace() -> Trace:
    trace = Trace()
    trace.record(TraceEvent(kind="all-to-all", level="multi-gpu",
                            max_bytes_per_gpu=100, total_bytes=800))
    trace.record(TraceEvent(kind="local-compute", level="gpu",
                            max_bytes_per_gpu=50, total_bytes=400,
                            field_muls=1000))
    trace.record(TraceEvent(kind="all-to-all", level="multi-gpu",
                            max_bytes_per_gpu=100, total_bytes=800))
    trace.record(TraceEvent(kind="gather", level="multi-gpu",
                            max_bytes_per_gpu=0, total_bytes=0))
    return trace


class TestTrace:
    def test_len_and_iter(self):
        trace = sample_trace()
        assert len(trace) == 4
        assert len(list(trace)) == 4

    def test_count(self):
        trace = sample_trace()
        assert trace.count("all-to-all") == 2
        assert trace.count("gather") == 1
        assert trace.count("nope") == 0

    def test_bytes_by_level(self):
        assert sample_trace().bytes_by_level() == {
            "multi-gpu": 1600, "gpu": 400}

    def test_critical_bytes_by_level(self):
        assert sample_trace().critical_bytes_by_level() == {
            "multi-gpu": 200, "gpu": 50}

    def test_collective_count_ignores_empty(self):
        # the zero-byte gather does not count as a collective
        assert sample_trace().collective_count() == 2

    def test_field_muls(self):
        assert sample_trace().total_field_muls() == 1000

    def test_summary(self):
        summary = sample_trace().summary()
        assert summary["events"] == 4
        assert summary["collectives"] == 2
        assert summary["field_muls"] == 1000

    def test_clear(self):
        trace = sample_trace()
        trace.clear()
        assert len(trace) == 0
        assert trace.bytes_by_level() == {}

    def test_clear_restarts_step_numbering(self):
        trace = sample_trace()
        trace.clear()
        trace.record(TraceEvent(kind="gather", level="multi-gpu"))
        assert trace.events[0].step == 0


class TestSteps:
    def test_record_stamps_sequence_numbers(self):
        trace = sample_trace()
        assert [e.step for e in trace] == [0, 1, 2, 3]

    def test_explicit_step_is_preserved(self):
        trace = Trace()
        trace.record(TraceEvent(kind="local-compute", level="gpu",
                                step=7, gpu=0))
        trace.record(TraceEvent(kind="local-compute", level="gpu",
                                step=7, gpu=1))
        assert [e.step for e in trace] == [7, 7]


class TestSummary:
    def test_summary_keys_are_sorted(self):
        summary = sample_trace().summary()
        assert list(summary) == sorted(summary)
        for key in ("bytes_by_level", "critical_bytes_by_level"):
            assert list(summary[key]) == sorted(summary[key])

    def test_summary_critical_bytes(self):
        summary = sample_trace().summary()
        assert summary["critical_bytes_by_level"] == {
            "gpu": 50, "multi-gpu": 200}
        assert summary["bytes_by_level"] == {
            "gpu": 400, "multi-gpu": 1600}


class TestKindRegistry:
    def test_sample_kinds_are_registered(self):
        for event in sample_trace():
            assert event.kind in EVENT_KINDS

    def test_collective_kinds(self):
        kinds = collective_kinds()
        assert "all-to-all" in kinds
        assert "pairwise" in kinds
        assert "local-compute" not in kinds

    def test_every_kind_has_a_description(self):
        for spec in EVENT_KINDS.values():
            assert spec.description
