"""T2: the NTT workload grid."""

from repro.bench import workloads_table


def test_t2_workloads(benchmark, emit):
    table = benchmark(workloads_table)
    emit("T2_workloads", "T2: NTT benchmark workloads", table)
