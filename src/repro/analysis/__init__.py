"""Static analysis for the reproduction: plan, trace, repo, and rewrite checks.

Four tools share one reporting vocabulary
(:class:`~repro.analysis.findings.Finding`):

* :mod:`repro.analysis.plancheck` — symbolic verification of
  multi-GPU communication schedules (``repro analyze plan``);
* :mod:`repro.analysis.tracecheck` — post-hoc race/coherence checks
  over simulator traces (``repro analyze trace``);
* :mod:`repro.analysis.lint` — AST enforcement of project invariants
  over ``src/repro`` (``repro analyze lint``);
* :mod:`repro.analysis.passes` + :mod:`repro.analysis.synth` — the
  schedule-rewriting compiler layer: peephole passes, hierarchical
  all-to-all synthesis, and the verification gate every rewritten
  schedule must pass (``repro analyze optimize``), with
  :mod:`repro.analysis.interp` executing the products on the simulator.

:func:`all_checks` aggregates every registered check for ``repro
info`` and the docs.
"""

from __future__ import annotations

from repro.analysis import passes, plancheck, tracecheck
from repro.analysis.findings import (
    Check, Finding, findings_to_json, render_findings,
)
from repro.analysis.interp import interpret_schedule
from repro.analysis.passes import (
    DEFAULT_PASSES, PassReport, ScheduleDelta, SchedulePass, run_passes,
    verify_rewrite,
)
from repro.analysis.plancheck import (
    SEED_BUGS, analyze_plan, check_cost, seed_bug, verify_schedule,
)
from repro.analysis.synth import (
    ScheduleCandidate, enumerate_candidates, synthesize_hierarchical,
)
from repro.analysis.tracecheck import check_trace

__all__ = [
    "Check", "Finding", "render_findings", "findings_to_json",
    "all_checks", "verify_schedule", "check_cost", "analyze_plan",
    "seed_bug", "SEED_BUGS", "check_trace", "lint_paths",
    "ScheduleDelta", "SchedulePass", "PassReport", "DEFAULT_PASSES",
    "run_passes", "verify_rewrite", "ScheduleCandidate",
    "synthesize_hierarchical", "enumerate_candidates",
    "interpret_schedule",
]


def _lint_module():
    # repro.analysis.lint is imported lazily (and via import_module, to
    # dodge this package's own __getattr__) so that running it as a
    # script (``python -m repro.analysis.lint``) does not import the
    # module twice and trip runpy's double-import warning.
    import importlib

    return importlib.import_module("repro.analysis.lint")


def __getattr__(name: str):
    if name == "lint":
        return _lint_module()
    if name == "lint_paths":
        return _lint_module().lint_paths
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def all_checks() -> list[Check]:
    """Every registered check across the four tools, sorted by id."""
    checks = list(plancheck.CHECKS) + list(tracecheck.CHECKS) \
        + list(passes.CHECKS) + list(_lint_module().CHECKS)
    return sorted(checks, key=lambda check: check.check_id)
