"""Dense univariate polynomials over a prime field.

Coefficient lists are little-endian (``coeffs[i]`` multiplies ``x^i``)
and normalized (no trailing zeros; the zero polynomial is ``[]``).
Products use the NTT convolution for sizes where it pays and schoolbook
below that, so the algebra exercises the same transform stack the rest
of the library models.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError, ReproError
from repro.field.prime_field import PrimeField
from repro.field.vector import vec_add, vec_neg, vec_scale
from repro.ntt import polymul
from repro.zkp.domain import EvaluationDomain

__all__ = ["Polynomial"]

_NTT_THRESHOLD = 64  # schoolbook below this output size


class Polynomial:
    """An immutable dense polynomial."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: PrimeField, coeffs: Sequence[int]):
        p = field.modulus
        normalized = [c % p for c in coeffs]
        while normalized and normalized[-1] == 0:
            normalized.pop()
        self.field = field
        self.coeffs = tuple(normalized)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [])

    @classmethod
    def one(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [1])

    @classmethod
    def monomial(cls, field: PrimeField, degree: int,
                 coefficient: int = 1) -> "Polynomial":
        """``coefficient * x^degree``."""
        if degree < 0:
            raise ReproError(f"degree must be non-negative, got {degree}")
        return cls(field, [0] * degree + [coefficient])

    @classmethod
    def vanishing(cls, field: PrimeField, domain_size: int) -> "Polynomial":
        """``x^n - 1``, the vanishing polynomial of a size-n domain."""
        return cls(field, [field.modulus - 1] + [0] * (domain_size - 1) + [1])

    @classmethod
    def interpolate(cls, domain: EvaluationDomain,
                    evaluations: Sequence[int]) -> "Polynomial":
        """The unique degree < n polynomial with the given domain values."""
        return cls(domain.field, domain.intt(evaluations))

    # -- structure ----------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree; -1 for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Polynomial)
                and other.field == self.field
                and other.coeffs == self.coeffs)

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.coeffs))

    def __repr__(self) -> str:
        if self.is_zero():
            return f"Polynomial(0 over {self.field.name})"
        return (f"Polynomial(degree={self.degree}, "
                f"over {self.field.name})")

    # -- ring operations ---------------------------------------------------------------

    def _check_field(self, other: "Polynomial") -> None:
        if other.field != self.field:
            raise ReproError("cannot mix polynomials over different fields")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_field(other)
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        padded = list(b) + [0] * (len(a) - len(b))
        return Polynomial(self.field, vec_add(self.field, list(a), padded))

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.field, vec_neg(self.field, list(self.coeffs)))

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            return self.scale(other)
        self._check_field(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.field)
        out_len = len(self.coeffs) + len(other.coeffs) - 1
        if out_len < _NTT_THRESHOLD:
            return self._schoolbook_mul(other)
        return Polynomial(self.field, polymul.poly_multiply(
            self.field, list(self.coeffs), list(other.coeffs)))

    __rmul__ = __mul__

    def _schoolbook_mul(self, other: "Polynomial") -> "Polynomial":
        p = self.field.modulus
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = (out[i + j] + a * b) % p
        return Polynomial(self.field, out)

    def scale(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by a field scalar."""
        s = scalar % self.field.modulus
        return Polynomial(self.field,
                          vec_scale(self.field, list(self.coeffs), s))

    def shift(self, amount: int) -> "Polynomial":
        """Multiply by ``x^amount``."""
        if amount < 0:
            raise ReproError(f"shift must be non-negative, got {amount}")
        if self.is_zero():
            return self
        return Polynomial(self.field, [0] * amount + list(self.coeffs))

    def divmod(self, divisor: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Euclidean division: self = q * divisor + r, deg r < deg divisor."""
        self._check_field(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        p = self.field.modulus
        remainder = list(self.coeffs)
        d = divisor.degree
        lead_inv = self.field.inv(divisor.coeffs[-1])
        quotient = [0] * max(len(remainder) - d, 0)
        for i in range(len(remainder) - 1, d - 1, -1):
            coeff = remainder[i]
            if coeff == 0:
                continue
            q = coeff * lead_inv % p
            quotient[i - d] = q
            for j, dc in enumerate(divisor.coeffs):
                remainder[i - d + j] = (remainder[i - d + j] - q * dc) % p
        return (Polynomial(self.field, quotient),
                Polynomial(self.field, remainder))

    def __floordiv__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[0]

    def __mod__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[1]

    def divide_by_vanishing(self, domain_size: int) -> "Polynomial":
        """Exact division by ``x^n - 1``; raises if not divisible."""
        quotient, remainder = self.divmod(
            Polynomial.vanishing(self.field, domain_size))
        if not remainder.is_zero():
            raise NTTError(
                "polynomial is not divisible by the vanishing polynomial")
        return quotient

    # -- evaluation ---------------------------------------------------------------------

    def evaluate(self, point: int) -> int:
        """Horner evaluation at a single point."""
        p = self.field.modulus
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * point + c) % p
        return acc

    def evaluate_over(self, domain: EvaluationDomain) -> list[int]:
        """All values on a domain via NTT (degree must be < n)."""
        if self.degree >= domain.size:
            raise NTTError(
                f"degree {self.degree} polynomial does not fit a "
                f"size-{domain.size} domain")
        padded = list(self.coeffs) + [0] * (domain.size - len(self.coeffs))
        return domain.ntt(padded)

    def evaluate_over_coset(self, domain: EvaluationDomain,
                            shift: int) -> list[int]:
        """All values on the coset ``shift * H`` via coset NTT."""
        if self.degree >= domain.size:
            raise NTTError(
                f"degree {self.degree} polynomial does not fit a "
                f"size-{domain.size} domain")
        padded = list(self.coeffs) + [0] * (domain.size - len(self.coeffs))
        return domain.coset_ntt(padded, shift)
