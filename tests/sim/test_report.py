"""Tests for trace rendering."""

from repro.sim import Trace, TraceEvent, render_events, render_summary, render_trace


def sample_trace():
    trace = Trace()
    trace.record(TraceEvent(kind="local-compute", level="gpu",
                            max_bytes_per_gpu=1024, total_bytes=4096,
                            field_muls=500, detail="stage-1"))
    trace.record(TraceEvent(kind="all-to-all", level="multi-gpu",
                            max_bytes_per_gpu=2 << 20,
                            total_bytes=8 << 20, detail="exchange"))
    return trace


class TestRenderEvents:
    def test_one_line_per_event(self):
        text = render_events(sample_trace())
        assert len(text.splitlines()) == 2

    def test_contents(self):
        text = render_events(sample_trace())
        assert "local-compute" in text
        assert "[stage-1]" in text
        assert "500 muls" in text
        assert "8.00 MiB" in text  # MiB formatting
        assert "4.00 KiB" in text  # KiB formatting

    def test_empty(self):
        assert render_events(Trace()) == "(empty trace)"


class TestRenderSummary:
    def test_aggregates(self):
        text = render_summary(sample_trace())
        assert "collectives: 1" in text
        assert "field muls:  500" in text
        assert "@gpu" in text
        assert "@multi-gpu" in text


class TestRenderTrace:
    def test_title_and_sections(self):
        text = render_trace(sample_trace(), title="my run")
        assert text.startswith("my run\n======")
        assert "collectives" in text

    def test_from_real_engine_run(self, rng):
        from repro.field import TEST_FIELD_7681 as F
        from repro.multigpu import DistributedVector, UniNTTEngine
        from repro.sim import SimCluster

        cluster = SimCluster(F, 4)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(
            cluster, F.random_vector(64, rng), engine.input_layout(64))
        engine.forward(vec)
        text = render_trace(cluster.trace)
        assert "unintt-exchange" in text
        assert "collectives: 1" in text
