"""NTT executed entirely in Montgomery representation.

Real GPU kernels never leave Montgomery form: inputs are converted once
(or generated in form), every butterfly multiply is a ``mont_mul``, and
the twiddle tables are stored in form.  This module is that pipeline,
end to end, over :class:`repro.field.MontgomeryContext` — the
representation-fidelity companion to the plain-int engines (which model
*what* is computed; this models *how*).

Conversions in/out are explicit so callers can chain transforms without
paying them per call, exactly like resident device buffers.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.montgomery import MontgomeryContext
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["MontgomeryNTT"]


class MontgomeryNTT:
    """Forward/inverse transforms over Montgomery-form buffers."""

    def __init__(self, ctx: MontgomeryContext,
                 cache: TwiddleCache | None = None):
        self.ctx = ctx
        self.field = ctx.field
        self.cache = cache or default_cache
        self._tables: dict[tuple[int, bool], list[int]] = {}

    # -- conversions (explicit, amortizable) ---------------------------------

    def to_mont(self, values: Sequence[int]) -> list[int]:
        """Canonical -> Montgomery form, element-wise."""
        return [self.ctx.to_mont(v) for v in values]

    def from_mont(self, values: Sequence[int]) -> list[int]:
        """Montgomery -> canonical form, element-wise."""
        return [self.ctx.from_mont(v) for v in values]

    # -- twiddles stored in form ------------------------------------------------

    def _table(self, n: int, inverse: bool) -> list[int]:
        key = (n, inverse)
        table = self._tables.get(key)
        if table is None:
            root = (self.field.inv_root_of_unity(n) if inverse
                    else self.field.root_of_unity(n))
            plain = self.cache.powers(self.field, root, n // 2)
            table = [self.ctx.to_mont(w) for w in plain]
            self._tables[key] = table
        return table

    # -- transforms ----------------------------------------------------------------

    def forward(self, mont_values: Sequence[int]) -> list[int]:
        """Forward NTT of a Montgomery-form buffer (form in, form out)."""
        return self._transform(mont_values, inverse=False)

    def inverse(self, mont_values: Sequence[int]) -> list[int]:
        """Inverse NTT in form (includes the 1/n scaling, in form)."""
        out = self._transform(mont_values, inverse=True)
        n_inv_mont = self.ctx.to_mont(self.field.inv(len(out)))
        mont_mul = self.ctx.mont_mul
        return [mont_mul(v, n_inv_mont) for v in out]

    def _transform(self, mont_values: Sequence[int],
                   inverse: bool) -> list[int]:
        n = len(mont_values)
        if n == 0 or n & (n - 1):
            raise NTTError(f"NTT size must be a power of two, got {n}")
        data = list(mont_values)
        if n == 1:
            return data
        table = self._table(n, inverse)
        p = self.field.modulus
        mont_mul = self.ctx.mont_mul
        # Radix-2 DIF with mont_mul butterflies, then bit reversal.
        half = n // 2
        while half >= 1:
            step = (n // 2) // half
            for start in range(0, n, half * 2):
                t_index = 0
                for j in range(start, start + half):
                    w = table[t_index]
                    t_index += step
                    u = data[j]
                    v = data[j + half]
                    s = u + v
                    data[j] = s - p if s >= p else s
                    d = u - v
                    data[j + half] = mont_mul(d + p if d < 0 else d, w)
            half //= 2
        perm = self.cache.bitrev(n)
        out = [0] * n
        for i, j in enumerate(perm):
            out[i] = data[j]
        return out

    # -- one-call convenience (pays conversions) -------------------------------------

    def ntt(self, values: Sequence[int]) -> list[int]:
        """Canonical in, canonical out (converts both ways)."""
        return self.from_mont(self.forward(self.to_mont(values)))

    def intt(self, values: Sequence[int]) -> list[int]:
        """Canonical in, canonical out inverse transform."""
        return self.from_mont(self.inverse(self.to_mont(values)))
