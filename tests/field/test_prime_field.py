"""Unit and property tests for PrimeField and FieldElement."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError
from repro.field import GOLDILOCKS, TEST_FIELD_97, PrimeField


class TestConstruction:
    def test_rejects_composite_modulus(self):
        with pytest.raises(FieldError, match="not prime"):
            PrimeField(91)  # 7 * 13

    def test_rejects_even_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(4)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(2)

    def test_default_name(self):
        field = PrimeField(97)
        assert field.name == "GF(97)"

    def test_custom_name_in_repr(self):
        assert "Goldilocks" in repr(GOLDILOCKS)

    def test_equality_by_modulus(self):
        assert PrimeField(97) == PrimeField(97, generator=5, name="other")
        assert PrimeField(97) != PrimeField(101)

    def test_hashable(self):
        assert len({PrimeField(97), TEST_FIELD_97}) == 1


class TestScalarArithmetic:
    def test_add_wraps(self):
        field = TEST_FIELD_97
        assert field.add(96, 5) == 4

    def test_sub_wraps(self):
        field = TEST_FIELD_97
        assert field.sub(3, 10) == 90

    def test_mul(self):
        assert TEST_FIELD_97.mul(10, 10) == 3

    def test_neg(self):
        field = TEST_FIELD_97
        assert field.neg(0) == 0
        assert field.neg(1) == 96

    def test_inv_roundtrip(self, any_field, rng):
        for _ in range(10):
            a = rng.randrange(1, any_field.modulus)
            assert any_field.mul(a, any_field.inv(a)) == 1

    def test_inv_zero_raises(self, any_field):
        with pytest.raises(FieldError, match="inverse"):
            any_field.inv(0)

    def test_pow_negative_exponent(self):
        field = TEST_FIELD_97
        assert field.pow(5, -1) == field.inv(5)

    def test_reduce(self):
        assert TEST_FIELD_97.reduce(-1) == 96
        assert TEST_FIELD_97.reduce(97 * 5 + 3) == 3


class TestRootsOfUnity:
    def test_two_adicity_values(self):
        assert TEST_FIELD_97.two_adicity == 5   # 96 = 2^5 * 3
        assert GOLDILOCKS.two_adicity == 32

    def test_root_has_exact_order(self, any_field):
        max_log = min(any_field.two_adicity, 8)
        for log_order in range(1, max_log + 1):
            order = 1 << log_order
            root = any_field.root_of_unity(order)
            assert any_field.pow(root, order) == 1
            assert any_field.pow(root, order // 2) != 1, \
                f"root of order {order} is not primitive"

    def test_order_one_root(self, any_field):
        assert any_field.root_of_unity(1) == 1

    def test_non_power_of_two_order_rejected(self, any_field):
        with pytest.raises(FieldError, match="power of two"):
            any_field.root_of_unity(3)

    def test_excessive_order_rejected(self):
        with pytest.raises(FieldError, match="two-adicity"):
            TEST_FIELD_97.root_of_unity(64)

    def test_inv_root(self, any_field):
        root = any_field.root_of_unity(8)
        inv = any_field.inv_root_of_unity(8)
        assert any_field.mul(root, inv) == 1

    def test_roots_nest(self, any_field):
        """The square of a 2k-order root is a k-order root."""
        root8 = any_field.root_of_unity(8)
        root4 = any_field.root_of_unity(4)
        assert any_field.mul(root8, root8) == root4

    def test_generator_discovery(self):
        field = PrimeField(97)  # no generator supplied
        g = field.multiplicative_generator
        # g must have full order 96: g^48 != 1 and g^32 != 1.
        assert pow(g, 48, 97) != 1
        assert pow(g, 32, 97) != 1
        assert pow(g, 96, 97) == 1


class TestElements:
    def test_element_reduction(self):
        assert TEST_FIELD_97.element(100).value == 3

    def test_operators(self):
        f = TEST_FIELD_97
        a, b = f.element(10), f.element(20)
        assert (a + b).value == 30
        assert (a - b).value == 87
        assert (a * b).value == 200 % 97
        assert (a / b) * b == a
        assert (-a).value == 87
        assert (a ** 2).value == 3
        assert a.inverse() * a == f.one()

    def test_mixed_int_arithmetic(self):
        a = TEST_FIELD_97.element(10)
        assert (a + 90).value == 3
        assert (5 * a).value == 50
        assert (100 - a).value == (100 - 10) % 97
        assert (1 / a) == a.inverse()

    def test_cross_field_mixing_raises(self):
        a = TEST_FIELD_97.element(1)
        b = GOLDILOCKS.element(1)
        with pytest.raises(FieldError, match="mix"):
            a + b

    def test_equality_with_int(self):
        assert TEST_FIELD_97.element(3) == 100
        assert TEST_FIELD_97.element(3) != 4

    def test_bool_int_protocols(self):
        f = TEST_FIELD_97
        assert not f.zero()
        assert f.one()
        assert int(f.element(42)) == 42

    def test_elements_and_random(self, rng):
        f = TEST_FIELD_97
        elems = f.elements([1, 2, 3])
        assert [e.value for e in elems] == [1, 2, 3]
        r = f.random_element(rng)
        assert 0 <= r.value < f.modulus
        vec = f.random_vector(100, rng)
        assert all(0 <= v < f.modulus for v in vec)

    def test_hash_consistent_with_eq(self):
        assert hash(TEST_FIELD_97.element(5)) == hash(
            PrimeField(97).element(5))


# -- property-based field axioms -------------------------------------------

small_vals = st.integers(min_value=0, max_value=96)


@given(a=small_vals, b=small_vals, c=small_vals)
def test_field_axioms_gf97(a, b, c):
    f = TEST_FIELD_97
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    assert f.add(a, f.neg(a)) == 0
    assert f.sub(a, b) == f.add(a, f.neg(b))


@given(a=st.integers(min_value=1, max_value=96),
       e1=st.integers(min_value=0, max_value=50),
       e2=st.integers(min_value=0, max_value=50))
def test_pow_homomorphism_gf97(a, e1, e2):
    f = TEST_FIELD_97
    assert f.mul(f.pow(a, e1), f.pow(a, e2)) == f.pow(a, e1 + e2)
