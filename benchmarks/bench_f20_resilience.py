"""F20: resilience overhead under injected faults.

Runs the resilient UniNTT engine beneath each fault kind in turn and
records the modeled cost of recovery.  The persisted report is the
acceptance artifact for the fault-injection subsystem: every scenario
must complete bit-exact with a trace the race detector accepts, and
every aborting fault (transient, corruption, death) must cost strictly
more than the fault-free run.
"""


from repro.bench import resilience_overhead


def test_f20_resilience_overhead(benchmark, emit):
    table = benchmark.pedantic(resilience_overhead, rounds=1, iterations=1)
    emit("F20_resilience",
         "F20: resilience overhead under injected faults", table)
    headers, rows = table
    outcome_col = headers.index("outcome")
    overhead_col = headers.index("overhead")
    assert all("bit-exact, clean trace" == row[outcome_col]
               for row in rows), "a fault scenario failed to recover"
    overheads = {row[0]: float(str(row[overhead_col]).rstrip("x"))
                 for row in rows}
    for scenario in ("transient-comm", "corrupt-shard", "device-death"):
        assert overheads[scenario] > 1.0, (
            f"{scenario} recovery was not charged: overhead "
            f"{overheads[scenario]}x")
