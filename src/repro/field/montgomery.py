"""Montgomery-form modular arithmetic.

GPU NTT kernels (and the paper's baselines) keep field elements in
Montgomery form so that modular multiplication becomes a multiply plus a
REDC reduction with no division.  This module reproduces that
representation faithfully: values are stored as ``a * R mod p`` with
``R = 2**(64 * limbs)``, and :meth:`MontgomeryContext.redc` implements the
word-by-word reduction a CUDA kernel would perform.

The plain-int fast paths elsewhere in the library do not use Montgomery
form (Python's ``%`` is already a single operation); this module exists
for fidelity, for the cost model's per-multiplication work estimates, and
as a reference for the arithmetic the simulated kernels account for.
"""

from __future__ import annotations

from repro.errors import FieldError
from repro.field.prime_field import PrimeField

__all__ = ["MontgomeryContext", "MontgomeryElement"]

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


class MontgomeryContext:
    """Montgomery arithmetic for a given :class:`PrimeField`.

    Parameters
    ----------
    field:
        Field supplying the modulus.
    limbs:
        Number of 64-bit limbs; defaults to the minimum that holds ``p``.
    """

    __slots__ = ("field", "limbs", "r", "r_mask", "r_bits", "n_prime",
                 "r2", "one")

    def __init__(self, field: PrimeField, limbs: int | None = None):
        p = field.modulus
        if p % 2 == 0:
            raise FieldError("Montgomery arithmetic requires an odd modulus")
        min_limbs = (p.bit_length() + _WORD_BITS - 1) // _WORD_BITS
        self.limbs = limbs if limbs is not None else min_limbs
        if self.limbs < min_limbs:
            raise FieldError(
                f"{self.limbs} limbs cannot hold a {p.bit_length()}-bit modulus")
        self.field = field
        self.r_bits = self.limbs * _WORD_BITS
        self.r = 1 << self.r_bits
        self.r_mask = self.r - 1
        # n_prime = -p^-1 mod R, the REDC magic constant.
        self.n_prime = (-pow(p, -1, self.r)) % self.r
        self.r2 = self.r * self.r % p
        self.one = self.r % p

    def __repr__(self) -> str:
        return f"MontgomeryContext({self.field.name}, limbs={self.limbs})"

    # -- core reduction -------------------------------------------------------

    def redc(self, t: int) -> int:
        """Montgomery reduction: return ``t * R^-1 mod p`` for t < p*R."""
        p = self.field.modulus
        m = (t & self.r_mask) * self.n_prime & self.r_mask
        u = (t + m * p) >> self.r_bits
        return u - p if u >= p else u

    def redc_wordwise(self, t: int) -> int:
        """REDC performed limb by limb, as a fixed-width kernel would.

        Algebraically identical to :meth:`redc`; kept as the reference for
        the per-limb operation counts used by the cost model.
        """
        p = self.field.modulus
        for _ in range(self.limbs):
            m = (t & _WORD_MASK) * self.n_prime & _WORD_MASK
            t = (t + m * p) >> _WORD_BITS
        return t - p if t >= p else t

    # -- conversions ------------------------------------------------------------

    def to_mont(self, a: int) -> int:
        """Convert canonical ``a`` to Montgomery form ``a*R mod p``."""
        return self.redc(a % self.field.modulus * self.r2)

    def from_mont(self, a_mont: int) -> int:
        """Convert Montgomery form back to canonical representation."""
        return self.redc(a_mont)

    # -- arithmetic in Montgomery form -------------------------------------------

    def mont_mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form values; result stays in form."""
        return self.redc(a_mont * b_mont)

    def mont_add(self, a_mont: int, b_mont: int) -> int:
        s = a_mont + b_mont
        p = self.field.modulus
        return s - p if s >= p else s

    def mont_sub(self, a_mont: int, b_mont: int) -> int:
        d = a_mont - b_mont
        return d + self.field.modulus if d < 0 else d

    def mont_pow(self, a_mont: int, e: int) -> int:
        """Square-and-multiply exponentiation in Montgomery form."""
        if e < 0:
            raise FieldError("mont_pow requires a non-negative exponent")
        result = self.one
        base = a_mont
        while e:
            if e & 1:
                result = self.mont_mul(result, base)
            base = self.mont_mul(base, base)
            e >>= 1
        return result

    def mont_inv(self, a_mont: int) -> int:
        """Inverse in Montgomery form (Fermat's little theorem)."""
        if a_mont == 0:
            raise FieldError("zero has no multiplicative inverse")
        return self.mont_pow(a_mont, self.field.modulus - 2)

    # -- cost accounting ----------------------------------------------------------

    def mul_word_ops(self) -> int:
        """64x64->128-bit multiply count for one field multiplication.

        A schoolbook ``limbs x limbs`` product plus the REDC pass: this is
        what one modular multiply costs a 64-bit GPU core, and what the
        analytic cost model charges per butterfly multiply.
        """
        return self.limbs * self.limbs + self.limbs * (self.limbs + 1)

    def element(self, a: int) -> "MontgomeryElement":
        """Wrap canonical ``a`` as a Montgomery-form element."""
        return MontgomeryElement(self, self.to_mont(a))


class MontgomeryElement:
    """A field element stored in Montgomery form, with operators."""

    __slots__ = ("ctx", "mont")

    def __init__(self, ctx: MontgomeryContext, mont_value: int):
        self.ctx = ctx
        self.mont = mont_value

    def _coerce(self, other: object) -> int | None:
        if isinstance(other, MontgomeryElement):
            if other.ctx.field != self.ctx.field:
                raise FieldError("cannot mix Montgomery elements of "
                                 "different fields")
            return other.mont
        if isinstance(other, int):
            return self.ctx.to_mont(other)
        return None

    def __add__(self, other: object) -> "MontgomeryElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return MontgomeryElement(self.ctx, self.ctx.mont_add(self.mont, v))

    __radd__ = __add__

    def __sub__(self, other: object) -> "MontgomeryElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return MontgomeryElement(self.ctx, self.ctx.mont_sub(self.mont, v))

    def __mul__(self, other: object) -> "MontgomeryElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return MontgomeryElement(self.ctx, self.ctx.mont_mul(self.mont, v))

    __rmul__ = __mul__

    def __pow__(self, e: int) -> "MontgomeryElement":
        return MontgomeryElement(self.ctx, self.ctx.mont_pow(self.mont, e))

    def inverse(self) -> "MontgomeryElement":
        return MontgomeryElement(self.ctx, self.ctx.mont_inv(self.mont))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MontgomeryElement):
            return (self.ctx.field == other.ctx.field
                    and self.mont == other.mont)
        if isinstance(other, int):
            return self.canonical == other % self.ctx.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.ctx.field.modulus, self.mont))

    @property
    def canonical(self) -> int:
        """The canonical (non-Montgomery) integer value."""
        return self.ctx.from_mont(self.mont)

    def __repr__(self) -> str:
        return f"Mont({self.canonical}∈{self.ctx.field.name})"
