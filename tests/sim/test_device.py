"""Tests for the simulated GPU device."""

import pytest

from repro.errors import SimulationError
from repro.field import TEST_FIELD_97
from repro.sim import SimGPU


class TestDevice:
    def test_construction(self):
        gpu = SimGPU(3, TEST_FIELD_97)
        assert gpu.gpu_id == 3
        assert gpu.shard == []
        assert gpu.counters.snapshot() == {
            "bytes_sent": 0, "bytes_received": 0, "mem_traffic_bytes": 0,
            "field_muls": 0, "kernel_launches": 0,
        }

    def test_negative_id_rejected(self):
        with pytest.raises(SimulationError, match="gpu_id"):
            SimGPU(-1, TEST_FIELD_97)

    def test_load_copies(self):
        gpu = SimGPU(0, TEST_FIELD_97)
        data = [1, 2, 3]
        gpu.load(data)
        data.append(4)
        assert gpu.shard == [1, 2, 3]

    def test_require_shard(self):
        gpu = SimGPU(0, TEST_FIELD_97)
        gpu.load([1, 2])
        gpu.require_shard(2)
        with pytest.raises(SimulationError, match="expected"):
            gpu.require_shard(3)

    def test_charges_accumulate(self):
        gpu = SimGPU(0, TEST_FIELD_97)
        gpu.charge_compute(field_muls=10, mem_bytes=100)
        gpu.charge_compute(field_muls=5, mem_bytes=50, launches=2)
        gpu.charge_send(32)
        gpu.charge_receive(64)
        counters = gpu.counters
        assert counters.field_muls == 15
        assert counters.mem_traffic_bytes == 150
        assert counters.kernel_launches == 3
        assert counters.bytes_sent == 32
        assert counters.bytes_received == 64

    def test_negative_charges_rejected(self):
        gpu = SimGPU(0, TEST_FIELD_97)
        with pytest.raises(SimulationError):
            gpu.charge_compute(-1)
        with pytest.raises(SimulationError):
            gpu.charge_send(-1)
        with pytest.raises(SimulationError):
            gpu.charge_receive(-1)

    def test_reset(self):
        gpu = SimGPU(0, TEST_FIELD_97)
        gpu.charge_compute(10, 10)
        gpu.reset_counters()
        assert gpu.counters.field_muls == 0

    def test_repr(self):
        gpu = SimGPU(1, TEST_FIELD_97)
        gpu.load([1, 2, 3])
        assert "id=1" in repr(gpu)
        assert "3 elems" in repr(gpu)
