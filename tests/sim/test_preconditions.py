"""Collective precondition memoization: validate once per shape.

Repeated collectives of an identical shape (the common case: a batched
or served run re-executes the same exchange pattern every dispatch)
must not re-pay the O(G^2) precondition walk — but a shape must only
enter the cache after its validation *passes*, so a bad collective is
rejected every time it is offered.
"""

import pytest

from repro.errors import SimulationError
from repro.field import TEST_FIELD_7681
from repro.sim import SimCluster

F = TEST_FIELD_7681


def _outboxes(cluster):
    g = cluster.gpu_count
    return [[[int(src * g + dst)] for dst in range(g)]
            for src in range(g)]


def test_all_to_all_hit_miss_counts_are_pinned():
    cluster = SimCluster(F, 4)
    for gpu in cluster.gpus:
        gpu.load([0])
    for _ in range(5):
        cluster.all_to_all(_outboxes(cluster))
    assert cluster.precondition_misses == 1
    assert cluster.precondition_hits == 4


def test_pairwise_hit_miss_counts_are_pinned():
    cluster = SimCluster(F, 4)
    for gpu in cluster.gpus:
        gpu.load([1, 2])
    partner = [1, 0, 3, 2]
    for _ in range(3):
        cluster.pairwise_exchange(partner, [[7], [8], [9], [10]])
    assert cluster.precondition_misses == 1
    assert cluster.precondition_hits == 2


def test_distinct_shapes_are_distinct_cache_keys():
    cluster = SimCluster(F, 4)
    for gpu in cluster.gpus:
        gpu.load([1, 2])
    cluster.all_to_all(_outboxes(cluster))
    cluster.pairwise_exchange([1, 0, 3, 2], [[7], [8], [9], [10]])
    cluster.pairwise_exchange([3, 2, 1, 0], [[7], [8], [9], [10]])
    assert cluster.precondition_misses == 3
    assert cluster.precondition_hits == 0


def test_invalid_shapes_are_never_cached():
    cluster = SimCluster(F, 4)
    for gpu in cluster.gpus:
        gpu.load([1])
    bad_partner = [1, 0, 3, 3]  # not an involution
    for _ in range(3):
        with pytest.raises(SimulationError):
            cluster.pairwise_exchange(bad_partner, [[1], [2], [3], [4]])
    # Rejected every time: the failing shape never produced a hit.
    assert cluster.precondition_hits == 0
    assert cluster.precondition_misses == 3


def test_engine_reuse_actually_hits_the_cache():
    from repro.multigpu import DistributedVector, UniNTTEngine

    cluster = SimCluster(F, 4)
    engine = UniNTTEngine(cluster)
    import random
    values = F.random_vector(64, random.Random(1))
    for _ in range(3):
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(64))
        engine.forward(vec)
    assert cluster.precondition_hits > 0
    assert cluster.precondition_misses < \
        cluster.precondition_hits + cluster.precondition_misses
