"""F15: STARK (hash-based) end-to-end proof generation."""

from repro.bench import stark_end_to_end


def test_f15_stark(benchmark, emit):
    table = benchmark(stark_end_to_end)
    emit("F15_stark_end_to_end",
         "F15: STARK proof generation on DGX-A100 (Goldilocks, 96 "
         "columns, blowup 8)", table)
