"""Serving reports: latency, batching, and cache accounting.

A :class:`ServeReport` is the serving run's complete account — every
dispatch's phase profile (so the run folds back into the analytic cost
model of :mod:`repro.hw.cost`), per-request latencies with
deterministic percentiles, cache hit/miss/eviction counts, and the
admission/batching/retry tallies.  Its :meth:`ServeReport.plan_cost`
prices the whole run as a validating
:class:`~repro.hw.plancost.PlanCost`, the same currency every other
subsystem reports in.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field as dataclass_field

from repro.errors import ServeError
from repro.field.presets import field_by_name
from repro.hw.cost import CostBreakdown, CostModel, Step
from repro.hw.model import MachineModel
from repro.hw.plancost import PlanCost
from repro.serve.request import RequestResult

__all__ = ["DispatchRecord", "ServeReport", "percentile"]


def percentile(sorted_values: list[float], q: float) -> float:
    """Deterministic nearest-rank percentile (no interpolation).

    ``q`` in [0, 1]; the values must already be sorted ascending.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ServeError(f"percentile q must be in [0, 1], got {q}")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class DispatchRecord:
    """One dispatched batch: what ran, for how long, at what price."""

    batch_id: int
    field_name: str
    log_size: int
    direction: str
    strategy: str
    requests: int
    vectors: int
    duration_s: float
    attempts: int
    steps: tuple[Step, ...]
    #: ``"multi-gpu"`` for the primary engine, ``"single-gpu"`` when
    #: the degradation controller diverted the batch to the fallback.
    engine: str = "multi-gpu"


@dataclass
class ServeReport:
    """Accumulated statistics of one serving run."""

    machine_name: str
    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    deadline_misses: int = 0
    retries: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    twiddle_hits: int = 0
    twiddle_misses: int = 0
    twiddle_evictions: int = 0
    shed: int = 0
    breaker_trips: int = 0
    breaker_probes: int = 0
    fallback_dispatches: int = 0
    journal_records: int = 0
    snapshots: int = 0
    recoveries: int = 0
    recovered_requests: int = 0
    replayed_records: int = 0
    rejection_s: float = 0.0
    shed_s: float = 0.0
    journal_s: float = 0.0
    recovery_s: float = 0.0
    makespan_s: float = 0.0
    dispatches: list[DispatchRecord] = dataclass_field(default_factory=list)
    results: list[RequestResult] = dataclass_field(default_factory=list)
    rejected_by_tenant: dict[str, int] = dataclass_field(
        default_factory=dict)
    shed_by_tenant: dict[str, int] = dataclass_field(default_factory=dict)

    # -- batching ------------------------------------------------------------

    @property
    def batches(self) -> int:
        return len(self.dispatches)

    def strategy_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.dispatches:
            counts[record.strategy] = counts.get(record.strategy, 0) + 1
        return dict(sorted(counts.items()))

    def mean_batch_requests(self) -> float:
        if not self.dispatches:
            return 0.0
        return sum(r.requests for r in self.dispatches) / len(self.dispatches)

    # -- latency -------------------------------------------------------------

    def latencies_s(self) -> list[float]:
        """Completed requests' latencies, ascending."""
        return sorted(r.latency_s for r in self.results)

    def latency_percentiles_s(self) -> dict[str, float]:
        lats = self.latencies_s()
        return {
            "max": lats[-1] if lats else 0.0,
            "p50": percentile(lats, 0.50),
            "p90": percentile(lats, 0.90),
            "p99": percentile(lats, 0.99),
        }

    def throughput_rps(self) -> float:
        """Completed requests per virtual second of makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.completed / self.makespan_s

    # -- per-tenant accounting -----------------------------------------------

    def note_rejected(self, tenant_id: str) -> None:
        self.rejected_by_tenant[tenant_id] = \
            self.rejected_by_tenant.get(tenant_id, 0) + 1

    def note_shed(self, tenant_id: str) -> None:
        self.shed_by_tenant[tenant_id] = \
            self.shed_by_tenant.get(tenant_id, 0) + 1

    def tenant_breakdown(self) -> dict[str, dict[str, object]]:
        """Per-tenant completion/latency/shed accounting (sorted keys).

        Tenants appear if they completed, were rejected, or were shed;
        the QoS layer's fairness tests and the fleet report's
        per-tenant summary both read this.
        """
        by_tenant: dict[str, list[RequestResult]] = {}
        for result in self.results:
            by_tenant.setdefault(
                result.request.tenant_id, []).append(result)
        tenants = sorted(set(by_tenant)
                         | set(self.rejected_by_tenant)
                         | set(self.shed_by_tenant))
        breakdown: dict[str, dict[str, object]] = {}
        for tenant in tenants:
            results = by_tenant.get(tenant, [])
            lats = sorted(r.latency_s for r in results)
            breakdown[tenant] = {
                "completed": len(results),
                "deadline_misses": sum(
                    1 for r in results if not r.deadline_met),
                "p50_latency_s": percentile(lats, 0.50),
                "p99_latency_s": percentile(lats, 0.99),
                "rejected": self.rejected_by_tenant.get(tenant, 0),
                "shed": self.shed_by_tenant.get(tenant, 0),
                "vectors": sum(r.request.batch for r in results),
            }
        return breakdown

    # -- cost-model folding --------------------------------------------------

    def breakdown_by_field(
            self, machine: MachineModel) -> dict[str, CostBreakdown]:
        """Price every dispatch's phases, grouped by field.

        The cost model binds a field (limb count sets the multiply
        rate), so a mixed-field run is priced per field and merged by
        :meth:`plan_cost`.
        """
        steps_by_field: dict[str, list[Step]] = {}
        for record in self.dispatches:
            steps_by_field.setdefault(record.field_name, []).extend(
                record.steps)
        return {
            name: CostModel(machine, field_by_name(name)).estimate(steps)
            for name, steps in sorted(steps_by_field.items())
        }

    def plan_cost(self, machine: MachineModel) -> PlanCost:
        """The run's total modeled cost as a validating PlanCost."""
        total = compute = exchange = 0.0
        bytes_by_level: dict[str, int] = {}
        seconds_by_level: dict[str, float] = {}
        for breakdown in self.breakdown_by_field(machine).values():
            total += breakdown.total_s
            exchange += breakdown.exchange_s
            for level, nbytes in breakdown.exchange_bytes_by_level.items():
                bytes_by_level[level] = bytes_by_level.get(level, 0) + nbytes
        # Refused and shed requests still cost front-door latency, the
        # journal and its snapshots cost group-commit writes, and
        # recovery costs the snapshot restore plus the tail replay.
        # All of that work is pure fabric messaging, so it lands on the
        # exchange side.
        overhead = (self.rejection_s + self.shed_s + self.journal_s
                    + self.recovery_s)
        total += overhead
        exchange += overhead
        if exchange:
            # The cost model does not split exchange seconds by level in
            # its breakdown; attribute them to the multi-GPU fabric (the
            # only level serve dispatches exchange on).
            seconds_by_level["multi-gpu"] = exchange
        compute = total - exchange
        return PlanCost(total_s=total, compute_s=compute,
                        exchange_s_by_level=seconds_by_level,
                        exchange_bytes_by_level=dict(
                            sorted(bytes_by_level.items())))

    def modeled_busy_s(self) -> float:
        """Total modeled service time across all dispatches."""
        return sum(r.duration_s for r in self.dispatches)

    # -- serialization -------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """Sorted-key scalar summary for reports and tests."""
        return {
            "accepted": self.accepted,
            "batches": self.batches,
            "breaker_probes": self.breaker_probes,
            "breaker_trips": self.breaker_trips,
            "completed": self.completed,
            "deadline_misses": self.deadline_misses,
            "fallback_dispatches": self.fallback_dispatches,
            "journal_records": self.journal_records,
            "journal_s": self.journal_s,
            "makespan_s": self.makespan_s,
            "mean_batch_requests": self.mean_batch_requests(),
            "offered": self.offered,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "recovered_requests": self.recovered_requests,
            "recoveries": self.recoveries,
            "recovery_s": self.recovery_s,
            "rejected": self.rejected,
            "rejection_s": self.rejection_s,
            "replayed_records": self.replayed_records,
            "retries": self.retries,
            "shed": self.shed,
            "shed_s": self.shed_s,
            "snapshots": self.snapshots,
            "strategy_counts": self.strategy_counts(),
            "throughput_rps": self.throughput_rps(),
            "twiddle_evictions": self.twiddle_evictions,
            "twiddle_hits": self.twiddle_hits,
            "twiddle_misses": self.twiddle_misses,
        }

    def to_json(self) -> str:
        payload = dict(self.summary())
        payload["latency_percentiles_s"] = self.latency_percentiles_s()
        payload["machine"] = self.machine_name
        payload["modeled_busy_s"] = self.modeled_busy_s()
        payload["tenants"] = self.tenant_breakdown()
        return json.dumps(payload, indent=2, sort_keys=True)
