"""Tests for the preset field catalogue."""

import pytest

from repro.field import (
    ALL_FIELDS, BABYBEAR, BLS12_381_FR, BN254_FR, GOLDILOCKS, TEST_FIELD_97,
    TEST_FIELD_7681, ZKP_FIELDS, field_by_name,
)


class TestKnownParameters:
    """The published constants for each production field."""

    def test_goldilocks(self):
        assert GOLDILOCKS.modulus == (1 << 64) - (1 << 32) + 1
        assert GOLDILOCKS.two_adicity == 32
        assert GOLDILOCKS.modulus.bit_length() == 64

    def test_babybear(self):
        assert BABYBEAR.modulus == 2013265921
        assert BABYBEAR.two_adicity == 27

    def test_bn254(self):
        assert BN254_FR.modulus.bit_length() == 254
        assert BN254_FR.two_adicity == 28

    def test_bls12_381(self):
        assert BLS12_381_FR.modulus.bit_length() == 255
        assert BLS12_381_FR.two_adicity == 32

    def test_test_fields(self):
        assert TEST_FIELD_97.two_adicity == 5
        assert TEST_FIELD_7681.modulus == 7681
        assert TEST_FIELD_7681.two_adicity == 9


class TestGenerators:
    """Each preset generator must generate the full multiplicative group."""

    @pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
    def test_generator_order_two_part(self, field):
        # g^((p-1)/2) != 1 proves the 2-part is full, which is what NTT
        # root derivation relies on.
        g = field.multiplicative_generator
        assert pow(g, (field.modulus - 1) // 2, field.modulus) != 1

    @pytest.mark.parametrize("field", ALL_FIELDS, ids=lambda f: f.name)
    def test_max_order_root_exists(self, field):
        order = 1 << min(field.two_adicity, 16)
        root = field.root_of_unity(order)
        assert field.pow(root, order) == 1
        assert field.pow(root, order // 2) == field.modulus - 1


class TestCatalogue:
    def test_zkp_fields_subset(self):
        assert set(ZKP_FIELDS) <= set(ALL_FIELDS)
        assert len(ZKP_FIELDS) == 4

    def test_field_by_name(self):
        assert field_by_name("Goldilocks") is GOLDILOCKS
        assert field_by_name("BN254-Fr") is BN254_FR

    def test_field_by_name_unknown(self):
        with pytest.raises(KeyError, match="no preset field"):
            field_by_name("nope")

    def test_names_unique(self):
        names = [f.name for f in ALL_FIELDS]
        assert len(names) == len(set(names))
