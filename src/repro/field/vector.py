"""Bulk operations on vectors of raw field values.

The NTT engines represent data as plain Python lists of integers in
``[0, p)`` ("raw vectors").  This module collects the vectorized helpers
shared by the transform engines, the polynomial algebra and the
simulator, so element-wise loops live in one place.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import FieldError
from repro.field.prime_field import PrimeField

__all__ = [
    "vec_add", "vec_sub", "vec_mul", "vec_scale", "vec_neg",
    "vec_pow_series", "vec_inv", "vec_dot", "vec_sum", "validate_vector",
]


def validate_vector(field: PrimeField, values: Sequence[int]) -> None:
    """Check that every entry is a canonical field value.

    Used at simulator boundaries to catch corrupted shards early.
    """
    p = field.modulus
    for i, v in enumerate(values):
        if not isinstance(v, int) or not 0 <= v < p:
            raise FieldError(
                f"index {i}: {v!r} is not a canonical value of {field.name}")


def vec_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Element-wise ``a + b`` mod p."""
    p = field.modulus
    return [(x + y) % p for x, y in zip(a, b, strict=True)]


def vec_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Element-wise ``a - b`` mod p."""
    p = field.modulus
    return [(x - y) % p for x, y in zip(a, b, strict=True)]


def vec_mul(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Element-wise (Hadamard) product mod p."""
    p = field.modulus
    return [x * y % p for x, y in zip(a, b, strict=True)]


def vec_scale(field: PrimeField, a: Sequence[int], s: int) -> list[int]:
    """Multiply every entry by the scalar ``s``."""
    p = field.modulus
    return [x * s % p for x in a]


def vec_neg(field: PrimeField, a: Sequence[int]) -> list[int]:
    """Element-wise negation mod p."""
    p = field.modulus
    return [(p - x) % p for x in a]


def vec_pow_series(field: PrimeField, base: int, n: int,
                   start: int = 1) -> list[int]:
    """Geometric series ``[start, start*base, ..., start*base^(n-1)]``.

    This is the twiddle-table generator: successive powers of a root.
    """
    p = field.modulus
    out = []
    acc = start % p
    for _ in range(n):
        out.append(acc)
        acc = acc * base % p
    return out


def vec_inv(field: PrimeField, a: Sequence[int]) -> list[int]:
    """Batch inversion via Montgomery's trick: one inversion for n values.

    Raises :class:`FieldError` if any entry is zero.
    """
    p = field.modulus
    n = len(a)
    prefix = [1] * (n + 1)
    for i, v in enumerate(a):
        if v == 0:
            raise FieldError(f"batch inversion hit zero at index {i}")
        prefix[i + 1] = prefix[i] * v % p
    inv_all = field.inv(prefix[n])
    out = [0] * n
    for i in range(n - 1, -1, -1):
        out[i] = prefix[i] * inv_all % p
        inv_all = inv_all * a[i] % p
    return out


def vec_dot(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> int:
    """Inner product mod p."""
    p = field.modulus
    return sum(x * y for x, y in zip(a, b, strict=True)) % p


def vec_sum(field: PrimeField, a: Sequence[int]) -> int:
    """Sum of all entries mod p."""
    return sum(a) % field.modulus
