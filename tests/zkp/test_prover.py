"""Tests for the Groth16-style prover."""

import dataclasses

import pytest

from repro.errors import ProverError
from repro.field import BN254_FR, GOLDILOCKS
from repro.zkp import (
    BN254_G1, Polynomial, Prover, QAP, square_chain, trusted_setup,
)

TAU = 0xC0FFEE_DECAF


@pytest.fixture(scope="module")
def setup():
    r1cs, witness = square_chain(BN254_FR, steps=6)
    qap = QAP(r1cs)
    key = trusted_setup(qap.domain.size, TAU)
    return Prover(qap, key), witness


class TestSetup:
    def test_powers_structure(self):
        key = trusted_setup(4, TAU)
        gen = BN254_G1.generator()
        assert key.size == 4
        assert key.tau_powers[0] == gen
        assert key.tau_powers[1] == gen * TAU
        assert key.tau_powers[3] == gen * pow(TAU, 3, BN254_G1.order)

    def test_validation(self):
        with pytest.raises(ProverError, match="size"):
            trusted_setup(0, TAU)
        with pytest.raises(ProverError, match="non-zero"):
            trusted_setup(4, BN254_G1.order)

    def test_commit_is_evaluation_in_exponent(self):
        key = trusted_setup(8, TAU)
        poly = Polynomial(BN254_FR, [3, 1, 4, 1, 5])
        commitment = key.commit(poly)
        assert commitment == BN254_G1.generator() * poly.evaluate(TAU)

    def test_commit_zero(self):
        key = trusted_setup(4, TAU)
        assert key.commit(Polynomial.zero(BN254_FR)).is_infinity()

    def test_commit_degree_bound(self):
        key = trusted_setup(4, TAU)
        with pytest.raises(ProverError, match="degree"):
            key.commit(Polynomial.monomial(BN254_FR, 4))


class TestProver:
    def test_proof_verifies(self, setup):
        prover, witness = setup
        proof, polys = prover.prove(witness)
        assert prover.check(proof, polys, TAU)

    def test_commitments_nontrivial(self, setup):
        prover, witness = setup
        proof, _ = prover.prove(witness)
        assert not proof.commit_a.is_infinity()
        assert not proof.commit_h.is_infinity()

    def test_tampered_commitment_rejected(self, setup):
        prover, witness = setup
        proof, polys = prover.prove(witness)
        bad = dataclasses.replace(
            proof, commit_a=proof.commit_a + BN254_G1.generator())
        assert not prover.check(bad, polys, TAU)

    def test_swapped_commitments_rejected(self, setup):
        prover, witness = setup
        proof, polys = prover.prove(witness)
        bad = dataclasses.replace(proof, commit_a=proof.commit_b,
                                  commit_b=proof.commit_a)
        assert not prover.check(bad, polys, TAU)

    def test_inconsistent_h_rejected(self, setup):
        """A proof whose H does not satisfy the QAP identity fails even
        if all commitments open correctly."""
        prover, witness = setup
        _, polys = prover.prove(witness)
        fake_h = polys.h + Polynomial.one(BN254_FR)
        fake_polys = dataclasses.replace(polys, h=fake_h)
        fake_proof = dataclasses.replace(
            prover.prove(witness)[0], commit_h=prover.key.commit(fake_h))
        assert not prover.check(fake_proof, fake_polys, TAU)

    def test_wrong_field_rejected(self):
        r1cs, _ = square_chain(GOLDILOCKS, steps=3)
        qap = QAP(r1cs)
        key = trusted_setup(qap.domain.size, TAU)
        with pytest.raises(ProverError, match="scalar field"):
            Prover(qap, key)

    def test_undersized_setup_rejected(self):
        r1cs, _ = square_chain(BN254_FR, steps=10)
        qap = QAP(r1cs)
        key = trusted_setup(qap.domain.size // 2, TAU)
        with pytest.raises(ProverError, match="setup of size"):
            Prover(qap, key)

    def test_unsatisfying_witness_rejected(self, setup):
        prover, witness = setup
        bad = list(witness)
        bad[2] = (bad[2] + 1) % BN254_FR.modulus
        from repro.errors import CircuitError
        with pytest.raises(CircuitError):
            prover.prove(bad)


class TestBlinding:
    def test_blinded_proof_verifies(self, setup):
        prover, witness = setup
        key = trusted_setup(prover.qap.domain.size + 1, TAU)
        blinding_prover = Prover(prover.qap, key)
        proof, polys = blinding_prover.prove(witness,
                                             blinding=(12345, 67890))
        assert blinding_prover.check(proof, polys, TAU)

    def test_blinding_preserves_qap_identity(self, setup):
        prover, witness = setup
        key = trusted_setup(prover.qap.domain.size + 1, TAU)
        blinding_prover = Prover(prover.qap, key)
        _, polys = blinding_prover.prove(witness, blinding=(7, 11))
        assert prover.qap.check_divisibility(polys)

    def test_blinding_changes_commitments(self, setup):
        """The hiding property: different randomness, different proof."""
        prover, witness = setup
        key = trusted_setup(prover.qap.domain.size + 1, TAU)
        blinding_prover = Prover(prover.qap, key)
        proof_plain, _ = blinding_prover.prove(witness)
        proof_r1, _ = blinding_prover.prove(witness, blinding=(1, 2))
        proof_r2, _ = blinding_prover.prove(witness, blinding=(3, 4))
        assert proof_r1.commit_a != proof_plain.commit_a
        assert proof_r1.commit_a != proof_r2.commit_a
        assert proof_r1.commit_h != proof_r2.commit_h

    def test_blinding_needs_bigger_setup(self, setup):
        prover, witness = setup  # setup sized exactly to the domain
        with pytest.raises(ProverError, match="domain\\+1"):
            prover.prove(witness, blinding=(1, 2))

    def test_zero_blinding_is_plain_proof(self, setup):
        prover, witness = setup
        key = trusted_setup(prover.qap.domain.size + 1, TAU)
        blinding_prover = Prover(prover.qap, key)
        proof_plain, _ = blinding_prover.prove(witness)
        proof_zero, _ = blinding_prover.prove(witness, blinding=(0, 0))
        assert proof_plain == proof_zero
