"""ProofRequest validation, determinism, and ordering keys."""

import pytest

from repro.errors import ServeError
from repro.serve import ProofRequest


def _request(**overrides):
    base = dict(request_id=0, field_name="Goldilocks", log_size=4)
    base.update(overrides)
    return ProofRequest(**base)


def test_validation_rejects_bad_requests():
    with pytest.raises(ServeError):
        _request(direction="sideways")
    with pytest.raises(ServeError):
        _request(log_size=0)
    with pytest.raises(ServeError):
        _request(batch=0)
    with pytest.raises(ServeError):
        _request(arrival_s=-1.0)
    with pytest.raises(ServeError):
        _request(arrival_s=2.0, deadline_s=1.0)
    with pytest.raises(KeyError):
        _request(field_name="NoSuchField")
    # Size beyond the field's two-adicity cannot be transformed.
    with pytest.raises(ServeError):
        _request(field_name="GF(97)", log_size=6)


def test_data_is_a_pure_function_of_seed_and_identity():
    a = _request(request_id=7, data_seed=3, batch=2)
    b = _request(request_id=7, data_seed=3, batch=2)
    assert a.vectors() == b.vectors()
    assert _request(request_id=8, data_seed=3).vectors() != \
        _request(request_id=7, data_seed=3).vectors()
    assert _request(request_id=7, data_seed=4).vectors() != \
        _request(request_id=7, data_seed=3).vectors()


def test_shape_key_ignores_scheduling_fields():
    a = _request(request_id=1, priority=5, arrival_s=2.0, deadline_s=9.0)
    b = _request(request_id=2)
    assert a.shape_key() == b.shape_key()
    assert a.shape_key() != _request(direction="inverse").shape_key()


def test_urgency_is_deadline_first_then_priority_then_arrival():
    deadline = _request(request_id=1, arrival_s=5.0, deadline_s=9.0)
    best_effort = _request(request_id=2, arrival_s=0.0, priority=-10)
    assert deadline.urgency_key() < best_effort.urgency_key()
    early = _request(request_id=3, arrival_s=1.0)
    late = _request(request_id=4, arrival_s=2.0)
    assert early.urgency_key() < late.urgency_key()
