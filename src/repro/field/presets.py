"""NTT-friendly prime fields used by real ZKP systems.

The constants below are the standard published parameters:

* **Goldilocks** ``2^64 - 2^32 + 1`` — Plonky2 / Polygon Zero.
* **BabyBear** ``15 * 2^27 + 1`` — RISC Zero / Plonky3.
* **BN254 scalar field** — Groth16 on Ethereum (alt_bn128 / BN254 G1 order).
* **BLS12-381 scalar field** — ZCash Sapling, bellman.
* Two small fields for exhaustive tests.
"""

from __future__ import annotations

from repro.field.prime_field import PrimeField

__all__ = [
    "GOLDILOCKS", "BABYBEAR", "BN254_FR", "BLS12_381_FR",
    "TEST_FIELD_97", "TEST_FIELD_7681", "ZKP_FIELDS", "ALL_FIELDS",
    "field_by_name",
]

#: Goldilocks: p - 1 = 2^32 * (2^32 - 1); two-adicity 32; 7 generates GF(p)*.
GOLDILOCKS = PrimeField((1 << 64) - (1 << 32) + 1, generator=7,
                        name="Goldilocks")

#: BabyBear: p = 15 * 2^27 + 1; two-adicity 27; 31 generates GF(p)*.
BABYBEAR = PrimeField(15 * (1 << 27) + 1, generator=31, name="BabyBear")

#: BN254 (alt_bn128) scalar field; two-adicity 28; generator 5.
BN254_FR = PrimeField(
    21888242871839275222246405745257275088548364400416034343698204186575808495617,
    generator=5, name="BN254-Fr")

#: BLS12-381 scalar field; two-adicity 32; generator 7.
BLS12_381_FR = PrimeField(
    52435875175126190479447740508185965837690552500527637822603658699938581184513,
    generator=7, name="BLS12-381-Fr")

#: 97 - 1 = 2^5 * 3: supports NTTs up to size 32; tiny enough to enumerate.
TEST_FIELD_97 = PrimeField(97, generator=5, name="GF(97)")

#: 7681 = 15 * 2^9 + 1 (a Kyber-era NTT prime): sizes up to 512.
TEST_FIELD_7681 = PrimeField(7681, generator=17, name="GF(7681)")

#: The production fields ZKP systems transform over.
ZKP_FIELDS = (GOLDILOCKS, BABYBEAR, BN254_FR, BLS12_381_FR)

#: Everything, including the test fields.
ALL_FIELDS = ZKP_FIELDS + (TEST_FIELD_97, TEST_FIELD_7681)


def field_by_name(name: str) -> PrimeField:
    """Look up a preset field by its ``name`` attribute."""
    for field in ALL_FIELDS:
        if field.name == name:
            return field
    raise KeyError(f"no preset field named {name!r}; "
                   f"known: {[f.name for f in ALL_FIELDS]}")
