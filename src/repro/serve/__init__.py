"""Proof-serving layer: deterministic request scheduling and batching.

The subsystem the ZK-prover story needs on top of raw transforms: a
server that accepts a stream of NTT requests, coalesces compatible ones
into cross-request batches, reuses plans and twiddle tables across
requests, and prices every decision — admission, planning, staging,
retries — in the same analytic cost model as the engines themselves.

Entry points:

* :class:`ProofServer` — the scheduler (`serve(requests) -> ServeReport`);
* :func:`generate_workload` / :func:`workload_from_json` — workloads;
* :class:`ServeReport` — latency percentiles, batching and cache
  statistics, and cost-model folding for a completed run;
* :class:`WriteAheadJournal` / :class:`RecoveryManager` /
  :func:`serve_durably` — crash-consistent serving (see
  :mod:`repro.serve.durability`);
* :class:`DegradePolicy` / :class:`CircuitBreaker` — graceful
  degradation under sustained faults (see :mod:`repro.serve.degrade`);
* :class:`FleetServer` / :class:`FleetPolicy` / :class:`FleetReport` —
  a replicated fleet with failure detection, journaled failover, work
  stealing, and per-tenant QoS (see :mod:`repro.serve.fleet` and
  :mod:`repro.serve.qos`).
"""

from repro.serve.cache import (
    PLAN_MISS_MESSAGES, STRATEGIES, PlanCache, PlanEntry, TwiddleLedger,
)
from repro.serve.clock import VirtualClock
from repro.serve.degrade import BREAKER_STATES, CircuitBreaker, DegradePolicy
from repro.serve.durability import (
    JOURNAL_KINDS, JOURNAL_MESSAGES, RECOVER_MESSAGES,
    REPLAY_MESSAGES_PER_RECORD, SNAPSHOT_MESSAGES, JournalRecord,
    RecoveryManager, RecoveryOutcome, ResumeState, ServerSnapshot,
    WriteAheadJournal, output_digest, replay_journal, serve_durably,
)
from repro.serve.fleet import (
    FAILOVER_MESSAGES, HEARTBEAT_MESSAGES, ROUTE_MESSAGES,
    STEAL_MESSAGES, ConsistentHashRouter, FleetPolicy, FleetReport,
    FleetServer,
)
from repro.serve.qos import WeightedFairQueue
from repro.serve.queue import AdmissionQueue
from repro.serve.report import DispatchRecord, ServeReport, percentile
from repro.serve.request import DIRECTIONS, ProofRequest, RequestResult
from repro.serve.scheduler import (
    DISPATCH_MESSAGES, REJECT_MESSAGES, ProofServer,
)
from repro.serve.workload import (
    WorkloadSpec, generate_workload, iter_workload, workload_from_json,
    workload_to_json,
)

__all__ = [
    "BREAKER_STATES", "DIRECTIONS", "DISPATCH_MESSAGES",
    "FAILOVER_MESSAGES", "HEARTBEAT_MESSAGES", "JOURNAL_KINDS",
    "JOURNAL_MESSAGES", "PLAN_MISS_MESSAGES", "RECOVER_MESSAGES",
    "REJECT_MESSAGES", "REPLAY_MESSAGES_PER_RECORD", "ROUTE_MESSAGES",
    "SNAPSHOT_MESSAGES", "STEAL_MESSAGES", "STRATEGIES",
    "AdmissionQueue", "CircuitBreaker", "ConsistentHashRouter",
    "DegradePolicy", "DispatchRecord", "FleetPolicy", "FleetReport",
    "FleetServer", "JournalRecord", "PlanCache", "PlanEntry",
    "ProofRequest", "ProofServer", "RecoveryManager", "RecoveryOutcome",
    "RequestResult", "ResumeState", "ServeReport", "ServerSnapshot",
    "TwiddleLedger", "VirtualClock", "WeightedFairQueue", "WorkloadSpec",
    "WriteAheadJournal", "generate_workload", "iter_workload",
    "output_digest", "percentile", "replay_journal", "serve_durably",
    "workload_from_json", "workload_to_json",
]
