"""Vectorized Goldilocks arithmetic (numpy uint64 kernels).

The Goldilocks prime ``p = 2^64 - 2^32 + 1`` is loved by ZKP systems
precisely because its reduction is branch-light 64-bit arithmetic:
``2^64 = 2^32 - 1 (mod p)`` and ``2^96 = -1 (mod p)``, so a 128-bit
product ``lo + hi * 2^64`` (with ``hi = hi_hi * 2^32 + hi_lo``) reduces
as ``lo + hi_lo * (2^32 - 1) - hi_hi``.  This module implements exactly
that kernel on numpy ``uint64`` lanes — the same instruction mix a GPU
thread executes — giving the repository a wall-clock-meaningful fast
path alongside the arbitrary-precision reference.

All functions take/return canonical values (``< p``) as ``uint64``
arrays; the 128-bit product is assembled from four 32x32 partial
products with explicit carry tracking (numpy integer ops wrap mod 2^64,
which is what the carry recovery relies on).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FieldError
from repro.field.presets import GOLDILOCKS
from repro.ntt.twiddle import TwiddleCache

__all__ = [
    "GOLDILOCKS_P", "gl_array", "gl_add", "gl_sub", "gl_mul", "gl_scale",
    "gl_neg", "gl_ntt", "gl_intt", "GOLDILOCKS_OPS",
]

#: The Goldilocks modulus as a plain int (fits in uint64).
GOLDILOCKS_P = GOLDILOCKS.modulus

_P = np.uint64(GOLDILOCKS_P)
_MASK32 = np.uint64(0xFFFFFFFF)
_EPS = np.uint64((1 << 32) - 1)  # 2^64 mod p
_SHIFT32 = np.uint64(32)
_C32 = np.uint64(1 << 32)
_ONE = np.uint64(1)


def gl_array(values: Sequence[int]) -> np.ndarray:
    """Validate and pack canonical Goldilocks values into uint64."""
    arr = np.asarray(values, dtype=np.object_)
    out = np.empty(len(arr), dtype=np.uint64)
    for i, v in enumerate(arr):
        if not isinstance(v, (int, np.integer)) or not 0 <= v < GOLDILOCKS_P:
            raise FieldError(
                f"index {i}: {v!r} is not a canonical Goldilocks value")
        out[i] = v
    return out


def _canonical(x: np.ndarray) -> np.ndarray:
    """One conditional subtraction into [0, p)."""
    return np.where(x >= _P, x - _P, x)


def gl_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition mod p (inputs canonical)."""
    s = a + b  # wraps mod 2^64
    s += (s < a) * _EPS  # recover the lost 2^64 = eps mod p
    return _canonical(s)


def gl_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise subtraction mod p (inputs canonical)."""
    d = a - b  # wraps
    return np.where(a < b, d - _EPS, d)


def gl_neg(a: np.ndarray) -> np.ndarray:
    """Element-wise negation mod p."""
    return np.where(a == 0, a, _P - a)


def gl_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise multiplication mod p — the Goldilocks kernel.

    Four 32x32->64 partial products, carry assembly of the 128-bit
    result, then the ``2^64 = 2^32 - 1`` reduction.  Buffers from the
    limb split are reused in place (this kernel dominates transform
    time, and the temporaries are the measured cost).
    """
    a0 = a & _MASK32
    a1 = a >> _SHIFT32
    b0 = b & _MASK32
    b1 = b >> _SHIFT32

    lo = a0 * b0
    hi = a1 * b1
    a0 *= b1          # lh: low*high partial (a0 buffer reused)
    a1 *= b0          # hl: high*low partial
    a0 += a1          # mid = lh + hl, wraps mod 2^64
    carry_mid = a0 < a1
    mid_shifted = a0 << _SHIFT32
    lo += mid_shifted
    carry_lo = lo < mid_shifted
    hi += a0 >> _SHIFT32
    hi += carry_mid * _C32
    hi += carry_lo

    # Reduce lo + hi*2^64 with 2^64 = 2^32 - 1, 2^96 = -1.
    hi_lo = hi & _MASK32
    hi >>= _SHIFT32                 # hi is now hi_hi
    borrow = lo < hi
    lo -= hi
    lo -= borrow * _EPS             # borrow: -2^64 = -eps mod p
    t1 = hi_lo << _SHIFT32
    t1 -= hi_lo                     # hi_lo * (2^32 - 1) < 2^64
    lo += t1
    lo += (lo < t1) * _EPS
    return _canonical(_canonical(lo))


def gl_scale(a: np.ndarray, scalar: int) -> np.ndarray:
    """Multiply every lane by one canonical scalar."""
    if not 0 <= scalar < GOLDILOCKS_P:
        raise FieldError(f"{scalar} is not a canonical Goldilocks value")
    return gl_mul(a, np.full(len(a), scalar, dtype=np.uint64))


def _make_ops():
    from repro.field.simd import LaneOps

    return LaneOps(field=GOLDILOCKS, add=gl_add, sub=gl_sub, mul=gl_mul,
                   scale=gl_scale,
                   pack=lambda vals: np.asarray(vals, dtype=np.uint64))


#: The lane-ops bundle the shared vectorized NTT driver consumes.
GOLDILOCKS_OPS = _make_ops()


def gl_ntt(values: np.ndarray | Sequence[int],
           cache: TwiddleCache | None = None,
           root: int | None = None) -> np.ndarray:
    """Vectorized forward NTT over Goldilocks, natural order in/out.

    Radix-2 DIF with whole-stage numpy butterflies followed by one
    gather for the bit-reversal — the data-parallel shape of a GPU
    kernel, which is exactly why it is fast here too (see
    :mod:`repro.field.simd` for the shared schedule).
    """
    from repro.field.simd import vectorized_ntt

    arr = values if isinstance(values, np.ndarray) \
        else gl_array(list(values))
    return vectorized_ntt(GOLDILOCKS_OPS, arr, cache, root)


def gl_intt(values: np.ndarray | Sequence[int],
            cache: TwiddleCache | None = None,
            root: int | None = None) -> np.ndarray:
    """Vectorized inverse NTT (includes the 1/n scaling)."""
    from repro.field.simd import vectorized_intt

    arr = values if isinstance(values, np.ndarray) \
        else gl_array(list(values))
    return vectorized_intt(GOLDILOCKS_OPS, arr, cache, root)
