"""Tests for the Tate pairing and witness-free KZG verification."""

import dataclasses

import pytest

from repro.errors import CurveError
from repro.field import BABYBEAR
from repro.zkp import (
    Fp2, KzgScheme, Polynomial, TOY_PAIRING_CURVE, TOY_PAIRING_FP,
    kzg_check_with_pairing, tate_pairing, trusted_setup,
)
from repro.zkp.pairing import distortion_ok

G = TOY_PAIRING_CURVE.generator()
R = TOY_PAIRING_CURVE.order


class TestCurveParameters:
    def test_base_field_shape(self):
        p = TOY_PAIRING_FP.modulus
        assert p % 4 == 3                      # sqrt by exponentiation
        assert (p + 1) % R == 0                # r divides the curve order
        assert R == BABYBEAR.modulus           # NTT-friendly scalars

    def test_generator_has_exact_order_r(self):
        assert G.is_on_curve()
        assert (G * R).is_infinity()
        assert not (G * (R // 7)).is_infinity()

    def test_distortion_map_lands_on_curve(self):
        for k in (1, 2, 12345, R - 1):
            assert distortion_ok(G * k)


class TestFp2:
    def test_i_squared_is_minus_one(self):
        i = Fp2(0, 1)
        assert i.square() == Fp2(-1 % TOY_PAIRING_FP.modulus, 0)

    def test_inverse(self):
        x = Fp2(1234, 5678)
        assert x * x.inverse() == Fp2.one()

    def test_zero_inverse_rejected(self):
        with pytest.raises(CurveError):
            Fp2(0, 0).inverse()

    def test_pow_matches_repeated_mul(self):
        x = Fp2(3, 7)
        acc = Fp2.one()
        for _ in range(13):
            acc = acc * x
        assert x.pow(13) == acc

    def test_conjugate_is_frobenius(self):
        """x^p == conjugate(x) for p = 3 (mod 4)."""
        x = Fp2(99, 12345)
        assert x.pow(TOY_PAIRING_FP.modulus) == x.conjugate()


class TestPairing:
    def test_nondegenerate(self):
        e = tate_pairing(G, G)
        assert e != Fp2.one()
        assert e.pow(R) == Fp2.one()  # lands in mu_r

    @pytest.mark.parametrize("a,b", [(2, 3), (17, 91), (R - 1, 5)])
    def test_bilinear(self, a, b):
        assert tate_pairing(G * a, G * b) == \
            tate_pairing(G, G).pow(a * b % R)

    def test_symmetric_in_scalars(self):
        assert tate_pairing(G * 7, G) == tate_pairing(G, G * 7)

    def test_infinity_maps_to_one(self):
        inf = TOY_PAIRING_CURVE.infinity()
        assert tate_pairing(inf, G) == Fp2.one()
        assert tate_pairing(G, inf) == Fp2.one()

    def test_foreign_curve_rejected(self):
        from repro.zkp import BN254_G1
        with pytest.raises(CurveError, match="toy"):
            tate_pairing(BN254_G1.generator(), G)


class TestWitnessFreeKzg:
    @pytest.fixture(scope="class")
    def srs(self):
        return trusted_setup(16, 0xABCDEF, curve=TOY_PAIRING_CURVE)

    def test_honest_opening_verifies(self, srs, rng):
        scheme = KzgScheme(srs)
        poly = Polynomial(BABYBEAR, BABYBEAR.random_vector(12, rng))
        commitment = scheme.commit(poly)
        for point in (0, 1, 999_999):
            opening = scheme.open(poly, point)
            assert kzg_check_with_pairing(srs, commitment, opening)

    def test_wrong_value_rejected(self, srs, rng):
        scheme = KzgScheme(srs)
        poly = Polynomial(BABYBEAR, BABYBEAR.random_vector(8, rng))
        commitment = scheme.commit(poly)
        opening = scheme.open(poly, 55)
        bad = dataclasses.replace(opening, value=(opening.value + 1) % R)
        assert not kzg_check_with_pairing(srs, commitment, bad)

    def test_wrong_witness_rejected(self, srs, rng):
        scheme = KzgScheme(srs)
        poly = Polynomial(BABYBEAR, BABYBEAR.random_vector(8, rng))
        commitment = scheme.commit(poly)
        opening = scheme.open(poly, 55)
        bad = dataclasses.replace(opening, witness=opening.witness + G)
        assert not kzg_check_with_pairing(srs, commitment, bad)

    def test_wrong_commitment_rejected(self, srs, rng):
        scheme = KzgScheme(srs)
        poly_a = Polynomial(BABYBEAR, BABYBEAR.random_vector(8, rng))
        poly_b = poly_a + Polynomial.one(BABYBEAR)
        opening = scheme.open(poly_a, 55)
        assert not kzg_check_with_pairing(srs, scheme.commit(poly_b),
                                          opening)

    def test_wrong_curve_srs_rejected(self):
        from repro.zkp import BN254_G1
        from repro.zkp.kzg import KzgOpening

        bn_srs = trusted_setup(4, 7)  # BN254 SRS: no toy pairing
        fake = KzgOpening(point=1, value=1,
                          witness=BN254_G1.generator())
        with pytest.raises(CurveError, match="SRS"):
            kzg_check_with_pairing(bn_srs, BN254_G1.generator(), fake)
