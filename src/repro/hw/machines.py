"""Machine presets (the reconstructed platforms table, T1).

Throughput and bandwidth figures are the published datasheet numbers;
the 64-bit integer-multiply rates are derived from CUDA-core counts and
clocks (64x64 products executed as four 32-bit IMAD pipelines).  These
are the knobs the analytic cost model consumes — changing them rescales
absolute times but not algorithmic comparisons.
"""

from __future__ import annotations

from repro.hw.model import GpuSpec, MachineModel
from repro.hw.topology import nvlink_ring, nvswitch, pcie_host_staged

__all__ = [
    "V100_GPU", "A100_GPU", "H100_GPU",
    "DGX1_V100", "DGX_A100", "DGX_H100", "A100_PCIE_NODE",
    "ALL_MACHINES", "machine_by_name",
]

#: V100-SXM2: 5120 cores @ 1.53 GHz; ~7.8e12 IMAD32/s -> /4 for 64-bit.
V100_GPU = GpuSpec(
    name="V100-SXM2-32GB",
    word_mul_per_s=1.9e12,
    hbm_bandwidth=0.9e12,
    hbm_capacity_bytes=32 * 2**30,
    sm_count=80,
    smem_per_block_bytes=96 * 1024,
    smem_bandwidth=13e12,
    shuffle_bandwidth=55e12,
)

#: A100-SXM4-80GB: 6912 cores @ 1.41 GHz; ~9.7e12 IMAD32/s -> /4.
A100_GPU = GpuSpec(
    name="A100-SXM4-80GB",
    word_mul_per_s=2.4e12,
    hbm_bandwidth=2.0e12,
    hbm_capacity_bytes=80 * 2**30,
    sm_count=108,
    smem_per_block_bytes=164 * 1024,
    smem_bandwidth=19e12,
    shuffle_bandwidth=80e12,
)

#: H100-SXM5-80GB: 16896 cores @ 1.83 GHz; ~30e12 IMAD32/s -> /4 (approx).
H100_GPU = GpuSpec(
    name="H100-SXM5-80GB",
    word_mul_per_s=7.5e12,
    hbm_bandwidth=3.35e12,
    hbm_capacity_bytes=80 * 2**30,
    sm_count=132,
    smem_per_block_bytes=228 * 1024,
    smem_bandwidth=33e12,
    shuffle_bandwidth=132e12,
)

#: DGX-1: 8x V100 on a hybrid NVLink cube-mesh (~150 GB/s per GPU).
DGX1_V100 = MachineModel(name="DGX-1-V100", gpu=V100_GPU, gpu_count=8,
                         interconnect=nvlink_ring(150e9))

#: DGX A100: 8x A100 behind NVSwitch (600 GB/s per GPU).
DGX_A100 = MachineModel(name="DGX-A100", gpu=A100_GPU, gpu_count=8,
                        interconnect=nvswitch(600e9))

#: DGX H100: 8x H100 behind NVSwitch gen3 (900 GB/s per GPU).
DGX_H100 = MachineModel(name="DGX-H100", gpu=H100_GPU, gpu_count=8,
                        interconnect=nvswitch(900e9))

#: Commodity server: 8x A100-PCIe, no P2P, host-staged PCIe 4.0 x16.
A100_PCIE_NODE = MachineModel(name="A100-PCIe-node", gpu=A100_GPU,
                              gpu_count=8,
                              interconnect=pcie_host_staged(32e9))

ALL_MACHINES = (DGX1_V100, DGX_A100, DGX_H100, A100_PCIE_NODE)


def machine_by_name(name: str) -> MachineModel:
    """Look up a preset machine by name."""
    for machine in ALL_MACHINES:
        if machine.name == name:
            return machine
    raise KeyError(f"no preset machine named {name!r}; "
                   f"known: {[m.name for m in ALL_MACHINES]}")
