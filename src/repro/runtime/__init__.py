"""The shared discrete-event runtime under every simulated subsystem.

Both the serving layer (:mod:`repro.serve`) and the functional
simulator (:mod:`repro.sim`) are discrete-event simulations: nothing
reads wall time, every timestamp lives on an explicit virtual axis,
and every ordering decision is a pure function of the inputs.  This
package is the common substrate they share:

* :class:`~repro.runtime.clock.VirtualClock` — monotonic simulated
  seconds.  Formerly ``repro.serve.clock`` (which now re-exports it);
  hardened here to reject NaN and non-finite advances outright, since
  one silently-absorbed ``nan`` corrupts every later timestamp.
* :class:`~repro.runtime.loop.EventLoop` — a deterministic scheduled-
  event heap on a :class:`VirtualClock`.  Events at equal timestamps
  order by an explicit priority and then by insertion sequence, so two
  runs over the same schedule pop identically.  The replicated fleet
  (:mod:`repro.serve.fleet`) runs N servers' arrivals, completions,
  and heartbeats on one such loop.
* :class:`~repro.runtime.loop.SharedCounter` — a monotonic id source
  shared across components.  The trace's logical step axis
  (:class:`repro.sim.trace.Trace`) and the fleet's globally-unique
  batch ids both draw from one; globally-unique batch ids are what
  lets the duplicate-completion tracecheck rule audit a whole fleet
  from a single shared trace.
"""

from repro.runtime.clock import VirtualClock
from repro.runtime.loop import EventLoop, ScheduledEvent, SharedCounter

__all__ = ["VirtualClock", "EventLoop", "ScheduledEvent", "SharedCounter"]
