"""Peephole rewrite passes over :class:`CommSchedule` op-graphs.

PR 2 made schedules *checkable*; this module makes them *rewritable*.
Each pass is a pure function ``CommSchedule -> CommSchedule`` that
performs one SCCL-style peephole rewrite:

* ``merge-local-ops`` — fuse back-to-back :class:`LocalOp`\\ s whose
  dataflow tags chain (B consumes exactly what A produces and nobody
  else reads A's output), summing their multiplication and memory
  charges.  The kernel-fusion analogue at the schedule level.
* ``dead-op-elimination`` — delete ops that move no bytes and charge no
  work (empty exchanges, zero-charge local passes, identity pairwise
  stages), rewiring downstream consumers across the gap.
* ``pipeline-fusion`` — mark a collective whose output is consumed by
  the *next* op as ``pipelined``, the recv-copy-send / recv-reduce-send
  chaining SCCL's ``rcs`` pass performs.  Scheduling metadata only: the
  cost model prices the chain as ``max(local, remote)`` instead of a
  sum, but no bytes or dataflow change.

Every rewrite must survive the **verification gate**
(:func:`verify_rewrite`): zero :func:`verify_schedule` findings, and
``bytes_by_level()`` / ``total_field_muls()`` preserved exactly — or
changed by a declared :class:`ScheduleDelta`, which
:func:`repro.analysis.plancheck.check_cost` re-validates against the
priced :class:`~repro.hw.plancost.PlanCost`.  :func:`run_passes`
applies the gate after *every* pass and raises
:class:`~repro.errors.SchedulePassError` on the first violation, so a
buggy rewrite can never silently reach the autotuner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.analysis.findings import Check, Finding
from repro.analysis.plancheck import verify_schedule
from repro.errors import SchedulePassError
from repro.multigpu.schedule import (
    CommSchedule, ExchangeOp, LocalOp, PairwiseOp, ScheduleOp,
)

__all__ = [
    "CHECKS", "ScheduleDelta", "SchedulePass", "PassReport",
    "merge_local_ops", "eliminate_dead_ops", "fuse_pipeline",
    "MERGE_LOCAL_OPS", "DEAD_OP_ELIMINATION", "PIPELINE_FUSION",
    "DEFAULT_PASSES", "verify_rewrite", "run_passes",
]

CHECKS = (
    Check("plan.rewrite-differs", 1,
          "a rewritten/synthesized schedule changed bytes_by_level() or "
          "total_field_muls() without declaring the delta"),
)


@dataclass(frozen=True)
class ScheduleDelta:
    """Declared accounting change of a rewrite, relative to its base.

    ``bytes_by_level`` maps level name to a *signed* byte delta
    (hierarchical staging legitimately adds multi-node bytes while
    shaving multi-gpu ones); ``field_muls`` declares any change in
    total multiplications.  A rewrite with no delta must preserve both
    metrics bit-for-bit.
    """

    bytes_by_level: tuple[tuple[str, int], ...] = ()
    field_muls: int = 0
    note: str = ""

    def bytes_dict(self) -> dict[str, int]:
        return dict(self.bytes_by_level)


@dataclass(frozen=True)
class SchedulePass:
    """One registered peephole rewrite."""

    name: str
    rewrite: Callable[[CommSchedule], CommSchedule]
    description: str

    def __call__(self, schedule: CommSchedule) -> CommSchedule:
        return self.rewrite(schedule)


@dataclass(frozen=True)
class PassReport:
    """What :func:`run_passes` did: (pass name, ops before, ops after)."""

    applied: tuple[tuple[str, int, int], ...] = ()

    def changed(self) -> list[str]:
        return [name for name, before, after in self.applied
                if before != after]


def _tag_consumers(ops: list[ScheduleOp], tag: str, start: int) -> int:
    """How many ops at index >= ``start`` consume ``tag``."""
    return sum(1 for op in ops[start:] if op.consumes == tag)


def merge_local_ops(schedule: CommSchedule) -> CommSchedule:
    """Fuse adjacent LocalOps whose dataflow tags chain exclusively."""
    ops = list(schedule.ops)
    out: list[ScheduleOp] = []
    i = 0
    while i < len(ops):
        op = ops[i]
        while (isinstance(op, LocalOp) and i + 1 < len(ops)
               and isinstance(ops[i + 1], LocalOp)
               and ops[i + 1].consumes == op.produces
               and ops[i + 1].level == op.level
               and _tag_consumers(ops, op.produces, i + 2) == 0):
            nxt = ops[i + 1]
            op = LocalOp(
                name=f"{op.name}+{nxt.name}",
                consumes=op.consumes, produces=nxt.produces,
                level=op.level,
                field_muls_per_gpu=(op.field_muls_per_gpu
                                    + nxt.field_muls_per_gpu),
                mem_bytes_per_gpu=(op.mem_bytes_per_gpu
                                   + nxt.mem_bytes_per_gpu))
            i += 1
        out.append(op)
        i += 1
    return schedule.with_ops(tuple(out))


def _is_dead(op: ScheduleOp) -> bool:
    if isinstance(op, LocalOp):
        return op.field_muls_per_gpu == 0 and op.mem_bytes_per_gpu == 0
    if isinstance(op, ExchangeOp):
        return not op.transfers and not any(op.expected_in_bytes)
    if isinstance(op, PairwiseOp):
        return (op.bytes_per_gpu == 0
                or all(i == j for i, j in enumerate(op.partner_of)))
    return False


def eliminate_dead_ops(schedule: CommSchedule) -> CommSchedule:
    """Drop ops that charge nothing and move nothing, rewiring tags."""
    ops = list(schedule.ops)
    changed = True
    while changed:
        changed = False
        for i, op in enumerate(ops):
            if not _is_dead(op):
                continue
            del ops[i]
            if op.consumes != op.produces:
                for j in range(i, len(ops)):
                    if ops[j].consumes == op.produces:
                        ops[j] = replace(ops[j], consumes=op.consumes)
            changed = True
            break
    return schedule.with_ops(tuple(ops))


def fuse_pipeline(schedule: CommSchedule) -> CommSchedule:
    """Mark collectives feeding the very next op as pipelined (rcs)."""
    ops = list(schedule.ops)
    for i in range(len(ops) - 1):
        op = ops[i]
        if (isinstance(op, (ExchangeOp, PairwiseOp))
                and not op.pipelined
                and op.total_bytes() > 0
                and ops[i + 1].consumes == op.produces):
            ops[i] = replace(op, pipelined=True)
    return schedule.with_ops(tuple(ops))


MERGE_LOCAL_OPS = SchedulePass(
    "merge-local-ops", merge_local_ops,
    "fuse back-to-back LocalOps with chained dataflow tags")
DEAD_OP_ELIMINATION = SchedulePass(
    "dead-op-elimination", eliminate_dead_ops,
    "drop ops that move no bytes and charge no work")
PIPELINE_FUSION = SchedulePass(
    "pipeline-fusion", fuse_pipeline,
    "overlap a collective with its consumer (recv-copy-send)")

#: The pass pipeline :func:`run_passes` applies by default, in order.
DEFAULT_PASSES: tuple[SchedulePass, ...] = (
    MERGE_LOCAL_OPS, DEAD_OP_ELIMINATION, PIPELINE_FUSION,
)


def verify_rewrite(base: CommSchedule, candidate: CommSchedule,
                   machine=None, field=None,
                   delta: Optional[ScheduleDelta] = None) -> list[Finding]:
    """The mandatory gate every rewritten/synthesized schedule must pass.

    Returns findings (empty means the candidate is admissible):

    * every :func:`verify_schedule` finding on the candidate itself;
    * ``plan.rewrite-differs`` if ``bytes_by_level()`` or
      ``total_field_muls()`` departs from ``base`` plus the declared
      ``delta`` (no delta means bit-for-bit preservation);
    * with ``machine`` and ``field``, ``plan.cost-invariant`` findings
      if pricing the candidate with
      :func:`~repro.hw.plancost.price_schedule` violates
      :meth:`~repro.hw.plancost.PlanCost.validate`.
    """
    findings = verify_schedule(candidate, machine=machine)
    where = f"{base.name} -> {candidate.name}"

    expected_bytes = dict(base.bytes_by_level())
    expected_muls = base.total_field_muls()
    if delta is not None:
        for level, nbytes in delta.bytes_by_level:
            expected_bytes[level] = expected_bytes.get(level, 0) + nbytes
        expected_muls += delta.field_muls
    expected_bytes = dict(sorted(
        (lvl, b) for lvl, b in expected_bytes.items() if b))

    actual_bytes = candidate.bytes_by_level()
    if actual_bytes != expected_bytes:
        findings.append(Finding(
            "plan.rewrite-differs",
            f"bytes_by_level changed: {actual_bytes} != expected "
            f"{expected_bytes} (base {'+ declared delta' if delta else 'with no declared delta'})",
            where))
    actual_muls = candidate.total_field_muls()
    if actual_muls != expected_muls:
        findings.append(Finding(
            "plan.rewrite-differs",
            f"total_field_muls changed: {actual_muls} != expected "
            f"{expected_muls}", where))

    if machine is not None and field is not None:
        from repro.hw.plancost import price_schedule
        cost = price_schedule(machine, field, candidate)
        findings.extend(
            Finding("plan.cost-invariant", problem, where)
            for problem in cost.validate())
    return findings


def run_passes(schedule: CommSchedule,
               passes: tuple[SchedulePass, ...] = DEFAULT_PASSES,
               machine=None, field=None) -> tuple[CommSchedule, PassReport]:
    """Apply ``passes`` in order, gating after each one.

    Peephole passes must preserve accounting exactly (they declare no
    delta); the first pass whose output fails :func:`verify_rewrite`
    aborts the pipeline with :class:`SchedulePassError`.
    """
    applied: list[tuple[str, int, int]] = []
    current = schedule
    for schedule_pass in passes:
        candidate = schedule_pass(current)
        findings = verify_rewrite(current, candidate,
                                  machine=machine, field=field)
        if findings:
            raise SchedulePassError(
                f"pass {schedule_pass.name!r} broke {current.name!r}: "
                f"{findings[0].format()}")
        applied.append((schedule_pass.name, len(current.ops),
                        len(candidate.ops)))
        current = candidate
    return current, PassReport(applied=tuple(applied))
