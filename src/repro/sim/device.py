"""A simulated GPU: a shard of field elements plus resource counters.

The simulator is *functional*: shards hold real field values and engines
compute real NTTs on them.  What makes it a hardware simulator is the
accounting — every local kernel charges multiplications and HBM traffic,
and every collective charges link bytes.  The analytic cost model prices
exactly these counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.field.prime_field import PrimeField

__all__ = ["SimGPU", "GpuCounters"]


@dataclass
class GpuCounters:
    """Cumulative per-GPU resource usage."""

    bytes_sent: int = 0
    bytes_received: int = 0
    mem_traffic_bytes: int = 0
    field_muls: int = 0
    kernel_launches: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "mem_traffic_bytes": self.mem_traffic_bytes,
            "field_muls": self.field_muls,
            "kernel_launches": self.kernel_launches,
        }


class SimGPU:
    """One simulated device holding a shard of a distributed vector."""

    def __init__(self, gpu_id: int, field: PrimeField):
        if gpu_id < 0:
            raise SimulationError(f"gpu_id must be non-negative, got {gpu_id}")
        self.gpu_id = gpu_id
        self.field = field
        self.shard: list[int] = []
        self.counters = GpuCounters()

    def __repr__(self) -> str:
        return (f"SimGPU(id={self.gpu_id}, shard={len(self.shard)} elems, "
                f"sent={self.counters.bytes_sent}B)")

    # -- data ---------------------------------------------------------------

    def load(self, values: list[int]) -> None:
        """Install a shard (host-to-device; not counted as inter-GPU).

        Values are normalized to plain ``int`` so numpy integer scalars
        (from a vectorized backend) never leak into shard state, where
        their mod-2^64 wrapping semantics would corrupt later host-side
        arithmetic.  Multi-dimensional packed arrays (limb planes from
        the multi-limb backend) are rejected outright — iterating them
        here would shred elements into limb rows; they must be unpacked
        at the staging boundary (``DistributedVector.from_values``).
        """
        if getattr(values, "ndim", 0) > 1:
            raise SimulationError(
                f"GPU {self.gpu_id}: shard loader got a "
                f"{values.ndim}-D packed array; unpack packed limb "
                f"planes at the staging boundary "
                f"(DistributedVector.from_values)")
        self.shard = [int(v) for v in values]

    def require_shard(self, expected: int) -> None:
        if len(self.shard) != expected:
            raise SimulationError(
                f"GPU {self.gpu_id}: shard has {len(self.shard)} elements, "
                f"engine expected {expected}")

    # -- accounting -----------------------------------------------------------

    def charge_compute(self, field_muls: int, mem_bytes: int = 0,
                       launches: int = 1) -> None:
        """Charge a local kernel: multiplications + HBM traffic."""
        if field_muls < 0 or mem_bytes < 0:
            raise SimulationError("negative compute charge")
        self.counters.field_muls += field_muls
        self.counters.mem_traffic_bytes += mem_bytes
        self.counters.kernel_launches += launches

    def charge_send(self, nbytes: int) -> None:
        if nbytes < 0:
            raise SimulationError("negative send charge")
        self.counters.bytes_sent += nbytes

    def charge_receive(self, nbytes: int) -> None:
        if nbytes < 0:
            raise SimulationError("negative receive charge")
        self.counters.bytes_received += nbytes

    def reset_counters(self) -> None:
        self.counters = GpuCounters()
