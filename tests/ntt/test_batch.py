"""Tests for batched transforms."""

import pytest

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.ntt import BatchTransform, batch_intt, batch_ntt, intt, ntt
from repro.ntt.twiddle import TwiddleCache

F = TEST_FIELD_7681


class TestBatch:
    def test_matches_individual(self, rng):
        batch = [F.random_vector(32, rng) for _ in range(5)]
        assert batch_ntt(F, batch) == [ntt(F, v) for v in batch]
        assert batch_intt(F, batch) == [intt(F, v) for v in batch]

    def test_roundtrip(self, rng):
        batch = [F.random_vector(16, rng) for _ in range(3)]
        assert batch_intt(F, batch_ntt(F, batch)) == batch

    def test_empty_batch_rejected(self):
        with pytest.raises(NTTError, match="empty"):
            batch_ntt(F, [])

    def test_ragged_batch_rejected(self):
        with pytest.raises(NTTError, match="share a size"):
            batch_ntt(F, [[1, 2], [1, 2, 3, 4]])

    def test_batch_of_one(self, rng):
        v = F.random_vector(8, rng)
        assert batch_ntt(F, [v]) == [ntt(F, v)]


class TestBatchTransform:
    def test_twiddles_computed_once(self, rng):
        cache = TwiddleCache()
        transform = BatchTransform(F, cache)
        batch = [F.random_vector(64, rng) for _ in range(4)]
        transform.forward(batch)
        tables_after_first = cache.stats()["tables"]
        transform.forward(batch)
        assert cache.stats()["tables"] == tables_after_first

    def test_map_pointwise(self, rng):
        transform = BatchTransform(F)
        a = [F.random_vector(8, rng) for _ in range(2)]
        b = [F.random_vector(8, rng) for _ in range(2)]
        p = F.modulus
        result = transform.map_pointwise(a, b, lambda x, y: x * y % p)
        assert result == [[x * y % p for x, y in zip(av, bv)]
                          for av, bv in zip(a, b)]

    def test_map_pointwise_mismatch(self):
        transform = BatchTransform(F)
        with pytest.raises(NTTError, match="batch sizes differ"):
            transform.map_pointwise([[1]], [[1], [2]], lambda x, y: x)

    def test_spectral_convolution_via_batch(self, rng):
        """Batch API supports the NTT -> pointwise -> INTT pattern."""
        from repro.ntt import naive_cyclic_convolution
        transform = BatchTransform(F)
        n = 16
        a = [F.random_vector(n, rng) for _ in range(3)]
        b = [F.random_vector(n, rng) for _ in range(3)]
        p = F.modulus
        spec = transform.map_pointwise(transform.forward(a),
                                       transform.forward(b),
                                       lambda x, y: x * y % p)
        results = transform.inverse(spec)
        for av, bv, got in zip(a, b, results):
            assert got == naive_cyclic_convolution(F, av, bv)
