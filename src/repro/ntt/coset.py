"""Coset and negacyclic NTTs.

ZKP provers constantly evaluate polynomials on a *coset* ``g * H`` of the
size-n subgroup ``H`` (the quotient polynomial cannot be computed on H
itself, where the vanishing polynomial is zero).  Evaluating on a coset
is a pointwise pre-scaling by powers of the shift followed by an
ordinary NTT — and that scaling is another of the twiddle-like passes
the UniNTT decomposition fuses away.

The negacyclic transform is the special case ``g = psi`` with
``psi^2 = w_n`` (a primitive 2n-th root): it turns length-n products in
``GF(p)[x]/(x^n + 1)`` into pointwise products without zero padding.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt import radix2
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = [
    "coset_ntt", "coset_intt", "negacyclic_ntt", "negacyclic_intt",
    "negacyclic_shift",
]


def coset_ntt(field: PrimeField, values: Sequence[int], shift: int,
              cache: TwiddleCache | None = None) -> list[int]:
    """Evaluate the polynomial with coefficients ``values`` on the coset
    ``shift * H``: output[k] = P(shift * w^k)."""
    if shift % field.modulus == 0:
        raise NTTError("coset shift must be non-zero")
    cache = cache or default_cache
    p = field.modulus
    scaled = [v * t % p
              for v, t in zip(values, cache.powers(field, shift % p,
                                                   len(values)))]
    return radix2.ntt(field, scaled, cache)


def coset_intt(field: PrimeField, values: Sequence[int], shift: int,
               cache: TwiddleCache | None = None) -> list[int]:
    """Interpolate from evaluations on ``shift * H`` back to coefficients."""
    if shift % field.modulus == 0:
        raise NTTError("coset shift must be non-zero")
    cache = cache or default_cache
    p = field.modulus
    coeffs = radix2.intt(field, values, cache)
    inv_shift = field.inv(shift)
    return [v * t % p
            for v, t in zip(coeffs, cache.powers(field, inv_shift,
                                                 len(coeffs)))]


def negacyclic_shift(field: PrimeField, n: int) -> int:
    """A primitive 2n-th root ``psi`` with ``psi^2 = w_n``."""
    if n == 0 or n & (n - 1):
        raise NTTError(f"negacyclic size must be a power of two, got {n}")
    return field.root_of_unity(2 * n)


def negacyclic_ntt(field: PrimeField, values: Sequence[int],
                   cache: TwiddleCache | None = None) -> list[int]:
    """Forward negacyclic (psi-twisted) NTT of size n.

    Pointwise products of two such spectra correspond to multiplication
    in ``GF(p)[x] / (x^n + 1)``.
    """
    return coset_ntt(field, values, negacyclic_shift(field, len(values)),
                     cache)


def negacyclic_intt(field: PrimeField, values: Sequence[int],
                    cache: TwiddleCache | None = None) -> list[int]:
    """Inverse of :func:`negacyclic_ntt`."""
    return coset_intt(field, values, negacyclic_shift(field, len(values)),
                      cache)
