"""Tests for the MiMC hash and its R1CS circuits."""

import pytest

from repro.errors import CircuitError
from repro.field import BN254_FR, GOLDILOCKS
from repro.zkp import (
    MiMC, Prover, QAP, mimc_chain_circuit, mimc_preimage_circuit,
    trusted_setup,
)

F = BN254_FR


class TestNative:
    def test_deterministic(self):
        mimc = MiMC(F, rounds=8)
        assert mimc.permute(42) == mimc.permute(42)

    def test_sensitive_to_input(self):
        mimc = MiMC(F, rounds=8)
        assert mimc.permute(1) != mimc.permute(2)

    def test_sensitive_to_key(self):
        mimc = MiMC(F, rounds=8)
        assert mimc.permute(1, key=5) != mimc.permute(1, key=6)

    def test_sensitive_to_seed(self):
        assert MiMC(F, rounds=8).permute(1) != \
            MiMC(F, rounds=8, seed=b"other").permute(1)

    def test_compression_not_symmetric(self):
        mimc = MiMC(F, rounds=8)
        assert mimc.compress(1, 2) != mimc.compress(2, 1)

    def test_hash_many(self):
        mimc = MiMC(F, rounds=8)
        assert mimc.hash_many([1, 2, 3]) != mimc.hash_many([1, 2, 4])
        assert mimc.hash_many([1, 2, 3]) != mimc.hash_many([1, 3, 2])

    def test_manual_one_round(self):
        mimc = MiMC(F, rounds=1)
        c = mimc.constants[0]
        p = F.modulus
        t = (7 + c) % p
        assert mimc.permute(7) == t ** 3 % p

    def test_rounds_validation(self):
        with pytest.raises(CircuitError, match="rounds"):
            MiMC(F, rounds=0)

    def test_works_over_goldilocks(self):
        mimc = MiMC(GOLDILOCKS, rounds=8)
        assert 0 <= mimc.permute(123) < GOLDILOCKS.modulus


class TestCircuits:
    def test_preimage_circuit_matches_native(self):
        r1cs, witness = mimc_preimage_circuit(F, preimage=99, rounds=8)
        assert r1cs.is_satisfied(witness)
        assert witness[1] == MiMC(F, rounds=8).permute(99)

    def test_constraint_count(self):
        r1cs, _ = mimc_preimage_circuit(F, preimage=5, rounds=8)
        # 2 per round + the output binding.
        assert len(r1cs.constraints) == 2 * 8 + 1

    def test_wrong_preimage_fails(self):
        r1cs, witness = mimc_preimage_circuit(F, preimage=99, rounds=4)
        witness = list(witness)
        witness[2] = 98  # claim a different preimage
        assert not r1cs.is_satisfied(witness)

    def test_chain_circuit(self):
        r1cs, witness = mimc_chain_circuit(F, [3, 1, 4], rounds=4)
        assert r1cs.is_satisfied(witness)

    def test_chain_order_sensitive(self):
        _, w1 = mimc_chain_circuit(F, [1, 2], rounds=4)
        _, w2 = mimc_chain_circuit(F, [2, 1], rounds=4)
        assert w1[1] != w2[1]  # different public digests

    def test_chain_validation(self):
        with pytest.raises(CircuitError, match="at least one"):
            mimc_chain_circuit(F, [], rounds=4)

    def test_full_proof_roundtrip(self):
        r1cs, witness = mimc_preimage_circuit(F, preimage=0xDEAD,
                                              rounds=8)
        qap = QAP(r1cs)
        tau = 0xC0DE
        prover = Prover(qap, trusted_setup(qap.domain.size, tau))
        proof, polys = prover.prove(witness)
        assert prover.check(proof, polys, tau)
