"""F12: interconnect sensitivity."""

from repro.bench import interconnect_sensitivity


def test_f12_interconnect(benchmark, emit):
    table = benchmark(interconnect_sensitivity)
    emit("F12_interconnect",
         "F12: engines across interconnect families (2^24 BLS12-381-Fr)",
         table)
