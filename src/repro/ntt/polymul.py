"""Polynomial multiplication via NTT (the convolution theorem).

This is why ZKP provers run NTTs at all: coefficient-form products become
pointwise products in the evaluation domain.  Three flavours:

* :func:`cyclic_convolution` — product mod ``x^n - 1`` (spectra multiply
  directly);
* :func:`negacyclic_convolution` — product mod ``x^n + 1`` (psi-twisted
  spectra, no padding);
* :func:`poly_multiply` — the exact product of two polynomials, by
  zero-padding to the next power of two that holds the result.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt import coset, radix2
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["cyclic_convolution", "negacyclic_convolution", "poly_multiply",
           "next_power_of_two"]


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def cyclic_convolution(field: PrimeField, a: Sequence[int],
                       b: Sequence[int],
                       cache: TwiddleCache | None = None) -> list[int]:
    """Length-n cyclic convolution via NTT / pointwise / INTT."""
    if len(a) != len(b):
        raise NTTError(f"operands must match: {len(a)} vs {len(b)}")
    cache = cache or default_cache
    p = field.modulus
    spec_a = radix2.ntt(field, a, cache)
    spec_b = radix2.ntt(field, b, cache)
    return radix2.intt(field, [x * y % p for x, y in zip(spec_a, spec_b)],
                       cache)


def negacyclic_convolution(field: PrimeField, a: Sequence[int],
                           b: Sequence[int],
                           cache: TwiddleCache | None = None) -> list[int]:
    """Length-n negacyclic convolution (product mod ``x^n + 1``)."""
    if len(a) != len(b):
        raise NTTError(f"operands must match: {len(a)} vs {len(b)}")
    cache = cache or default_cache
    p = field.modulus
    spec_a = coset.negacyclic_ntt(field, a, cache)
    spec_b = coset.negacyclic_ntt(field, b, cache)
    return coset.negacyclic_intt(field,
                                 [x * y % p for x, y in zip(spec_a, spec_b)],
                                 cache)


def poly_multiply(field: PrimeField, a: Sequence[int], b: Sequence[int],
                  cache: TwiddleCache | None = None) -> list[int]:
    """Exact polynomial product; result has ``len(a)+len(b)-1`` coeffs.

    Zero coefficients are trimmed from the tail only if both inputs are
    non-empty but represent the zero polynomial (the result is then
    ``[0]``), matching the coefficient-list convention of
    :mod:`repro.zkp.polynomial`.
    """
    if not a or not b:
        raise NTTError("cannot multiply empty coefficient lists")
    out_len = len(a) + len(b) - 1
    n = next_power_of_two(out_len)
    padded_a = list(a) + [0] * (n - len(a))
    padded_b = list(b) + [0] * (n - len(b))
    product = cyclic_convolution(field, padded_a, padded_b, cache)
    return product[:out_len]
