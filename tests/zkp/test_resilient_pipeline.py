"""End-to-end: proof generation survives an injected collective fault.

The Groth16 prover pipeline is seven NTT-type transforms; here the
transforms run on a simulated 4-GPU cluster through the resilient
engine while a seeded :class:`FaultPlan` aborts one all-to-all
mid-proof.  The retry layer recovers, the quotient comes out bit-exact,
and the resulting proof verifies — the whole point of the resilience
subsystem in one test.
"""

import pytest

from repro.analysis.tracecheck import check_trace
from repro.field import BN254_FR
from repro.multigpu import (
    DistributedPolynomial, ResilientNTTEngine, UniNTTEngine,
)
from repro.sim import FaultInjector, FaultPlan, SimCluster
from repro.zkp import (
    Proof, Prover, QAP, QapWitnessPolynomials, square_chain,
    trusted_setup,
)
from repro.zkp.polynomial import Polynomial

TAU = 0xC0FFEE_DECAF
GPUS = 4


@pytest.fixture(scope="module")
def problem():
    # 16 constraints (15 squares + the output binding) -> domain 16,
    # the smallest size a 4-GPU UniNTT decomposition accepts.
    r1cs, witness = square_chain(BN254_FR, steps=15)
    qap = QAP(r1cs)
    key = trusted_setup(qap.domain.size, TAU)
    return qap, Prover(qap, key), witness


def distributed_witness_polynomials(qap, witness, engine):
    """The seven-transform QAP pipeline on a distributed engine."""
    field = qap.field
    p = field.modulus
    domain = qap.domain
    a_rows, b_rows, c_rows = qap.witness_rows(witness)

    def interpolate(rows):
        poly = DistributedPolynomial.from_evaluations(engine, rows)
        return poly.to_coefficients()

    a_poly, b_poly, c_poly = (interpolate(rows)
                              for rows in (a_rows, b_rows, c_rows))

    shift = domain.default_coset_shift()
    z_inv = field.inv(domain.vanishing_on_coset(shift))
    a_coset = a_poly.to_evaluations(coset_shift=shift)
    b_coset = b_poly.to_evaluations(coset_shift=shift)
    c_coset = c_poly.to_evaluations(coset_shift=shift)

    h_coset = a_coset * b_coset - c_coset
    h_coset = DistributedPolynomial(
        engine, [[v * z_inv % p for v in shard]
                 for shard in h_coset.shards],
        form="evaluation", coset_shift=shift)
    h_poly = h_coset.to_coefficients()

    return QapWitnessPolynomials(
        a=Polynomial(field, a_poly.values()),
        b=Polynomial(field, b_poly.values()),
        c=Polynomial(field, c_poly.values()),
        h=Polynomial(field, h_poly.values()))


def make_engine(specs, seed=0xFA11):
    plan = FaultPlan.from_specs(specs, seed=seed)
    injector = FaultInjector(plan, BN254_FR.modulus)
    cluster = SimCluster(BN254_FR, GPUS, injector=injector)
    return ResilientNTTEngine(cluster, UniNTTEngine, seed=seed)


class TestResilientProofGeneration:
    def test_fault_free_distributed_pipeline_matches_local(self, problem):
        qap, prover, witness = problem
        engine = make_engine([])
        polys = distributed_witness_polynomials(qap, witness, engine)
        local = qap.witness_polynomials(witness)
        assert polys.all() == local.all()

    def test_proof_verifies_despite_transient_fault(self, problem):
        qap, prover, witness = problem
        # collective step 3 is mid-proof: one of the coset NTTs.
        engine = make_engine(["transient-comm@3"])
        polys = distributed_witness_polynomials(qap, witness, engine)

        assert qap.check_divisibility(polys)
        proof = Proof(commit_a=prover.key.commit(polys.a),
                      commit_b=prover.key.commit(polys.b),
                      commit_c=prover.key.commit(polys.c),
                      commit_h=prover.key.commit(polys.h))
        assert prover.check(proof, polys, TAU)

        # the fault really fired and was really recovered from
        assert engine.report.retries == 1
        kinds = [e.kind for e in engine.cluster.trace.events]
        assert "fault" in kinds and "retry" in kinds
        findings = check_trace(engine.cluster.trace)
        assert findings == [], [str(f) for f in findings]

    def test_faulty_and_clean_proofs_are_identical(self, problem):
        qap, prover, witness = problem
        clean = distributed_witness_polynomials(qap, witness,
                                                make_engine([]))
        faulty = distributed_witness_polynomials(
            qap, witness, make_engine(["transient-comm@3"]))
        assert clean.all() == faulty.all()
