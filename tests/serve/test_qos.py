"""WeightedFairQueue: tenant-fair extraction layered on EDF.

The contract: with one tenant the queue collapses to exactly the base
EDF :class:`AdmissionQueue`; with several, batch extraction serves the
least-normalized-service tenant first (elements / weight), EDF within
the tenant, never mixing tenants in one dispatch group.
"""

import pytest

from repro.errors import ServeError
from repro.serve import AdmissionQueue, ProofRequest, WeightedFairQueue


def _request(request_id, tenant="default", log_size=4, **kwargs):
    return ProofRequest(request_id=request_id, field_name="Goldilocks",
                        log_size=log_size, tenant_id=tenant, **kwargs)


def test_single_tenant_collapses_to_edf():
    wfq = WeightedFairQueue(8)
    edf = AdmissionQueue(8)
    requests = [
        _request(0, deadline_s=9.0),
        _request(1, deadline_s=1.0),
        _request(2),
        _request(3, deadline_s=4.0),
    ]
    for request in requests:
        assert wfq.offer(request)
        assert edf.offer(request)
    while len(edf):
        expected = [r.request_id for r in edf.take_batch(2)]
        actual = [r.request_id for r in wfq.take_batch(2)]
        assert actual == expected


def test_least_served_tenant_goes_first_and_groups_stay_single_tenant():
    queue = WeightedFairQueue(8)
    for i in range(3):
        queue.offer(_request(i, tenant="a"))
    queue.offer(_request(3, tenant="b"))
    queue.offer(_request(4, tenant="b"))
    # Ties at zero service break on tenant name: "a" first.
    first = queue.take_batch(8)
    assert {r.tenant_id for r in first} == {"a"}
    # "a" has been charged; "b" is now least-served.
    second = queue.take_batch(8)
    assert {r.tenant_id for r in second} == {"b"}


def test_weights_scale_the_charge():
    queue = WeightedFairQueue(8, weights={"gold": 4.0})
    queue.offer(_request(0, tenant="free"))
    queue.take_batch(1)  # free charged 2**4 / 1.0
    assert queue.normalized_service("free") == 16.0
    base = queue.normalized_service("gold")  # the service floor
    queue.offer(_request(1, tenant="gold"))
    queue.take_batch(1)  # same elements, quartered by the weight
    assert queue.normalized_service("gold") == base + 16 / 4.0


def test_elements_are_the_currency_not_requests():
    queue = WeightedFairQueue(8)
    queue.offer(_request(0, tenant="a", log_size=4))   # 16 elements
    queue.offer(_request(1, tenant="b", log_size=8))   # 256 elements
    queue.take_batch(1)  # "a" wins the zero-service name tie
    queue.take_batch(1)  # "b" pays for the whole 2^8 transform
    assert queue.normalized_service("a") == 16.0
    assert queue.normalized_service("b") == 16.0 + 256.0
    # One big transform outweighs many small ones: "a" keeps going
    # first even after another dispatch.
    queue.offer(_request(2, tenant="a", log_size=4))
    queue.offer(_request(3, tenant="b", log_size=4))
    assert queue.next_tenant() == "a"
    queue.take_batch(1)
    assert queue.next_tenant() == "b"


def test_late_joiner_starts_at_the_service_floor():
    queue = WeightedFairQueue(8)
    queue.offer(_request(0, tenant="old", log_size=8))
    queue.take_batch(1)
    floor = queue.normalized_service("old")
    assert queue.normalized_service("newcomer") == floor
    # The newcomer competes from the floor, not from zero history.
    queue.offer(_request(1, tenant="old"))
    queue.offer(_request(2, tenant="newcomer"))
    assert queue.next_tenant() == "newcomer"  # floor ties break by name


def test_validation():
    with pytest.raises(ServeError, match="weight"):
        WeightedFairQueue(4, weights={"t": 0.0})
    with pytest.raises(ServeError, match="tenant"):
        WeightedFairQueue(4, weights={"": 1.0})
    queue = WeightedFairQueue(4)
    with pytest.raises(ServeError, match="empty"):
        queue.next_tenant()
    with pytest.raises(ServeError, match="max_requests"):
        queue.offer(_request(0))
        queue.take_batch(0)


def test_extraction_is_deterministic_across_runs():
    def drain():
        queue = WeightedFairQueue(16, weights={"a": 2.0, "b": 1.0})
        for i in range(12):
            queue.offer(_request(i, tenant="ab"[i % 2],
                                 deadline_s=float((i * 7) % 5 + 1)))
        order = []
        while len(queue):
            order.extend(r.request_id for r in queue.take_batch(3))
        return order

    assert drain() == drain()
