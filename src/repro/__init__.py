"""UniNTT reproduction: multi-GPU NTT for zero-knowledge proofs.

A simulated, full-pipeline reproduction of "Accelerating Number
Theoretic Transform with Multi-GPU Systems for Efficient Zero Knowledge
Proof" (ASPLOS 2025).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced evaluation.

Quick tour::

    from repro.field import BLS12_381_FR
    from repro.sim import SimCluster
    from repro.multigpu import DistributedVector, UniNTTEngine

    cluster = SimCluster(BLS12_381_FR, gpu_count=8)
    engine = UniNTTEngine(cluster)
    vec = DistributedVector.from_values(
        cluster, values, engine.input_layout(len(values)))
    spectrum = engine.forward(vec)
"""

from repro import field, hw, multigpu, ntt, serve, sim, zkp
from repro.errors import (
    BenchmarkError, CircuitError, CurveError, FieldError, HardwareModelError,
    NTTError, PartitionError, PlanError, ProverError, ReproError,
    ServeError, SimulationError,
)

__version__ = "1.7.0"

__all__ = [
    "field", "ntt", "hw", "sim", "multigpu", "serve", "zkp",
    "ReproError", "FieldError", "NTTError", "PlanError",
    "HardwareModelError", "SimulationError", "PartitionError", "CurveError",
    "CircuitError", "ProverError", "BenchmarkError", "ServeError",
    "__version__",
]
