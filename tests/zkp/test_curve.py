"""Tests for BN254 G1 arithmetic."""

import pytest

from repro.errors import CurveError
from repro.field import BN254_FR, PrimeField
from repro.zkp import BN254_FP, BN254_G1, CurveParams, CurvePoint


@pytest.fixture(scope="module")
def gen():
    return BN254_G1.generator()


class TestParams:
    def test_generator_on_curve(self, gen):
        assert gen.is_on_curve()
        assert gen.affine() == (1, 2)

    def test_order_matches_scalar_field(self):
        assert BN254_G1.order == BN254_FR.modulus

    def test_bad_generator_rejected(self):
        with pytest.raises(CurveError, match="not on the curve"):
            CurveParams(name="bad", base=BN254_FP, a=0, b=3,
                        generator_x=1, generator_y=3, order=7)

    def test_infinity(self):
        inf = BN254_G1.infinity()
        assert inf.is_infinity()
        assert inf.is_on_curve()
        assert inf.affine() is None


class TestGroupLaw:
    def test_identity(self, gen):
        inf = BN254_G1.infinity()
        assert gen + inf == gen
        assert inf + gen == gen
        assert inf + inf == inf

    def test_inverse(self, gen):
        assert (gen + (-gen)).is_infinity()
        assert gen - gen == BN254_G1.infinity()
        assert (-BN254_G1.infinity()).is_infinity()

    def test_double_matches_add(self, gen):
        assert gen.double() == gen + gen
        p5 = gen * 5
        assert p5.double() == p5 + p5

    def test_commutative(self, gen):
        a, b = gen * 17, gen * 23
        assert a + b == b + a

    def test_associative(self, gen):
        a, b, c = gen * 3, gen * 11, gen * 29
        assert (a + b) + c == a + (b + c)

    def test_closure_on_curve(self, gen):
        point = gen
        for k in range(2, 20):
            point = point + gen
            assert point.is_on_curve()
            assert point == gen * k

    def test_cross_curve_rejected(self, gen):
        tiny_field = PrimeField(13)
        tiny = CurveParams(name="tiny", base=tiny_field, a=0, b=3,
                           generator_x=1, generator_y=2, order=7)
        with pytest.raises(CurveError, match="different curves"):
            gen + tiny.generator()


class TestScalarMul:
    def test_small_scalars(self, gen):
        assert gen * 0 == BN254_G1.infinity()
        assert gen * 1 == gen
        assert gen * 2 == gen.double()
        assert gen * 3 == gen + gen + gen

    def test_distributes(self, gen):
        assert gen * 7 + gen * 9 == gen * 16

    def test_order_annihilates(self, gen):
        assert (gen * BN254_G1.order).is_infinity()

    def test_scalar_reduced_mod_order(self, gen):
        assert gen * (BN254_G1.order + 5) == gen * 5

    def test_negative_scalar(self, gen):
        assert gen * (-1) == -gen

    def test_large_scalar(self, gen):
        k = 0x1234567890ABCDEF_1234567890ABCDEF
        point = gen * k
        assert point.is_on_curve()
        assert point + gen == gen * (k + 1)


class TestRepresentation:
    def test_jacobian_equality_across_z(self, gen):
        """The same point with different Z coordinates compares equal."""
        p = BN254_FP.modulus
        z = 7
        scaled = CurvePoint(BN254_G1, gen.x * z * z % p,
                            gen.y * pow(z, 3, p) % p, z)
        assert scaled == gen
        assert scaled.affine() == gen.affine()

    def test_hash_consistent(self, gen):
        p = BN254_FP.modulus
        scaled = CurvePoint(BN254_G1, gen.x * 4 % p, gen.y * 8 % p, 2)
        assert hash(scaled) == hash(gen)

    def test_repr(self, gen):
        assert "x=1" in repr(gen)
        assert "infinity" in repr(BN254_G1.infinity())

    def test_y_zero_doubles_to_infinity(self):
        """A point with y = 0 is 2-torsion."""
        # Construct artificially (not on BN254; use a curve that has one):
        # y^2 = x^3 - x over GF(13) has (0,0) with y=0.
        f13 = PrimeField(13)
        curve = CurveParams(name="t", base=f13, a=12, b=0,
                            generator_x=1, generator_y=0, order=2)
        pt = curve.generator()
        assert pt.double().is_infinity()
