"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's reconstructed tables or
figures (see DESIGN.md's experiment index), times the generation with
pytest-benchmark, prints the table, and persists it under
``benchmarks/results/<id>.txt``.
"""

import pytest

from repro.bench import format_table, write_report
from repro.bench.reporting import backend_stamp


@pytest.fixture
def emit():
    """Render a (headers, rows) table, print it, and persist it.

    Each report is stamped with the active field backend so a results
    file records which arithmetic implementation produced it.
    """

    def _emit(experiment_id: str, title: str, table):
        headers, rows = table
        report = format_table(headers, rows, title=title)
        report = f"{report}\n{backend_stamp()}"
        path = write_report(experiment_id, report)
        print(f"\n{report}\n[written to {path}]")
        return report

    return _emit
