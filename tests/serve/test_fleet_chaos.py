"""Fleet chaos grid: kills, partitions, and flapping, bit-identically.

The fleet's whole claim is here: under every chaos scenario the fleet
completes **every admitted request exactly once** with outputs
**bit-identical** to an unfaulted single server, and the shared trace
audits clean (journal seqs gapless per replica, every suspicion
resolved 1:1, no request completed twice, no dangling dispatch).

The grid crosses two workloads (paced multi-shape multi-tenant, and
a bursty hot-shape stream) with six fault scenarios: a replica crash,
a short partition that heals, a long partition that gets fenced and
rejoins, a heartbeat flap that must *not* trigger failover, a muted
zombie that must be fenced, and a compound crash + partition.
"""

import pytest

from repro.analysis import check_trace
from repro.hw import DGX_A100
from repro.serve import (
    FleetPolicy, FleetServer, ProofServer, WorkloadSpec,
    generate_workload,
)
from repro.sim import FaultPlan

WORKLOADS = {
    # Paced arrivals, three shapes, two tenants: routing spreads it.
    "paced-mixed": WorkloadSpec(
        requests=24, log_sizes=(6, 7, 8), field_names=("Goldilocks",),
        directions=("forward", "inverse"), mean_interarrival_s=1e-4,
        tenants=("a", "b"), tenant_weights=(2.0, 1.0), seed=0xC0A5),
    # One hot shape arriving in bursts: one home replica, stealing and
    # failover both land on a deep queue.
    "bursty-hot": WorkloadSpec(
        requests=24, log_sizes=(6,), field_names=("Goldilocks",),
        mean_interarrival_s=8e-5, burst_every=4, burst_size=3,
        seed=0xC0A6),
}

SCENARIOS = {
    "crash": ["replica-crash@1:replica=1"],
    "partition-heals": ["network-partition@1:replica=1,count=2"],
    "partition-fenced": ["network-partition@1:replica=1,count=30"],
    "heartbeat-flap": ["heartbeat-loss@1:replica=0,count=2"],
    "zombie-fenced": ["heartbeat-loss@1:replica=0,count=30"],
    "compound": ["replica-crash@1:replica=0",
                 "network-partition@2:replica=1,count=3"],
}


def _reference(workload):
    """Unfaulted single-server outputs, keyed by request id."""
    report = ProofServer(DGX_A100).serve(workload)
    assert report.completed == len(workload)
    return {r.request.request_id: r.outputs for r in report.results}


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_chaos_grid_is_exactly_once_and_bit_identical(
        scenario, workload_name):
    workload = generate_workload(WORKLOADS[workload_name])
    reference = _reference(workload)
    fleet = FleetServer(
        DGX_A100,
        policy=FleetPolicy(replicas=3),
        faults=FaultPlan.from_specs(SCENARIOS[scenario], seed=1))
    report = fleet.serve(workload)

    # Exactly once: every admitted request completed, none twice (the
    # fleet's merge step raises on duplicates; the id set check covers
    # losses).
    completed = sorted(r.request.request_id for r in report.results)
    assert completed == sorted(reference), (
        f"{scenario}/{workload_name}: lost requests "
        f"{sorted(set(reference) - set(completed))}")

    # Bit-identical to the unfaulted single server, output for output.
    for result in report.results:
        assert result.outputs == reference[result.request.request_id], (
            f"{scenario}/{workload_name}: request "
            f"{result.request.request_id} diverged")

    # The shared trace must audit clean: per-replica journal-gap,
    # suspicion resolution, duplicate-complete, dangling dispatch.
    findings = check_trace(fleet.trace)
    assert not findings, (
        f"{scenario}/{workload_name}: "
        + "; ".join(f"{f.check}: {f.message}" for f in findings))


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_crash_triggers_detection_and_journaled_failover(workload_name):
    workload = generate_workload(WORKLOADS[workload_name])
    fleet = FleetServer(
        DGX_A100, policy=FleetPolicy(replicas=3),
        faults=FaultPlan.from_specs(["replica-crash@1:replica=1"],
                                    seed=1))
    report = fleet.serve(workload)
    assert report.deaths == 1
    assert report.suspicions >= 1
    assert report.failovers == 1
    assert report.failover_s > 0.0, "failover was not priced"
    dead = report.replica_reports[1]
    assert dead.completed < len(workload)


def test_healed_partition_resumes_without_failover():
    workload = generate_workload(WORKLOADS["paced-mixed"])
    fleet = FleetServer(
        DGX_A100, policy=FleetPolicy(replicas=3),
        faults=FaultPlan.from_specs(
            ["network-partition@1:replica=1,count=2"], seed=1))
    report = fleet.serve(workload)
    assert report.partitions == 1
    assert report.failovers == 0, (
        "a partition healing inside the suspicion window must not be "
        "fenced")
    assert report.completed == len(workload)


def test_long_partition_is_fenced_then_rejoins():
    workload = generate_workload(WORKLOADS["paced-mixed"])
    fleet = FleetServer(
        DGX_A100, policy=FleetPolicy(replicas=3),
        faults=FaultPlan.from_specs(
            ["network-partition@1:replica=1,count=30"], seed=1))
    report = fleet.serve(workload)
    assert report.failovers == 1
    assert report.completed == len(workload)


def test_heartbeat_flap_never_fences_a_serving_replica():
    workload = generate_workload(WORKLOADS["paced-mixed"])
    fleet = FleetServer(
        DGX_A100, policy=FleetPolicy(replicas=3),
        faults=FaultPlan.from_specs(
            ["heartbeat-loss@1:replica=0,count=2"], seed=1))
    report = fleet.serve(workload)
    assert report.heartbeat_losses == 1
    assert report.failovers == 0
    # The flap may or may not cross suspect_phi depending on timing,
    # but any suspicion must have resolved as a detector recovery.
    assert report.detector_recoveries == report.suspicions


def test_total_outage_is_an_error_not_silent_loss():
    from repro.errors import ServeError

    workload = generate_workload(WORKLOADS["bursty-hot"])
    fleet = FleetServer(
        DGX_A100, policy=FleetPolicy(replicas=2),
        faults=FaultPlan.from_specs(
            ["replica-crash@1:replica=0", "replica-crash@1:replica=1"],
            seed=1))
    with pytest.raises(ServeError):
        fleet.serve(workload)
