"""Tests for the generic redistribution collective."""

import itertools

import pytest

from repro.errors import PartitionError
from repro.field import TEST_FIELD_97
from repro.multigpu import (
    BlockLayout, ColumnBlockLayout, CyclicLayout, SpectralLayout,
    UniNTTExchangeLayout, collect, distribute, redistribute,
)
from repro.sim import SimCluster

F = TEST_FIELD_97


def layouts_for(n, g):
    layouts = [BlockLayout(n=n, gpu_count=g), CyclicLayout(n=n, gpu_count=g)]
    if n >= g * g:
        layouts.append(SpectralLayout(n=n, gpu_count=g))
        layouts.append(UniNTTExchangeLayout(n=n, gpu_count=g))
    return layouts


class TestRedistribute:
    @pytest.mark.parametrize("n,g", [(16, 2), (64, 4)])
    def test_all_layout_pairs_preserve_values(self, n, g):
        values = [v % F.modulus for v in range(n)]
        for src, dst in itertools.permutations(layouts_for(n, g), 2):
            cluster = SimCluster(F, g)
            cluster.load_shards(distribute(values, src))
            redistribute(cluster, src, dst)
            assert collect(cluster.peek_shards(), dst) == values, \
                (type(src).__name__, type(dst).__name__)
            cluster.check_conservation()

    def test_block_to_cyclic_bytes(self):
        """Hand-check byte counts: block->cyclic moves (g-1)/g of data."""
        n, g = 16, 4
        values = list(range(n))
        src = BlockLayout(n=n, gpu_count=g)
        dst = CyclicLayout(n=n, gpu_count=g)
        cluster = SimCluster(F, g)
        cluster.load_shards(distribute(values, src))
        redistribute(cluster, src, dst)
        eb = cluster.element_bytes
        per_gpu = (n // g) * (g - 1) // g * eb
        for gpu in cluster.gpus:
            assert gpu.counters.bytes_sent == per_gpu

    def test_identity_redistribution_moves_nothing(self):
        n, g = 16, 2
        layout = BlockLayout(n=n, gpu_count=g)
        cluster = SimCluster(F, g)
        cluster.load_shards(distribute(list(range(n)), layout))
        redistribute(cluster, layout, layout)
        assert all(gpu.counters.bytes_sent == 0 for gpu in cluster.gpus)
        # but it still records the (empty) collective
        assert cluster.trace.count("all-to-all") == 1

    def test_mismatched_layouts_rejected(self):
        cluster = SimCluster(F, 2)
        cluster.load_shards([[1, 2], [3, 4]])
        with pytest.raises(PartitionError, match="mismatch"):
            redistribute(cluster, BlockLayout(n=4, gpu_count=2),
                         BlockLayout(n=8, gpu_count=2))

    def test_wrong_cluster_size_rejected(self):
        cluster = SimCluster(F, 2)
        with pytest.raises(PartitionError):
            redistribute(cluster, BlockLayout(n=16, gpu_count=4),
                         CyclicLayout(n=16, gpu_count=4))

    def test_detail_recorded(self):
        n, g = 16, 2
        cluster = SimCluster(F, g)
        src = BlockLayout(n=n, gpu_count=g)
        dst = CyclicLayout(n=n, gpu_count=g)
        cluster.load_shards(distribute(list(range(n)), src))
        redistribute(cluster, src, dst, detail="my-transpose")
        assert cluster.trace.events[-1].detail == "my-transpose"
