"""Tests for coset and negacyclic transforms."""

import pytest

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.ntt import (
    coset_intt, coset_ntt, naive_negacyclic_convolution, negacyclic_intt,
    negacyclic_ntt, negacyclic_shift,
)

F = TEST_FIELD_7681


def poly_eval(coeffs, point):
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * point + c) % F.modulus
    return acc


class TestCoset:
    def test_evaluates_on_shifted_points(self, rng):
        n = 16
        shift = F.multiplicative_generator
        coeffs = F.random_vector(n, rng)
        evals = coset_ntt(F, coeffs, shift)
        w = F.root_of_unity(n)
        for k in (0, 1, 5, n - 1):
            point = shift * pow(w, k, F.modulus) % F.modulus
            assert evals[k] == poly_eval(coeffs, point)

    def test_roundtrip(self, rng):
        coeffs = F.random_vector(32, rng)
        shift = 42
        assert coset_intt(F, coset_ntt(F, coeffs, shift), shift) == coeffs

    def test_shift_one_is_plain_ntt(self, rng):
        from repro.ntt import ntt
        coeffs = F.random_vector(16, rng)
        assert coset_ntt(F, coeffs, 1) == ntt(F, coeffs)

    def test_zero_shift_rejected(self):
        with pytest.raises(NTTError, match="non-zero"):
            coset_ntt(F, [1, 2], 0)
        with pytest.raises(NTTError, match="non-zero"):
            coset_intt(F, [1, 2], F.modulus)  # 0 mod p

    def test_different_shifts_differ(self, rng):
        coeffs = F.random_vector(16, rng)
        while sum(coeffs[1:]) == 0:
            coeffs = F.random_vector(16, rng)
        assert coset_ntt(F, coeffs, 2) != coset_ntt(F, coeffs, 3)


class TestNegacyclic:
    def test_shift_squares_to_domain_root(self):
        n = 16
        psi = negacyclic_shift(F, n)
        assert psi * psi % F.modulus == F.root_of_unity(n)
        assert pow(psi, n, F.modulus) == F.modulus - 1  # psi^n = -1

    def test_shift_size_validation(self):
        with pytest.raises(NTTError, match="power of two"):
            negacyclic_shift(F, 12)

    def test_roundtrip(self, rng):
        x = F.random_vector(32, rng)
        assert negacyclic_intt(F, negacyclic_ntt(F, x)) == x

    def test_pointwise_product_is_negacyclic_convolution(self, rng):
        n = 16
        a = F.random_vector(n, rng)
        b = F.random_vector(n, rng)
        p = F.modulus
        spec = [x * y % p for x, y in zip(negacyclic_ntt(F, a),
                                          negacyclic_ntt(F, b))]
        assert negacyclic_intt(F, spec) == naive_negacyclic_convolution(
            F, a, b)

    def test_all_fields(self, ntt_field, rng):
        x = ntt_field.random_vector(16, rng)
        assert negacyclic_intt(ntt_field,
                               negacyclic_ntt(ntt_field, x)) == x
