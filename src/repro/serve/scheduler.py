"""The proof-serving scheduler: a deterministic request-serving loop.

:class:`ProofServer` turns a stream of
:class:`~repro.serve.request.ProofRequest` records into completed
transforms over one simulated machine.  The loop is a discrete-event
simulation on a :class:`~repro.serve.clock.VirtualClock` — no wall
time anywhere — so the same workload replays bit-identically:

1. **Admit** every request whose arrival time has passed into the
   bounded :class:`~repro.serve.queue.AdmissionQueue`; refuse (and
   price the refusal) when the queue is full.
2. **Coalesce** the most urgent request with every compatible queued
   request (same field, size, direction) into one cross-request batch.
3. **Plan** via the keyed :class:`~repro.serve.cache.PlanCache`:
   choose ``replicate`` vs ``split`` by modeled batch seconds, with
   misses priced at :data:`~repro.serve.cache.PLAN_MISS_MESSAGES`.
4. **Stage twiddles** via the shared
   :class:`~repro.serve.cache.TwiddleLedger`: the first dispatch of a
   shape pays the table generation; later ones are charged zero
   recompute.
5. **Dispatch** through
   :class:`~repro.multigpu.batch_engine.BatchedDistributedNTT` against
   the shared simulated cluster, retrying transient faults with
   exponential backoff (every wasted attempt and every backoff wait is
   priced into that dispatch's duration).
6. **Advance** the clock by the dispatch's modeled duration and record
   per-request results.

Every decision emits a ``serve``-level trace event into the server's
shared trace, so :mod:`repro.analysis.tracecheck` can audit a serving
run exactly like any other execution.
"""

from __future__ import annotations

from repro.errors import (
    ServeError, ShardCorruptionError, TransientCommError,
)
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel, Phase, Step
from repro.hw.machines import DGX_A100
from repro.hw.model import MachineModel
from repro.multigpu.batch_engine import BatchedDistributedNTT
from repro.serve.cache import PLAN_MISS_MESSAGES, PlanCache, TwiddleLedger
from repro.serve.clock import VirtualClock
from repro.serve.queue import AdmissionQueue
from repro.serve.report import DispatchRecord, ServeReport
from repro.serve.request import ProofRequest, RequestResult
from repro.sim.cluster import SimCluster
from repro.sim.trace import Trace, TraceEvent

__all__ = ["DISPATCH_MESSAGES", "REJECT_MESSAGES", "ProofServer"]

#: Fabric latency units of fixed per-dispatch overhead (host-side batch
#: assembly plus the kernel-launch train).  This is the cost batching
#: amortizes: one coalesced dispatch of eight requests pays it once,
#: eight one-at-a-time dispatches pay it eight times.
DISPATCH_MESSAGES = 32

#: Fabric latency units one refused request costs — the front door does
#: work to say no (a real admission controller still parses, checks,
#: and answers the request it sheds).
REJECT_MESSAGES = 1


class ProofServer:
    """Deterministic serving of transform requests on one machine.

    Parameters
    ----------
    machine:
        Machine preset the run is priced on (default DGX-A100).
    queue_capacity:
        Admission bound; arrivals beyond it are rejected (and priced).
    max_batch_requests:
        Most requests one cross-request batch may coalesce.
    batching:
        ``False`` serves strictly one request per dispatch — the
        baseline arm of the f21 benchmark.
    caching:
        ``False`` rebuilds plans and twiddles from scratch for every
        dispatch (so misses recur); the other f21 baseline knob.
    strategy:
        Pin ``"replicate"`` or ``"split"`` instead of letting the plan
        cache choose per batch.
    twiddle_capacity:
        LRU bound on resident twiddle tables (``None`` = unbounded).
    max_attempts:
        Bounded-retry limit per dispatch under injected faults.
    backoff_messages:
        Base fabric-latency units of exponential retry backoff.
    injector:
        Optional :class:`~repro.sim.faults.FaultInjector`; installed on
        the shared cluster so its collective counter spans the whole
        serving run (faults land mid-stream).
    """

    def __init__(self, machine: MachineModel = DGX_A100, *,
                 queue_capacity: int = 64,
                 max_batch_requests: int = 16,
                 batching: bool = True,
                 caching: bool = True,
                 strategy: str | None = None,
                 twiddle_capacity: int | None = None,
                 max_attempts: int = 3,
                 backoff_messages: int = 4,
                 injector=None) -> None:
        if max_batch_requests < 1:
            raise ServeError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}")
        if max_attempts < 1:
            raise ServeError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_messages < 0:
            raise ServeError(
                f"backoff_messages must be >= 0, got {backoff_messages}")
        self.machine = machine
        self.queue_capacity = queue_capacity
        self.max_batch_requests = max_batch_requests
        self.batching = batching
        self.caching = caching
        self.strategy = strategy
        self.twiddle_capacity = twiddle_capacity
        self.max_attempts = max_attempts
        self.backoff_messages = backoff_messages
        self.injector = injector
        self.trace = Trace()
        self.plan_cache = PlanCache()
        self.twiddles = TwiddleLedger(max_tables=twiddle_capacity)
        self._clusters: dict[str, SimCluster] = {}
        self._batch_id = 0

    # -- infrastructure ------------------------------------------------------

    def _cluster(self, field: PrimeField) -> SimCluster:
        """One shared cluster per field, all writing the server's trace."""
        cluster = self._clusters.get(field.name)
        if cluster is None:
            cluster = SimCluster(field, self.machine.gpu_count,
                                 trace=self.trace,
                                 injector=self.injector)
            # Under fault injection, verify every exchange with the
            # random-linear-probe checksums so silent in-flight
            # corruption surfaces as ShardCorruptionError and is
            # retried rather than served.
            cluster.checksum_exchanges = self.injector is not None
            self._clusters[field.name] = cluster
        return cluster

    def _serve_event(self, kind: str, detail: str) -> None:
        self.trace.record(TraceEvent(kind=kind, level="serve",
                                     detail=detail))

    # -- the loop ------------------------------------------------------------

    def serve(self, requests: list[ProofRequest]) -> ServeReport:
        """Run the workload to completion; returns the full account."""
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ServeError("workload has duplicate request ids")
        pending = sorted(requests,
                         key=lambda r: (r.arrival_s, r.request_id))
        clock = VirtualClock()
        queue = AdmissionQueue(self.queue_capacity)
        report = ServeReport(machine_name=self.machine.name,
                             offered=len(requests))
        next_arrival = 0

        while True:
            # 1. admit everything that has arrived by now.
            while (next_arrival < len(pending)
                   and pending[next_arrival].arrival_s <= clock.now_s):
                request = pending[next_arrival]
                next_arrival += 1
                if queue.offer(request):
                    report.accepted += 1
                    self._serve_event(
                        "serve-accept",
                        f"request={request.request_id} "
                        f"queue={len(queue)}/{queue.capacity}")
                else:
                    report.rejected += 1
                    report.rejection_s += self._rejection_seconds(request)
                    self._serve_event(
                        "serve-reject",
                        f"request={request.request_id} queue-full "
                        f"capacity={queue.capacity}")

            if queue.empty:
                if next_arrival >= len(pending):
                    break  # drained: nothing queued, nothing to come
                clock.advance_to(pending[next_arrival].arrival_s)
                continue

            # 2. pull the next dispatch group (EDF head + compatible).
            group = queue.take_batch(self.max_batch_requests,
                                     batching=self.batching)
            self._dispatch(group, clock, report)

        report.makespan_s = clock.now_s
        return report

    def _rejection_seconds(self, request: ProofRequest) -> float:
        model = CostModel(self.machine, request.field)
        return model.estimate([Phase(name="serve-reject",
                                     messages=REJECT_MESSAGES)]).total_s

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, group: list[ProofRequest], clock: VirtualClock,
                  report: ServeReport) -> None:
        head = group[0]
        field = head.field
        n = head.n
        vectors_per_request = [r.batch for r in group]
        total_vectors = sum(vectors_per_request)
        batch_id = self._batch_id
        self._batch_id += 1

        # Fresh caches per dispatch when caching is disabled, so the
        # planning and twiddle misses recur honestly.
        plan_cache = self.plan_cache if self.caching else PlanCache()
        twiddles = self.twiddles if self.caching \
            else TwiddleLedger(max_tables=self.twiddle_capacity)

        entry, plan_misses = plan_cache.choose(
            self.machine, field, head.log_size, total_vectors,
            force=self.strategy)
        plan_hits = len(("replicate", "split")) - plan_misses
        report.plan_hits += plan_hits
        report.plan_misses += plan_misses
        self._serve_event(
            "serve-cache",
            f"batch={batch_id} plan-"
            f"{'hit' if plan_misses == 0 else 'miss'} "
            f"strategy={entry.strategy}")

        twiddle_phase, twiddle_hit = twiddles.prepare(
            field, n, head.direction)
        if self.caching:
            stats = twiddles.stats()
            report.twiddle_hits = stats["hits"]
            report.twiddle_misses = stats["misses"]
            report.twiddle_evictions = stats["evictions"]
        else:
            report.twiddle_misses += twiddles.stats()["misses"]
        self._serve_event(
            "serve-cache",
            f"batch={batch_id} twiddle-"
            f"{'hit' if twiddle_hit else 'miss'} "
            f"n={n} direction={head.direction}")

        # Assemble the overhead phases this dispatch owes.
        steps: list[Step] = [Phase(name="serve-dispatch-overhead",
                                   messages=DISPATCH_MESSAGES)]
        if plan_misses:
            steps.append(Phase(name="serve-plan-miss",
                               messages=plan_misses * PLAN_MISS_MESSAGES))
        if twiddle_phase is not None:
            steps.append(twiddle_phase)

        cluster = self._cluster(field)
        engine = BatchedDistributedNTT(cluster, strategy=entry.strategy,
                                       tile=entry.tile)
        profile = list(engine.forward_profile(n, total_vectors))
        steps.extend(profile)

        self._serve_event(
            "serve-dispatch",
            f"batch={batch_id} requests={len(group)} "
            f"vectors={total_vectors} strategy={entry.strategy} "
            f"n={n} field={field.name}")

        # 3. run, retrying transient faults from the host-side inputs.
        batch_inputs: list[list[int]] = []
        for request in group:
            batch_inputs.extend(request.vectors())
        outputs: list[list[int]] | None = None
        attempts = 0
        while outputs is None:
            attempts += 1
            try:
                if head.direction == "inverse":
                    outputs = engine.inverse(batch_inputs)
                else:
                    outputs = engine.forward(batch_inputs)
            except (TransientCommError, ShardCorruptionError) as error:
                report.retries += 1
                # The wasted attempt is charged in full (deliberate
                # upper bound), plus an exponential backoff wait.
                steps.extend(profile)
                backoff = self.backoff_messages * (1 << (attempts - 1))
                if backoff:
                    steps.append(Phase(name="serve-retry-backoff",
                                       messages=backoff))
                self.trace.record(TraceEvent(
                    kind="retry", level="resilience",
                    detail=f"batch={batch_id} attempt={attempts} "
                           f"{type(error).__name__}"))
                if attempts >= self.max_attempts:
                    raise ServeError(
                        f"batch {batch_id} failed after {attempts} "
                        f"attempts: {error}") from error

        duration = CostModel(self.machine, field).estimate(steps).total_s
        start = clock.now_s
        clock.advance_by(duration)

        report.dispatches.append(DispatchRecord(
            batch_id=batch_id, field_name=field.name,
            log_size=head.log_size, direction=head.direction,
            strategy=entry.strategy, requests=len(group),
            vectors=total_vectors, duration_s=duration,
            attempts=attempts, steps=tuple(steps)))

        # 4. slice outputs back to their requests and record results.
        cursor = 0
        for request in group:
            lanes = outputs[cursor:cursor + request.batch]
            cursor += request.batch
            result = RequestResult(
                request=request,
                outputs=tuple(tuple(lane) for lane in lanes),
                start_s=start, finish_s=clock.now_s,
                batch_id=batch_id, strategy=entry.strategy,
                shared_batch=len(group))
            report.results.append(result)
            report.completed += 1
            if not result.deadline_met:
                report.deadline_misses += 1
        self._serve_event(
            "serve-complete",
            f"batch={batch_id} finish={clock.now_s:.6e} "
            f"attempts={attempts}")
