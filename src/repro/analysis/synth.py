"""Synthesis of hierarchical communication schedules (SCCL-style).

The flat UniNTT exchange sends every cross-node message straight over
the inter-node network — ``G - 1`` small messages per GPU, all priced
at InfiniBand latency.  The hierarchical decomposition synthesized here
stages instead, the two-step shape of SCCL's hierarchical all-to-all
examples:

1. **stage** (``multi-gpu``): every GPU forwards each cross-node
   message to the *scratch* GPU in its own node that sits on the
   destination's rail (same intra-node index), over NVSwitch.  Messages
   for same-node destinations are delivered directly in this step.
2. **rail** (``multi-node``): each scratch GPU bundles everything it
   holds for its rail peers and sends one aggregated message per remote
   node over the network.

The split is derived *from the transfers alone* — any flat
:class:`ExchangeOp` decomposes, not just the UniNTT one — and the
byte-accounting change is returned as a declared
:class:`~repro.analysis.passes.ScheduleDelta` for the verification
gate.  :func:`enumerate_candidates` is the autotuner's search space:
the hand-written flat schedule, its pass-rewritten form, and (on a
:class:`~repro.hw.multinode.MultiNodeMachine`) the hierarchical
synthesis, every one gated through
:func:`~repro.analysis.passes.verify_rewrite` before it is offered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.passes import (
    ScheduleDelta, run_passes, verify_rewrite,
)
from repro.errors import SchedulePassError
from repro.multigpu.schedule import (
    ALL_ON, CommSchedule, ExchangeOp, ScheduleOp, ShardTransfer,
    UniNTTOptions, build_unintt_schedule,
)

__all__ = [
    "route_via", "split_exchange", "synthesize_hierarchical",
    "ScheduleCandidate", "enumerate_candidates",
]


def route_via(src: int, dst: int, node_size: int) -> int:
    """The GPU that carries a ``src -> dst`` message out of src's node.

    Same node: deliver directly (``dst``).  Cross node: the scratch GPU
    in src's node on dst's *rail* (same intra-node index), so the
    inter-node hop is rail-aligned and aggregates per destination.
    """
    if src // node_size == dst // node_size:
        return dst
    return (src // node_size) * node_size + dst % node_size


def _matrix_ops(counts: list[list[int]]) -> tuple[ShardTransfer, ...]:
    g = len(counts)
    return tuple(
        ShardTransfer(src=src, dst=dst, nbytes=counts[src][dst])
        for src in range(g) for dst in range(g)
        if src != dst and counts[src][dst])


def _received(counts: list[list[int]]) -> tuple[int, ...]:
    g = len(counts)
    return tuple(
        sum(counts[src][dst] for src in range(g) if src != dst)
        for dst in range(g))


def split_exchange(op: ExchangeOp, num_gpus: int,
                   node_size: int) -> tuple[ExchangeOp, ExchangeOp]:
    """Decompose a flat exchange into its stage + rail op pair."""
    g = num_gpus
    stage = [[0] * g for _ in range(g)]
    rail = [[0] * g for _ in range(g)]
    for t in op.transfers:
        via = route_via(t.src, t.dst, node_size)
        if via == t.dst:
            stage[t.src][t.dst] += t.nbytes
        else:
            stage[t.src][via] += t.nbytes
            rail[via][t.dst] += t.nbytes
    staged_tag = f"{op.produces}-staged"
    stage_op = ExchangeOp(
        name=f"{op.name}-stage", consumes=op.consumes,
        produces=staged_tag, transfers=_matrix_ops(stage),
        expected_in_bytes=_received(stage), level="multi-gpu")
    rail_op = ExchangeOp(
        name=f"{op.name}-rail", consumes=staged_tag,
        produces=op.produces, transfers=_matrix_ops(rail),
        expected_in_bytes=_received(rail), level="multi-node")
    return stage_op, rail_op


def _crosses_nodes(op: ExchangeOp, node_size: int) -> bool:
    return any(t.src // node_size != t.dst // node_size
               for t in op.transfers)


def synthesize_hierarchical(
        schedule: CommSchedule,
        node_size: int) -> tuple[CommSchedule, ScheduleDelta]:
    """Rewrite every cross-node flat exchange into stage + rail ops.

    Returns the hierarchical schedule and the declared byte delta
    relative to ``schedule`` (staging double-handles inter-node data on
    the fast fabric, so multi-gpu bytes shift and multi-node bytes
    appear — the gate re-validates exactly this declaration).
    """
    g = schedule.num_gpus
    if node_size <= 1 or node_size >= g or g % node_size:
        raise SchedulePassError(
            f"node_size {node_size} cannot stage a {g}-GPU schedule "
            f"(need a proper divisor of the GPU count)")
    ops: list[ScheduleOp] = []
    for op in schedule.ops:
        if (isinstance(op, ExchangeOp) and op.level == "multi-gpu"
                and _crosses_nodes(op, node_size)):
            ops.extend(split_exchange(op, g, node_size))
        else:
            ops.append(op)
    hier = CommSchedule(
        name=f"{schedule.name}@hier[ns={node_size}]", num_gpus=g,
        element_bytes=schedule.element_bytes, ops=tuple(ops))

    base_bytes = schedule.bytes_by_level()
    hier_bytes = hier.bytes_by_level()
    levels = sorted(set(base_bytes) | set(hier_bytes))
    delta = ScheduleDelta(
        bytes_by_level=tuple(
            (lvl, hier_bytes.get(lvl, 0) - base_bytes.get(lvl, 0))
            for lvl in levels
            if hier_bytes.get(lvl, 0) != base_bytes.get(lvl, 0)),
        note=f"per-node scratch staging, {g // node_size} nodes of "
             f"{node_size}")
    return hier, delta


@dataclass(frozen=True)
class ScheduleCandidate:
    """One entry in the autotuner's schedule search space.

    ``machine`` is the hardware view the candidate must be priced
    against: the flat candidates of a multi-node cluster price on its
    :meth:`~repro.hw.multinode.MultiNodeMachine.flattened` form (all
    GPUs behind the network, the NCCL reality), the hierarchical one on
    the cluster itself so stage and rail ops hit their own fabrics.
    """

    name: str
    schedule: CommSchedule
    base: CommSchedule
    delta: Optional[ScheduleDelta]
    machine: object
    synthesized: bool


def enumerate_candidates(machine, field, n: int,
                         options: UniNTTOptions = ALL_ON,
                         ) -> list[ScheduleCandidate]:
    """Build and gate every schedule candidate for one topology.

    Raises :class:`SchedulePassError` if any product of the rewriter
    fails its verification gate — a candidate that reaches the caller
    is guaranteed verifier-clean with a validated accounting delta.
    """
    from repro.hw.cost import field_limbs

    eb = field_limbs(field) * 8
    is_cluster = hasattr(machine, "node_count")
    total = machine.total_gpus if is_cluster else machine.gpu_count
    flat_machine = machine.flattened() if is_cluster else machine

    base = build_unintt_schedule(n, total, eb, options)
    candidates = [ScheduleCandidate(
        name=base.name, schedule=base, base=base, delta=None,
        machine=flat_machine, synthesized=False)]

    rewritten, _ = run_passes(base, machine=flat_machine, field=field)
    candidates.append(ScheduleCandidate(
        name=f"{base.name}+passes", schedule=rewritten, base=base,
        delta=None, machine=flat_machine, synthesized=True))

    if is_cluster:
        hier, delta = synthesize_hierarchical(base, machine.gpu_count)
        hier, _ = run_passes(hier, machine=machine, field=field)
        gate = verify_rewrite(base, hier, machine=machine, field=field,
                              delta=delta)
        if gate:
            raise SchedulePassError(
                f"hierarchical synthesis for {machine.name!r} failed "
                f"its gate: {gate[0].format()}")
        candidates.append(ScheduleCandidate(
            name=hier.name, schedule=hier, base=base, delta=delta,
            machine=machine, synthesized=True))
    return candidates
