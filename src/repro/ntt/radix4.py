"""Recursive radix-4 NTT.

Radix-4 halves the number of twiddle multiplications per output compared
to radix-2 and is what production GPU kernels use inside a warp (fewer
synchronizations per element).  We implement the textbook recursive
decimation-in-time form: split the input by residue mod 4, transform the
four subsequences, and combine with the 4-point DFT matrix whose only
non-trivial constant is ``J = w^(n/4)`` (a primitive 4th root, J^2 = -1).

Odd powers of two fall back to one radix-2 split at the top.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["ntt_radix4", "intt_radix4", "radix4_multiply_count"]


def _radix4_recursive(field: PrimeField, values: list[int], root: int,
                      cache: TwiddleCache) -> list[int]:
    n = len(values)
    p = field.modulus
    if n == 1:
        return values
    if n == 2:
        a, b = values
        return [(a + b) % p, (a - b) % p]
    # Every power of two >= 4 is divisible by 4; odd powers bottom out in
    # size-2 sub-problems handled by the plain butterfly above.
    quarter = n // 4
    root4 = pow(root, 4, p)
    subs = [_radix4_recursive(field, values[r::4], root4, cache)
            for r in range(4)]
    j_const = pow(root, quarter, p)  # primitive 4th root: j^2 = -1
    w1 = cache.powers(field, root, quarter)
    out = [0] * n
    for k in range(quarter):
        t1 = w1[k]
        a0 = subs[0][k]
        a1 = subs[1][k] * t1 % p
        a2 = subs[2][k] * (t1 * t1 % p) % p
        a3 = subs[3][k] * (t1 * t1 % p * t1 % p) % p
        s02 = (a0 + a2) % p
        d02 = (a0 - a2) % p
        s13 = (a1 + a3) % p
        d13 = (a1 - a3) % p * j_const % p
        out[k] = (s02 + s13) % p
        out[k + quarter] = (d02 + d13) % p
        out[k + 2 * quarter] = (s02 - s13) % p
        out[k + 3 * quarter] = (d02 - d13) % p
    return out


def ntt_radix4(field: PrimeField, values: Sequence[int],
               cache: TwiddleCache | None = None,
               root: int | None = None) -> list[int]:
    """Forward NTT via recursive radix-4; natural order in and out."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    w = field.root_of_unity(n) if root is None else root
    return _radix4_recursive(field, list(values), w, cache)


def intt_radix4(field: PrimeField, values: Sequence[int],
                cache: TwiddleCache | None = None,
                root: int | None = None) -> list[int]:
    """Inverse NTT via recursive radix-4 (includes 1/n scaling)."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    w = field.root_of_unity(n) if root is None else root
    out = _radix4_recursive(field, list(values), field.inv(w), cache)
    n_inv = field.inv(n % field.modulus)
    p = field.modulus
    return [v * n_inv % p for v in out]


def radix4_multiply_count(n: int) -> int:
    """Twiddle multiplications a radix-4 transform of size n performs.

    Follows the recursion of :func:`ntt_radix4`: a radix-4 combine costs
    3 twiddle multiplies per group of 4 outputs (``T(n) = 4 T(n/4) +
    3n/4``; size-2 butterflies are multiplication-free).  Fewer than
    radix-2's ``(n/2) log2 n``; the cost model uses the difference to
    credit radix fusion.
    """
    if n <= 2:
        return 0
    return 4 * radix4_multiply_count(n // 4) + 3 * (n // 4)
