"""Tests for the analytic cost model."""

import pytest

from repro.errors import HardwareModelError
from repro.field import BLS12_381_FR, GOLDILOCKS, TEST_FIELD_97
from repro.hw import (
    CostModel, DGX_A100, Phase, PipelinedGroup, field_limbs,
)


class TestFieldLimbs:
    def test_values(self):
        assert field_limbs(TEST_FIELD_97) == 1
        assert field_limbs(GOLDILOCKS) == 1
        assert field_limbs(BLS12_381_FR) == 4


class TestPhase:
    def test_negative_charge_rejected(self):
        with pytest.raises(HardwareModelError, match="negative"):
            Phase(name="bad", field_muls=-1)

    def test_empty_group_rejected(self):
        with pytest.raises(HardwareModelError, match="empty"):
            PipelinedGroup(name="bad", phases=())


class TestPricing:
    @pytest.fixture
    def model(self):
        return CostModel(DGX_A100, BLS12_381_FR)

    def test_element_bytes(self, model):
        assert model.element_bytes == 32

    def test_compute_seconds(self, model):
        per_s = DGX_A100.gpu.field_mul_per_s(4)
        assert model.compute_seconds(1000) == pytest.approx(1000 / per_s)

    def test_memory_seconds(self, model):
        assert model.memory_seconds(2_000_000) == pytest.approx(
            2_000_000 / DGX_A100.gpu.hbm_bandwidth)

    def test_exchange_seconds_includes_latency(self, model):
        bw = DGX_A100.interconnect.alltoall_bandwidth(8)
        lat = DGX_A100.interconnect.latency
        assert model.exchange_seconds(1_000_000, "multi-gpu",
                                      messages=7) == pytest.approx(
            1_000_000 / bw + 7 * lat)

    def test_unknown_level_rejected(self, model):
        with pytest.raises(HardwareModelError, match="no level"):
            model.exchange_seconds(1, "nope")

    def test_phase_is_max_of_compute_and_memory(self, model):
        compute_heavy = Phase(name="c", field_muls=10**9, mem_bytes=1)
        memory_heavy = Phase(name="m", field_muls=1, mem_bytes=10**12)
        assert model.phase_seconds(compute_heavy) == pytest.approx(
            model.compute_seconds(10**9))
        assert model.phase_seconds(memory_heavy) == pytest.approx(
            model.memory_seconds(10**12))

    def test_pipelined_group_is_max_of_sides(self, model):
        comm = Phase(name="x", exchange_bytes=10**9, messages=1)
        work = Phase(name="w", field_muls=10**6)
        group = PipelinedGroup(name="g", phases=(comm, work))
        expected = max(model.compute_seconds(10**6),
                       model.exchange_seconds(10**9, "multi-gpu", 1))
        assert model.group_seconds(group) == pytest.approx(expected)

    def test_overlap_saves_time(self, model):
        comm = Phase(name="x", exchange_bytes=10**9, messages=1)
        work = Phase(name="w", field_muls=10**8)
        sequential = model.estimate([comm, work]).total_s
        overlapped = model.estimate(
            [PipelinedGroup(name="g", phases=(comm, work))]).total_s
        assert overlapped < sequential

    def test_estimate_aggregates(self, model):
        steps = [
            Phase(name="a", field_muls=1000, mem_bytes=4096),
            Phase(name="b", exchange_bytes=8192, messages=2),
            Phase(name="a", field_muls=500),
        ]
        breakdown = model.estimate(steps)
        assert breakdown.total_s > 0
        assert breakdown.compute_s == pytest.approx(
            model.compute_seconds(1500))
        assert breakdown.exchange_bytes_by_level == {"multi-gpu": 8192}
        # duplicate phase names accumulate
        assert breakdown.per_phase["a"] > 0
        assert set(breakdown.per_phase) == {"a", "b"}

    def test_dominant_resource(self, model):
        breakdown = model.estimate([Phase(name="c", field_muls=10**9)])
        assert breakdown.dominant_resource() == "compute"
        breakdown = model.estimate(
            [Phase(name="x", exchange_bytes=10**12, messages=1)])
        assert breakdown.dominant_resource() == "exchange"

    def test_goldilocks_cheaper_than_bls(self):
        """Per-element, a 1-limb field transforms faster than 4-limb."""
        small = CostModel(DGX_A100, GOLDILOCKS)
        big = CostModel(DGX_A100, BLS12_381_FR)
        phase = Phase(name="p", field_muls=10**6, mem_bytes=0)
        assert small.phase_seconds(phase) < big.phase_seconds(phase)

    def test_intra_gpu_levels_priceable(self, model):
        """The uniform model prices warp/block exchanges the same way."""
        for level in ("warp", "block", "gpu"):
            assert model.exchange_seconds(1024, level, messages=1) > 0
        # Deeper levels have strictly lower synchronization latency.
        assert (model.level("warp").exchange_latency
                < model.level("block").exchange_latency
                < model.level("gpu").exchange_latency)
