"""Plan and twiddle caches: pinned hit/miss counts, zero-recompute hits."""

import pytest

from repro.errors import ServeError
from repro.field import GOLDILOCKS, TEST_FIELD_7681
from repro.hw import DGX_A100
from repro.serve import PlanCache, TwiddleLedger
from repro.serve.cache import PLAN_MISS_MESSAGES


class TestPlanCache:
    def test_hit_miss_counts_are_pinned(self):
        cache = PlanCache()
        # First choose plans both strategies: exactly two misses.
        _, misses = cache.choose(DGX_A100, GOLDILOCKS, 10, vectors=8)
        assert misses == 2
        assert (cache.hits, cache.misses) == (0, 2)
        # The identical shape again: all hits, no new entries.
        _, misses = cache.choose(DGX_A100, GOLDILOCKS, 10, vectors=8)
        assert misses == 0
        assert (cache.hits, cache.misses, len(cache)) == (2, 2, 2)
        # A different size is a different key.
        cache.choose(DGX_A100, GOLDILOCKS, 12, vectors=8)
        assert (cache.hits, cache.misses, len(cache)) == (2, 4, 4)

    def test_choose_picks_the_cheaper_strategy(self):
        cache = PlanCache()
        entry, _ = cache.choose(DGX_A100, GOLDILOCKS, 10, vectors=16)
        rep, _ = cache.lookup(DGX_A100, GOLDILOCKS, 10, "replicate")
        spl, _ = cache.lookup(DGX_A100, GOLDILOCKS, 10, "split")
        best = min((rep, spl),
                   key=lambda e: (e.batch_seconds(16), e.strategy))
        assert entry == best

    def test_split_unavailable_below_g_squared(self):
        cache = PlanCache()
        # 2^4 = 16 < 8*8: split cannot run on an 8-GPU machine.
        entry, _ = cache.lookup(DGX_A100, GOLDILOCKS, 4, "split")
        assert not entry.available
        with pytest.raises(ServeError):
            entry.batch_seconds(1)
        chosen, _ = cache.choose(DGX_A100, GOLDILOCKS, 4, vectors=4)
        assert chosen.strategy == "replicate"
        with pytest.raises(ServeError):
            cache.choose(DGX_A100, GOLDILOCKS, 4, vectors=4, force="split")

    def test_replicate_scales_by_gpu_slots_split_by_vectors(self):
        cache = PlanCache()
        rep, _ = cache.lookup(DGX_A100, GOLDILOCKS, 10, "replicate")
        spl, _ = cache.lookup(DGX_A100, GOLDILOCKS, 10, "split")
        # 8 GPUs: 1..8 vectors replicate in one slot, 9 need two.
        assert rep.batch_seconds(8) == rep.batch_seconds(1)
        assert rep.batch_seconds(9) == 2 * rep.batch_seconds(1)
        assert spl.batch_seconds(3) == 3 * spl.batch_seconds(1)

    def test_plan_miss_price_is_nonzero(self):
        assert PLAN_MISS_MESSAGES > 0


class TestTwiddleLedger:
    def test_hits_are_charged_zero_recompute(self):
        ledger = TwiddleLedger()
        phase, hit = ledger.prepare(TEST_FIELD_7681, 64, "forward")
        assert not hit
        assert phase is not None and phase.field_muls > 0
        generated = ledger.cache.generated_entries
        # The identical shape again: a hit, and nothing regenerated.
        for _ in range(3):
            phase, hit = ledger.prepare(TEST_FIELD_7681, 64, "forward")
            assert hit
            assert phase is None  # zero recompute charged
        assert ledger.cache.generated_entries == generated

    def test_direction_and_size_are_distinct_tables(self):
        ledger = TwiddleLedger()
        _, hit = ledger.prepare(TEST_FIELD_7681, 64, "forward")
        assert not hit
        phase, hit = ledger.prepare(TEST_FIELD_7681, 64, "inverse")
        assert not hit and phase is not None
        _, hit = ledger.prepare(TEST_FIELD_7681, 32, "forward")
        assert not hit

    def test_bounded_ledger_evicts_and_recharges(self):
        ledger = TwiddleLedger(max_tables=1)
        ledger.prepare(TEST_FIELD_7681, 64, "forward")
        ledger.prepare(TEST_FIELD_7681, 32, "forward")  # evicts the 64
        assert ledger.stats()["evictions"] >= 1
        phase, hit = ledger.prepare(TEST_FIELD_7681, 64, "forward")
        assert not hit and phase is not None  # regenerated, recharged
