"""F13: wall-clock micro-benchmarks of the functional kernels.

Unlike F7-F12 (analytic tables), these measure the *actual Python
execution time* of the library's kernels via pytest-benchmark — the
numbers regression-tested when optimizing the implementation itself.
"""

import random

import pytest

from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.multigpu import DistributedVector, UniNTTEngine
from repro.ntt import intt, ntt, ntt_radix4
from repro.sim import SimCluster

RNG = random.Random(1234)


@pytest.mark.parametrize("field", [GOLDILOCKS, BLS12_381_FR],
                         ids=lambda f: f.name)
@pytest.mark.parametrize("log_n", [10, 12])
def test_f13_radix2_forward(benchmark, field, log_n):
    values = field.random_vector(1 << log_n, RNG)
    result = benchmark(ntt, field, values)
    assert intt(field, result) == values


@pytest.mark.parametrize("log_n", [10, 12])
def test_f13_radix4_forward(benchmark, log_n):
    field = GOLDILOCKS
    values = field.random_vector(1 << log_n, RNG)
    result = benchmark(ntt_radix4, field, values)
    assert result == ntt(field, values)


@pytest.mark.parametrize("gpus", [4, 8])
def test_f13_unintt_distributed(benchmark, gpus):
    field = GOLDILOCKS
    n = 1 << 12
    values = field.random_vector(n, RNG)
    cluster = SimCluster(field, gpus)
    engine = UniNTTEngine(cluster)
    layout = engine.input_layout(n)

    def run():
        vec = DistributedVector.from_values(cluster, values, layout)
        return engine.forward(vec)

    out = benchmark(run)
    assert out.to_values() == ntt(field, values)


@pytest.mark.parametrize("log_n", [12, 14])
def test_f13_goldilocks_vectorized(benchmark, log_n):
    """The numpy Goldilocks kernel vs the pure-Python path."""
    from repro.field import gl_array, gl_ntt

    field = GOLDILOCKS
    values = field.random_vector(1 << log_n, RNG)
    arr = gl_array(values)
    result = benchmark(gl_ntt, arr)
    assert [int(v) for v in result] == ntt(field, values)


@pytest.mark.parametrize("log_n", [10, 12])
def test_f13_stockham_forward(benchmark, log_n):
    from repro.ntt import ntt_stockham

    field = GOLDILOCKS
    values = field.random_vector(1 << log_n, RNG)
    result = benchmark(ntt_stockham, field, values)
    assert result == ntt(field, values)


@pytest.mark.parametrize("vectorized", [False, True],
                         ids=["scalar", "vectorized"])
def test_f13_unintt_local_path(benchmark, vectorized):
    """The engine's vectorized Goldilocks local-transform option."""
    field = GOLDILOCKS
    n = 1 << 12
    values = field.random_vector(n, RNG)
    cluster = SimCluster(field, 8)
    engine = UniNTTEngine(cluster, vectorized=vectorized)
    layout = engine.input_layout(n)

    def run():
        vec = DistributedVector.from_values(cluster, values, layout)
        return engine.forward(vec)

    out = benchmark(run)
    assert out.to_values() == ntt(field, values)
