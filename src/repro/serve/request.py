"""Requests and per-request results for the proof-serving scheduler.

A :class:`ProofRequest` is one client's ask: transform ``batch``
vectors of size ``2**log_size`` over a named field, forward or inverse,
with a priority and an optional deadline.  Requests carry a data seed
rather than data: the input vectors are a pure function of
``(data_seed, request_id, lane)``, so a workload file fully determines
every byte the server touches and runs replay bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ServeError
from repro.field.presets import field_by_name
from repro.field.prime_field import PrimeField

__all__ = ["DIRECTIONS", "ProofRequest", "RequestResult"]

#: Transform directions a request may ask for.
DIRECTIONS = ("forward", "inverse")


@dataclass(frozen=True)
class ProofRequest:
    """One queued transform request.

    Attributes
    ----------
    request_id:
        Unique id within a workload; ties in every ordering break on it.
    field_name:
        Preset field name (resolved via ``repro.field.field_by_name``).
    log_size:
        Transform size is ``2**log_size``.
    direction:
        ``"forward"`` or ``"inverse"``.
    batch:
        Number of independent vectors in this request (a proof stage
        typically transforms many witness columns at once).
    priority:
        Smaller is more urgent; breaks ties among equal deadlines.
    deadline_s:
        Absolute virtual-time deadline, or ``None`` for best-effort.
    arrival_s:
        Virtual time the request reaches the server.
    data_seed:
        Seed for the deterministic input data.
    tenant_id:
        The submitting tenant.  Per-tenant QoS (weighted fair queueing
        in :mod:`repro.serve.qos`) and the per-tenant report breakdown
        key on it; single-tenant workloads leave the default.
    """

    request_id: int
    field_name: str
    log_size: int
    direction: str = "forward"
    batch: int = 1
    priority: int = 0
    deadline_s: float | None = None
    arrival_s: float = 0.0
    data_seed: int = 0
    tenant_id: str = "default"

    def __post_init__(self) -> None:
        if not isinstance(self.tenant_id, str) or not self.tenant_id:
            raise ServeError(
                f"request {self.request_id}: tenant_id must be a "
                f"non-empty string, got {self.tenant_id!r}")
        if self.direction not in DIRECTIONS:
            raise ServeError(
                f"request {self.request_id}: direction must be one of "
                f"{DIRECTIONS}, got {self.direction!r}")
        if self.log_size < 1:
            raise ServeError(
                f"request {self.request_id}: log_size must be >= 1, "
                f"got {self.log_size}")
        if self.batch < 1:
            raise ServeError(
                f"request {self.request_id}: batch must be >= 1, "
                f"got {self.batch}")
        if self.arrival_s < 0:
            raise ServeError(
                f"request {self.request_id}: arrival_s must be >= 0, "
                f"got {self.arrival_s}")
        if self.deadline_s is not None and self.deadline_s < self.arrival_s:
            raise ServeError(
                f"request {self.request_id}: deadline {self.deadline_s} "
                f"precedes arrival {self.arrival_s}")
        field = field_by_name(self.field_name)  # raises KeyError if unknown
        if self.log_size > field.two_adicity:
            raise ServeError(
                f"request {self.request_id}: {field.name} has two-adicity "
                f"{field.two_adicity}; cannot transform 2^{self.log_size}")

    @property
    def n(self) -> int:
        return 1 << self.log_size

    @property
    def field(self) -> PrimeField:
        return field_by_name(self.field_name)

    def shape_key(self) -> tuple[str, int, str]:
        """Requests sharing this key may ride one cross-request batch."""
        return (self.field_name, self.log_size, self.direction)

    def urgency_key(self) -> tuple[float, int, float, int]:
        """Deadline-first total order (EDF), ties by priority/arrival."""
        deadline = self.deadline_s if self.deadline_s is not None \
            else float("inf")
        return (deadline, self.priority, self.arrival_s, self.request_id)

    def to_record(self) -> dict[str, object]:
        """JSON-serializable record (journal / snapshot / workload)."""
        return {
            "request_id": self.request_id,
            "field_name": self.field_name,
            "log_size": self.log_size,
            "direction": self.direction,
            "batch": self.batch,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "arrival_s": self.arrival_s,
            "data_seed": self.data_seed,
            "tenant_id": self.tenant_id,
        }

    @classmethod
    def from_record(cls, record: dict) -> "ProofRequest":
        """Rebuild a request from :meth:`to_record` output."""
        try:
            return cls(**record)
        except TypeError as error:
            raise ServeError(f"bad request record: {error}") from error

    def vectors(self) -> list[list[int]]:
        """The request's deterministic input data, one list per lane."""
        field = self.field
        return [
            field.random_vector(
                self.n,
                random.Random(repr((self.data_seed, self.request_id, lane))))
            for lane in range(self.batch)
        ]


@dataclass(frozen=True)
class RequestResult:
    """One completed request: outputs plus its service-time accounting."""

    request: ProofRequest
    outputs: tuple[tuple[int, ...], ...]
    start_s: float
    finish_s: float
    batch_id: int
    strategy: str
    shared_batch: int

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion time (queueing + service)."""
        return self.finish_s - self.request.arrival_s

    @property
    def deadline_met(self) -> bool:
        deadline = self.request.deadline_s
        return deadline is None or self.finish_s <= deadline
