"""End-to-end proof-generation time model.

Combines the NTT engine cost profiles with the MSM work model to
estimate full Groth16-style proving time on a machine — the experiment
that motivates the paper: once MSM is multi-GPU, the single-GPU NTT
dominates, and only a multi-GPU NTT removes the Amdahl wall.

The per-proof operation mix comes from a
:class:`~repro.zkp.profiles.ProofSystemProfile` (Groth16 by default:
3 INTTs + 3 coset NTTs + 1 coset INTT and 4 MSMs, all relative to the
``n``-point constraint domain; PLONK adds 4n-sized quotient work and 9
MSMs).  Coset shift scalings are an extra pointwise pass for engines
that cannot fuse twiddle-like scalings, and free for those that can.
MSMs run over the BN254 base field, optionally split across all GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProverError
from repro.field.presets import BN254_FR
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel
from repro.hw.model import MachineModel
from repro.multigpu.base import DistributedNTTEngine
from repro.ntt.polymul import next_power_of_two
from repro.zkp.msm import MsmWorkModel
from repro.zkp.profiles import GROTH16_PROFILE, ProofSystemProfile

__all__ = ["ProofCostEstimate", "EndToEndModel"]


@dataclass(frozen=True)
class ProofCostEstimate:
    """Seconds per proof, split by kernel family."""

    constraints: int
    domain_size: int
    ntt_s: float
    msm_s: float
    witness_s: float

    @property
    def total_s(self) -> float:
        return self.ntt_s + self.msm_s + self.witness_s

    def ntt_fraction(self) -> float:
        return self.ntt_s / self.total_s if self.total_s else 0.0


class EndToEndModel:
    """Prices a full proof on one machine with one NTT engine choice."""

    def __init__(self, machine: MachineModel,
                 ntt_engine: DistributedNTTEngine,
                 msm_gpus: int | None = None,
                 field: PrimeField = BN254_FR,
                 msm_model: MsmWorkModel | None = None,
                 profile: ProofSystemProfile = GROTH16_PROFILE):
        if msm_gpus is not None and msm_gpus < 1:
            raise ProverError(f"msm_gpus must be >= 1, got {msm_gpus}")
        self.machine = machine
        self.engine = ntt_engine
        self.field = field
        self.msm_gpus = msm_gpus if msm_gpus is not None \
            else machine.gpu_count
        self.msm_model = msm_model or MsmWorkModel()
        self.profile = profile
        self._cost = CostModel(machine, field)
        #: Base-field multiplier throughput (MSMs run in BN254-Fp: 4 limbs).
        self._base_mul_per_s = machine.gpu.field_mul_per_s(4)

    # -- per-kernel pieces --------------------------------------------------

    def ntt_seconds(self, domain_size: int) -> float:
        """Seconds for the profile's transforms on the bound engine."""
        total = 0.0
        for op in self.profile.transforms:
            size = op.size_factor * domain_size
            breakdown = self.engine.estimate(self.machine, size,
                                             inverse=op.inverse)
            total += breakdown.total_s
            if op.coset:
                total += self._coset_scale_seconds(size)
        return total

    def _coset_scale_seconds(self, domain_size: int) -> float:
        """Cost of the coset shift scaling; free when the engine fuses it."""
        options = getattr(self.engine, "options", None)
        if options is not None and options.fused_twiddle:
            return 0.0
        shard = domain_size // self.machine.gpu_count
        return self._cost.memory_seconds(
            2 * shard * self._cost.element_bytes)

    def msm_seconds(self, domain_size: int) -> float:
        """Seconds for the profile's commitment MSMs."""
        total = 0.0
        for size in self.profile.msm_sizes(domain_size):
            if self.msm_gpus > 1:
                muls = self.msm_model.field_muls_multi_gpu(
                    size, self.msm_gpus)
                # one tiny result reduction per MSM
                total += self.machine.interconnect.latency
            else:
                muls = self.msm_model.field_muls(size)
            total += muls / self._base_mul_per_s
        return total

    def witness_seconds(self, constraints: int) -> float:
        """Witness-row evaluation: one sparse dot pass, memory-bound."""
        # ~3 sparse rows of a handful of terms each, streamed once.
        nbytes = 6 * constraints * self._cost.element_bytes
        return nbytes / self.machine.gpu.hbm_bandwidth

    # -- the headline number --------------------------------------------------

    def proof_cost(self, constraints: int) -> ProofCostEstimate:
        """Estimated proof-generation time for a circuit size."""
        if constraints < 1:
            raise ProverError(
                f"constraints must be >= 1, got {constraints}")
        n = next_power_of_two(constraints)
        return ProofCostEstimate(
            constraints=constraints,
            domain_size=n,
            ntt_s=self.ntt_seconds(n),
            msm_s=self.msm_seconds(n),
            witness_s=self.witness_seconds(constraints),
        )
