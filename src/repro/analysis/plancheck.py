"""Plan verifier: symbolic execution of a communication schedule.

The verifier walks a :class:`~repro.multigpu.schedule.CommSchedule`
without running the simulator.  Each GPU shard carries a *dataflow tag*
— the name of the pass that last produced it — and every op declares
the tag it consumes and the tag it produces.  Walking the op list with
this one piece of state is enough to decide the schedule-level bugs
that silently corrupt a multi-GPU NTT:

* **read-before-write** — an op consumes a tag no prior op produced on
  that shard (a kernel launched before the exchange it depends on);
* **lost / duplicated transfers** — an exchange delivers fewer or more
  bytes to a destination than its layout relayout requires;
* **deadlock** — a pairwise stage whose partner map is not an
  involution, leaving GPUs waiting on peers that are not waiting back;
* **level mismatch** — a collective charged to a hierarchy level the
  machine model does not have (or to a non-exchange level);
* **cost-model violations** — non-finite or negative charges from
  :func:`repro.hw.plancost.price_plan`, or schedule byte totals that
  disagree with the plan-cost closed form.

:func:`seed_bug` injects each bug class deliberately; the test suite
uses it to prove every detector actually fires.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.findings import Check, Finding
from repro.multigpu import accounting as acct
from repro.multigpu.schedule import (
    ALL_ON, CommSchedule, ExchangeOp, LocalOp, PairwiseOp, UniNTTOptions,
    build_pairwise_schedule, build_unintt_schedule,
)

__all__ = ["CHECKS", "SEED_BUGS", "verify_schedule", "check_cost",
           "analyze_plan", "seed_bug"]

CHECKS = (
    Check("plan.read-before-write", 1,
          "an op consumes a shard no prior op produced"),
    Check("plan.lost-transfer", 1,
          "an exchange delivers fewer bytes than the relayout requires"),
    Check("plan.duplicate-transfer", 1,
          "an exchange delivers more bytes than the relayout requires"),
    Check("plan.deadlock", 1,
          "a pairwise partner map is not an involution (wait cycle)"),
    Check("plan.level-mismatch", 1,
          "an op is charged to a level the machine/topology lacks"),
    Check("plan.bad-transfer", 1,
          "a transfer is malformed (negative bytes, bad endpoints)"),
    Check("plan.cost-invariant", 1,
          "a priced plan violates PlanCost.validate() invariants"),
    Check("plan.cost-mismatch", 1,
          "schedule exchange bytes disagree with hw.plancost"),
)

#: Fault kinds :func:`seed_bug` can inject.
SEED_BUGS = ("drop-transfer", "duplicate-transfer", "reorder",
             "wrong-level", "deadlock", "bad-fusion")

#: Tag a shard carries after a broken exchange: nothing downstream may
#: legitimately consume it.
_STALE = "<stale>"

#: Levels a collective may ride: the inter-device fabrics.
_EXCHANGE_LEVELS = frozenset({"multi-gpu", "multi-node"})


class _OpFindings:
    """Append shim tying each finding to the op index it was found at.

    :func:`verify_schedule` sorts its findings into a canonical
    (op index, check, message) order before returning; this keeps the
    emission sites unchanged while recording the primary sort key.
    """

    def __init__(self, recorded: list, index: int):
        self._recorded = recorded
        self._index = index

    def append(self, finding: Finding) -> None:
        self._recorded.append((self._index, finding))


def verify_schedule(schedule: CommSchedule, machine=None) -> list[Finding]:
    """Symbolically walk ``schedule``; return every violation found.

    ``machine`` (a :class:`~repro.hw.model.MachineModel`, optional)
    enables the level checks: every op's level must name a level the
    machine actually has.

    Findings are returned in a canonical order — sorted by (op index,
    check id, message) — so rendered and ``--json`` output is
    byte-reproducible across runs and refactors of the walk itself.
    """
    recorded: list[tuple[int, Finding]] = []
    g = schedule.num_gpus
    tags = ["input"] * g

    level_names = None
    if machine is not None:
        level_names = {spec.name
                       for spec in machine.levels(schedule.element_bytes)}

    def read_all_shards(op, index: int, where: str) -> None:
        stale = sorted(s for s in range(g) if tags[s] != op.consumes)
        if stale:
            found = sorted({tags[s] for s in stale})
            recorded.append((index, Finding(
                "plan.read-before-write",
                f"consumes {op.consumes!r} but GPU(s) {stale} hold "
                f"{', '.join(repr(t) for t in found)}", where)))

    for index, op in enumerate(schedule.ops):
        where = f"{schedule.name}.ops[{index}]({op.name})"
        findings = _OpFindings(recorded, index)

        if level_names is not None and op.level not in level_names:
            findings.append(Finding(
                "plan.level-mismatch",
                f"level {op.level!r} does not exist on {machine.name}",
                where))

        if isinstance(op, LocalOp):
            read_all_shards(op, index, where)
            tags = [op.produces] * g
            continue

        # Collectives must ride an inter-device fabric.
        if op.level not in _EXCHANGE_LEVELS:
            findings.append(Finding(
                "plan.level-mismatch",
                f"collective charged to non-exchange level {op.level!r}",
                where))

        if isinstance(op, ExchangeOp):
            for t in op.transfers:
                if (t.nbytes < 0 or t.src == t.dst
                        or not 0 <= t.src < g or not 0 <= t.dst < g):
                    findings.append(Finding(
                        "plan.bad-transfer",
                        f"malformed transfer {t.src}->{t.dst} "
                        f"({t.nbytes} bytes)", where))
            read_all_shards(op, index, where)
            received = op.received_bytes_per_gpu(g)
            stale_dsts = set()
            for dst in range(g):
                expected = op.expected_in_bytes[dst]
                if received[dst] < expected:
                    findings.append(Finding(
                        "plan.lost-transfer",
                        f"GPU {dst} receives {received[dst]} of "
                        f"{expected} expected bytes", where))
                    stale_dsts.add(dst)
                elif received[dst] > expected:
                    findings.append(Finding(
                        "plan.duplicate-transfer",
                        f"GPU {dst} receives {received[dst]} bytes, "
                        f"{received[dst] - expected} more than the "
                        f"relayout sends", where))
            tags = [_STALE if s in stale_dsts else op.produces
                    for s in range(g)]
            continue

        assert isinstance(op, PairwiseOp)
        if op.bytes_per_gpu < 0:
            findings.append(Finding(
                "plan.bad-transfer",
                f"negative payload {op.bytes_per_gpu} bytes", where))
        cycles = _wait_cycles(op.partner_of, g)
        for cycle in cycles:
            chain = " -> ".join(str(s) for s in cycle + (cycle[0],))
            findings.append(Finding(
                "plan.deadlock",
                f"partner map is not an involution: wait cycle "
                f"{chain}", where))
        # Catch chains that end in a valid pair/fixed point without
        # forming a cycle themselves (i waits on j, j ignores i).
        in_cycle = {s for cycle in cycles for s in cycle}
        stranded = sorted(
            s for s in range(g) if s not in in_cycle
            and (not 0 <= op.partner_of[s] < g
                 or op.partner_of[op.partner_of[s]] != s))
        if stranded:
            findings.append(Finding(
                "plan.deadlock",
                f"GPU(s) {stranded} wait on partners that are not "
                f"waiting back", where))
        deadlocked = bool(cycles or stranded)
        read_all_shards(op, index, where)
        # A deadlocked stage never completes: nothing is produced.
        tags = [_STALE] * g if deadlocked else [op.produces] * g

    recorded.sort(key=lambda item: (item[0], item[1].check,
                                    item[1].message))
    return [finding for _, finding in recorded]


def _wait_cycles(partner_of: tuple[int, ...],
                 g: int) -> list[tuple[int, ...]]:
    """Cycles of GPUs waiting on peers that are not waiting back.

    A healthy partner map is an involution: every cycle of the
    functional graph ``i -> partner_of[i]`` has length 1 (self, a
    no-op) or 2 (a matched pair).  Longer cycles — and edges leaving
    the valid range — are reported, each once, smallest member first.
    """
    cycles: list[tuple[int, ...]] = []
    seen: set[int] = set()
    for start in range(g):
        if start in seen:
            continue
        if not 0 <= partner_of[start] < g:
            # A bad edge is not a cycle; the stranded-GPU check in
            # verify_schedule reports it.
            seen.add(start)
            continue
        # Walk the orbit of `start`; stop at a revisit or a bad edge.
        orbit = [start]
        node = partner_of[start]
        while node not in orbit and node not in seen \
                and 0 <= partner_of[node] < g:
            orbit.append(node)
            node = partner_of[node]
        seen.update(orbit)
        if node == start and len(orbit) > 2:
            cycles.append(tuple(orbit))
    return cycles


def check_cost(machine, field, n: int,
               schedule: CommSchedule | None = None,
               delta=None) -> list[Finding]:
    """Price the multi-GPU split and check the cost-model invariants.

    Builds the one-exchange plan the schedule corresponds to (a single
    ``multi-gpu``-tagged split), runs
    :meth:`~repro.hw.plancost.PlanCost.validate`, checks the priced
    per-unit bytes against the closed-form accounting, and — when a
    schedule is supplied — checks the schedule's total exchange bytes
    against the plan cost (per-unit bytes x GPUs x exchanges).

    ``delta`` (a :class:`~repro.analysis.passes.ScheduleDelta`,
    optional) re-validates a *declared* accounting change: a
    synthesized schedule whose staging legitimately shifts bytes
    between levels must still land exactly on flat-plan bytes plus its
    declaration, per level — an undeclared drift is a cost mismatch.
    """
    from repro.hw.plancost import price_plan
    from repro.ntt.plan import leaf, split

    g = machine.gpu_count
    m = n // g
    where = f"{machine.name} n={n}"
    plan = split(leaf(g), leaf(m), level="multi-gpu")
    cost = price_plan(machine, field, plan)

    findings = [Finding("plan.cost-invariant", problem, where)
                for problem in cost.validate()]

    if schedule is not None:
        eb = schedule.element_bytes
    else:
        from repro.hw.cost import field_limbs
        eb = field_limbs(field) * 8
    per_unit = cost.exchange_bytes_by_level.get("multi-gpu", 0)
    formula = acct.alltoall_bytes_per_gpu(m, g, eb)
    if per_unit != formula:
        findings.append(Finding(
            "plan.cost-mismatch",
            f"plancost per-unit bytes {per_unit} != accounting "
            f"formula {formula}", where))

    if schedule is not None:
        declared = delta.bytes_dict() if delta is not None else {}
        exchanges = [op for op in schedule.collective_ops()
                     if op.level == "multi-gpu"]
        expected = (per_unit * g * len(exchanges)
                    + declared.get("multi-gpu", 0))
        actual = schedule.bytes_by_level().get("multi-gpu", 0)
        if expected != actual:
            findings.append(Finding(
                "plan.cost-mismatch",
                f"schedule moves {actual} multi-gpu bytes but plancost "
                f"prices {expected} ({len(exchanges)} exchange(s))",
                where))
        for level in sorted(set(declared) - {"multi-gpu"}):
            level_actual = schedule.bytes_by_level().get(level, 0)
            if level_actual != declared[level]:
                findings.append(Finding(
                    "plan.cost-mismatch",
                    f"schedule moves {level_actual} {level} bytes but "
                    f"declares {declared[level]}", where))
    return findings


def seed_bug(schedule: CommSchedule, kind: str) -> CommSchedule:
    """Inject one deliberate bug into a (correct) schedule.

    Fault kinds (:data:`SEED_BUGS`):

    * ``drop-transfer`` — delete one message from the first exchange
      (caught as a lost transfer *and* a downstream read-before-write);
    * ``duplicate-transfer`` — send one message twice;
    * ``reorder`` — swap the first two ops (dependency inversion);
    * ``wrong-level`` — charge the first collective to the ``gpu``
      level;
    * ``deadlock`` — replace the first pairwise partner map with a
      rotation (a ``G``-cycle, the canonical non-involution);
    * ``bad-fusion`` — merge two local ops *across* an intervening
      collective, the way a buggy peephole pass would: the collective
      is left consuming a tag nothing produces any more (caught as a
      read-before-write at the collective).
    """
    ops = list(schedule.ops)

    def first(op_type):
        for i, op in enumerate(ops):
            if isinstance(op, op_type):
                return i
        raise ValueError(
            f"schedule {schedule.name} has no {op_type.__name__} to "
            f"corrupt with {kind!r}")

    if kind == "drop-transfer":
        i = first(ExchangeOp)
        ops[i] = replace(ops[i], transfers=ops[i].transfers[:-1])
    elif kind == "duplicate-transfer":
        i = first(ExchangeOp)
        ops[i] = replace(ops[i],
                         transfers=ops[i].transfers
                         + (ops[i].transfers[0],))
    elif kind == "reorder":
        if len(ops) < 2:
            raise ValueError("schedule too short to reorder")
        ops[0], ops[1] = ops[1], ops[0]
    elif kind == "wrong-level":
        i = first((ExchangeOp, PairwiseOp))
        ops[i] = replace(ops[i], level="gpu")
    elif kind == "deadlock":
        i = first(PairwiseOp)
        g = schedule.num_gpus
        ops[i] = replace(ops[i],
                         partner_of=tuple((s + 1) % g for s in range(g)))
    elif kind == "bad-fusion":
        local_indices = [i for i, op in enumerate(ops)
                         if isinstance(op, LocalOp)]
        pair = next(((a, b) for a, b in zip(local_indices,
                                            local_indices[1:])
                     if b > a + 1), None)
        if pair is None:
            raise ValueError(
                f"schedule {schedule.name} has no local ops separated "
                f"by a collective to mis-fuse with {kind!r}")
        a, b = pair
        head, tail = ops[a], ops[b]
        ops[a] = LocalOp(
            name=f"{head.name}+{tail.name}", consumes=head.consumes,
            produces=tail.produces, level=head.level,
            field_muls_per_gpu=(head.field_muls_per_gpu
                                + tail.field_muls_per_gpu),
            mem_bytes_per_gpu=(head.mem_bytes_per_gpu
                               + tail.mem_bytes_per_gpu))
        del ops[b]
    else:
        raise ValueError(f"unknown seed bug {kind!r}; "
                         f"choose from {SEED_BUGS}")
    return schedule.with_ops(tuple(ops))


def analyze_plan(n: int, gpu_count: int, field, engine: str = "unintt",
                 options: UniNTTOptions = ALL_ON, machine=None,
                 seed_bugs: tuple[str, ...] = (),
                 ) -> tuple[CommSchedule, list[Finding]]:
    """Build, optionally corrupt, and verify one engine's schedule.

    The one-call entry the CLI and tests use.  Returns the (possibly
    corrupted) schedule together with every finding from the symbolic
    walk and — when ``machine`` is given — the cost checks.
    """
    from repro.hw.cost import field_limbs

    eb = field_limbs(field) * 8
    if engine == "unintt":
        schedule = build_unintt_schedule(n, gpu_count, eb, options)
    elif engine == "pairwise":
        schedule = build_pairwise_schedule(n, gpu_count, eb)
    else:
        raise ValueError(f"unknown engine {engine!r}; "
                         f"choose unintt or pairwise")
    for kind in seed_bugs:
        schedule = seed_bug(schedule, kind)
    findings = verify_schedule(schedule, machine=machine)
    if machine is not None and engine == "unintt":
        findings.extend(check_cost(machine, field, n, schedule=schedule))
    return schedule, findings
