"""Multi-limb backend: schedule codegen, CIOS kernel, and NTT core.

The limb *schedule* (width, count, Montgomery constants) is pure
stdlib data from :mod:`repro.field.limbgen`; the kernel in
:mod:`repro.field.multilimb` executes the source that module emits.
These tests pin both halves: the schedule's arithmetic identities, the
emitted source against a python-int CIOS reference (including the
worst-case inputs that probe the lazy accumulator's uint64 headroom),
and the packed NTT core against the Python backend.
"""

import random

import pytest

from repro.errors import FieldError
from repro.field import (
    BLS12_381_FR, BN254_FR, MultiLimbBackend, PythonBackend,
    describe_schedule, generate_schedule, numpy_available, use_backend,
)
from repro.field.limbgen import emit_montmul_source, pick_limb_bits

BIG_FIELDS = (BN254_FR, BLS12_381_FR)


# -- schedule derivation (stdlib-only; no numpy needed) -----------------------

@pytest.mark.parametrize("field", BIG_FIELDS, ids=lambda f: f.name)
class TestSchedule:
    def test_layout_constants(self, field):
        s = generate_schedule(field.modulus)
        assert (s.limb_bits, s.limbs) == (29, 9)
        assert s.words == 5  # 64-bit words per element when serialized
        assert s.fmt == "limb29x9"

    def test_montgomery_identities(self, field):
        s = generate_schedule(field.modulus)
        p = field.modulus
        assert s.r == 1 << (s.limb_bits * s.limbs)
        assert s.r2 == s.r * s.r % p
        assert (s.n_prime * p) % s.base == s.base - 1  # n' = -p^-1
        assert sum(l << (s.limb_bits * i)
                   for i, l in enumerate(s.p_limbs)) == p

    def test_lazy_bounds(self, field):
        s = generate_schedule(field.modulus)
        # R > 4p is what the semi-lazy butterfly chain relies on, and
        # the accumulator bound must leave non-negative headroom.
        assert s.r > 4 * s.modulus
        assert s.headroom_bits >= 0
        # every benchmarked size (up to 2^16 -> 16 stages) fits the
        # (2s+1)p < R laziness budget with room to spare
        assert s.max_lazy_stages >= 16

    def test_describe_is_stable_and_readable(self, field):
        text = describe_schedule(field.modulus, field.name)
        assert "limb29x9" in text
        assert text == describe_schedule(field.modulus, field.name)


def test_pick_limb_bits_maximizes_width_within_headroom():
    # The widest limb whose 20-term lazy accumulation still fits
    # uint64 is 29 bits for a 254/255-bit modulus; 30 would need a
    # 66-bit accumulator.
    for field in BIG_FIELDS:
        assert pick_limb_bits(field.modulus) == (29, 9)


def test_schedule_requires_odd_modulus():
    with pytest.raises(ValueError, match="odd"):
        generate_schedule(1 << 64)


# -- emitted CIOS source ------------------------------------------------------

class TestEmittedSource:
    def test_source_shape(self):
        s = generate_schedule(BN254_FR.modulus)
        src = emit_montmul_source(s)
        assert src.count("def montmul_lazy") == 1
        assert src.count("np.right_shift") == s.limbs
        # exactly one zero fill: the result's top row (never
        # accumulated into, but normalized in place by callers)
        assert src.count(".fill(0)") == 1
        compile(src, "<test>", "exec")  # emitted source must parse

    def test_source_is_field_specialized(self):
        bn = emit_montmul_source(generate_schedule(BN254_FR.modulus))
        bls = emit_montmul_source(generate_schedule(BLS12_381_FR.modulus))
        assert bn != bls  # n' differs per field


# -- the compiled kernel ------------------------------------------------------

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy unavailable")


def _kernel(field):
    return MultiLimbBackend()._kernel(field)


def _int_of(kern, arr, i):
    return kern.lane_int(arr, i)


@needs_numpy
@pytest.mark.parametrize("field", BIG_FIELDS, ids=lambda f: f.name)
class TestMontmul:
    def test_matches_int_reference(self, field, rng):
        kern = _kernel(field)
        p, R = field.modulus, kern.schedule.r
        r_inv = pow(R, -1, p)
        n = 16
        a_vals = [rng.randrange(p) for _ in range(n)]
        b_vals = [rng.randrange(p) for _ in range(n)]
        a, b = kern.pack(a_vals), kern.pack(b_vals)
        sc = kern.scratch(n)
        out = kern.montmul_lazy(a, b, sc)
        for i in range(n):
            got = _int_of(kern, out, i) % p
            assert got == a_vals[i] * b_vals[i] * r_inv % p

    def test_accumulator_headroom_at_worst_case(self, field):
        """Overflow regression: all-ones limbs must stay bit-exact.

        The CIOS accumulator peaks within a few bits of 2^64; a past
        bug fed partially-normalized limbs (~2^34) back into it and
        got within 0.21 bits of silent wraparound.  Canonical-limb
        inputs with every limb at the mask (value R-1 — larger than
        any value the NTT can produce) are the adversarial cap: if the
        accumulation chain ever loses a carry, this detects it.
        """
        import numpy as np

        kern = _kernel(field)
        p, R, L = field.modulus, kern.schedule.r, kern.L
        r_inv = pow(R, -1, p)
        n = 4
        a = np.full((L, n), kern.schedule.mask, dtype=np.uint64)
        a_val = R - 1
        b_vals = [p - 1, p - 2, 1, p // 2]
        b = kern.pack(b_vals)
        out = kern.montmul_lazy(a, b, kern.scratch(n))
        for i in range(n):
            assert _int_of(kern, out, i) % p == \
                a_val * b_vals[i] * r_inv % p

    def test_scratch_view_reuse_is_safe(self, field, rng):
        """Callers may normalize the returned view in place.

        ``mul``/``pack_table`` run a carry chain directly on the
        returned scratch view, which writes its top row; the next
        montmul on the same scratch must still be exact (the emitted
        source re-zeroes exactly that row).
        """
        kern = _kernel(field)
        p, R = field.modulus, kern.schedule.r
        r_inv = pow(R, -1, p)
        n = 8
        sc = kern.scratch(n)
        for _ in range(3):
            a_vals = [rng.randrange(p) for _ in range(n)]
            b_vals = [rng.randrange(p) for _ in range(n)]
            out = kern.montmul_lazy(kern.pack(a_vals), kern.pack(b_vals), sc)
            kern.norm_seq(out)  # in-place on the view, like mul() does
            for i in range(n):
                assert _int_of(kern, out, i) % p == \
                    a_vals[i] * b_vals[i] * r_inv % p


@needs_numpy
@pytest.mark.parametrize("field", BIG_FIELDS, ids=lambda f: f.name)
class TestBarrettExit:
    def test_reduces_extremes(self, field):
        import numpy as np

        kern = _kernel(field)
        p, L = field.modulus, kern.L
        R = kern.schedule.r
        # 0, p-1 (fixed), p and 2p-1 (one subtraction), R-1 (the
        # largest canonical-limb value the exit can ever see)
        cases = [0, p - 1, p, 2 * p - 1, 3 * p + 12345, R - 1]
        arr = np.empty((L, len(cases)), dtype=np.uint64)
        for i, v in enumerate(cases):
            for j in range(L):
                arr[j, i] = (v >> (kern.k * j)) & kern.schedule.mask
        out = kern.reduce_canonical(arr)
        for i, v in enumerate(cases):
            assert _int_of(kern, out, i) == v % p

    def test_work_buffer_variant_is_identical(self, field, rng):
        import numpy as np

        kern = _kernel(field)
        p, L = field.modulus, kern.L
        vals = [rng.randrange(2 * p) for _ in range(8)]
        arr = np.empty((L, 8), dtype=np.uint64)
        for i, v in enumerate(vals):
            for j in range(L):
                arr[j, i] = (v >> (kern.k * j)) & kern.schedule.mask
        work = np.empty_like(arr)
        a = kern.reduce_canonical(arr.copy())
        b = kern.reduce_canonical(arr.copy(), work=work)
        assert (a == b).all()


@needs_numpy
@pytest.mark.parametrize("field", BIG_FIELDS, ids=lambda f: f.name)
class TestPackUnpack:
    def test_round_trip_edges(self, field, rng):
        backend = MultiLimbBackend()
        p = field.modulus
        vals = [0, 1, p - 1, p // 2, (1 << 232) - 1,
                rng.randrange(p), rng.randrange(p)]
        packed = backend.pack(field, vals)
        assert backend.unpack(field, packed) == vals

    def test_values_in_p_to_r_are_reduced(self, field):
        backend = MultiLimbBackend()
        kern = _kernel(field)
        p, R = field.modulus, kern.schedule.r
        vals = [p, 2 * p - 1, R - 1, p + 12345]
        packed = kern.pack(vals)
        assert packed is not None
        assert kern.unpack(packed) == [v % p for v in vals]

    def test_unpackable_values_return_none(self, field):
        kern = _kernel(field)
        R = kern.schedule.r
        assert kern.pack([-1]) is None          # negative: no to_bytes
        assert kern.pack([1 << 320]) is None    # beyond the word budget
        assert kern.pack([R]) is None           # would truncate limbs
        assert kern.pack([R + 5, 1]) is None

    def test_backend_level_fallback_still_correct(self, field):
        # The FieldBackend wrapper retries unpackable inputs (here:
        # negatives, which int.to_bytes refuses) through the
        # canonicalized path; op results must match PythonBackend,
        # whose semantics allow arbitrary integers.
        backend, py = MultiLimbBackend(), PythonBackend()
        vals = [-1, -field.modulus, field.modulus + 7]
        ones = [1, 1, 1]
        got = backend.unpack(field, backend.mul(
            field, backend.pack(field, vals), backend.pack(field, ones)))
        want = py.unpack(field, py.mul(
            field, py.pack(field, vals), py.pack(field, ones)))
        assert got == want


@needs_numpy
@pytest.mark.parametrize("field", BIG_FIELDS, ids=lambda f: f.name)
class TestNTTCore:
    def _ops_and_table(self, field, n):
        from repro.ntt.twiddle import TwiddleCache

        backend = MultiLimbBackend()
        ops = backend.lane_ops(field)
        cache = TwiddleCache()
        root = field.root_of_unity(n)
        table = cache.packed_powers(field, root, n // 2, ops.pack_table,
                                    fmt=ops.fmt)
        return ops, table

    def test_n2_direct(self, field, rng):
        from repro.ntt import dft

        ops, table = self._ops_and_table(field, 2)
        vals = field.random_vector(2, rng)
        got = ops.unpack(ops.ntt_core(ops.pack(vals), table))
        assert got == dft(field, vals)

    def test_matches_python_backend(self, field, rng):
        from repro.ntt.radix2 import ntt

        for n in (4, 32, 128):
            vals = field.random_vector(n, rng)
            with use_backend("python"):
                want = ntt(field, vals)
            ops, table = self._ops_and_table(field, n)
            got = ops.unpack(ops.ntt_core(ops.pack(vals), table))
            assert got == want, f"n={n}"

    def test_input_not_mutated(self, field, rng):
        ops, table = self._ops_and_table(field, 16)
        packed = ops.pack(field.random_vector(16, rng))
        before = packed.copy()
        ops.ntt_core(packed, table)
        assert (packed == before).all()

    def test_lane_ops_surface(self, field):
        ops = MultiLimbBackend().lane_ops(field)
        assert ops.fmt == "limb29x9"
        assert ops.min_size == 32
        assert ops.unpack is not None and ops.pack_table is not None

    def test_stage_table_cache_is_bounded(self, field, rng):
        kern = _kernel(field)
        ops, table = self._ops_and_table(field, 16)
        packed = ops.pack(field.random_vector(16, rng))
        ops.ntt_core(packed, table)
        entries = len(kern._stage_tables)
        ops.ntt_core(packed, table)  # same table+size: no new entry
        assert len(kern._stage_tables) == entries
        for _ in range(6):  # distinct tables: cache stays bounded
            ops2, t2 = self._ops_and_table(field, 16)
            kern.ntt_core(packed, t2)
        assert len(kern._stage_tables) <= 4

    def test_depth_guard_raises_clearly(self, field):
        import dataclasses

        import numpy as np

        kern = _kernel(field)
        # The real bound needs ~2^60 lanes to trip; shrink it so the
        # guard itself (checked before any table work) is exercised.
        kern.schedule = dataclasses.replace(kern.schedule,
                                            max_lazy_stages=2)
        fake = np.zeros((kern.L, 8), dtype=np.uint64)
        with pytest.raises(FieldError, match="lazy-carry bound"):
            kern.ntt_core(fake, None)


@needs_numpy
def test_engine_transform_under_multilimb(rng):
    """A distributed engine is bit-exact with multilimb active."""
    from repro.multigpu import DistributedVector, UniNTTEngine
    from repro.ntt import ntt
    from repro.sim import SimCluster

    field = BN254_FR
    n = 64
    values = field.random_vector(n, rng)
    with use_backend("python"):
        want = ntt(field, values)
    with use_backend("multilimb"):
        cluster = SimCluster(field, 4)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        assert engine.forward(vec).to_values() == want


@needs_numpy
def test_small_fields_behave_like_numpy_backend(rng):
    """Below 64 bits the multilimb backend is plain NumPyBackend."""
    from repro.field import GOLDILOCKS, NumPyBackend

    ml, np_ = MultiLimbBackend(), NumPyBackend()
    a = GOLDILOCKS.random_vector(16, rng)
    b = GOLDILOCKS.random_vector(16, rng)
    assert ml.unpack(GOLDILOCKS, ml.mul(
        GOLDILOCKS, ml.pack(GOLDILOCKS, a), ml.pack(GOLDILOCKS, b))) == \
        np_.unpack(GOLDILOCKS, np_.mul(
            GOLDILOCKS, np_.pack(GOLDILOCKS, a), np_.pack(GOLDILOCKS, b)))
