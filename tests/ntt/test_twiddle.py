"""Tests for twiddle tables and bit reversal."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NTTError
from repro.field import TEST_FIELD_7681
from repro.ntt import TwiddleCache, bit_reverse, bit_reverse_permutation

F = TEST_FIELD_7681


class TestBitReverse:
    @pytest.mark.parametrize("value,bits,expected", [
        (0b001, 3, 0b100),
        (0b110, 3, 0b011),
        (0b1011, 4, 0b1101),
        (0, 5, 0),
        (1, 1, 1),
    ])
    def test_values(self, value, bits, expected):
        assert bit_reverse(value, bits) == expected

    @given(st.integers(min_value=0, max_value=255))
    def test_involution(self, value):
        assert bit_reverse(bit_reverse(value, 8), 8) == value

    def test_permutation_is_involution(self):
        perm = bit_reverse_permutation(16)
        assert sorted(perm) == list(range(16))
        assert [perm[perm[i]] for i in range(16)] == list(range(16))

    def test_permutation_size_validation(self):
        with pytest.raises(NTTError, match="power-of-two"):
            bit_reverse_permutation(12)

    def test_permutation_known(self):
        assert bit_reverse_permutation(8) == [0, 4, 2, 6, 1, 5, 3, 7]


class TestCache:
    def test_powers_content(self):
        cache = TwiddleCache()
        table = cache.powers(F, 2, 5)
        assert table == [1, 2, 4, 8, 16]

    def test_powers_cached_identity(self):
        cache = TwiddleCache()
        assert cache.powers(F, 3, 10) is cache.powers(F, 3, 10)

    def test_forward_table_is_half(self):
        cache = TwiddleCache()
        assert len(cache.forward(F, 64)) == 32
        assert len(cache.forward(F, 1)) == 1

    def test_forward_inverse_related(self):
        cache = TwiddleCache()
        fwd = cache.forward(F, 16)
        inv = cache.inverse(F, 16)
        p = F.modulus
        for a, b in zip(fwd, inv):
            assert a * b % p == 1

    def test_bitrev_cached(self):
        cache = TwiddleCache()
        assert cache.bitrev(16) is cache.bitrev(16)

    def test_clear_and_stats(self):
        cache = TwiddleCache()
        cache.forward(F, 32)
        cache.bitrev(32)
        stats = cache.stats()
        assert stats["tables"] == 1
        assert stats["entries"] == 16
        assert stats["bitrev_tables"] == 1
        cache.clear()
        stats = cache.stats()
        assert (stats["tables"], stats["entries"],
                stats["bitrev_tables"]) == (0, 0, 0)
        # Counters survive a clear: they are lifetime service history.
        assert stats["misses"] == 1

    def test_keyed_by_field_and_root(self):
        from repro.field import TEST_FIELD_97
        cache = TwiddleCache()
        cache.powers(F, 2, 4)
        cache.powers(TEST_FIELD_97, 2, 4)
        cache.powers(F, 3, 4)
        assert cache.stats()["tables"] == 3

    def test_hit_miss_counts_pinned(self):
        """Repeated identical shapes must hit; hits generate nothing."""
        cache = TwiddleCache()
        for _ in range(5):
            cache.forward(F, 64)
        cache.inverse(F, 64)
        cache.inverse(F, 64)
        stats = cache.stats()
        assert stats["misses"] == 2   # one forward table, one inverse
        assert stats["hits"] == 5     # 4 forward re-uses + 1 inverse
        # Generation work equals the missed tables' entries exactly:
        # a hit is charged zero recompute.
        assert stats["generated_entries"] == 32 + 32

    def test_lru_eviction_accounting(self):
        cache = TwiddleCache(max_tables=2)
        cache.powers(F, 2, 4)
        cache.powers(F, 3, 4)
        cache.powers(F, 2, 4)   # touch: 2 becomes most recent
        cache.powers(F, 5, 4)   # evicts root-3 table (LRU)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["tables"] == 2
        assert cache.contains(F, 2, 4)
        assert not cache.contains(F, 3, 4)
        cache.powers(F, 3, 4)   # regenerating the evicted table misses
        assert cache.stats()["misses"] == 4

    def test_max_tables_validation(self):
        with pytest.raises(NTTError, match="max_tables"):
            TwiddleCache(max_tables=0)

    def test_reset_stats_keeps_tables(self):
        cache = TwiddleCache()
        cache.forward(F, 16)
        cache.reset_stats()
        stats = cache.stats()
        assert stats["hits"] == stats["misses"] == 0
        assert stats["tables"] == 1
        cache.forward(F, 16)
        assert cache.stats()["hits"] == 1
