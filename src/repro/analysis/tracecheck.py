"""Trace race detector: post-hoc checks over simulator event streams.

A :class:`~repro.sim.trace.Trace` is the simulator's account of what
ran; this module decides whether that account is *coherent*.  The
semantics come from the :data:`~repro.sim.trace.EVENT_KINDS` registry:
collectives synchronize (participants may read each other's shards
inside the primitive), everything else is local.  From that alone the
detector flags:

* **unknown kinds** — events outside the declared registry;
* **write conflicts** — two events stamped with the *same* logical
  step whose write sets (the devices they rewrite) intersect: declared
  concurrency plus overlapping writes is a data race by construction;
* **unsynchronized reads** — a non-collective event that claims to
  have read another device's shard (``reads``), which no fabric
  carried;
* **malformed charges** — negative bytes/muls, or a per-GPU critical
  path larger than the event's own total;
* **plan divergence** — when the static schedule for the run is
  supplied, per-level byte totals that disagree with
  :meth:`~repro.multigpu.schedule.CommSchedule.bytes_by_level`, which
  turns every simulated run into a self-checking oracle;
* **unresolved faults** — every injected ``fault`` event whose kind
  aborts or corrupts work (:data:`repro.sim.faults.RESOLUTION_REQUIRED`)
  must be answered later in the trace by a ``retry`` or ``reshard``
  event, matched one-to-one in order; a fault nothing recovered from
  means the run's output cannot be trusted.

Serving traces add their own invariants: dispatched batches must
retire (complete, fail over, or recover), journal sequence numbers
must be gapless per journal (fleet replicas tag their events
``replica=<n>``; each replica's stream is audited separately), every
failure-detector suspicion must resolve one-to-one into failover or
recovery (``trace.unresolved-suspicion``), and no request may complete
in two batches (``trace.duplicate-complete`` — the trace-level
exactly-once guarantee of the replicated fleet).

Events on the ``"resilience"`` level (checkpoints, reshards, verify
probes) describe recovery traffic outside the engines' static
schedules, so the plan-divergence comparison skips that level.
"""

from __future__ import annotations

from repro.analysis.findings import Check, Finding
from repro.multigpu.schedule import CommSchedule
from repro.sim.faults import RESOLUTION_REQUIRED
from repro.sim.trace import EVENT_KINDS, Trace, TraceEvent

__all__ = ["CHECKS", "check_trace", "RESILIENCE_LEVEL", "SERVE_LEVEL"]

#: Trace level carrying recovery traffic; exempt from plan comparison.
RESILIENCE_LEVEL = "resilience"

#: Trace level carrying request-serving bookkeeping (queue admission,
#: batch dispatch, cache consults); like recovery traffic it sits
#: outside the engines' static schedules, so the plan-divergence
#: comparison skips it too.
SERVE_LEVEL = "serve"

CHECKS = (
    Check("trace.unknown-kind", 1,
          "an event kind is not declared in EVENT_KINDS"),
    Check("trace.write-conflict", 1,
          "two same-step events write the same device's shard"),
    Check("trace.unsynced-read", 1,
          "a non-collective event read a remote shard"),
    Check("trace.negative-charge", 1,
          "an event charges negative bytes or multiplications"),
    Check("trace.inconsistent-bytes", 1,
          "per-GPU critical-path bytes exceed the event total"),
    Check("trace.plan-divergence", 1,
          "traced per-level bytes disagree with the static schedule"),
    Check("trace.unresolved-fault", 1,
          "an injected fault has no retry/reshard resolution"),
    Check("trace.serve-dangling-dispatch", 1,
          "a serve-dispatch batch never reached serve-complete"),
    Check("trace.unrecovered-crash", 1,
          "a server-crash fault has no serve-recover, or vice versa"),
    Check("trace.shed-and-completed", 1,
          "a request was shed but its outputs were also emitted"),
    Check("trace.journal-gap", 1,
          "write-ahead journal sequence numbers are not contiguous"),
    Check("trace.unresolved-suspicion", 1,
          "a suspected replica never resolved to failover or recovery"),
    Check("trace.duplicate-complete", 1,
          "a request completed in more than one dispatched batch"),
)


def _replica_token(detail: str) -> str | None:
    """The ``replica=<n>`` token of a serve event detail, if any.

    Fleet replicas share one trace; their serve events carry a
    trailing replica tag, which keys the per-journal and per-detector
    audits.  ``None`` means the single-server (untagged) stream.
    """
    for token in detail.split(" "):
        if token.startswith("replica="):
            return token.partition("=")[2]
    return None


def _write_set(event: TraceEvent) -> frozenset[int] | None:
    """Devices whose shards the event rewrites; ``None`` = all of them."""
    if event.gpu < 0:
        return None
    return frozenset({event.gpu})


def check_trace(trace: Trace,
                schedule: CommSchedule | None = None) -> list[Finding]:
    """Check one trace; returns every incoherence found.

    ``schedule`` (optional) is the symbolic schedule of the run the
    trace came from; supplying it enables the byte-total comparison.
    """
    findings: list[Finding] = []
    by_step: dict[int, list[tuple[int, TraceEvent]]] = {}

    for index, event in enumerate(trace.events):
        where = f"trace[{index}]({event.kind}@{event.level})"
        spec = EVENT_KINDS.get(event.kind)
        if spec is None:
            findings.append(Finding(
                "trace.unknown-kind",
                f"kind {event.kind!r} is not registered in EVENT_KINDS",
                where))
            continue
        if min(event.total_bytes, event.max_bytes_per_gpu,
               event.field_muls) < 0:
            findings.append(Finding(
                "trace.negative-charge",
                f"negative charge (bytes {event.total_bytes}/"
                f"{event.max_bytes_per_gpu}, muls {event.field_muls})",
                where))
        elif event.max_bytes_per_gpu > event.total_bytes:
            findings.append(Finding(
                "trace.inconsistent-bytes",
                f"one GPU moved {event.max_bytes_per_gpu} bytes but the "
                f"event total is only {event.total_bytes}", where))
        if not spec.collective:
            remote = sorted(r for r in event.reads if r != event.gpu)
            if remote:
                findings.append(Finding(
                    "trace.unsynced-read",
                    f"non-collective event read remote shard(s) "
                    f"{remote} outside any collective", where))
        by_step.setdefault(event.step, []).append((index, event))

    for step in sorted(by_step):
        group = by_step[step]
        for a in range(len(group)):
            for b in range(a + 1, len(group)):
                index_a, event_a = group[a]
                index_b, event_b = group[b]
                writes_a = _write_set(event_a)
                writes_b = _write_set(event_b)
                if writes_a is None or writes_b is None:
                    overlap: object = "all devices"
                elif writes_a & writes_b:
                    overlap = sorted(writes_a & writes_b)
                else:
                    continue
                findings.append(Finding(
                    "trace.write-conflict",
                    f"events {index_a}({event_a.kind}) and "
                    f"{index_b}({event_b.kind}) run at step {step} and "
                    f"both write {overlap}",
                    f"trace.step[{step}]"))

    pending: list[tuple[int, TraceEvent]] = []
    for index, event in enumerate(trace.events):
        if event.kind == "fault":
            fault_kind = event.detail.partition("@")[0]
            if fault_kind in RESOLUTION_REQUIRED:
                pending.append((index, event))
        elif event.kind in ("retry", "reshard") and pending:
            pending.pop(0)
    for index, event in pending:
        findings.append(Finding(
            "trace.unresolved-fault",
            f"fault {event.detail!r} was never answered by a "
            "retry/reshard event",
            f"trace[{index}](fault)"))

    # Every dispatched serving batch must retire: the batch tag (the
    # first detail token, "batch=<id>") of a serve-dispatch event must
    # reappear on a *later* serve-complete.  In a fleet trace a batch
    # may instead be *voided* — its replica was fenced (the journal
    # failover re-admits the orphans) or it journaled a ``recover``
    # record after a healed partition — so a later serve-failover or
    # recover-kind serve-journal event for the same replica retires
    # that replica's open batches too.  A dispatch nothing completed,
    # failed over, or recovered means requests were dropped mid-flight.
    open_batches: dict[str, tuple[int, str | None]] = {}
    for index, event in enumerate(trace.events):
        if event.level != SERVE_LEVEL:
            continue
        tag = event.detail.split(" ", 1)[0]
        if event.kind == "serve-dispatch":
            open_batches[tag] = (index, _replica_token(event.detail))
        elif event.kind == "serve-complete":
            open_batches.pop(tag, None)
        elif event.kind == "serve-failover" or (
                event.kind == "serve-journal"
                and " kind=recover" in f" {event.detail}"):
            replica = _replica_token(event.detail)
            open_batches = {
                tag: entry for tag, entry in open_batches.items()
                if entry[1] != replica or replica is None}
    for tag, (index, _) in sorted(open_batches.items(),
                                  key=lambda item: item[1][0]):
        findings.append(Finding(
            "trace.serve-dangling-dispatch",
            f"batch {tag!r} was dispatched but never completed",
            f"trace[{index}](serve-dispatch)"))

    # Every simulated server crash must be answered — in order, one to
    # one — by a later serve-recover event, and every serve-recover must
    # answer a crash: a recovery out of nowhere means the journal was
    # replayed against a run that never died.
    open_crashes: list[tuple[int, TraceEvent]] = []
    for index, event in enumerate(trace.events):
        if event.kind == "fault" \
                and event.detail.partition("@")[0] == "server-crash":
            open_crashes.append((index, event))
        elif event.kind == "serve-recover":
            if open_crashes:
                open_crashes.pop(0)
            else:
                findings.append(Finding(
                    "trace.unrecovered-crash",
                    f"serve-recover {event.detail!r} answers no "
                    "server-crash fault",
                    f"trace[{index}](serve-recover)"))
    for index, event in open_crashes:
        findings.append(Finding(
            "trace.unrecovered-crash",
            f"server crash {event.detail!r} was never answered by a "
            "serve-recover event",
            f"trace[{index}](fault)"))

    # A shed request was refused service; its id must never appear in a
    # completed batch's id list.  (serve-shed details lead with
    # "request=<id>"; serve-dispatch details carry "ids=<id,...>" and
    # lead with the batch tag serve-complete retires.)
    shed_ids: dict[str, int] = {}
    batch_ids: dict[str, list[str]] = {}
    completed_ids: set[str] = set()
    for index, event in enumerate(trace.events):
        if event.level != SERVE_LEVEL:
            continue
        if event.kind == "serve-shed":
            token = event.detail.split(" ", 1)[0]
            if token.startswith("request="):
                shed_ids.setdefault(
                    token.partition("=")[2], index)
        elif event.kind == "serve-dispatch":
            tag = event.detail.split(" ", 1)[0]
            for token in event.detail.split(" "):
                if token.startswith("ids="):
                    batch_ids[tag] = token.partition("=")[2].split(",")
        elif event.kind == "serve-complete":
            tag = event.detail.split(" ", 1)[0]
            completed_ids.update(batch_ids.get(tag, []))
    for request_id in sorted(set(shed_ids) & completed_ids,
                             key=lambda rid: shed_ids[rid]):
        findings.append(Finding(
            "trace.shed-and-completed",
            f"request {request_id} was shed by the degradation "
            "controller but its batch also completed",
            f"trace[{shed_ids[request_id]}](serve-shed)"))

    # Journal appends must be gapless *per journal*: each serve-journal
    # event carries "seq=<n>", and within one journal's stream — keyed
    # by the replica tag, or the untagged single-server stream — the
    # sequence must advance by exactly one.  A serve-recover event
    # ("journal-seq=<crash>") resets the expectation to the crash point
    # plus one — the recovery leg's first append lands right after the
    # record the crash interrupted.  A serve-failover fences its
    # replica's journal; the replica rejoins under a *fresh* journal,
    # so the expectation for that replica is cleared (its next append
    # restarts the stream).
    expected_seqs: dict[str | None, int | None] = {}
    for index, event in enumerate(trace.events):
        replica = _replica_token(event.detail)
        if event.kind == "serve-recover":
            token = event.detail.split(" ", 1)[0]
            if token.startswith("journal-seq="):
                try:
                    expected_seqs[replica] = \
                        int(token.partition("=")[2]) + 1
                except ValueError:
                    pass
        elif event.kind == "serve-failover":
            expected_seqs[replica] = None
        elif event.kind == "serve-journal":
            token = event.detail.split(" ", 1)[0]
            if not token.startswith("seq="):
                continue
            try:
                seq = int(token.partition("=")[2])
            except ValueError:
                continue
            expected = expected_seqs.get(replica)
            if expected is not None and seq != expected:
                findings.append(Finding(
                    "trace.journal-gap",
                    f"journal append carries seq {seq}, expected "
                    f"{expected} (records lost or reordered)",
                    f"trace[{index}](serve-journal)"))
            expected_seqs[replica] = seq + 1

    # Every suspicion the failure detector raises must resolve — one to
    # one, in order, per replica — into either a *recovered* transition
    # (the heartbeats returned) or a serve-failover (the replica was
    # fenced and its journal replayed).  A suspicion left hanging means
    # the fleet never decided whether that replica's work survived; a
    # resolution out of nowhere means the detector's account is
    # incoherent.
    open_suspicions: dict[str | None, list[int]] = {}
    for index, event in enumerate(trace.events):
        if event.kind not in ("serve-heartbeat", "serve-failover"):
            continue
        replica = _replica_token(event.detail)
        tokens = event.detail.split(" ")
        if event.kind == "serve-heartbeat" and "suspect" in tokens:
            open_suspicions.setdefault(replica, []).append(index)
        elif event.kind == "serve-failover" or (
                event.kind == "serve-heartbeat"
                and "recovered" in tokens):
            pending = open_suspicions.get(replica)
            if pending:
                pending.pop(0)
            else:
                what = ("failover" if event.kind == "serve-failover"
                        else "recovery")
                findings.append(Finding(
                    "trace.unresolved-suspicion",
                    f"{what} of replica {replica} answers no open "
                    "suspicion",
                    f"trace[{index}]({event.kind})"))
    for replica in sorted(open_suspicions,
                          key=lambda r: (r is None, r)):
        for index in open_suspicions[replica]:
            findings.append(Finding(
                "trace.unresolved-suspicion",
                f"replica {replica} was suspected but never resolved "
                "to failover or recovery",
                f"trace[{index}](serve-heartbeat)"))

    # No request may complete twice: the id lists of completed batches
    # (serve-dispatch "ids=..." whose tag a serve-complete retired)
    # must be disjoint.  With fleet-unique batch ids this is the
    # trace-level exactly-once guarantee: not even a fenced replica's
    # re-admitted orphan may also complete where it first ran.
    completed_where: dict[str, int] = {}
    batch_members: dict[str, list[str]] = {}
    for index, event in enumerate(trace.events):
        if event.level != SERVE_LEVEL:
            continue
        tag = event.detail.split(" ", 1)[0]
        if event.kind == "serve-dispatch":
            for token in event.detail.split(" "):
                if token.startswith("ids="):
                    batch_members[tag] = \
                        token.partition("=")[2].split(",")
        elif event.kind == "serve-complete":
            for request_id in batch_members.get(tag, []):
                first = completed_where.setdefault(request_id, index)
                if first != index:
                    findings.append(Finding(
                        "trace.duplicate-complete",
                        f"request {request_id} completed in two "
                        f"batches (trace[{first}] and trace[{index}])",
                        f"trace[{index}](serve-complete)"))

    if schedule is not None:
        expected = schedule.bytes_by_level()
        actual = trace.bytes_by_level()
        for level in sorted(set(expected) | set(actual)):
            if level in (RESILIENCE_LEVEL, SERVE_LEVEL):
                continue
            want, got = expected.get(level, 0), actual.get(level, 0)
            if want != got:
                findings.append(Finding(
                    "trace.plan-divergence",
                    f"trace moved {got} bytes at level {level!r}, "
                    f"static schedule predicts {want}",
                    f"trace.bytes_by_level[{level}]"))
    return findings
