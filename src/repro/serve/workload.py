"""Workload specifications: synthetic generators and JSON parsing.

A workload is just a list of :class:`~repro.serve.request.ProofRequest`
records.  Two ways to build one:

* :func:`generate_workload` / :func:`iter_workload` — a seeded
  synthetic open-loop arrival process: ``requests`` requests with
  exponential inter-arrival gaps of mean ``mean_interarrival_s`` (zero
  collapses to a burst: everything arrives at t=0, the offered-load
  knob the f21 benchmark sweeps), rotating through ``log_sizes`` /
  ``field_names`` / ``directions``.  Three optional shape knobs model
  real proof traffic (ZKProphet-style: diurnal, bursty, multi-tenant):

  - ``diurnal_period_s`` / ``diurnal_amplitude`` modulate the arrival
    *rate* sinusoidally — gaps shrink on the peak half of the period
    and stretch on the trough half;
  - ``burst_every`` / ``burst_size`` inject ``burst_size`` extra
    simultaneous arrivals after every ``burst_every`` paced ones;
  - ``tenants`` / ``tenant_weights`` draw each request's ``tenant_id``
    from a weighted tenant mix.

  Each knob draws from its own independently-seeded RNG (or none), so
  enabling one never perturbs the byte-identical arrival stream a
  default spec has always produced.  :func:`iter_workload` is a lazy
  generator — the f25 experiment walks a million-request workload
  through it without materializing the list.
* :func:`workload_from_json` — an explicit request list (every field of
  the dataclass accepted, sensible defaults applied), or a ``spec``
  object with the generator's parameters.

Everything is seeded; the same spec always yields byte-identical
requests, arrival times included.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ServeError
from repro.serve.request import ProofRequest

__all__ = ["WorkloadSpec", "generate_workload", "iter_workload",
           "workload_from_json", "workload_to_json"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    requests: int = 8
    log_sizes: tuple[int, ...] = (10,)
    field_names: tuple[str, ...] = ("Goldilocks",)
    directions: tuple[str, ...] = ("forward",)
    batch: int = 1
    mean_interarrival_s: float = 0.0
    deadline_s: float | None = None
    priority_levels: int = 1
    seed: int = 0
    tenants: tuple[str, ...] = ("default",)
    tenant_weights: tuple[float, ...] = ()
    diurnal_period_s: float = 0.0
    diurnal_amplitude: float = 0.0
    burst_every: int = 0
    burst_size: int = 0

    def __post_init__(self) -> None:
        if self.requests < 0:
            raise ServeError(f"requests must be >= 0, got {self.requests}")
        if not self.log_sizes or not self.field_names \
                or not self.directions:
            raise ServeError(
                "log_sizes, field_names, and directions must be non-empty")
        if self.mean_interarrival_s < 0:
            raise ServeError("mean_interarrival_s must be >= 0")
        if self.priority_levels < 1:
            raise ServeError("priority_levels must be >= 1")
        if not self.tenants:
            raise ServeError("tenants must be non-empty")
        if self.tenant_weights:
            if len(self.tenant_weights) != len(self.tenants):
                raise ServeError(
                    f"tenant_weights has {len(self.tenant_weights)} "
                    f"entries for {len(self.tenants)} tenants")
            if any(w <= 0 for w in self.tenant_weights):
                raise ServeError("tenant_weights must all be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ServeError(
                f"diurnal_amplitude must be in [0, 1), "
                f"got {self.diurnal_amplitude}")
        if self.diurnal_amplitude > 0 and self.diurnal_period_s <= 0:
            raise ServeError(
                "diurnal_amplitude > 0 needs diurnal_period_s > 0")
        if self.burst_every < 0 or self.burst_size < 0:
            raise ServeError("burst_every and burst_size must be >= 0")
        if (self.burst_every > 0) != (self.burst_size > 0):
            raise ServeError(
                "burst_every and burst_size must be set together")


def iter_workload(spec: WorkloadSpec) -> Iterator[ProofRequest]:
    """Lazily yield a seeded synthetic workload from ``spec``.

    Streaming matters at fleet scale: the million-request generator
    sweep of the f25 experiment never holds the workload in memory.
    The paced-arrival RNG stream is untouched by the diurnal, burst,
    and tenant knobs (each has its own seeded RNG or is pure
    arithmetic), so a spec with those knobs at their defaults yields
    byte-identical requests to every earlier release.
    """
    rng = random.Random(repr(("workload", spec.seed)))
    tenant_rng = random.Random(repr(("workload-tenant", spec.seed)))
    arrival = 0.0
    paced = 0  # paced (non-burst) arrivals so far, drives burst cadence
    burst_left = 0
    for index in range(spec.requests):
        rider = False
        if index > 0:
            if burst_left > 0:
                burst_left -= 1  # rides the previous arrival timestamp
                rider = True
            elif spec.mean_interarrival_s > 0:
                gap = rng.expovariate(1.0 / spec.mean_interarrival_s)
                if spec.diurnal_amplitude > 0:
                    # Sinusoidal rate modulation: instantaneous rate
                    # multiplier in (1-A, 1+A], evaluated at the
                    # current arrival time; gaps divide by it.
                    rate = 1.0 + spec.diurnal_amplitude * math.sin(
                        2.0 * math.pi * arrival / spec.diurnal_period_s)
                    gap /= rate
                arrival += gap
        if spec.burst_every > 0 and not rider:
            paced += 1
            if paced % spec.burst_every == 0:
                burst_left = spec.burst_size
        if len(spec.tenants) == 1:
            tenant = spec.tenants[0]
        else:
            weights = spec.tenant_weights or None
            tenant = tenant_rng.choices(spec.tenants, weights=weights)[0]
        deadline = None if spec.deadline_s is None \
            else arrival + spec.deadline_s
        yield ProofRequest(
            request_id=index,
            field_name=spec.field_names[index % len(spec.field_names)],
            log_size=spec.log_sizes[index % len(spec.log_sizes)],
            direction=spec.directions[index % len(spec.directions)],
            batch=spec.batch,
            priority=index % spec.priority_levels,
            deadline_s=deadline,
            arrival_s=arrival,
            data_seed=spec.seed,
            tenant_id=tenant,
        )


def generate_workload(spec: WorkloadSpec) -> list[ProofRequest]:
    """Materialize a seeded synthetic workload from ``spec``."""
    return list(iter_workload(spec))


def workload_from_json(text: str) -> list[ProofRequest]:
    """Parse a workload from JSON.

    Accepted shapes::

        {"spec": {"requests": 8, "log_sizes": [10], ...}}
        {"requests": [{"field_name": "Goldilocks", "log_size": 10, ...}]}
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ServeError(f"workload is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ServeError("workload JSON must be an object")
    if "spec" in payload:
        if not isinstance(payload["spec"], dict):
            raise ServeError(
                "workload 'spec' must be an object of generator "
                f"parameters, got {type(payload['spec']).__name__}")
        raw = dict(payload["spec"])
        try:
            for key in ("log_sizes", "field_names", "directions",
                        "tenants", "tenant_weights"):
                if key in raw:
                    raw[key] = tuple(raw[key])
            spec = WorkloadSpec(**raw)
        except (TypeError, ValueError) as error:
            raise ServeError(f"bad workload spec: {error}") from error
        return generate_workload(spec)
    if "requests" not in payload:
        raise ServeError(
            "workload JSON needs a 'spec' or a 'requests' key")
    if not isinstance(payload["requests"], list):
        raise ServeError(
            "'requests' must be a list of request records; to generate "
            "a synthetic workload, nest the parameters under 'spec'")
    requests = []
    for index, raw in enumerate(payload["requests"]):
        if not isinstance(raw, dict):
            raise ServeError(
                f"bad request record {index}: expected an object, "
                f"got {type(raw).__name__}")
        raw = dict(raw)
        raw.setdefault("request_id", index)
        try:
            requests.append(ProofRequest(**raw))
        except (TypeError, ValueError) as error:
            raise ServeError(
                f"bad request record {index}: {error}") from error
    return requests


def workload_to_json(requests: list[ProofRequest]) -> str:
    """Serialize an explicit request list (round-trips from_json)."""
    records = [request.to_record() for request in requests]
    return json.dumps({"requests": records}, indent=2, sort_keys=True)
