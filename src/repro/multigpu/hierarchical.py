"""Hierarchical UniNTT across multiple nodes — the recursion, recursed.

With ``N`` nodes of ``P`` GPUs each (``G = N*P``, shard ``m = n/G``),
the same cyclic decomposition that UniNTT applies at the multi-GPU level
is applied twice:

1. **local** m-point transforms (root ``w^G``) + fused intra-node
   twiddles;
2. **intra-node** all-to-all (each node's P GPUs only — NVSwitch
   traffic) followed by in-place P-point cross transforms: each node now
   holds its ``M = n/N``-point sub-spectrum in a per-node spectral
   layout;
3. fused **inter-node** twiddles ``w^(s_node * k1)``;
4. **inter-node** all-to-all — column-aligned: GPU ``(t_node, s_gpu)``
   only ever exchanges with the ``s_gpu``-th GPU of other nodes (the
   rail-optimized pattern) — followed by in-place N-point cross
   transforms.

Per GPU this moves ``m*(P-1)/P`` bytes on the fast intra-node fabric and
``m*(N-1)/N`` bytes on the network, where a flat (topology-unaware)
engine pushes essentially all of its volume through the network.  The
output stays in :class:`NestedSpectralLayout`; :meth:`inverse` consumes
it and returns the :class:`NestedCyclicLayout` input order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError, SimulationError
from repro.field.vector import vec_mul, vec_scale
from repro.hw.cost import Phase, PipelinedGroup, Step
from repro.multigpu import accounting as acct
from repro.multigpu.base import (
    DistributedNTTEngine, DistributedVector, redistribute,
)
from repro.multigpu.layout import BlockLayout, Layout
from repro.ntt import radix2
from repro.ntt.twiddle import default_cache
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = [
    "NestedCyclicLayout", "IntraNodeExchangeLayout", "NodeSpectralLayout",
    "InterNodeExchangeLayout", "NestedSpectralLayout",
    "HierarchicalUniNTTEngine",
]


@dataclass(frozen=True)
class _NodeStructured(Layout):
    """Base for layouts over an N-node, P-GPUs-per-node cluster."""

    nodes: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1 or self.nodes & (self.nodes - 1):
            raise PartitionError(
                f"nodes must be a power of two, got {self.nodes}")
        if self.gpu_count % self.nodes:
            raise PartitionError(
                f"{self.gpu_count} GPUs do not split into {self.nodes} nodes")

    @property
    def gpus_per_node(self) -> int:
        return self.gpu_count // self.nodes

    @property
    def node_size(self) -> int:
        """Elements per node: M = n / N."""
        return self.n // self.nodes


class NestedCyclicLayout(_NodeStructured):
    """Input order: ``j = (q*P + s_gpu)*N + s_node``.

    GPU ``(s_node, s_gpu)`` holds the doubly-cyclic sub-sequence, so
    both recursion levels' local transforms touch only local data.
    """

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        n_nodes, p = self.nodes, self.gpus_per_node
        j1, s_node = divmod(global_index, n_nodes)
        q, s_gpu = divmod(j1, p)
        return s_node * p + s_gpu, q

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        n_nodes, p = self.nodes, self.gpus_per_node
        s_node, s_gpu = divmod(gpu, p)
        return (local * p + s_gpu) * n_nodes + s_node


class IntraNodeExchangeLayout(_NodeStructured):
    """Target of the intra-node all-to-all, in unit-major index space.

    Index space: ``u = (s_node*P + s_gpu) * m + k1'`` (the physical
    order after the local transforms).  Within node ``s_node``, GPU
    column ``t_gpu`` receives the k1'-chunk ``[t_gpu*m/P, ...)`` from
    its node's P GPUs, storing the P-vector over ``s_gpu`` contiguously:
    ``local = (k1' % (m/P)) * P + s_gpu``.  The in-place P-point cross
    transform then turns this storage into :class:`NodeSpectralLayout`.
    Traffic never crosses a node boundary.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        p = self.gpus_per_node
        if self.shard_size % p:
            raise PartitionError(
                f"shard of {self.shard_size} does not split into {p} "
                f"column chunks (need n >= N * P^2)")

    @property
    def chunk(self) -> int:
        """k1' values per GPU column: m / P."""
        return self.shard_size // self.gpus_per_node

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        p = self.gpus_per_node
        unit, k1p = divmod(global_index, self.shard_size)
        s_node, s_gpu = divmod(unit, p)
        t_gpu, offset = divmod(k1p, self.chunk)
        return s_node * p + t_gpu, offset * p + s_gpu

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        p = self.gpus_per_node
        s_node, t_gpu = divmod(gpu, p)
        offset, s_gpu = divmod(local, p)
        k1p = t_gpu * self.chunk + offset
        return (s_node * p + s_gpu) * self.shard_size + k1p


class NodeSpectralLayout(_NodeStructured):
    """Per-node spectra after step 2.

    Index space: ``v = s_node * M + k1`` with ``k1 = k1' + L*k2_gpu``
    (``L = M/P``).  Within node ``s_node``, GPU column ``t_gpu`` owns the
    k1'-chunk ``[t_gpu*L/P, ...)``, storing ``local = (k1' % (L/P))*P +
    k2_gpu`` — the per-node instance of
    :class:`~repro.multigpu.layout.SpectralLayout`.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        p = self.gpus_per_node
        if self.node_size < p * p:
            raise PartitionError(
                f"node spectral layout needs M >= P^2 "
                f"({self.node_size} < {p}^2)")

    @property
    def chunk(self) -> int:
        """k1' values per GPU column: L / P."""
        return self.node_size // (self.gpus_per_node ** 2)

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        p = self.gpus_per_node
        m_node = self.node_size
        l_local = m_node // p
        s_node, k1 = divmod(global_index, m_node)
        k2_gpu, k1p = divmod(k1, l_local)
        t_gpu, offset = divmod(k1p, self.chunk)
        return s_node * p + t_gpu, offset * p + k2_gpu

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        p = self.gpus_per_node
        m_node = self.node_size
        l_local = m_node // p
        s_node, t_gpu = divmod(gpu, p)
        offset, k2_gpu = divmod(local, p)
        k1 = t_gpu * self.chunk + offset + l_local * k2_gpu
        return s_node * m_node + k1


class _ColumnChunked(_NodeStructured):
    """Shared math of the two post-inter-node-exchange layouts.

    Splits each GPU column's m spectrum slots into N sub-chunks of
    ``m/N``, storing the N-vector over the second index contiguously.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        p = self.gpus_per_node
        if self.node_size < p * p:
            raise PartitionError(
                f"layout needs M >= P^2 ({self.node_size} < {p}^2)")
        if self.shard_size % self.nodes:
            raise PartitionError(
                f"shard of {self.shard_size} does not split into "
                f"{self.nodes} node sub-chunks (need n >= N^2 * P)")

    @property
    def sub(self) -> int:
        """Spectrum slots per (GPU, node sub-chunk): m / N."""
        return self.shard_size // self.nodes

    def _decode_k1(self, k1: int) -> tuple[int, int]:
        """k1 -> (column t_gpu, within-column enumeration idx)."""
        p = self.gpus_per_node
        l_local = self.node_size // p
        chunk = l_local // p
        k2_gpu, k1p = divmod(k1, l_local)
        t_gpu, offset = divmod(k1p, chunk)
        return t_gpu, offset * p + k2_gpu

    def _encode_k1(self, t_gpu: int, idx: int) -> int:
        p = self.gpus_per_node
        l_local = self.node_size // p
        chunk = l_local // p
        offset, k2_gpu = divmod(idx, p)
        return t_gpu * chunk + offset + l_local * k2_gpu

    def _owner(self, second: int, k1: int) -> tuple[int, int]:
        t_gpu, idx = self._decode_k1(k1)
        t_node, pos = divmod(idx, self.sub)
        return (t_node * self.gpus_per_node + t_gpu,
                pos * self.nodes + second)

    def _global(self, gpu: int, local: int) -> tuple[int, int]:
        """-> (second index, k1)."""
        t_node, t_gpu = divmod(gpu, self.gpus_per_node)
        pos, second = divmod(local, self.nodes)
        idx = t_node * self.sub + pos
        return second, self._encode_k1(t_gpu, idx)


class InterNodeExchangeLayout(_ColumnChunked):
    """Index space ``v = s_node * M + k1`` after the inter-node
    all-to-all: GPU ``(t_node, t_gpu)`` holds, for each k1 in its
    sub-chunk, the N values over ``s_node`` contiguously."""

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        s_node, k1 = divmod(global_index, self.node_size)
        return self._owner(s_node, k1)

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        s_node, k1 = self._global(gpu, local)
        return s_node * self.node_size + k1


class NestedSpectralLayout(_ColumnChunked):
    """Final spectrum order: ``k = k1 + M * k2_node`` — the in-place
    N-point cross transform of :class:`InterNodeExchangeLayout`."""

    def owner(self, global_index: int) -> tuple[int, int]:
        self._check_global(global_index)
        k2_node, k1 = divmod(global_index, self.node_size)
        return self._owner(k2_node, k1)

    def global_index(self, gpu: int, local: int) -> int:
        self._check_slot(gpu, local)
        k2_node, k1 = self._global(gpu, local)
        return k2_node * self.node_size + k1


class HierarchicalUniNTTEngine(DistributedNTTEngine):
    """Two-level UniNTT: intra-node exchange + inter-node exchange."""

    name = "unintt-hierarchical"

    def __init__(self, cluster: SimCluster, tile: int = 4096):
        super().__init__(cluster, tile)
        if cluster.node_size is None or cluster.node_count < 2:
            raise SimulationError(
                "HierarchicalUniNTTEngine needs a cluster with node "
                "structure (SimCluster(node_size=...), >= 2 nodes)")
        self.nodes = cluster.node_count
        self.per_node = cluster.node_size

    # -- layouts -----------------------------------------------------------

    def input_layout(self, n: int) -> Layout:
        return NestedCyclicLayout(n=n, gpu_count=self.gpu_count,
                                  nodes=self.nodes)

    def output_layout(self, n: int) -> Layout:
        return NestedSpectralLayout(n=n, gpu_count=self.gpu_count,
                                    nodes=self.nodes)

    def _check_size(self, n: int) -> None:
        g = self.gpu_count
        needed = max(self.nodes * self.nodes * self.per_node,
                     self.per_node * self.per_node * self.nodes)
        if n < needed:
            raise PartitionError(
                f"hierarchical engine needs n >= {needed} "
                f"(N^2*P and P^2*N), got {n}")

    # -- functional ------------------------------------------------------------

    def forward(self, vec: DistributedVector) -> DistributedVector:
        n = vec.n
        self._check_size(n)
        self._check_input(vec, self.input_layout(n))
        field = self.field
        p = field.modulus
        cluster = self.cluster
        n_nodes, per_node = self.nodes, self.per_node
        g = self.gpu_count
        m = n // g
        m_node = n // n_nodes
        root = field.root_of_unity(n)
        root_node = pow(root, n_nodes, p)        # order n/N: per-node root

        # 1. local m-point transforms (root w^G) + intra-node twiddle
        # (root_node^(s_gpu * k1'), fused).
        root_local = pow(root, g, p)
        for gpu in cluster.gpus:
            gpu.shard = radix2.ntt(field, gpu.shard, default_cache,
                                   root=root_local)
            s_gpu = gpu.gpu_id % per_node
            if s_gpu:
                tw = default_cache.powers(
                    field, pow(root_node, s_gpu, p), m)
                gpu.shard = vec_mul(field, gpu.shard, tw)
        self._charge_local_ntt(m, detail="hier-local")

        # 2. intra-node all-to-all + P-point cross transforms.
        unit_major = BlockLayout(n=n, gpu_count=g)
        intra_exchange = IntraNodeExchangeLayout(n=n, gpu_count=g,
                                                 nodes=n_nodes)
        node_spectral = NodeSpectralLayout(n=n, gpu_count=g, nodes=n_nodes)
        redistribute(cluster, unit_major, intra_exchange,
                     detail="hier-intra-exchange")
        root_p = pow(root_node, m_node // per_node, p)  # order P
        self._cross_inplace(per_node, root_p, scale=None,
                            detail="hier-intra-cross")

        # 3. inter-node twiddle w^(s_node * k1), fused: each GPU decodes
        # the k1 its slots hold from the node-spectral layout.
        for gpu in cluster.gpus:
            s_node = gpu.gpu_id // per_node
            if not s_node:
                continue
            w_base = pow(root, s_node, p)
            factors = [
                pow(w_base,
                    node_spectral.global_index(gpu.gpu_id, local) % m_node,
                    p)
                for local in range(len(gpu.shard))]
            gpu.shard = vec_mul(field, gpu.shard, factors)
        self._charge_twiddle(m, detail="hier-inter-twiddle")

        # 4. inter-node all-to-all (column-aligned) + N-point cross.
        exchange = InterNodeExchangeLayout(n=n, gpu_count=g, nodes=n_nodes)
        redistribute(cluster, node_spectral, exchange,
                     detail="hier-inter-exchange")
        root_n = pow(root, m_node, p)  # order N
        self._cross_inplace(n_nodes, root_n, scale=None,
                            detail="hier-inter-cross")
        return DistributedVector(
            cluster=cluster,
            layout=NestedSpectralLayout(n=n, gpu_count=g, nodes=n_nodes))

    def inverse(self, vec: DistributedVector) -> DistributedVector:
        n = vec.n
        self._check_size(n)
        self._check_input(vec, self.output_layout(n))
        field = self.field
        p = field.modulus
        cluster = self.cluster
        n_nodes, per_node = self.nodes, self.per_node
        g = self.gpu_count
        m = n // g
        m_node = n // n_nodes
        root = field.root_of_unity(n)
        inv_root = field.inv(root)
        inv_root_node = pow(inv_root, n_nodes, p)

        # 1. inverse N-point cross transforms (scale 1/N).
        inv_root_n = pow(inv_root, m_node, p)
        self._cross_inplace(n_nodes, inv_root_n,
                            scale=field.inv(n_nodes % p),
                            detail="hier-inv-inter-cross")

        # 2. inter-node all-to-all back + inverse inter-node twiddle.
        exchange = InterNodeExchangeLayout(n=n, gpu_count=g, nodes=n_nodes)
        node_spectral = NodeSpectralLayout(n=n, gpu_count=g, nodes=n_nodes)
        redistribute(cluster, exchange, node_spectral,
                     detail="hier-inv-inter-exchange")
        for gpu in cluster.gpus:
            s_node = gpu.gpu_id // per_node
            if not s_node:
                continue
            w_base = pow(inv_root, s_node, p)
            factors = [
                pow(w_base,
                    node_spectral.global_index(gpu.gpu_id, local) % m_node,
                    p)
                for local in range(len(gpu.shard))]
            gpu.shard = vec_mul(field, gpu.shard, factors)
        self._charge_twiddle(m, detail="hier-inv-inter-twiddle")

        # 3. inverse P-point cross transforms (scale 1/P) + intra-node
        # all-to-all back to unit-major order.
        inv_root_p = pow(inv_root_node, m_node // per_node, p)
        self._cross_inplace(per_node, inv_root_p,
                            scale=field.inv(per_node % p),
                            detail="hier-inv-intra-cross")
        unit_major = BlockLayout(n=n, gpu_count=g)
        intra_exchange = IntraNodeExchangeLayout(n=n, gpu_count=g,
                                                 nodes=n_nodes)
        redistribute(cluster, intra_exchange, unit_major,
                     detail="hier-inv-intra-exchange")

        # 4. inverse intra-node twiddle + local inverse transforms (1/m).
        inv_root_local = pow(inv_root, g, p)
        m_inv = field.inv(m % p)
        for gpu in cluster.gpus:
            s_gpu = gpu.gpu_id % per_node
            shard = gpu.shard
            if s_gpu:
                tw = default_cache.powers(
                    field, pow(inv_root_node, s_gpu, p), m)
                shard = vec_mul(field, shard, tw)
            piece = radix2.ntt(field, shard, default_cache,
                               root=inv_root_local)
            gpu.shard = vec_scale(field, piece, m_inv)
        self._charge_local_ntt(m, scaled=True, detail="hier-inv-local")
        return DistributedVector(
            cluster=cluster,
            layout=NestedCyclicLayout(n=n, gpu_count=g, nodes=n_nodes))

    def _cross_inplace(self, size: int, root: int, scale: int | None,
                       detail: str) -> None:
        """In-place small transforms over contiguous groups of ``size``."""
        field = self.field
        p = field.modulus
        for gpu in self.cluster.gpus:
            shard = gpu.shard
            for base in range(0, len(shard), size):
                piece = radix2.ntt(field, shard[base:base + size],
                                   default_cache, root=root)
                if scale is not None:
                    piece = vec_scale(field, piece, scale)
                shard[base:base + size] = piece
        m = len(self.cluster.gpus[0].shard)
        self._charge_cross(m, size, scaled=scale is not None, detail=detail)

    # -- accounting --------------------------------------------------------------

    def _charge_local_ntt(self, m: int, detail: str,
                          scaled: bool = False) -> None:
        eb = self.cluster.element_bytes
        muls = acct.local_ntt_muls(m) + acct.twiddle_muls(m)
        if scaled:
            muls += m
        mem = acct.local_ntt_mem_bytes(m, eb, self.tile)
        self._record(muls, mem, detail)

    def _charge_cross(self, m: int, size: int, scaled: bool,
                      detail: str) -> None:
        eb = self.cluster.element_bytes
        muls = acct.small_batch_ntt_muls(m // size, size)
        if scaled:
            muls += m
        mem = acct.small_batch_mem_bytes(m // size, size, eb)
        self._record(muls, mem, detail)

    def _charge_twiddle(self, m: int, detail: str) -> None:
        # Fused into the adjacent kernel: multiplies only.
        self._record(acct.twiddle_muls(m), 0, detail)

    def _record(self, muls: int, mem: int, detail: str) -> None:
        for gpu in self.cluster.gpus:
            gpu.charge_compute(muls, mem)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu", max_bytes_per_gpu=mem,
            total_bytes=mem * self.gpu_count,
            field_muls=muls * self.gpu_count, detail=detail))

    # -- analytic ----------------------------------------------------------------

    def _profile(self, n: int, inverse: bool) -> list[Step]:
        self._check_size(n)
        g = self.gpu_count
        eb = self.cluster.element_bytes
        m = n // g
        n_nodes, per_node = self.nodes, self.per_node

        local_muls = acct.local_ntt_muls(m) + acct.twiddle_muls(m)
        if inverse:
            local_muls += m
        local = Phase(name="local-ntt", field_muls=local_muls,
                      mem_bytes=acct.local_ntt_mem_bytes(m, eb, self.tile))

        intra_muls = acct.small_batch_ntt_muls(m // per_node, per_node)
        if inverse:
            intra_muls += m  # the 1/P scaling
        intra = PipelinedGroup(name="intra-node", phases=(
            Phase(name="intra-exchange",
                  exchange_bytes=acct.alltoall_bytes_per_gpu(m, per_node,
                                                             eb),
                  messages=per_node - 1),
            Phase(name="intra-cross", field_muls=intra_muls,
                  mem_bytes=acct.small_batch_mem_bytes(
                      m // per_node, per_node, eb)),
        ))

        twiddle = Phase(name="inter-twiddle",
                        field_muls=acct.twiddle_muls(m))

        inter_muls = acct.small_batch_ntt_muls(m // n_nodes, n_nodes)
        if inverse:
            inter_muls += m  # the 1/N scaling
        inter = PipelinedGroup(name="inter-node", phases=(
            Phase(name="inter-exchange",
                  exchange_bytes=acct.alltoall_bytes_per_gpu(m, n_nodes,
                                                             eb),
                  exchange_level="multi-node", messages=n_nodes - 1),
            Phase(name="inter-cross", field_muls=inter_muls,
                  mem_bytes=acct.small_batch_mem_bytes(
                      m // n_nodes, n_nodes, eb)),
        ))

        steps: list[Step] = [local, intra, twiddle, inter]
        if inverse:
            steps.reverse()
        return steps

    def forward_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=False)

    def inverse_profile(self, n: int) -> list[Step]:
        return self._profile(n, inverse=True)
