"""Benchmark harness: workloads, experiment drivers, reporting."""

from repro.bench.charts import bar_chart, grouped_bar_chart
from repro.bench.reporting import (
    backend_stamp, format_table, geomean, results_dir, speedup_string,
    write_report,
)
from repro.bench.runners import (
    ablation, backend_comparison, batch_throughput, bigfield_comparison,
    comm_breakdown,
    durability_degradation, end_to_end, fleet_scaling,
    headline_speedups, interconnect_sensitivity, multi_gpu_scaling,
    multi_node_scaling,
    platforms_table, resilience_overhead, schedule_synthesis,
    serving_throughput, single_gpu_comparison,
    stark_end_to_end, workloads_table,
)
from repro.bench.workloads import (
    FUNCTIONAL_LOG_SIZES, STANDARD_LOG_SIZES, NTTWorkload,
    functional_workloads, standard_workloads,
)

__all__ = [
    "NTTWorkload", "standard_workloads", "functional_workloads",
    "STANDARD_LOG_SIZES", "FUNCTIONAL_LOG_SIZES",
    "format_table", "geomean", "speedup_string", "write_report",
    "results_dir", "backend_stamp",
    "platforms_table", "workloads_table", "single_gpu_comparison",
    "multi_gpu_scaling", "headline_speedups", "comm_breakdown", "ablation",
    "end_to_end", "batch_throughput", "interconnect_sensitivity",
    "multi_node_scaling", "stark_end_to_end", "backend_comparison",
    "resilience_overhead", "serving_throughput",
    "durability_degradation", "bigfield_comparison",
    "schedule_synthesis", "fleet_scaling",
    "bar_chart", "grouped_bar_chart",
]
