"""Execution traces for the functional simulator.

Every collective and every charged local operation appends a
:class:`TraceEvent`; the benchmark harness aggregates traces into the
communication-breakdown figures, and the test suite asserts that traced
byte counts equal the closed-form phase profiles the cost model prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    Attributes
    ----------
    kind:
        Event family: "all-to-all", "pairwise", "gather", "scatter",
        "local-compute", "memory-pass", "pointwise".
    level:
        Hierarchy level whose fabric carried it ("multi-gpu" for
        collectives, "gpu" for HBM passes).
    max_bytes_per_gpu:
        Largest number of bytes any single GPU sent (the critical path
        of a balanced collective).
    total_bytes:
        Sum of bytes moved by all GPUs.
    field_muls:
        Modular multiplications charged (local-compute events).
    detail:
        Free-form annotation for reports.
    """

    kind: str
    level: str
    max_bytes_per_gpu: int = 0
    total_bytes: int = 0
    field_muls: int = 0
    detail: str = ""


class Trace:
    """An append-only event log with aggregation helpers."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()

    # -- aggregation -----------------------------------------------------------

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def bytes_by_level(self) -> dict[str, int]:
        """Total bytes moved, grouped by hierarchy level."""
        totals: dict[str, int] = {}
        for e in self.events:
            if e.total_bytes:
                totals[e.level] = totals.get(e.level, 0) + e.total_bytes
        return totals

    def critical_bytes_by_level(self) -> dict[str, int]:
        """Per-GPU critical-path bytes, grouped by level."""
        totals: dict[str, int] = {}
        for e in self.events:
            if e.max_bytes_per_gpu:
                totals[e.level] = (totals.get(e.level, 0)
                                   + e.max_bytes_per_gpu)
        return totals

    def collective_count(self) -> int:
        """Number of inter-GPU collectives (the latency-bound metric)."""
        return sum(1 for e in self.events
                   if e.level == "multi-gpu" and e.total_bytes > 0)

    def total_field_muls(self) -> int:
        return sum(e.field_muls for e in self.events)

    def summary(self) -> dict[str, object]:
        """Compact dictionary used by example scripts and benches."""
        return {
            "events": len(self.events),
            "collectives": self.collective_count(),
            "bytes_by_level": self.bytes_by_level(),
            "field_muls": self.total_field_muls(),
        }
