"""Distributed polynomials: the user-facing pipeline API.

ZKP pipelines chain interpolations, pointwise algebra, and evaluations;
done naively each step costs transposes.  :class:`DistributedPolynomial`
tracks which *form* (coefficient / evaluation) and which *layout* the
data is in, performs pointwise work wherever the data already lives
(zero communication), and only transforms when the algebra demands it —
the programming model the overhead-free decomposition enables.

Each polynomial owns its shards (the cluster's devices are used as the
execution engine, not as storage residency), so several polynomials
coexist and combine.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PartitionError
from repro.field.prime_field import PrimeField
from repro.field.vector import vec_add, vec_mul, vec_sub
from repro.multigpu.base import DistributedVector
from repro.multigpu.layout import distribute
from repro.multigpu.unintt import UniNTTEngine
from repro.sim.trace import TraceEvent

__all__ = ["DistributedPolynomial"]

_COEFF = "coefficient"
_EVAL = "evaluation"


class DistributedPolynomial:
    """A degree < n polynomial sharded over a simulated cluster."""

    def __init__(self, engine: UniNTTEngine, shards: list[list[int]],
                 form: str, coset_shift: int | None = None):
        if form not in (_COEFF, _EVAL):
            raise PartitionError(f"unknown form {form!r}")
        self.engine = engine
        self.shards = shards
        self.form = form
        self.coset_shift = coset_shift
        self.n = sum(len(s) for s in shards)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_coefficients(cls, engine: UniNTTEngine,
                          coefficients: Sequence[int],
                          ) -> "DistributedPolynomial":
        """Stage coefficients (padded to the cluster's transform size)."""
        n = len(coefficients)
        if n & (n - 1):
            raise PartitionError(
                f"coefficient count must be a power of two, got {n}")
        shards = distribute(list(coefficients), engine.input_layout(n))
        return cls(engine, shards, form=_COEFF)

    @classmethod
    def from_evaluations(cls, engine: UniNTTEngine,
                         evaluations: Sequence[int],
                         coset_shift: int | None = None,
                         ) -> "DistributedPolynomial":
        """Stage spectral values (in the engine's output layout)."""
        n = len(evaluations)
        if n & (n - 1):
            raise PartitionError(
                f"evaluation count must be a power of two, got {n}")
        shards = distribute(list(evaluations), engine.output_layout(n))
        return cls(engine, shards, form=_EVAL, coset_shift=coset_shift)

    # -- form changes (each costs the engine's one exchange) ----------------------

    def _install(self) -> DistributedVector:
        layout = (self.engine.input_layout(self.n) if self.form == _COEFF
                  else self.engine.output_layout(self.n))
        self.engine.cluster.load_shards(self.shards)
        return DistributedVector(cluster=self.engine.cluster,
                                 layout=layout)

    def to_evaluations(self, coset_shift: int | None = None,
                       ) -> "DistributedPolynomial":
        """Coefficients -> evaluations (no-op if already evaluated on
        the same coset)."""
        if self.form == _EVAL:
            if coset_shift != self.coset_shift:
                raise PartitionError(
                    "already evaluated on a different coset; convert to "
                    "coefficients first")
            return self
        vec = self._install()
        out = self.engine.forward(vec, coset_shift=coset_shift)
        return DistributedPolynomial(
            self.engine, out.cluster.peek_shards(), form=_EVAL,
            coset_shift=coset_shift)

    def to_coefficients(self) -> "DistributedPolynomial":
        """Evaluations -> coefficients (no-op if already coefficients)."""
        if self.form == _COEFF:
            return self
        vec = self._install()
        out = self.engine.inverse(vec, coset_shift=self.coset_shift)
        return DistributedPolynomial(
            self.engine, out.cluster.peek_shards(), form=_COEFF)

    # -- pointwise algebra (zero communication) ------------------------------------

    def _pointwise(self, other: "DistributedPolynomial",
                   op_name: str) -> "DistributedPolynomial":
        if other.engine is not self.engine:
            raise PartitionError(
                "polynomials must share an engine to combine")
        if (self.form, self.coset_shift) != (other.form,
                                             other.coset_shift):
            raise PartitionError(
                f"cannot {op_name} a {self.form} polynomial with a "
                f"{other.form} one (or different cosets)")
        if self.n != other.n:
            raise PartitionError(
                f"sizes differ: {self.n} vs {other.n}")
        field = self.field
        if op_name == "multiply":
            combine = vec_mul
        elif op_name == "add":
            combine = vec_add
        else:
            combine = vec_sub
        shards = [combine(field, mine, theirs)
                  for mine, theirs in zip(self.shards, other.shards)]
        eb = self.engine.cluster.element_bytes
        per_gpu = self.n // self.engine.gpu_count
        self.engine.cluster.trace.record(TraceEvent(
            kind="pointwise", level="gpu",
            max_bytes_per_gpu=3 * per_gpu * eb,
            total_bytes=3 * self.n * eb,
            field_muls=self.n if op_name == "multiply" else 0,
            detail=f"distributed-poly-{op_name}"))
        return DistributedPolynomial(self.engine, shards, form=self.form,
                                     coset_shift=self.coset_shift)

    def __mul__(self, other: "DistributedPolynomial",
                ) -> "DistributedPolynomial":
        """Pointwise product; both operands must be in evaluation form
        (spectral multiplication = cyclic convolution of coefficients)."""
        if self.form != _EVAL:
            raise PartitionError(
                "multiply in evaluation form (call to_evaluations first)")
        return self._pointwise(other, "multiply")

    def __add__(self, other: "DistributedPolynomial",
                ) -> "DistributedPolynomial":
        return self._pointwise(other, "add")

    def __sub__(self, other: "DistributedPolynomial",
                ) -> "DistributedPolynomial":
        return self._pointwise(other, "subtract")

    # -- inspection ------------------------------------------------------------------

    @property
    def field(self) -> PrimeField:
        return self.engine.field

    def values(self) -> list[int]:
        """Gather the logical vector (diagnostic; charges nothing)."""
        from repro.multigpu.layout import collect

        layout = (self.engine.input_layout(self.n) if self.form == _COEFF
                  else self.engine.output_layout(self.n))
        return collect(self.shards, layout)

    def __repr__(self) -> str:
        coset = f", coset={self.coset_shift}" if self.coset_shift else ""
        return (f"DistributedPolynomial(n={self.n}, form={self.form}"
                f"{coset}, gpus={self.engine.gpu_count})")
