"""Tests for the QAP transform (the prover's NTT workload)."""

import pytest

from repro.errors import CircuitError
from repro.field import BN254_FR
from repro.zkp import (
    QAP, EvaluationDomain, Polynomial, R1CS, inner_product, random_circuit,
    square_chain,
)

F = BN254_FR


@pytest.fixture(scope="module")
def chain():
    r1cs, witness = square_chain(F, steps=6)
    return QAP(r1cs), witness


class TestConstruction:
    def test_domain_sizing(self):
        r1cs, _ = square_chain(F, steps=5)  # 6 constraints
        assert QAP(r1cs).domain.size == 8

    def test_empty_r1cs_rejected(self):
        with pytest.raises(CircuitError, match="empty"):
            QAP(R1CS(F))

    def test_explicit_domain(self):
        r1cs, _ = square_chain(F, steps=3)
        qap = QAP(r1cs, domain=EvaluationDomain(F, 16))
        assert qap.domain.size == 16

    def test_too_small_domain_rejected(self):
        r1cs, _ = square_chain(F, steps=10)
        with pytest.raises(CircuitError, match="cannot host"):
            QAP(r1cs, domain=EvaluationDomain(F, 8))

    def test_workload_descriptors(self, chain):
        qap, _ = chain
        assert qap.transform_count == 7
        n = qap.domain.size
        assert qap.msm_sizes == [n, n, n, n - 1]


class TestWitnessRows:
    def test_rows_satisfy_constraints_pointwise(self, chain):
        qap, witness = chain
        a, b, c = qap.witness_rows(witness)
        p = F.modulus
        for i in range(len(qap.r1cs.constraints)):
            assert a[i] * b[i] % p == c[i]

    def test_padding_is_zero(self, chain):
        qap, witness = chain
        a, b, c = qap.witness_rows(witness)
        m = len(qap.r1cs.constraints)
        assert a[m:] == [0] * (qap.domain.size - m)
        assert b[m:] == c[m:] == a[m:]


class TestQuotient:
    def test_divisibility(self, chain):
        qap, witness = chain
        polys = qap.witness_polynomials(witness)
        assert qap.check_divisibility(polys)

    def test_quotient_degree_bound(self, chain):
        qap, witness = chain
        polys = qap.witness_polynomials(witness)
        assert polys.h.degree <= qap.domain.size - 2
        assert polys.a.degree < qap.domain.size

    def test_identity_on_domain(self, chain):
        """A(w^i) * B(w^i) = C(w^i) on every domain point."""
        qap, witness = chain
        polys = qap.witness_polynomials(witness)
        p = F.modulus
        for i in range(qap.domain.size):
            point = qap.domain.element(i)
            assert (polys.a.evaluate(point) * polys.b.evaluate(point)
                    - polys.c.evaluate(point)) % p == 0

    def test_identity_off_domain_via_h(self, chain):
        """A*B - C = H*Z at an arbitrary point off the domain."""
        qap, witness = chain
        polys = qap.witness_polynomials(witness)
        p = F.modulus
        z_point = 0xABCDEF
        lhs = (polys.a.evaluate(z_point) * polys.b.evaluate(z_point)
               - polys.c.evaluate(z_point)) % p
        rhs = polys.h.evaluate(z_point) * \
            qap.domain.vanishing_eval(z_point) % p
        assert lhs == rhs

    def test_bad_witness_rejected(self, chain):
        qap, witness = chain
        bad = list(witness)
        bad[-1] = (bad[-1] + 1) % F.modulus
        with pytest.raises(CircuitError, match="does not satisfy"):
            qap.witness_polynomials(bad)

    def test_divisibility_check_detects_wrong_h(self, chain):
        qap, witness = chain
        polys = qap.witness_polynomials(witness)
        import dataclasses
        tampered = dataclasses.replace(
            polys, h=polys.h + Polynomial.one(F))
        assert not qap.check_divisibility(tampered)

    @pytest.mark.parametrize("builder,arg", [
        (inner_product, 6), (random_circuit, 13),
    ])
    def test_other_circuit_families(self, builder, arg):
        r1cs, witness = builder(F, arg)
        qap = QAP(r1cs)
        polys = qap.witness_polynomials(witness)
        assert qap.check_divisibility(polys)
