"""F16: the uniformity demonstration as a regenerable table."""

from repro.bench import format_table, write_report
from repro.field import GOLDILOCKS
from repro.sim import uniformity_sweep


def test_f16_uniformity(benchmark, emit):
    def run():
        headers = ["level", "units", "n", "exchanges",
                   "exchanged elems/elem", "(U-1)/U"]
        rows = []
        for r in uniformity_sweep(GOLDILOCKS, n_per_unit=64):
            assert r.correct and r.exchanges == 1
            rows.append([r.level, r.units, r.n, r.exchanges,
                         r.elements_exchanged_per_element,
                         (r.units - 1) / r.units])
        return headers, rows

    table = benchmark(run)
    emit("F16_uniformity",
         "F16: one engine at four hierarchy scales (functional)", table)
