"""Finite-field substrate: prime fields, Montgomery form, ZKP presets."""

from repro.field.babybear import (
    BABYBEAR_P, bb_add, bb_array, bb_intt, bb_mul, bb_neg, bb_ntt,
    bb_scale, bb_sub,
)
from repro.field.goldilocks import (
    GOLDILOCKS_P, gl_add, gl_array, gl_intt, gl_mul, gl_neg, gl_ntt,
    gl_scale, gl_sub,
)
from repro.field.montgomery import MontgomeryContext, MontgomeryElement
from repro.field.presets import (
    ALL_FIELDS, BABYBEAR, BLS12_381_FR, BN254_FR, GOLDILOCKS, TEST_FIELD_97,
    TEST_FIELD_7681, ZKP_FIELDS, field_by_name,
)
from repro.field.prime_field import FieldElement, PrimeField
from repro.field.vector import (
    validate_vector, vec_add, vec_dot, vec_inv, vec_mul, vec_neg,
    vec_pow_series, vec_scale, vec_sub, vec_sum,
)

__all__ = [
    "PrimeField", "FieldElement", "MontgomeryContext", "MontgomeryElement",
    "GOLDILOCKS", "BABYBEAR", "BN254_FR", "BLS12_381_FR",
    "TEST_FIELD_97", "TEST_FIELD_7681", "ZKP_FIELDS", "ALL_FIELDS",
    "field_by_name",
    "vec_add", "vec_sub", "vec_mul", "vec_scale", "vec_neg",
    "vec_pow_series", "vec_inv", "vec_dot", "vec_sum", "validate_vector",
    "GOLDILOCKS_P", "gl_array", "gl_add", "gl_sub", "gl_mul", "gl_scale",
    "gl_neg", "gl_ntt", "gl_intt",
    "BABYBEAR_P", "bb_array", "bb_add", "bb_sub", "bb_mul", "bb_scale",
    "bb_neg", "bb_ntt", "bb_intt",
]
