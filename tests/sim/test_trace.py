"""Tests for trace aggregation."""

from repro.sim import Trace, TraceEvent


def sample_trace() -> Trace:
    trace = Trace()
    trace.record(TraceEvent(kind="all-to-all", level="multi-gpu",
                            max_bytes_per_gpu=100, total_bytes=800))
    trace.record(TraceEvent(kind="local-compute", level="gpu",
                            max_bytes_per_gpu=50, total_bytes=400,
                            field_muls=1000))
    trace.record(TraceEvent(kind="all-to-all", level="multi-gpu",
                            max_bytes_per_gpu=100, total_bytes=800))
    trace.record(TraceEvent(kind="gather", level="multi-gpu",
                            max_bytes_per_gpu=0, total_bytes=0))
    return trace


class TestTrace:
    def test_len_and_iter(self):
        trace = sample_trace()
        assert len(trace) == 4
        assert len(list(trace)) == 4

    def test_count(self):
        trace = sample_trace()
        assert trace.count("all-to-all") == 2
        assert trace.count("gather") == 1
        assert trace.count("nope") == 0

    def test_bytes_by_level(self):
        assert sample_trace().bytes_by_level() == {
            "multi-gpu": 1600, "gpu": 400}

    def test_critical_bytes_by_level(self):
        assert sample_trace().critical_bytes_by_level() == {
            "multi-gpu": 200, "gpu": 50}

    def test_collective_count_ignores_empty(self):
        # the zero-byte gather does not count as a collective
        assert sample_trace().collective_count() == 2

    def test_field_muls(self):
        assert sample_trace().total_field_muls() == 1000

    def test_summary(self):
        summary = sample_trace().summary()
        assert summary["events"] == 4
        assert summary["collectives"] == 2
        assert summary["field_muls"] == 1000

    def test_clear(self):
        trace = sample_trace()
        trace.clear()
        assert len(trace) == 0
        assert trace.bytes_by_level() == {}
