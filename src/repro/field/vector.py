"""Bulk operations on vectors of raw field values.

The NTT engines represent data as plain Python lists of integers in
``[0, p)`` ("raw vectors").  This module collects the vectorized helpers
shared by the transform engines, the polynomial algebra and the
simulator, so element-wise loops live in one place.

Every helper routes through the process-global *compute backend* (see
:mod:`repro.field.backend` and ``docs/BACKENDS.md``): the pure-Python
reference by default, or NumPy ``uint64`` lane arithmetic when the
``numpy`` backend is active.  The list-in/list-out contract is
identical either way; backends are bit-exact against each other.

>>> from repro.field.presets import TEST_FIELD_97
>>> vec_add(TEST_FIELD_97, [1, 96], [2, 3])
[3, 2]
>>> vec_pow_series(TEST_FIELD_97, 2, 4)
[1, 2, 4, 8]
"""

from __future__ import annotations

import numbers
from typing import Sequence

from repro.errors import FieldError
from repro.field.backend import get_backend
from repro.field.prime_field import PrimeField

__all__ = [
    "vec_add", "vec_sub", "vec_mul", "vec_scale", "vec_neg",
    "vec_pow_series", "vec_inv", "vec_dot", "vec_sum", "validate_vector",
    "host_values",
]


def host_values(field: PrimeField, values) -> list[int]:
    """Normalize a staged vector to a plain list of Python ints.

    Host-side boundaries (the simulator's shard loader, checkpoint /
    restore in the resilience layer) keep values as plain ints.  A
    caller working with a vectorized backend may instead hold a
    *packed* array — 1-D ``uint64`` lanes (raw residues) or multi-limb
    planes (shape ``(L, n)``, element axis last, for the big ZKP
    fields).  This helper accepts either, plus any sequence of
    int-likes, without importing numpy: arrays are detected by duck
    type (``ndim``) and unpacked through the active backend, so the
    limb layout never has to be re-derived here.

    >>> from repro.field.presets import TEST_FIELD_97
    >>> host_values(TEST_FIELD_97, [1, True and 2, 3])
    [1, 2, 3]
    """
    ndim = getattr(values, "ndim", None)
    if ndim is None:
        return [int(v) for v in values]
    if ndim == 1:
        # 1-D lanes hold raw residues; tolist() yields plain ints.
        return values.tolist()
    try:
        return get_backend().unpack(field, values)
    except Exception as exc:
        raise FieldError(
            f"cannot unpack a {ndim}-D packed array for {field.name} "
            f"through the active backend ({get_backend().name}); pack "
            f"and unpack under the same backend") from exc


def validate_vector(field: PrimeField, values: Sequence[int]) -> None:
    """Check that every entry is a canonical field value.

    Used at simulator boundaries to catch corrupted shards early.  Any
    integral type is accepted (plain ``int``, ``numpy`` integer
    scalars, ...); callers that need plain ints normalize with
    ``int(v)`` at the boundary.

    Packed limb-plane arrays (2-D, element axis last) are unpacked
    through the active backend before validation, so big-field shards
    staged by the multi-limb backend validate like any other vector.

    >>> from repro.field.presets import TEST_FIELD_97
    >>> validate_vector(TEST_FIELD_97, [0, 42, 96])
    """
    if getattr(values, "ndim", 0) >= 2:
        values = host_values(field, values)
    p = field.modulus
    for i, v in enumerate(values):
        if (isinstance(v, bool) or not isinstance(v, numbers.Integral)
                or not 0 <= v < p):
            raise FieldError(
                f"index {i}: {v!r} is not a canonical value of {field.name}")


def vec_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Element-wise ``a + b`` mod p."""
    backend = get_backend()
    return backend.unpack(field, backend.add(field, a, b))


def vec_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Element-wise ``a - b`` mod p."""
    backend = get_backend()
    return backend.unpack(field, backend.sub(field, a, b))


def vec_mul(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Element-wise (Hadamard) product mod p."""
    backend = get_backend()
    return backend.unpack(field, backend.mul(field, a, b))


def vec_scale(field: PrimeField, a: Sequence[int], s: int) -> list[int]:
    """Multiply every entry by the scalar ``s``."""
    backend = get_backend()
    return backend.unpack(field, backend.scale(field, a, s))


def vec_neg(field: PrimeField, a: Sequence[int]) -> list[int]:
    """Element-wise negation mod p."""
    backend = get_backend()
    return backend.unpack(field, backend.neg(field, a))


def vec_pow_series(field: PrimeField, base: int, n: int,
                   start: int = 1) -> list[int]:
    """Geometric series ``[start, start*base, ..., start*base^(n-1)]``.

    This is the twiddle-table generator: successive powers of a root.
    """
    backend = get_backend()
    return backend.unpack(field, backend.pow_series(field, base, n, start))


def vec_inv(field: PrimeField, a: Sequence[int]) -> list[int]:
    """Batch inversion via Montgomery's trick: one inversion for n values.

    Raises :class:`FieldError` if any entry is zero.
    """
    backend = get_backend()
    return backend.unpack(field, backend.inv(field, a))


def vec_dot(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> int:
    """Inner product mod p."""
    return get_backend().dot(field, a, b)


def vec_sum(field: PrimeField, a: Sequence[int]) -> int:
    """Sum of all entries mod p."""
    return get_backend().sum(field, a)
