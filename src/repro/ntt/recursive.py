"""Single-address-space executor for decomposition plans.

This is the functional ground truth for the UniNTT recursion: it runs an
arbitrary :class:`~repro.ntt.plan.Plan` on a flat list, using the
*cyclic* (decimation-in-time) index split

    ``j = q * R + s``  (unit ``s`` holds the contiguous sub-sequence
    ``x[s::R]`` of length C), and output split ``k = k1 + C * k2``:

1. each unit transforms its local sub-sequence with the C-point plan
   (root ``w^R``) — **no data crosses units**;
2. unit ``s`` scales its spectrum by the twiddles ``w^(s * k1)`` — local,
   fused in the distributed engines;
3. for every ``k1``, the R values at position ``k1`` across units are
   transformed with the R-point plan (root ``w^C``) — this is the cross
   transform that rides a hierarchy level's fabric, and it is itself a
   plan, recursively.

Compare with :mod:`repro.ntt.fourstep`: the cyclic split makes step 1
contiguous *without* a transpose, and the output permutation is carried
in the index math rather than materialized — the "overhead-free" claim.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PlanError
from repro.field.prime_field import PrimeField
from repro.ntt import radix2
from repro.ntt.plan import Plan
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["execute_plan", "execute_plan_inverse", "plan_ntt", "plan_intt"]


def execute_plan(field: PrimeField, plan: Plan, values: Sequence[int],
                 root: int, cache: TwiddleCache | None = None) -> list[int]:
    """Run ``plan`` on ``values`` with primitive root ``root``.

    Returns the natural-order transform ``X[k] = sum x[j] root^(jk)``.
    """
    if len(values) != plan.size:
        raise PlanError(
            f"plan is for size {plan.size}, got {len(values)} values")
    cache = cache or default_cache
    return _execute(field, plan, list(values), root, cache)


def _execute(field: PrimeField, plan: Plan, values: list[int], root: int,
             cache: TwiddleCache) -> list[int]:
    n = plan.size
    if n == 1:
        return values
    if plan.is_leaf:
        return radix2.ntt(field, values, cache, root=root)
    assert plan.outer is not None and plan.inner is not None
    r = plan.outer.size
    c = plan.inner.size
    p = field.modulus

    # Step 1: local C-point transforms on the cyclic sub-sequences.
    root_c = pow(root, r, p)
    subs = [_execute(field, plan.inner, values[s::r], root_c, cache)
            for s in range(r)]

    # Step 2: twiddle  subs[s][k1] *= root^(s*k1)  (fused in engines).
    for s in range(1, r):
        tw = cache.powers(field, pow(root, s, p), c)
        sub = subs[s]
        for k1 in range(1, c):
            sub[k1] = sub[k1] * tw[k1] % p

    # Step 3: cross R-point transforms, one per output residue k1.
    root_r = pow(root, c, p)
    out = [0] * n
    for k1 in range(c):
        column = [subs[s][k1] for s in range(r)]
        column = _execute(field, plan.outer, column, root_r, cache)
        for k2 in range(r):
            out[k1 + c * k2] = column[k2]
    return out


def execute_plan_inverse(field: PrimeField, plan: Plan,
                         values: Sequence[int], root: int,
                         cache: TwiddleCache | None = None) -> list[int]:
    """Inverse transform under ``plan``; ``root`` is the forward root."""
    out = execute_plan(field, plan, values, field.inv(root), cache)
    p = field.modulus
    n_inv = field.inv(plan.size % p)
    return [v * n_inv % p for v in out]


def plan_ntt(field: PrimeField, plan: Plan, values: Sequence[int],
             cache: TwiddleCache | None = None) -> list[int]:
    """Forward NTT under ``plan`` with the field's standard root."""
    return execute_plan(field, plan, values,
                        field.root_of_unity(plan.size), cache)


def plan_intt(field: PrimeField, plan: Plan, values: Sequence[int],
              cache: TwiddleCache | None = None) -> list[int]:
    """Inverse NTT under ``plan`` with the field's standard root."""
    return execute_plan_inverse(field, plan, values,
                                field.root_of_unity(plan.size), cache)
