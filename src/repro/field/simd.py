"""Shared driver for data-parallel (numpy) NTTs.

The vectorized field backends (:mod:`repro.field.goldilocks`,
:mod:`repro.field.babybear`) differ only in their lane arithmetic; the
transform schedule — whole-stage radix-2 DIF butterflies over reshaped
views, one bit-reversal gather at the end — is identical and lives
here.  This is the data-parallel shape a GPU kernel has, which is why
the same schedule is fast under numpy too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["LaneOps", "vectorized_ntt", "vectorized_intt"]


@dataclass(frozen=True)
class LaneOps:
    """The lane arithmetic a vectorized backend supplies."""

    field: PrimeField
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    sub: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    scale: Callable[[np.ndarray, int], np.ndarray]
    pack: Callable[[list[int]], np.ndarray]


def _check_size(n: int) -> None:
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")


def vectorized_ntt(ops: LaneOps, values: np.ndarray,
                   cache: TwiddleCache | None = None,
                   root: int | None = None) -> np.ndarray:
    """Forward radix-2 DIF NTT with whole-stage numpy butterflies."""
    n = len(values)
    _check_size(n)
    cache = cache or default_cache
    if n == 1:
        return values.copy()
    field = ops.field
    w = field.root_of_unity(n) if root is None else root
    table = ops.pack(cache.powers(field, w, n // 2))

    data = values.copy()
    half = n // 2
    while half >= 1:
        step = (n // 2) // half
        view = data.reshape(-1, 2, half)
        u = view[:, 0, :].copy()
        v = view[:, 1, :].copy()
        tw = table[::step][:half]
        view[:, 0, :] = ops.add(u, v)
        view[:, 1, :] = ops.mul(ops.sub(u, v),
                                np.broadcast_to(tw, u.shape))
        half //= 2
    perm = np.asarray(cache.bitrev(n), dtype=np.int64)
    return data[perm]


def vectorized_intt(ops: LaneOps, values: np.ndarray,
                    cache: TwiddleCache | None = None,
                    root: int | None = None) -> np.ndarray:
    """Inverse vectorized NTT (includes the 1/n scaling)."""
    n = len(values)
    _check_size(n)
    cache = cache or default_cache
    if n == 1:
        return values.copy()
    field = ops.field
    w = field.root_of_unity(n) if root is None else root
    out = vectorized_ntt(ops, values, cache, root=field.inv(w))
    return ops.scale(out, field.inv(n))
