"""Tests for the optimization option set."""

import pytest

from repro.multigpu import ALL_OFF, ALL_ON, UniNTTOptions, ablation_grid


class TestOptions:
    def test_defaults_all_on(self):
        options = UniNTTOptions()
        assert options.fused_twiddle
        assert options.keep_permuted_output
        assert options.overlap
        assert options.radix_fusion

    def test_label(self):
        assert ALL_ON.label() == "FT+PO+OV+RF"
        assert ALL_OFF.label() == "none"
        assert UniNTTOptions(overlap=False).label() == "FT+PO+RF"

    def test_without(self):
        options = ALL_ON.without("overlap")
        assert not options.overlap
        assert options.fused_twiddle
        # original untouched (frozen)
        assert ALL_ON.overlap

    def test_without_unknown(self):
        with pytest.raises(AttributeError, match="unknown"):
            ALL_ON.without("warp_specialization")

    def test_frozen(self):
        with pytest.raises(Exception):
            ALL_ON.overlap = False  # type: ignore[misc]


class TestAblationGrid:
    def test_structure(self):
        grid = ablation_grid()
        labels = [label for label, _ in grid]
        assert labels[0] == "all-on"
        assert labels[-1] == "all-off"
        assert len(grid) == 6

    def test_each_arm_differs_from_all_on(self):
        grid = dict(ablation_grid())
        for label, options in grid.items():
            if label in ("all-on",):
                assert options == ALL_ON
            else:
                assert options != ALL_ON

    def test_single_knock_out_arms(self):
        grid = dict(ablation_grid())
        assert not grid["no-overlap"].overlap
        assert grid["no-overlap"].fused_twiddle
        assert not grid["no-fused_twiddle"].fused_twiddle
